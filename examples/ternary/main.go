// Ternary join: (R ⋈ S) ⋈ T composed from two cyclo-join runs (§IV-A:
// "The ternary join (R ⋈ S) ⋈ T could, for example, be evaluated by using
// two runs of cyclo-join").
//
// The first run materializes R ⋈ S per host, keyed on S's join key; the
// per-host outputs are already a distributed table, so the second run
// stations T and rotates those outputs without any repartitioning step.
//
//	go run ./examples/ternary
package main

import (
	"fmt"
	"log"

	"cyclojoin"
)

const nodes = 3

func main() {
	// R(a ...), S(a ...), T(a ...): all three share the key domain so
	// both joins have matches. In a real schema the first join would be
	// on R.a = S.a and the second on S.b = T.b; the rekeyed materializer
	// below is what swaps the output key to the S side.
	r := generate("R", 100_000, 1)
	s := generate("S", 100_000, 2)
	tRel := generate("T", 100_000, 3)

	// Run 1: R ⋈ S, materialized per host and keyed on sKey.
	first, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     nodes,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
		Collectors: func(node int) cyclojoin.Collector {
			return cyclojoin.NewRekeyedMaterializer(fmt.Sprintf("rs-%d", node), 4, 4)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res1, err := first.JoinRelations(r, s, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := first.Close(); err != nil {
		log.Print(err)
	}

	// The distributed intermediate: one fragment per host, exactly where
	// cyclo-join left it.
	interFrags := make([]*cyclojoin.Fragment, nodes)
	totalInter := 0
	for host, c := range res1.Collectors {
		m, ok := c.(*cyclojoin.Materializer)
		if !ok {
			log.Fatalf("host %d: unexpected collector type", host)
		}
		interFrags[host] = &cyclojoin.Fragment{Rel: m.Result(), Index: host, Of: nodes}
		totalInter += m.Result().Len()
	}
	fmt.Printf("run 1: |R ⋈ S| = %d rows, distributed over %d hosts (join %v)\n",
		totalInter, nodes, res1.JoinTime)

	// Run 2: (R ⋈ S) ⋈ T. T is stationed; the intermediate rotates from
	// wherever each piece already lives.
	second, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     nodes,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := second.Close(); err != nil {
			log.Print(err)
		}
	}()
	tFrags, err := cyclojoin.Partition(tRel, nodes)
	if err != nil {
		log.Fatal(err)
	}
	rotating := make([][]*cyclojoin.Fragment, nodes)
	for i, f := range interFrags {
		rotating[i] = []*cyclojoin.Fragment{f}
	}
	res2, err := second.Join(tFrags, rotating)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2: |(R ⋈ S) ⋈ T| = %d matches (join %v)\n", res2.Matches(), res2.JoinTime)
}

func generate(name string, tuples int, seed int64) *cyclojoin.Relation {
	rel, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: name, Tuples: tuples, KeyDomain: 50_000, Seed: seed, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rel
}
