// Hot set: §II-C's storage discipline — "the combined main memory ...
// large enough to hold the hot set of the database; other data may be kept
// in slower, distributed disk space."
//
// Five relations share a memory budget big enough for two. The store keeps
// the recently used ones resident and spills the rest to disk; queries pull
// whichever relation they need — hot ones from memory, cold ones reloaded
// transparently — and the access statistics show which relations have
// earned their place in the spinning hot set.
//
//	go run ./examples/hotset
package main

import (
	"fmt"
	"log"
	"os"

	"cyclojoin"
)

func main() {
	dir, err := os.MkdirTemp("", "hotset")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = os.RemoveAll(dir)
	}()

	// Budget: ~2 of the 5 relations fit in memory at once.
	const relTuples = 50_000 // 600 kB each
	store, err := cyclojoin.NewHotSetStore(1_300_000, dir)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"orders", "customers", "lineitems", "regions", "suppliers"}
	for _, name := range names {
		if err := store.Register(name, cyclojoin.SequentialRelation(name, relTuples, 4)); err != nil {
			log.Fatal(err)
		}
	}

	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     3,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()

	// A query mix that hammers orders⋈customers and touches the rest once.
	pairs := [][2]string{
		{"orders", "customers"},
		{"orders", "customers"},
		{"lineitems", "orders"},
		{"orders", "customers"},
		{"regions", "suppliers"},
		{"orders", "customers"},
	}
	for _, p := range pairs {
		r, err := store.Get(p[0])
		if err != nil {
			log.Fatal(err)
		}
		s, err := store.Get(p[1])
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.JoinRelations(r, s, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s ⋈ %s: %d matches\n", p[0], p[1], res.Matches())
	}

	stats := store.Stats()
	fmt.Printf("\nstore: %d hits, %d reloads from disk, %d spills\n", stats.Hits, stats.Reloads, stats.Spills)
	fmt.Println("hot set by access count:")
	for _, h := range store.Hottest() {
		state := "on disk"
		if h.Resident {
			state = "in memory"
		}
		fmt.Printf("  %-10s %d accesses (%s)\n", h.Name, h.Accesses, state)
	}
}
