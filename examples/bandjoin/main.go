// Band join: a non-equi join on the ring, the use case the paper names for
// sort-merge in cyclo-join (§IV-A: band joins, similarity joins for data
// cleaning).
//
// Two relations of event timestamps are joined with |t_R − t_S| ≤ 3: each
// host sorts its fragments once (setup), the sorted fragments circulate,
// and every host merges them against its stationary sorted run with a
// sliding window.
//
//	go run ./examples/bandjoin
package main

import (
	"fmt"
	"log"

	"cyclojoin"
)

func main() {
	const width = 3
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     3,
		Algorithm: cyclojoin.SortMergeJoin(),
		Predicate: cyclojoin.BandJoin(width),
		Collectors: func(node int) cyclojoin.Collector {
			// Materialize per host: the distributed result stays where
			// it was produced, ready for downstream processing.
			return cyclojoin.NewMaterializer(fmt.Sprintf("out-%d", node), 4, 4)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cluster.Close(); err != nil {
			log.Print(err)
		}
	}()

	// "Sensor readings" and "alerts" with timestamps in a shared range;
	// the band join correlates readings within ±3 ticks of an alert.
	readings, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "readings", Tuples: 200_000, KeyDomain: 1_000_000, Seed: 7, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	alerts, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "alerts", Tuples: 20_000, KeyDomain: 1_000_000, Seed: 8, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := cluster.JoinRelations(readings, alerts, false)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for host, c := range res.Collectors {
		m, ok := c.(*cyclojoin.Materializer)
		if !ok {
			log.Fatalf("host %d: unexpected collector type", host)
		}
		out := m.Result()
		fmt.Printf("host %d holds %d correlated pairs (%d B)\n", host, out.Len(), out.Bytes())
		total += out.Len()
	}
	fmt.Printf("band join |t_R − t_S| ≤ %d: %d pairs total, setup %v, join %v\n",
		width, total, res.SetupTime, res.JoinTime)
}
