// TCP ring: the same cyclo-join code running over real TCP sockets.
//
// The Data Roundabout runtime is written against the RDMA-verbs-shaped
// queue-pair interface; here the links underneath it are genuine loopback
// TCP connections (one per ring edge), demonstrating that the ring,
// framing, flow control and join logic survive a real network stack. On a
// cluster, point the links at real addresses instead.
//
//	go run ./examples/tcpring
package main

import (
	"fmt"
	"log"

	"cyclojoin"
)

func main() {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     5,
		Algorithm: cyclojoin.SortMergeJoin(),
		Predicate: cyclojoin.EquiJoin(),
		Links:     cyclojoin.TCPLoopbackLinks(),
		Ring:      cyclojoin.RingConfig{BufferSlots: 4, BufferBytes: 8 << 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cluster.Close(); err != nil {
			log.Print(err)
		}
	}()

	r, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "R", Tuples: 500_000, KeyDomain: 250_000, Seed: 11, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "S", Tuples: 500_000, KeyDomain: 250_000, Seed: 12, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sort-merge cyclo-join over TCP: %d matches, setup %v, join %v\n",
		res.Matches(), res.SetupTime, res.JoinTime)
	for i, ns := range res.Nodes {
		fmt.Printf("  host %d: %d fragments through, %d B received over its socket\n",
			i, ns.Processed, ns.BytesIn)
	}
}
