// Continuous circulation: the Data Cyclotron mode (§II-C) — "we keep the
// data continuously circulating in the ring; queries pick necessary pieces
// of data as they flow by".
//
// A Wheel keeps the fact relation spinning on a four-host ring. Several
// ad-hoc join queries arrive concurrently, each stationing its own lookup
// relation; they batch onto shared revolutions, so one spin of the data
// serves many queries — the bandwidth economy that motivates the project.
//
//	go run ./examples/cyclotron
package main

import (
	"fmt"
	"log"
	"sync"

	"cyclojoin"
)

func main() {
	facts, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "facts", Tuples: 500_000, KeyDomain: 100_000, Seed: 1, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	wheel, err := cyclojoin.NewWheel(cyclojoin.WheelConfig{Nodes: 4, FragmentsPerHost: 2}, facts)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := wheel.Close(); err != nil {
			log.Print(err)
		}
	}()

	// Eight ad-hoc queries arrive at once, each joining the spinning
	// facts against its own dimension table.
	const queries = 8
	var wg sync.WaitGroup
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			dim, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
				Name: fmt.Sprintf("dim%d", q), Tuples: 20_000 + 5_000*q,
				KeyDomain: 100_000, Seed: int64(10 + q), PayloadWidth: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			out, err := wheel.ExecuteJoin(cyclojoin.WheelJoin{
				Algorithm:  cyclojoin.HashJoin(),
				Predicate:  cyclojoin.EquiJoin(),
				Stationary: dim,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("query %d: %7d matches (served by revolution %d)\n",
				q, out.Matches(), out.Revolution)
		}(q)
	}
	wg.Wait()
	fmt.Printf("\n%d queries consumed %d revolutions of the spinning relation\n",
		queries, wheel.Revolutions())
}
