// SQL over the ring: the paper's §VII goal — a SQL-enabled system on top
// of cyclo-join — as a working slice.
//
// A small warehouse (orders, customers, regions) is registered in a
// catalog; SQL join queries then execute as left-deep chains of cyclo-join
// revolutions on a four-host ring, with WHERE filters pushed down to the
// base tables before anything rotates.
//
//	go run ./examples/sqljoin
package main

import (
	"fmt"
	"log"

	"cyclojoin"
)

func main() {
	catalog := cyclojoin.NewCatalog()

	// customers: primary key ids 0..49999, one row each.
	customers := cyclojoin.SequentialRelation("customers", 50_000, 8)
	// orders: 300k rows referencing customer ids, Zipf-skewed (popular
	// customers order more).
	orders, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "orders", Tuples: 300_000, KeyDomain: 50_000, Zipf: 0.5, Seed: 2, PayloadWidth: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// loyalty: 12.5k uniformly drawn customer ids (membership rolls).
	loyalty, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "loyalty", Tuples: 12_500, KeyDomain: 50_000, Seed: 3, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, reg := range []struct {
		name, key string
		rel       *cyclojoin.Relation
	}{
		{"customers", "id", customers},
		{"orders", "cust_id", orders},
		{"loyalty", "cust_id", loyalty},
	} {
		if err := catalog.Register(reg.name, reg.key, reg.rel); err != nil {
			log.Fatal(err)
		}
	}

	engine, err := cyclojoin.NewQueryEngine(catalog, 4, cyclojoin.JoinOptions{Parallelism: 2})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM orders",
		"SELECT COUNT(*) FROM orders WHERE orders.cust_id < 1000",
		"SELECT COUNT(*) FROM orders JOIN customers ON orders.cust_id = customers.id",
		"SELECT COUNT(*) FROM orders JOIN customers ON orders.cust_id = customers.id " +
			"WHERE customers.id BETWEEN 0 AND 9999",
		"SELECT COUNT(*) FROM orders JOIN customers ON orders.cust_id = customers.id " +
			"JOIN loyalty ON customers.id = loyalty.cust_id",
	}
	for _, q := range queries {
		res, err := engine.Execute(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%-130s → %d rows\n", q, res.Count)
	}
}
