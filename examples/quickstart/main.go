// Quickstart: a distributed equi-join on a four-host Data Roundabout.
//
// Two million-tuple relations are generated, spread evenly across the ring
// hosts, and joined with the radix-partitioned hash join: S stays
// stationary, R's fragments circulate, and after one revolution the union
// of the per-host results is the complete join.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cyclojoin"
)

func main() {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     4,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
		Opts:      cyclojoin.JoinOptions{Parallelism: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := cluster.Close(); err != nil {
			log.Print(err)
		}
	}()

	r, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "R", Tuples: 1_000_000, KeyDomain: 500_000, Seed: 1, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "S", Tuples: 1_000_000, KeyDomain: 500_000, Seed: 2, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R ⋈ S: %d matches\n", res.Matches())
	fmt.Printf("setup phase %v (hash tables built once per host)\n", res.SetupTime)
	fmt.Printf("join phase  %v (one full revolution of R)\n", res.JoinTime)

	// The stationed hash tables are reusable: a second revolution joins
	// the same R again without re-running setup (§IV-D).
	res2, err := cluster.Rotate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second revolution (setup reused): %d matches in %v\n", res2.Matches(), res2.JoinTime)
}
