// Skewed join: the Fig 9 physics at laptop scale.
//
// Both inputs draw their keys from a Zipf distribution. A single host's
// hash join degrades toward nested-loops behaviour on the hot keys. In a
// cyclo-join ring, each host stations only S_i = 1/N of S, so every hot
// key's hash chain — and with it the per-host join work — shrinks by the
// ring size, while queries on uniform data see no change (Equation ⋆ of
// §V-B).
//
// This example measures exactly that quantity on one machine: the time one
// host spends joining the full rotating relation R against its stationary
// piece S_i, compared with a single host joining R against all of S. On
// the paper's cluster, the per-host time *is* the join-phase wall clock,
// because all hosts work concurrently on their own cores.
//
//	go run ./examples/skewed
package main

import (
	"fmt"
	"log"
	"time"

	"cyclojoin"
)

const ringSize = 6

func main() {
	const tuples = 400_000
	fmt.Printf("per-host join-phase work, local vs %d-host cyclo-join (|R|=|S|=%d)\n\n", ringSize, tuples)
	for _, z := range []float64{0.0, 0.5, 0.7, 0.9} {
		r := generate("R", tuples, z, 1)
		s := generate("S", tuples, z, 2)
		local := hostShare(r, s, 1)
		cyclo := hostShare(r, s, ringSize)
		fmt.Printf("zipf z=%.1f: local %10v   cyclo-join %10v   advantage %.1fx\n",
			z, local.Round(time.Millisecond), cyclo.Round(time.Millisecond),
			float64(local)/float64(cyclo))
	}
	fmt.Println("\nthe advantage grows with skew: hot-key hash chains split across the ring (§V-D);")
	fmt.Println("the small uniform-data gain is this machine's cache footprint, not the chains")
}

func generate(name string, tuples int, z float64, seed int64) *cyclojoin.Relation {
	rel, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: name, Tuples: tuples, KeyDomain: tuples * 16, Zipf: z, Seed: seed, PayloadWidth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

// hostShare builds the hash table over one host's stationary piece (S
// split across `nodes` hosts) and times a full revolution's worth of
// probing: every tuple of R against that table.
func hostShare(r, s *cyclojoin.Relation, nodes int) time.Duration {
	sFrags, err := cyclojoin.Partition(s, nodes)
	if err != nil {
		log.Fatal(err)
	}
	alg := cyclojoin.HashJoin()
	// A small cache target keeps radix partitions cache-resident at both
	// table sizes, isolating the chain-length effect the paper describes.
	opts := cyclojoin.JoinOptions{L2CacheBytes: 256 << 10}
	st, err := alg.SetupStationary(sFrags[0].Rel, cyclojoin.EquiJoin(), opts)
	if err != nil {
		log.Fatal(err)
	}
	counter := cyclojoin.NewCounter()
	start := time.Now()
	if err := st.Join(r, counter); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if counter.Count() == 0 {
		log.Fatal("no matches; key domains do not overlap")
	}
	return elapsed
}
