// Command cyclosql is an interactive SQL shell over cyclo-join: register
// tables (from datagen files or generated on the fly), then run join
// queries that execute as cyclo-join revolutions on a local ring.
//
// Usage:
//
//	cyclosql -nodes 4 \
//	    -table orders=orders.rel:cust_id \
//	    -table customers=customers.rel:id \
//	    -q "SELECT COUNT(*) FROM orders JOIN customers ON orders.cust_id = customers.id"
//
//	cyclosql -demo          # built-in demo catalog, then a REPL on stdin
//
// Supported SQL: SELECT COUNT(*) | SUM/MIN/MAX(t.col) | * with JOIN ... ON
// chains, WHERE conjuncts (=, <, <=, >, >=, BETWEEN), ORDER BY and LIMIT;
// prefix any query with EXPLAIN to see the cyclo-join plan with cost and
// cardinality estimates instead of running it.
//
// Table syntax: name=file.rel:keycolumn (files in the datagen wire
// format). Without -q, queries are read line by line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cyclojoin/internal/join"
	"cyclojoin/internal/query"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

// tableFlags collects repeated -table arguments.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }

func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var tables tableFlags
	flag.Var(&tables, "table", "table to register: name=file.rel:keycolumn (repeatable)")
	nodes := flag.Int("nodes", 4, "ring size for join execution")
	threads := flag.Int("threads", 2, "join threads per host")
	q := flag.String("q", "", "single query to run (default: REPL on stdin)")
	demo := flag.Bool("demo", false, "load a built-in demo catalog (orders, customers, loyalty)")
	flag.Parse()

	catalog := query.NewCatalog()
	if *demo {
		if err := loadDemo(catalog); err != nil {
			fmt.Fprintln(os.Stderr, "cyclosql:", err)
			return 1
		}
	}
	for _, spec := range tables {
		if err := loadTable(catalog, spec); err != nil {
			fmt.Fprintln(os.Stderr, "cyclosql:", err)
			return 1
		}
	}
	if len(catalog.Tables()) == 0 {
		fmt.Fprintln(os.Stderr, "cyclosql: no tables registered (use -table or -demo)")
		return 2
	}
	engine, err := query.NewEngine(catalog, *nodes, join.Options{Parallelism: *threads})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclosql:", err)
		return 1
	}
	fmt.Printf("tables: %s\n", strings.Join(catalog.Tables(), ", "))

	if *q != "" {
		return runQuery(engine, *q)
	}
	fmt.Println("enter SQL (one query per line, ctrl-D to exit):")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("cyclosql> ")
		if !scanner.Scan() {
			fmt.Println()
			return 0
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			return 0
		}
		runQuery(engine, line)
	}
}

func runQuery(engine *query.Engine, sql string) int {
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) > 8 && strings.EqualFold(trimmed[:8], "explain ") {
		plan, err := engine.Explain(trimmed[8:])
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
		fmt.Print(plan)
		return 0
	}
	start := time.Now()
	res, err := engine.Execute(sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return 1
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	switch {
	case res.AggValue != nil:
		fmt.Printf("aggregate = %d over %d rows in %v\n", *res.AggValue, res.Count, elapsed)
	case res.Rows != nil:
		fmt.Printf("%d rows (%d B materialized) in %v\n", res.Count, res.Rows.Bytes(), elapsed)
	default:
		fmt.Printf("count = %d in %v\n", res.Count, elapsed)
	}
	return 0
}

// loadTable parses name=file.rel:keycolumn and registers the relation.
func loadTable(catalog *query.Catalog, spec string) error {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("bad -table %q: want name=file.rel:keycolumn", spec)
	}
	file, keyCol, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("bad -table %q: missing :keycolumn", spec)
	}
	buf, err := os.ReadFile(file)
	if err != nil {
		return fmt.Errorf("load %s: %w", name, err)
	}
	frag, err := relation.Decode(buf, name)
	if err != nil {
		return fmt.Errorf("decode %s: %w", name, err)
	}
	if err := catalog.Register(strings.ToLower(name), strings.ToLower(keyCol), frag.Rel); err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d tuples from %s (key column %s)\n", name, frag.Rel.Len(), file, keyCol)
	return nil
}

// loadDemo registers a small generated warehouse.
func loadDemo(catalog *query.Catalog) error {
	customers := workload.Sequential("customers", 50_000, 8)
	orders, err := workload.Generate(workload.Spec{
		Name: "orders", Tuples: 250_000, KeyDomain: 50_000, Zipf: 0.5, Seed: 2, PayloadWidth: 8,
	})
	if err != nil {
		return err
	}
	loyalty, err := workload.Generate(workload.Spec{
		Name: "loyalty", Tuples: 10_000, KeyDomain: 50_000, Seed: 3, PayloadWidth: 4,
	})
	if err != nil {
		return err
	}
	for _, reg := range []struct {
		name, key string
		rel       *relation.Relation
	}{
		{"customers", "id", customers},
		{"orders", "cust_id", orders},
		{"loyalty", "cust_id", loyalty},
	} {
		if err := catalog.Register(reg.name, reg.key, reg.rel); err != nil {
			return err
		}
	}
	return nil
}
