// Command datagen generates synthetic join inputs (uniform or
// Zipf-skewed, §V-style 12-byte tuples) and writes them to disk in the
// ring's wire format, or inspects an existing file.
//
// Usage:
//
//	datagen -out R.rel -tuples 1000000 -zipf 0.9
//	datagen -inspect R.rel
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out     = flag.String("out", "", "output file to write")
		inspect = flag.String("inspect", "", "relation file to inspect")
		name    = flag.String("name", "R", "relation name")
		tuples  = flag.Int("tuples", 1_000_000, "tuple count")
		domain  = flag.Int("domain", 0, "key domain (0 = tuple count)")
		zipf    = flag.Float64("zipf", 0, "zipf skew factor")
		payload = flag.Int("payload", 4, "payload bytes per tuple (4 = the paper's 12-byte tuples)")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		return doInspect(*inspect)
	case *out != "":
		return doGenerate(*out, workload.Spec{
			Name: *name, Tuples: *tuples, KeyDomain: *domain,
			Zipf: *zipf, PayloadWidth: *payload, Seed: *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "datagen: need -out or -inspect")
		flag.Usage()
		return 2
	}
}

func doGenerate(path string, spec workload.Spec) int {
	rel, err := workload.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	frag := &relation.Fragment{Rel: rel, Index: 0, Of: 1}
	buf, err := relation.EncodeAppend(frag, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	fmt.Printf("wrote %s: %d tuples, %d B on disk\n", path, rel.Len(), len(buf))
	return 0
}

func doInspect(path string) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	frag, err := relation.Decode(buf, "inspected")
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		return 1
	}
	rel := frag.Rel
	mult := workload.Multiplicities(rel)
	counts := make([]int, 0, len(mult))
	for _, c := range mult {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	fmt.Printf("%s\n", path)
	fmt.Printf("  tuples:        %d\n", rel.Len())
	fmt.Printf("  tuple width:   %d B (payload %d B)\n", rel.Schema().TupleWidth(), rel.Schema().PayloadWidth)
	fmt.Printf("  data volume:   %d B\n", rel.Bytes())
	fmt.Printf("  distinct keys: %d\n", len(mult))
	top := counts
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Printf("  top multiplicities: %v\n", top)
	return 0
}
