// Command cyclotop is `top` for a spinning ring: it follows a roundabout
// process's /health/live SSE feed and renders a refreshing per-node table
// — phase shares, windowed hop latency percentiles, autotuner chunk size,
// credit stalls, chaoslink fault counts — plus the sampler's verdict line
// (healthy / straggler / credit-stall / degraded).
//
// Usage:
//
//	roundabout -rotations 200 -metrics 127.0.0.1:9090 &
//	cyclotop http://127.0.0.1:9090/health/live
//	cyclotop -once -json URL     # one snapshot as JSON (CI: validates the
//	                             # SSE payload decodes end to end)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"cyclojoin/internal/health"
	"cyclojoin/internal/stats"
)

const defaultURL = "http://127.0.0.1:9090/health/live"

func main() {
	os.Exit(run())
}

func run() int {
	once := flag.Bool("once", false, "render the first snapshot and exit")
	asJSON := flag.Bool("json", false, "print snapshots as JSON instead of the table")
	wait := flag.Duration("wait", 5*time.Second, "keep retrying the initial connection for this long")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cyclotop [-once] [-json] [URL]\n\nURL is a /health/live endpoint (default %s).\n", defaultURL)
		flag.PrintDefaults()
	}
	flag.Parse()
	url := defaultURL
	if flag.NArg() > 1 {
		flag.Usage()
		return 2
	}
	if flag.NArg() == 1 {
		url = flag.Arg(0)
	}

	resp, err := connect(url, *wait)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclotop:", err)
		return 1
	}
	defer func() {
		_ = resp.Body.Close()
	}()

	// The feed is Server-Sent Events: one "data: {json}" line per
	// sampling tick, blank-line separated.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		var snap health.Snapshot
		if err := json.Unmarshal(bytes.TrimPrefix(line, []byte("data: ")), &snap); err != nil {
			fmt.Fprintln(os.Stderr, "cyclotop: bad snapshot:", err)
			return 1
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(&snap); err != nil {
				fmt.Fprintln(os.Stderr, "cyclotop:", err)
				return 1
			}
		} else {
			if !*once {
				// ANSI clear + home: refresh in place like top.
				fmt.Print("\x1b[2J\x1b[H")
			}
			if err := render(os.Stdout, &snap); err != nil {
				fmt.Fprintln(os.Stderr, "cyclotop:", err)
				return 1
			}
		}
		if *once {
			return 0
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		fmt.Fprintln(os.Stderr, "cyclotop: stream:", err)
		return 1
	}
	// The feed ended: the observed process finished its run.
	return 0
}

// connect retries the SSE dial until the deadline — cyclotop usually
// races the roundabout process it is pointed at.
func connect(url string, wait time.Duration) (*http.Response, error) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(url)
		if err == nil && resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		if err == nil {
			_ = resp.Body.Close()
			err = fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func render(w io.Writer, snap *health.Snapshot) error {
	fmt.Fprintf(w, "cyclotop — sample %d @ %s, window %s\n\n",
		snap.Seq, snap.Time.Format("15:04:05.000"), snap.Window.Round(time.Millisecond))

	tbl := stats.NewTable("Ring health (windowed)",
		"node", "busy", "wait", "stall", "hop p50", "hop p99", "frags/s", "queue", "chunk")
	for _, ns := range snap.Nodes {
		tbl.AddRow(
			strconv.Itoa(ns.Node),
			stats.Pct(ns.BusyShare),
			stats.Pct(ns.WaitShare),
			stats.Pct(ns.StallShare),
			fmtDur(time.Duration(ns.HopP50Ns)),
			fmtDur(time.Duration(ns.HopP99Ns)),
			fmt.Sprintf("%.0f", ns.FragsPerSec),
			strconv.FormatInt(ns.QueueDepth, 10),
			fmtBytes(ns.ChunkBytes),
		)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	if len(snap.Faults) > 0 {
		parts := make([]string, 0, len(snap.Faults))
		for _, lf := range snap.Faults {
			parts = append(parts, fmt.Sprintf("%s: %dd/%dc/%ddl", lf.Link, lf.Drops, lf.Corrupts, lf.Delays))
		}
		fmt.Fprintf(w, "chaos faults (drops/corrupts/delays): %s\n", strings.Join(parts, "  "))
	}
	v := snap.Verdict
	switch v.Kind {
	case health.Healthy:
		fmt.Fprintf(w, "verdict: %s — %s\n", v.Kind, v.Reason)
	case health.Straggler:
		fmt.Fprintf(w, "verdict: %s node %d (score %.1f) — %s\n", v.Kind, v.Node, v.Score, v.Reason)
	case health.CreditStall:
		fmt.Fprintf(w, "verdict: %s on link %s — %s\n", v.Kind, v.Link, v.Reason)
	case health.Degraded:
		fmt.Fprintf(w, "verdict: %s (link %s) — %s\n", v.Kind, v.Link, v.Reason)
	}
	if snap.Slowest >= 0 {
		fmt.Fprintf(w, "attribution: slowest node %d, most starved node %d, straggler score %.2f\n",
			snap.Slowest, snap.Starved, snap.Score)
	}
	return nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

func fmtBytes(n int64) string {
	switch {
	case n <= 0:
		return "-"
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}
