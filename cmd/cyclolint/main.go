// Command cyclolint runs the repo's custom analyzer suite (see
// internal/lint) in two modes:
//
// Standalone, over package patterns, from anywhere in the module:
//
//	cyclolint ./...
//	cyclolint -disable hotpathalloc ./internal/ring
//
// As a go vet tool, speaking vet's unitchecker protocol — the .cfg
// handshake, -V=full version stamping and -flags discovery — so the
// toolchain drives it incrementally with build-cache hits:
//
//	go vet -vettool=$(pwd)/bin/cyclolint ./...
//
// Diagnostics print as file:line:col: analyzer: message; the exit code is
// nonzero when any diagnostic is reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cyclojoin/internal/lint"
	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/load"
)

// version participates in go vet's build-cache key via -V=full; bump it
// when analyzer behavior changes so stale cached verdicts are discarded.
const version = "v0.1.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cyclolint", flag.ContinueOnError)
	vFlag := fs.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag definitions as JSON and exit (go vet protocol)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cyclolint [-disable names] [packages]\n       cyclolint <unit>.cfg  (go vet -vettool mode)\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *vFlag != "":
		// go vet invokes `tool -V=full` and wants "name version ...".
		fmt.Printf("cyclolint version %s\n", version)
		return 0
	case *flagsFlag:
		// go vet discovers tool flags via `tool -flags`; we expose none.
		fmt.Println("[]")
		return 0
	}
	analyzers := selected(*disable)
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(analyzers, rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(analyzers, rest)
}

// selected filters the suite by the -disable list.
func selected(disable string) []*analysis.Analyzer {
	skip := make(map[string]bool)
	for _, name := range strings.Split(disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range lint.Analyzers() {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// runStandalone loads patterns via go list export data and analyzes each
// matched package.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	bad := false
	for _, pkg := range pkgs {
		diags := analyze(analyzers, &analysis.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		})
		if len(diags) > 0 {
			bad = true
			print(os.Stderr, pkg.Fset, diags)
		}
	}
	if bad {
		return 1
	}
	return 0
}

// unitConfig is the subset of go vet's unitchecker .cfg the tool needs.
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit described by a go vet .cfg.
func runUnit(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet expects the facts file regardless; cyclolint keeps no
	// cross-package facts, so an empty one satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := load.Importer(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := load.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	diags := analyze(analyzers, &analysis.Pass{
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	})
	if len(diags) > 0 {
		print(os.Stderr, fset, diags)
		return 2
	}
	return 0
}

// labeled pairs a diagnostic with the analyzer that produced it.
type labeled struct {
	analysis.Diagnostic
	analyzer string
}

// analyze runs each analyzer over the shared pass skeleton and collects
// position-sorted diagnostics.
func analyze(analyzers []*analysis.Analyzer, base *analysis.Pass) []labeled {
	var diags []labeled
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      base.Fset,
			Files:     base.Files,
			Pkg:       base.Pkg,
			TypesInfo: base.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, labeled{Diagnostic: d, analyzer: name})
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cyclolint: %s: %v\n", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		return diags[i].Pos < diags[j].Pos
	})
	return diags
}

func print(w *os.File, fset *token.FileSet, diags []labeled) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(".", name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.analyzer, d.Message)
	}
}
