// Command cyclolint runs the repo's custom analyzer suite (see
// internal/lint) in two modes:
//
// Standalone, over package patterns, from anywhere in the module:
//
//	cyclolint ./...
//	cyclolint -only shareguard,waitcycle ./...   (just the named analyzers)
//	cyclolint -skip hotpathalloc ./internal/ring (all but the named ones)
//	cyclolint -json ./...     (machine-readable diagnostics on stdout)
//	cyclolint -sarif ./...    (SARIF 2.1.0 on stdout, for code scanning)
//	cyclolint -fix ./...      (apply suggested fixes in place)
//
// As a go vet tool, speaking vet's unitchecker protocol — the .cfg
// handshake, -V=full version stamping and -flags discovery — so the
// toolchain drives it incrementally with build-cache hits:
//
//	go vet -vettool=$(pwd)/bin/cyclolint ./...
//
// Fact-using analyzers (UsesFacts) exchange per-package summaries across
// package boundaries. Standalone mode threads them in process: go list
// returns matched packages in dependency order, so a dependency's facts
// are always computed before its importers run (packages outside the
// matched patterns contribute no facts — run ./... for whole-module
// precision). In vet mode the summaries ride the vetx files: each unit
// writes a JSON table of {analyzer: {version, data}} blobs and reads its
// dependencies' tables via the .cfg's PackageVetx map. Blobs written by a
// different version of the same analyzer are discarded, and -V=full
// composes every analyzer's version so bumping one invalidates vet's
// cached verdicts.
//
// Diagnostics print as file:line:col: analyzer: message, sorted by
// (file, line, column, analyzer); the exit code is nonzero when any
// diagnostic is reported.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cyclojoin/internal/lint"
	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/load"
)

// version is the driver's own version; suiteVersion folds in each
// analyzer's, so either kind of bump discards stale cached vet verdicts.
const version = "v0.4.0"

// suiteVersion stamps the driver and every analyzer version into the
// -V=full reply, which go vet hashes into its build-cache key.
func suiteVersion() string {
	parts := []string{version}
	for _, a := range lint.Analyzers() {
		if a.Version != "" {
			parts = append(parts, a.Name+"."+a.Version)
		}
	}
	return strings.Join(parts, "+")
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// outputOptions selects the standalone-mode diagnostic sink.
type outputOptions struct {
	json   bool
	sarif  bool
	fix    bool
	stats  bool
	budget time.Duration
}

func run(args []string) int {
	fs := flag.NewFlagSet("cyclolint", flag.ContinueOnError)
	vFlag := fs.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag definitions as JSON and exit (go vet protocol)")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip (legacy alias of -skip)")
	only := fs.String("only", "", "comma-separated analyzer names to run exclusively")
	skip := fs.String("skip", "", "comma-separated analyzer names to skip")
	jsonFlag := fs.Bool("json", false, "print diagnostics as JSON on stdout (standalone mode)")
	sarifFlag := fs.Bool("sarif", false, "print diagnostics as SARIF 2.1.0 on stdout (standalone mode)")
	fixFlag := fs.Bool("fix", false, "apply suggested fixes to the source files (standalone mode)")
	statsFlag := fs.Bool("stats", false, "print per-analyzer wall time on stderr (standalone mode)")
	budgetFlag := fs.Duration("budget", 0, "fail when total analysis wall time exceeds this duration (standalone mode)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cyclolint [-only names] [-skip names] [-json|-sarif] [-fix] [-stats] [-budget dur] [packages]\n       cyclolint <unit>.cfg  (go vet -vettool mode)\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *vFlag != "":
		// go vet invokes `tool -V=full` and wants "name version ...".
		fmt.Printf("cyclolint version %s\n", suiteVersion())
		return 0
	case *flagsFlag:
		// go vet discovers tool flags via `tool -flags`; we expose none.
		fmt.Println("[]")
		return 0
	}
	analyzers, err := selected(*only, joinLists(*skip, *disable))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(analyzers, rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(analyzers, rest, outputOptions{json: *jsonFlag, sarif: *sarifFlag, fix: *fixFlag, stats: *statsFlag, budget: *budgetFlag})
}

// joinLists concatenates comma-separated name lists, tolerating empties.
func joinLists(lists ...string) string {
	var parts []string
	for _, l := range lists {
		if l != "" {
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, ",")
}

// splitNames parses a comma-separated analyzer-name list, rejecting
// names not in the suite — a typo silently running the full suite (or
// none of it) is worse than an error.
func splitNames(list string) (map[string]bool, error) {
	known := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		known[a.Name] = true
	}
	out := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q (see cyclolint -help for the suite)", name)
		}
		out[name] = true
	}
	return out, nil
}

// selected filters the suite: -only keeps exactly the named analyzers,
// -skip (and its legacy alias -disable) removes the named ones. The
// suite order is preserved either way.
func selected(only, skip string) ([]*analysis.Analyzer, error) {
	keep, err := splitNames(only)
	if err != nil {
		return nil, err
	}
	drop, err := splitNames(skip)
	if err != nil {
		return nil, err
	}
	for name := range keep {
		if drop[name] {
			return nil, fmt.Errorf("analyzer %q is in both -only and -skip", name)
		}
	}
	var out []*analysis.Analyzer
	for _, a := range lint.Analyzers() {
		if len(keep) > 0 && !keep[a.Name] {
			continue
		}
		if drop[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// located is a diagnostic resolved to a concrete file position, ready for
// cross-package accumulation and output.
type located struct {
	pos      token.Position
	analyzer string
	message  string
}

// runStandalone loads patterns via go list export data and analyzes each
// matched package, threading facts between packages in process.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string, opts outputOptions) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	// facts[analyzer][package path] — filled in dependency order, since
	// that is the order go list yields the matched packages in.
	facts := make(map[string]map[string][]byte)
	read := func(a *analysis.Analyzer, path string) []byte {
		return facts[a.Name][path]
	}
	tm := make(timings)
	var all []located
	for _, pkg := range pkgs {
		pkgPath := pkg.Types.Path()
		export := func(a *analysis.Analyzer, data []byte) {
			m := facts[a.Name]
			if m == nil {
				m = make(map[string][]byte)
				facts[a.Name] = m
			}
			m[pkgPath] = data
		}
		diags := analyze(analyzers, &analysis.Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}, read, export, tm)
		if opts.fix {
			if err := applyFixes(pkg.Fset, diags); err != nil {
				fmt.Fprintf(os.Stderr, "cyclolint: -fix: %v\n", err)
				return 2
			}
		}
		for _, d := range diags {
			all = append(all, located{pos: pkg.Fset.Position(d.Pos), analyzer: d.analyzer, message: d.Message})
		}
	}
	sortLocated(all)
	switch {
	case opts.json:
		emitJSON(os.Stdout, all)
	case opts.sarif:
		emitSARIF(os.Stdout, all)
	default:
		emitText(os.Stderr, all)
	}
	total := tm.total()
	if opts.stats {
		emitStats(os.Stderr, analyzers, tm)
	}
	if opts.budget > 0 && total > opts.budget {
		fmt.Fprintf(os.Stderr, "cyclolint: analysis wall time %s exceeds budget %s\n", total.Round(time.Millisecond), opts.budget)
		return 1
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// timings accumulates per-analyzer wall time across packages.
type timings map[string]time.Duration

func (tm timings) total() time.Duration {
	var sum time.Duration
	for _, d := range tm {
		sum += d
	}
	return sum
}

// emitStats prints one line per analyzer in suite order, slowest data
// intact for the CI budget check to grep.
func emitStats(w io.Writer, analyzers []*analysis.Analyzer, tm timings) {
	for _, a := range analyzers {
		fmt.Fprintf(w, "cyclolint: stats: %-14s %10s\n", a.Name, tm[a.Name].Round(10*time.Microsecond))
	}
	fmt.Fprintf(w, "cyclolint: stats: %-14s %10s\n", "total", tm.total().Round(10*time.Microsecond))
}

// applyFixes rewrites the source files touched by the diagnostics'
// suggested fixes, refusing the whole batch on any conflict.
func applyFixes(fset *token.FileSet, diags []labeled) error {
	var withFix []analysis.Diagnostic
	src := make(map[string][]byte)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		withFix = append(withFix, d.Diagnostic)
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				name := fset.Position(e.Pos).Filename
				if _, ok := src[name]; ok {
					continue
				}
				data, err := os.ReadFile(name)
				if err != nil {
					return err
				}
				src[name] = data
			}
		}
	}
	if len(withFix) == 0 {
		return nil
	}
	out, err := analysis.ApplyFixes(fset, withFix, src)
	if err != nil {
		return err
	}
	for name, data := range out {
		if bytes.Equal(data, src[name]) {
			continue
		}
		if err := os.WriteFile(name, data, 0o666); err != nil {
			return err
		}
	}
	return nil
}

// unitConfig is the subset of go vet's unitchecker .cfg the tool needs.
type unitConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFile is the cyclolint facts file exchanged between vet units: one
// versioned blob per fact-exporting analyzer.
type vetxFile struct {
	Analyzers map[string]vetxEntry `json:"analyzers"`
}

type vetxEntry struct {
	Version string `json:"version"`
	Data    []byte `json:"data,omitempty"`
}

// runUnit analyzes one compilation unit described by a go vet .cfg.
func runUnit(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cyclolint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOnly {
		// Facts are still needed downstream: run just the fact-exporting
		// analyzers, with their reports discarded.
		var factAnalyzers []*analysis.Analyzer
		for _, a := range analyzers {
			if a.UsesFacts {
				factAnalyzers = append(factAnalyzers, a)
			}
		}
		analyzers = factAnalyzers
	}
	fset := token.NewFileSet()
	imp := load.Importer(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := load.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
		return 2
	}
	// Dependencies' facts arrive via their vetx files, loaded lazily and
	// keyed by import path through the .cfg's PackageVetx map.
	depVetx := make(map[string]*vetxFile)
	read := func(a *analysis.Analyzer, path string) []byte {
		vf, ok := depVetx[path]
		if !ok {
			vf = loadVetx(cfg.PackageVetx[path])
			depVetx[path] = vf
		}
		if vf == nil {
			return nil
		}
		e, ok := vf.Analyzers[a.Name]
		if !ok || e.Version != a.Version {
			return nil
		}
		return e.Data
	}
	out := vetxFile{Analyzers: make(map[string]vetxEntry)}
	export := func(a *analysis.Analyzer, data []byte) {
		out.Analyzers[a.Name] = vetxEntry{Version: a.Version, Data: data}
	}
	diags := analyze(analyzers, &analysis.Pass{
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}, read, export, nil)
	if cfg.VetxOutput != "" {
		blob, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cyclolint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if len(diags) > 0 {
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", relName(pos.Filename), pos.Line, pos.Column, d.analyzer, d.Message)
		}
		return 2
	}
	return 0
}

// loadVetx parses one dependency's facts file; any failure (missing path,
// old format) degrades to "no facts".
func loadVetx(path string) *vetxFile {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var vf vetxFile
	if err := json.Unmarshal(data, &vf); err != nil {
		return nil
	}
	return &vf
}

// labeled pairs a diagnostic with the analyzer that produced it.
type labeled struct {
	analysis.Diagnostic
	analyzer string
}

// analyze runs each analyzer over the shared pass skeleton and collects
// diagnostics sorted by (file, line, column, analyzer). When tm is
// non-nil, each analyzer's wall time is accumulated into it.
func analyze(analyzers []*analysis.Analyzer, base *analysis.Pass, read func(*analysis.Analyzer, string) []byte, export func(*analysis.Analyzer, []byte), tm timings) []labeled {
	var diags []labeled
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      base.Fset,
			Files:     base.Files,
			Pkg:       base.Pkg,
			TypesInfo: base.TypesInfo,
		}
		if read != nil {
			pass.ReadFacts = func(path string) []byte { return read(a, path) }
		}
		if export != nil {
			pass.ExportFacts = func(data []byte) { export(a, data) }
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, labeled{Diagnostic: d, analyzer: name})
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cyclolint: %s: %v\n", a.Name, err)
		}
		if tm != nil {
			tm[name] += time.Since(start)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := base.Fset.Position(diags[i].Pos), base.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].analyzer < diags[j].analyzer
	})
	return diags
}

func sortLocated(ds []located) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].pos.Filename != ds[j].pos.Filename {
			return ds[i].pos.Filename < ds[j].pos.Filename
		}
		if ds[i].pos.Line != ds[j].pos.Line {
			return ds[i].pos.Line < ds[j].pos.Line
		}
		if ds[i].pos.Column != ds[j].pos.Column {
			return ds[i].pos.Column < ds[j].pos.Column
		}
		return ds[i].analyzer < ds[j].analyzer
	})
}

// relName shortens a path to be relative to the working directory when
// that does not escape upward.
func relName(name string) string {
	if rel, err := filepath.Rel(".", name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func emitText(w io.Writer, ds []located) {
	for _, d := range ds {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", relName(d.pos.Filename), d.pos.Line, d.pos.Column, d.analyzer, d.message)
	}
}

// jsonDiag is one -json output record.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(w io.Writer, ds []located) {
	out := make([]jsonDiag, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiag{File: relName(d.pos.Filename), Line: d.pos.Line, Column: d.pos.Column, Analyzer: d.analyzer, Message: d.message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// SARIF 2.1.0 structures, trimmed to what code-scanning uploads need.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func emitSARIF(w io.Writer, ds []located) {
	var rules []sarifRule
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(ds))
	for _, d := range ds {
		results = append(results, sarifResult{
			RuleID:  d.analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relName(d.pos.Filename))},
				Region:           sarifRegion{StartLine: d.pos.Line, StartColumn: d.pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cyclolint", Version: suiteVersion(), Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(log)
}
