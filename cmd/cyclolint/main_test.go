package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixedDiags is a stable diagnostic set exercising sorting and every
// emitter; positions and messages mirror real suite output shapes.
func fixedDiags() []located {
	ds := []located{
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 454, Column: 9}, analyzer: "spscrole", message: "SPSC (cyclojoin/internal/ring.node).procQ push has 2 producer origins: go node.go:454 (at node.go:480), go writemode.go:154 (at writemode.go:200)"},
		{pos: token.Position{Filename: "internal/health/health.go", Line: 353, Column: 2}, analyzer: "frozenpub", message: "snap is written after being atomically published at health.go:350; readers Load without locks — build a fresh object and re-Store it instead"},
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 454, Column: 9}, analyzer: "creditflow", message: "send credit buf (popped at node.go:450) is not returned on this path; the pool loses a send slot until restart"},
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 120, Column: 3}, analyzer: "spanpair", message: "trace span pd (Begin at node.go:110) is still open on this return path; call End before returning or defer it"},
		{pos: token.Position{Filename: "internal/hotset/hotset.go", Line: 88, Column: 2}, analyzer: "shareguard", message: "(cyclojoin/internal/hotset.tracker).epoch has a plain write with no common guard across 2 goroutine origins: entry (write at hotset.go:88), go hotset.go:61 (read at hotset.go:140); no shared lock class, consistent atomic use, or happens-before protects it — serialize the accesses or annotate //cyclolint:sharesafe with the ownership argument"},
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 612, Column: 4}, analyzer: "waitcycle", message: "static wait cycle: go node.go:396 blocked at send of (cyclojoin/internal/ring.node).acks (node.go:612) and go node.go:401 blocked at recv of (cyclojoin/internal/ring.node).data (node.go:733) can each be released only past the other's block — reorder the hand-off, buffer the channel, or annotate //cyclolint:waitsafe with the progress argument"},
	}
	sortLocated(ds)
	return ds
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s", name, path, got, want)
	}
}

func TestEmitTextGolden(t *testing.T) {
	var buf bytes.Buffer
	emitText(&buf, fixedDiags())
	checkGolden(t, "diags.txt", buf.Bytes())
}

func TestEmitJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	emitJSON(&buf, fixedDiags())
	checkGolden(t, "diags.json", buf.Bytes())
}

// TestEmitSARIFGolden pins the SARIF envelope byte-exactly; the golden
// embeds suiteVersion(), so bumping any analyzer version requires
// regenerating it with -update — which is the cache-invalidation
// property the vetx protocol depends on.
func TestEmitSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	emitSARIF(&buf, fixedDiags())
	checkGolden(t, "diags.sarif", buf.Bytes())
}

func TestEmitStatsGolden(t *testing.T) {
	analyzers, err := selected("", "")
	if err != nil {
		t.Fatal(err)
	}
	tm := make(timings)
	for i, a := range analyzers {
		tm[a.Name] = time.Duration(i+1) * 10 * time.Millisecond
	}
	var buf bytes.Buffer
	emitStats(&buf, analyzers, tm)
	checkGolden(t, "stats.txt", buf.Bytes())
}

// TestSuiteContainsProtocolAnalyzers guards the registration wiring: the
// concurrency-protocol analyzers must stay in the default suite.
func TestSuiteContainsProtocolAnalyzers(t *testing.T) {
	full, err := selected("", "")
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, a := range full {
		names[a.Name] = true
	}
	for _, want := range []string{"spscrole", "frozenpub", "creditflow", "bufown", "spanpair", "shareguard", "waitcycle"} {
		if !names[want] {
			t.Errorf("analyzer %s missing from default suite", want)
		}
	}
}

// TestSelected covers the -only/-skip parsing: exclusive selection,
// removal, rejection of unknown names and of contradictory lists.
func TestSelected(t *testing.T) {
	full, err := selected("", "")
	if err != nil {
		t.Fatal(err)
	}
	onlyTwo, err := selected("shareguard, waitcycle", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyTwo) != 2 || onlyTwo[0].Name != "shareguard" || onlyTwo[1].Name != "waitcycle" {
		t.Errorf("-only shareguard,waitcycle selected %d analyzers", len(onlyTwo))
	}
	skipped, err := selected("", "spscrole,frozenpub")
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != len(full)-2 {
		t.Errorf("-skip did not remove exactly the named analyzers")
	}
	if _, err := selected("sharegaurd", ""); err == nil {
		t.Errorf("-only with a misspelled analyzer name did not error")
	}
	if _, err := selected("", "nosuch"); err == nil {
		t.Errorf("-skip with an unknown analyzer name did not error")
	}
	if _, err := selected("waitcycle", "waitcycle"); err == nil {
		t.Errorf("an analyzer in both -only and -skip did not error")
	}
	if joinLists("a,b", "", "c") != "a,b,c" {
		t.Errorf("joinLists mangles the legacy -disable merge")
	}
}

func TestBudgetExceeded(t *testing.T) {
	tm := timings{"spscrole": 50 * time.Millisecond, "frozenpub": 70 * time.Millisecond}
	if got := tm.total(); got != 120*time.Millisecond {
		t.Fatalf("total = %v, want 120ms", got)
	}
}
