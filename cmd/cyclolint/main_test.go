package main

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// fixedDiags is a stable diagnostic set exercising sorting and every
// emitter; positions and messages mirror real suite output shapes.
func fixedDiags() []located {
	ds := []located{
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 454, Column: 9}, analyzer: "spscrole", message: "SPSC (cyclojoin/internal/ring.node).procQ push has 2 producer origins: go node.go:454 (at node.go:480), go writemode.go:154 (at writemode.go:200)"},
		{pos: token.Position{Filename: "internal/health/health.go", Line: 353, Column: 2}, analyzer: "frozenpub", message: "snap is written after being atomically published at health.go:350; readers Load without locks — build a fresh object and re-Store it instead"},
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 454, Column: 9}, analyzer: "creditflow", message: "send credit buf (popped at node.go:450) is not returned on this path; the pool loses a send slot until restart"},
		{pos: token.Position{Filename: "internal/ring/node.go", Line: 120, Column: 3}, analyzer: "spanpair", message: "trace span pd (Begin at node.go:110) is still open on this return path; call End before returning or defer it"},
	}
	sortLocated(ds)
	return ds
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s", name, path, got, want)
	}
}

func TestEmitTextGolden(t *testing.T) {
	var buf bytes.Buffer
	emitText(&buf, fixedDiags())
	checkGolden(t, "diags.txt", buf.Bytes())
}

func TestEmitJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	emitJSON(&buf, fixedDiags())
	checkGolden(t, "diags.json", buf.Bytes())
}

// TestEmitSARIFGolden pins the SARIF envelope byte-exactly; the golden
// embeds suiteVersion(), so bumping any analyzer version requires
// regenerating it with -update — which is the cache-invalidation
// property the vetx protocol depends on.
func TestEmitSARIFGolden(t *testing.T) {
	var buf bytes.Buffer
	emitSARIF(&buf, fixedDiags())
	checkGolden(t, "diags.sarif", buf.Bytes())
}

func TestEmitStatsGolden(t *testing.T) {
	analyzers := selected("")
	tm := make(timings)
	for i, a := range analyzers {
		tm[a.Name] = time.Duration(i+1) * 10 * time.Millisecond
	}
	var buf bytes.Buffer
	emitStats(&buf, analyzers, tm)
	checkGolden(t, "stats.txt", buf.Bytes())
}

// TestSuiteContainsProtocolAnalyzers guards the registration wiring: the
// concurrency-protocol analyzers must stay in the default suite.
func TestSuiteContainsProtocolAnalyzers(t *testing.T) {
	names := make(map[string]bool)
	for _, a := range selected("") {
		names[a.Name] = true
	}
	for _, want := range []string{"spscrole", "frozenpub", "creditflow", "bufown", "spanpair"} {
		if !names[want] {
			t.Errorf("analyzer %s missing from default suite", want)
		}
	}
	if len(selected("spscrole,frozenpub")) != len(selected(""))-2 {
		t.Errorf("-disable did not remove exactly the named analyzers")
	}
}

func TestBudgetExceeded(t *testing.T) {
	tm := timings{"spscrole": 50 * time.Millisecond, "frozenpub": 70 * time.Millisecond}
	if got := tm.total(); got != 120*time.Millisecond {
		t.Fatalf("total = %v, want 120ms", got)
	}
}
