// Command benchring turns `go test -bench` output into BENCH_ring.json,
// the tracked record of the ring hot-path cost. It reads benchmark output
// on stdin, parses every Benchmark* line into name → {unit: value}, and
// writes the JSON file. An existing file's "baseline" section is
// preserved so current runs are always comparable against the recorded
// pre-optimization numbers; -rebaseline promotes the parsed run to be the
// new baseline instead.
//
// The run label defaults to `git describe --always --dirty` and the date
// to today (UTC); both can be injected with -label/-date so the file
// never needs hand-editing.
//
// Usage:
//
//	go test ./internal/ring/ -bench . | benchring -o BENCH_ring.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// run is one labeled benchmark sweep.
type run struct {
	Label string `json:"label"`
	Date  string `json:"date,omitempty"`
	// Results maps benchmark name (GOMAXPROCS suffix stripped) to its
	// reported metrics, e.g. {"ns/op": 103940, "allocs/op": 9}.
	Results map[string]map[string]float64 `json:"results"`
}

// file is the BENCH_ring.json layout.
type file struct {
	Description string `json:"description"`
	Command     string `json:"command"`
	Baseline    *run   `json:"baseline,omitempty"`
	Current     *run   `json:"current,omitempty"`
}

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(lines *bufio.Scanner) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		// fields[1] is the iteration count; value/unit pairs follow.
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchring: %s: bad value %q", name, fields[i])
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			out[name] = metrics
		}
	}
	return out, lines.Err()
}

// summarize prints the current-vs-baseline comparison for shared metrics.
func summarize(w *os.File, baseline, current *run) {
	if baseline == nil || current == nil {
		return
	}
	names := make([]string, 0, len(current.Results))
	for name := range current.Results {
		if _, ok := baseline.Results[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		base, cur := baseline.Results[name], current.Results[name]
		units := make([]string, 0, len(cur))
		for unit := range cur {
			if _, ok := base[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			b, c := base[unit], cur[unit]
			ratio := "  (n/a)"
			if b > 0 {
				ratio = fmt.Sprintf("  (%.2fx)", c/b)
			}
			fmt.Fprintf(w, "%-28s %-10s %14.1f -> %12.1f%s\n", name, unit, b, c, ratio)
		}
	}
}

// describeHead labels the run from the repository state: git describe
// (which flags dirty trees and tags), falling back to the short commit
// hash, falling back to "dev" outside a repository.
func describeHead() string {
	for _, args := range [][]string{
		{"describe", "--always", "--dirty"},
		{"rev-parse", "--short", "HEAD"},
	} {
		out, err := exec.Command("git", args...).Output()
		if s := strings.TrimSpace(string(out)); err == nil && s != "" {
			return s
		}
	}
	return "dev"
}

// runGuard enforces the zero-alloc contract: every named benchmark must
// appear on stdin and report allocs/op == 0. A missing benchmark fails
// too — a drifted -bench regex must not let the guard pass vacuously.
func runGuard(names string) int {
	results, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	bad := 0
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := results[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchring: guard: %s missing from benchmark output\n", name)
			bad++
			continue
		}
		allocs, ok := m["allocs/op"]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchring: guard: %s reports no allocs/op (missing ReportAllocs?)\n", name)
			bad++
			continue
		}
		if allocs != 0 {
			fmt.Fprintf(os.Stderr, "benchring: guard: %s allocates: %v allocs/op, want 0\n", name, allocs)
			bad++
			continue
		}
		fmt.Printf("benchring: guard: %-28s 0 allocs/op\n", name)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func main() {
	outPath := flag.String("o", "BENCH_ring.json", "output file")
	label := flag.String("label", "", "label for this run (default: git describe --always --dirty)")
	date := flag.String("date", "", "date for this run, YYYY-MM-DD (default: today, UTC)")
	rebaseline := flag.Bool("rebaseline", false, "record this run as the baseline instead of current")
	guard := flag.String("guard", "", "comma-separated benchmarks that must report 0 allocs/op; verify stdin and exit, writing nothing")
	flag.Parse()

	if *guard != "" {
		os.Exit(runGuard(*guard))
	}

	if *label == "" {
		*label = describeHead()
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	} else if _, err := time.Parse("2006-01-02", *date); err != nil {
		fmt.Fprintf(os.Stderr, "benchring: -date %q is not YYYY-MM-DD\n", *date)
		os.Exit(2)
	}

	results, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchring: no benchmark lines on stdin")
		os.Exit(1)
	}

	var f file
	if prev, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchring: %s exists but is not valid JSON: %v\n", *outPath, err)
			os.Exit(1)
		}
	}
	f.Description = "Ring hot-path benchmarks: per-hop forwarding cost and codec cost. " +
		"baseline is the recorded pre-zero-copy run; current is the latest `make bench-ring`."
	f.Command = "make bench-ring"
	r := &run{Label: *label, Date: *date, Results: results}
	if *rebaseline || f.Baseline == nil {
		f.Baseline = r
	}
	if !*rebaseline {
		f.Current = r
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *outPath, len(results))
	summarize(os.Stdout, f.Baseline, f.Current)
}
