package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"cyclojoin/internal/core"
	"cyclojoin/internal/health"
	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/rdma/chaoslink"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/stats"
	"cyclojoin/internal/workload"
)

// chaosNodes and chaosTuples size the live ring the scenarios run on:
// small enough that the whole suite is a CI tier, large enough that every
// fault lands mid-revolution.
const (
	chaosNodes  = 3
	chaosTuples = 600
)

// chaosCase is one seeded fault scenario run against a live cluster.
type chaosCase struct {
	name      string
	transport string // "mem" or "tcp"
	writes    bool
	link      chaoslink.Link
	scenario  chaoslink.Scenario
	// faultDials forwards to Plan.FaultDials (flapping links).
	faultDials int
	retries    int
	// wantPartial flips the acceptance: the join must degrade into a
	// typed partial result instead of recovering.
	wantPartial bool
}

// splitmix is the same tiny deterministic generator chaoslink schedules
// use, so `-seed N` reproduces the exact same case list forever.
type splitmix uint64

func (p *splitmix) next() uint64 {
	*p += 0x9e3779b97f4a7c15
	z := uint64(*p)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosCases derives the scenario list from one seed. The faulty link,
// failing frame ordinal and sub-seeds all move with the seed, so a CI job
// running fresh seeds keeps exploring new schedules while any failure
// stays reproducible from the printed seed alone.
func chaosCases(seed uint64) []chaosCase {
	rng := splitmix(seed)
	link := func() chaoslink.Link {
		from := int(rng.next() % chaosNodes)
		return chaoslink.Link{From: from, To: (from + 1) % chaosNodes}
	}
	// A revolution pushes Nodes-1 frames across each link (one rotating
	// fragment per node), so the failing ordinal must stay inside that
	// range for the fault to fire at all.
	frame := func() int { return 1 + int(rng.next()%uint64(chaosNodes-1)) }
	sub := func() uint64 { return rng.next() }
	cases := []chaosCase{
		{
			name: "drop+recover", transport: "mem",
			link:     link(),
			scenario: chaoslink.Scenario{Seed: sub(), FailFrame: frame()},
			retries:  4,
		},
		{
			name: "drop+recover", transport: "tcp",
			link:     link(),
			scenario: chaoslink.Scenario{Seed: sub(), FailFrame: frame()},
			retries:  4,
		},
		{
			name: "drop+recover/writes", transport: "mem", writes: true,
			link:     link(),
			scenario: chaoslink.Scenario{Seed: sub(), FailFrame: frame()},
			retries:  4,
		},
		{
			name: "flapping", transport: "mem",
			link:       link(),
			scenario:   chaoslink.Scenario{Seed: sub(), FailFrame: frame()},
			faultDials: 2,
			retries:    4,
		},
		{
			name: "corrupt-imm", transport: "mem", writes: true,
			link:     link(),
			scenario: chaoslink.Scenario{Seed: sub(), FailFrame: frame(), CorruptImm: true},
			retries:  4,
		},
		{
			name: "jitter+reorder", transport: "mem", writes: true,
			link: link(),
			scenario: chaoslink.Scenario{
				Seed:    sub(),
				Delay:   100 * time.Microsecond,
				Jitter:  500 * time.Microsecond,
				Reorder: true,
			},
		},
		{
			name: "slow-node", transport: "mem",
			link: link(),
			scenario: chaoslink.Scenario{
				Seed:  sub(),
				Delay: 100 * time.Microsecond,
				Pace:  500 * time.Microsecond,
			},
		},
		{
			name: "partition", transport: "mem",
			link:        link(),
			scenario:    chaoslink.Scenario{Seed: sub(), FailFrame: frame(), RefuseRedials: true},
			retries:     2,
			wantPartial: true,
		},
	}
	return cases
}

// watchHealth runs a live health sampler over the cluster's ring for the
// duration of fn and returns the worst verdict any window produced (worst
// by kind: degraded > credit-stall > straggler > healthy). The sampling
// interval is tight because chaos joins are tiny.
func watchHealth(c *core.Cluster, fn func()) health.Verdict {
	sampler := health.NewSampler(c.Ring(), health.Options{Interval: 5 * time.Millisecond})
	snaps, cancel := sampler.Subscribe()
	got := make(chan health.Verdict, 1)
	go func() {
		worst := health.Verdict{Kind: health.Healthy, Node: -1}
		for snap := range snaps {
			if snap.Verdict.Kind > worst.Kind {
				worst = snap.Verdict
			}
		}
		got <- worst
	}()
	sampler.Start()
	fn()
	sampler.Stop()
	// One last sample so the tail of the run lands in a window even when
	// the join finished between ticks.
	sampler.SampleOnce()
	cancel()
	return <-got
}

// fmtVerdict renders a verdict for the chaos table's -health column.
func fmtVerdict(v health.Verdict) string {
	switch v.Kind {
	case health.Straggler:
		return fmt.Sprintf("%s(node %d)", v.Kind, v.Node)
	case health.CreditStall, health.Degraded:
		return fmt.Sprintf("%s(%s)", v.Kind, v.Link)
	default:
		return v.Kind.String()
	}
}

// runChaosCase executes one scenario and returns a short outcome label,
// the number of dials the faulty link saw, the worst live health verdict
// (empty unless withHealth), and the verification error (nil when the
// case met its acceptance condition).
func runChaosCase(tc chaosCase, withHealth bool) (string, int, string, error) {
	links := ring.MemLinks()
	if tc.transport == "tcp" {
		links = ring.TCPLinks()
	}
	plan := &chaoslink.Plan{
		PerLink:    map[chaoslink.Link]*chaoslink.Scenario{tc.link: &tc.scenario},
		FaultDials: tc.faultDials,
	}
	c, err := core.NewCluster(core.Config{
		Nodes:     chaosNodes,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Links:     ring.LinkFactory(plan.Wrap(links)),
		Ring: ring.Config{
			OneSidedWrites: tc.writes,
			Recovery:       ring.Recovery{MaxRetries: tc.retries, Backoff: time.Millisecond},
		},
	})
	if err != nil {
		return "setup failed", 0, "", err
	}
	defer func() {
		_ = c.Close()
	}()
	r := workload.Sequential("R", chaosTuples, 4)
	s := workload.Sequential("S", chaosTuples, 4)
	var res *core.Result
	var joinErr error
	run := func() { res, joinErr = c.JoinRelations(r, s, false) }
	verdict := ""
	if withHealth {
		verdict = fmtVerdict(watchHealth(c, run))
	} else {
		run()
	}
	dials := plan.Dials(tc.link)

	if tc.wantPartial {
		var pe *ring.PartialError
		switch {
		case joinErr == nil:
			return "completed", dials, verdict, errors.New("partitioned join completed; want graceful degradation")
		case !errors.As(joinErr, &pe):
			return "wrong error", dials, verdict, fmt.Errorf("error is not a *ring.PartialError: %w", joinErr)
		case res == nil || res.Partial == nil:
			return "no partial", dials, verdict, errors.New("degraded join returned no partial result")
		default:
			return fmt.Sprintf("partial %d/%d", pe.Retired, pe.Total), dials, verdict, nil
		}
	}
	if joinErr != nil {
		return "failed", dials, verdict, joinErr
	}
	if got := res.Matches(); got != chaosTuples {
		return "wrong result", dials, verdict, fmt.Errorf("matches = %d, want %d", got, chaosTuples)
	}
	return "recovered", dials, verdict, nil
}

// runChaos drives the seeded fault-injection suite against live rings and
// renders one row per scenario. Any failure prints the exact schedule —
// seed, link, scenario — so a CI job with randomized seeds can upload a
// reproducible artifact, and returns nonzero.
func runChaos(w io.Writer, seed uint64, withHealth bool) int {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	cols := []string{"scenario", "transport", "mode", "link", "dials", "outcome"}
	if withHealth {
		cols = append(cols, "verdict")
	}
	tbl := stats.NewTable(fmt.Sprintf("Chaos scenarios (seed %d)", seed), cols...)
	failures := 0
	for _, tc := range chaosCases(seed) {
		mode := "send/recv"
		if tc.writes {
			mode = "writes"
		}
		outcome, dials, verdict, err := runChaosCase(tc, withHealth)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr,
				"cyclobench: chaos FAIL %s/%s/%s: %v\n  reproduce: cyclobench -chaos -seed %d\n  schedule: link %s %+v faultDials=%d retries=%d\n",
				tc.name, tc.transport, mode, err, seed, tc.link, tc.scenario, tc.faultDials, tc.retries)
		}
		row := []string{tc.name, tc.transport, mode, tc.link.String(),
			fmt.Sprintf("%d", dials), outcome}
		if withHealth {
			row = append(row, verdict)
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		fmt.Fprintf(os.Stderr, "cyclobench: render chaos table: %v\n", err)
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "cyclobench: %d chaos scenario(s) failed at seed %d\n", failures, seed)
		return 1
	}
	return 0
}
