// Command cyclobench regenerates the paper's evaluation tables and figures
// (§V) from the calibrated cost model and the discrete-event ring
// simulator.
//
// Usage:
//
//	cyclobench                  # run every experiment
//	cyclobench -run fig7        # one experiment (fig3 fig5 fig7..fig12 table1)
//	cyclobench -list            # list experiment ids
//	cyclobench -chaos -seed 7   # seeded fault-injection suite on live rings
//	cyclobench -metrics         # append the runtime-metrics table per experiment
//	cyclobench -trace           # append the flight-recorder phase-share table
//
// The printed "paper:" notes state what the original evaluation reported,
// so shapes can be compared at a glance; EXPERIMENTS.md records the full
// paper-vs-reproduction comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/experiments"
	"cyclojoin/internal/metrics"
	"cyclojoin/internal/stats"
	"cyclojoin/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	showMetrics := flag.Bool("metrics", false, "print the process runtime-metrics table after each experiment")
	showTrace := flag.Bool("trace", false, "enable the flight recorder and print its per-phase share table after each experiment")
	chaos := flag.Bool("chaos", false, "run the seeded fault-injection scenarios against live rings instead of experiments")
	seed := flag.Uint64("seed", 1, "schedule seed for -chaos (0 derives one from the clock)")
	withHealth := flag.Bool("health", false, "with -chaos: run the live health sampler over each scenario and add its worst verdict to the table")
	flag.Parse()

	if *showTrace {
		trace.Flight().Enable(trace.DefaultShardCap)
	}

	if *chaos {
		return runChaos(os.Stdout, *seed, *withHealth)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cal := costmodel.Default()
	selected := experiments.All()
	if *runID != "" {
		e, err := experiments.ByID(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		selected = []experiments.Experiment{e}
	}
	for i, e := range selected {
		tbl, err := e.Run(cal)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cyclobench: %s: %v\n", e.ID, err)
			return 1
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cyclobench: render %s: %v\n", e.ID, err)
			return 1
		}
		if *showMetrics {
			fmt.Println()
			if err := renderMetrics(os.Stdout, e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "cyclobench: render metrics: %v\n", err)
				return 1
			}
		}
		if *showTrace {
			fmt.Println()
			if err := renderTrace(os.Stdout, e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "cyclobench: render trace: %v\n", err)
				return 1
			}
		}
		if i < len(selected)-1 {
			fmt.Println()
		}
	}
	return 0
}

// renderMetrics prints the process-wide runtime metrics (cumulative
// across the experiments run so far) as a fixed-width table. Simulated
// experiments never touch the instrumented transport, so an all-zero
// registry is reported as such rather than as an empty table.
func renderMetrics(w io.Writer, after string) error {
	tbl := stats.NewTable("Runtime metrics (after "+after+")", "metric", "labels", "kind", "value")
	for _, s := range metrics.Default().Samples() {
		if s.Value == 0 {
			continue
		}
		tbl.AddRow(s.Name, s.Labels, s.Kind.String(), strconv.FormatInt(s.Value, 10))
	}
	if tbl.Rows() == 0 {
		tbl.SetNote("(no nonzero runtime metrics; simulated experiments do not exercise the live transport)")
	}
	return tbl.Render(w)
}

// renderTrace prints the flight recorder's per-phase time share
// (cumulative across the experiments run so far). Experiments that run on
// the cost model or the discrete-event simulator record no spans; only
// live-ring experiments feed the recorder — the note says so rather than
// printing an empty table. For the full per-node breakdown, run
// roundabout -flightrec and analyze with cyclotrace.
func renderTrace(w io.Writer, after string) error {
	tbl := stats.NewTable("Flight recorder phase shares (after "+after+")",
		"phase", "spans", "total", "share")
	a := trace.Analyze(trace.Flight().Snapshot())
	var total time.Duration
	shares := make(map[trace.Phase]time.Duration)
	counts := make(map[trace.Phase]int)
	for _, sp := range trace.Flight().Snapshot() {
		shares[sp.Phase] += time.Duration(sp.Dur)
		counts[sp.Phase]++
		total += time.Duration(sp.Dur)
	}
	// Instant events (autotune recentres, drop faults) carry no duration;
	// with only those recorded there is no time to share out.
	share := func(d time.Duration) string {
		if total == 0 {
			return "-"
		}
		return stats.Pct(float64(d) / float64(total))
	}
	for _, p := range trace.PipelinePhases {
		if counts[p] == 0 {
			continue
		}
		tbl.AddRow(p.String(), strconv.Itoa(counts[p]), shares[p].String(), share(shares[p]))
	}
	for _, st := range a.Aux {
		tbl.AddRow(st.Phase.String(), strconv.Itoa(st.Count), st.Total.String(), share(st.Total))
	}
	if tbl.Rows() == 0 {
		tbl.SetNote("(no spans recorded; simulated experiments do not exercise the live ring —\n" +
			" see roundabout -flightrec and cyclotrace for a live recording)")
	}
	return tbl.Render(w)
}
