// Command roundabout runs a real cyclo-join on a local Data Roundabout
// ring: it generates two relations, distributes them across the ring
// hosts, and executes the distributed join for real (actual hash tables,
// actual fragments circulating through the transport).
//
// Usage:
//
//	roundabout -nodes 4 -tuples 2000000 -algo hash
//	roundabout -nodes 3 -algo sortmerge -band 5 -transport tcp
//	roundabout -nodes 6 -zipf 0.9 -algo hash
//	roundabout -transport tcp -metrics 127.0.0.1:9090
//
// With -transport tcp the ring links are real TCP sockets on the loopback
// interface; the default is the in-process zero-copy transport. With
// -metrics ADDR the process serves its runtime counters (frames, bytes,
// queue depths, retires — see internal/metrics) in Prometheus text format
// at http://ADDR/metrics for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"cyclojoin"
	"cyclojoin/internal/metrics"
	"cyclojoin/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes     = flag.Int("nodes", 4, "ring size")
		tuples    = flag.Int("tuples", 1_000_000, "tuples per relation")
		domain    = flag.Int("domain", 0, "key domain (0 = tuple count)")
		zipf      = flag.Float64("zipf", 0, "zipf skew factor (0 = uniform)")
		algo      = flag.String("algo", "hash", "join algorithm: hash | sortmerge | nested")
		band      = flag.Uint64("band", 0, "band width (>0 selects a band join; sortmerge/nested only)")
		threads   = flag.Int("threads", 4, "join threads per host")
		transport = flag.String("transport", "memory", "transport: memory | tcp")
		slots     = flag.Int("slots", 4, "ring buffer elements per host")
		seed      = flag.Int64("seed", 1, "workload seed")
		oneSided  = flag.Bool("write", false, "use one-sided RDMA writes instead of send/recv")
		traced    = flag.Bool("trace", false, "print a runtime event summary after the join")
		metricsAt = flag.String("metrics", "", "serve Prometheus metrics at http://ADDR/metrics while running (e.g. 127.0.0.1:9090); empty disables")
	)
	flag.Parse()

	if *metricsAt != "" {
		ln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roundabout: metrics listener:", err)
			return 1
		}
		defer func() {
			_ = ln.Close()
		}()
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Default().Handler())
		go func() {
			_ = http.Serve(ln, mux)
		}()
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}

	var alg cyclojoin.Algorithm
	switch *algo {
	case "hash":
		alg = cyclojoin.HashJoin()
	case "sortmerge":
		alg = cyclojoin.SortMergeJoin()
	case "nested":
		alg = cyclojoin.NestedLoopsJoin()
	default:
		fmt.Fprintf(os.Stderr, "roundabout: unknown algorithm %q\n", *algo)
		return 2
	}
	var pred cyclojoin.Predicate = cyclojoin.EquiJoin()
	if *band > 0 {
		pred = cyclojoin.BandJoin(*band)
	}
	var links cyclojoin.LinkFactory
	switch *transport {
	case "memory":
		links = cyclojoin.InProcessLinks()
	case "tcp":
		links = cyclojoin.TCPLoopbackLinks()
	default:
		fmt.Fprintf(os.Stderr, "roundabout: unknown transport %q\n", *transport)
		return 2
	}

	var buf *trace.Buffer
	rcfg := cyclojoin.RingConfig{BufferSlots: *slots, OneSidedWrites: *oneSided}
	if *traced {
		buf = &trace.Buffer{}
		rcfg.Tracer = buf
	}
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     *nodes,
		Algorithm: alg,
		Predicate: pred,
		Opts:      cyclojoin.JoinOptions{Parallelism: *threads},
		Ring:      rcfg,
		Links:     links,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}
	defer func() {
		_ = cluster.Close()
	}()

	fmt.Printf("generating 2 × %d tuples (zipf=%.2f) ...\n", *tuples, *zipf)
	r, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "R", Tuples: *tuples, KeyDomain: *domain, Zipf: *zipf, Seed: *seed, PayloadWidth: 4,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}
	s, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "S", Tuples: *tuples, KeyDomain: *domain, Zipf: *zipf, Seed: *seed + 1, PayloadWidth: 4,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}

	mode := "send/recv"
	if *oneSided {
		mode = "one-sided writes"
	}
	fmt.Printf("cyclo-join: %s join of R ⋈ S (%s) on %d hosts over %s links (%s)\n",
		*algo, pred, *nodes, *transport, mode)
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}
	fmt.Printf("matches: %d\n", res.Matches())
	fmt.Printf("setup phase: %v   join phase: %v\n", res.SetupTime, res.JoinTime)
	for i, ns := range res.Nodes {
		fmt.Printf("  host %d: processed %2d fragments, in %8d B, out %8d B, compute %v, wait %v\n",
			i, ns.Processed, ns.BytesIn, ns.BytesOut, ns.ProcessTime.Round(1e5), ns.WaitTime.Round(1e5))
	}
	if buf != nil {
		fmt.Printf("trace: %d events (%d received, %d processed, %d sent, %d retired)\n",
			buf.Len(), buf.Count(trace.FragmentReceived), buf.Count(trace.ProcessEnd),
			buf.Count(trace.FragmentSent), buf.Count(trace.FragmentRetired))
	}
	return 0
}
