// Command roundabout runs a real cyclo-join on a local Data Roundabout
// ring: it generates two relations, distributes them across the ring
// hosts, and executes the distributed join for real (actual hash tables,
// actual fragments circulating through the transport).
//
// Usage:
//
//	roundabout -nodes 4 -tuples 2000000 -algo hash
//	roundabout -nodes 3 -algo sortmerge -band 5 -transport tcp
//	roundabout -nodes 6 -zipf 0.9 -algo hash
//	roundabout -transport tcp -metrics 127.0.0.1:9090
//
// With -transport tcp the ring links are real TCP sockets on the loopback
// interface; the default is the in-process zero-copy transport. With
// -metrics ADDR the process serves its runtime counters (frames, bytes,
// queue depths, retires — see internal/metrics) in Prometheus text format
// at http://ADDR/metrics, plus the standard pprof profiles under
// http://ADDR/debug/pprof/, for the duration of the run. With -flightrec
// FILE the cross-layer flight recorder captures spans from every layer
// (transport work requests, ring pipeline, join phases) and writes a
// Perfetto trace-event JSON file that loads in ui.perfetto.dev and feeds
// the cyclotrace analyzer.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"cyclojoin"
	"cyclojoin/internal/health"
	"cyclojoin/internal/metrics"
	"cyclojoin/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes     = flag.Int("nodes", 4, "ring size")
		tuples    = flag.Int("tuples", 1_000_000, "tuples per relation")
		domain    = flag.Int("domain", 0, "key domain (0 = tuple count)")
		zipf      = flag.Float64("zipf", 0, "zipf skew factor (0 = uniform)")
		algo      = flag.String("algo", "hash", "join algorithm: hash | sortmerge | nested")
		band      = flag.Uint64("band", 0, "band width (>0 selects a band join; sortmerge/nested only)")
		threads   = flag.Int("threads", 4, "join threads per host")
		transport = flag.String("transport", "memory", "transport: memory | tcp")
		slots     = flag.Int("slots", 4, "ring buffer elements per host")
		seed      = flag.Int64("seed", 1, "workload seed")
		oneSided  = flag.Bool("write", false, "use one-sided RDMA writes instead of send/recv")
		traced    = flag.Bool("trace", false, "print a runtime event summary after the join")
		metricsAt = flag.String("metrics", "", "serve Prometheus metrics at http://ADDR/metrics while running (e.g. 127.0.0.1:9090); empty disables")
		flightrec = flag.String("flightrec", "", "record cross-layer spans and write a Perfetto trace-event JSON FILE (view at ui.perfetto.dev or with cyclotrace)")
		rotations = flag.Int("rotations", 1, "full revolutions to run (reusing the setup phase); >1 keeps the ring spinning for live observation with cyclotop")
		healthInt = flag.Duration("healthint", 250*time.Millisecond, "live health sampling interval (with -metrics; see /health/live)")
	)
	flag.Parse()

	// The recorder must be armed before the cluster exists: nodes, links and
	// join algorithms take their shards at construction time.
	if *flightrec != "" {
		trace.Flight().Enable(trace.DefaultShardCap)
	}

	var mux *http.ServeMux
	if *metricsAt != "" {
		ln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roundabout: metrics listener:", err)
			return 1
		}
		mux = http.NewServeMux()
		mux.Handle("/metrics", metrics.Default().Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go func() {
			_ = srv.Serve(ln)
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/, live health at /health/live)\n", ln.Addr())
	}

	var alg cyclojoin.Algorithm
	switch *algo {
	case "hash":
		alg = cyclojoin.HashJoin()
	case "sortmerge":
		alg = cyclojoin.SortMergeJoin()
	case "nested":
		alg = cyclojoin.NestedLoopsJoin()
	default:
		fmt.Fprintf(os.Stderr, "roundabout: unknown algorithm %q\n", *algo)
		return 2
	}
	var pred cyclojoin.Predicate = cyclojoin.EquiJoin()
	if *band > 0 {
		pred = cyclojoin.BandJoin(*band)
	}
	var links cyclojoin.LinkFactory
	switch *transport {
	case "memory":
		links = cyclojoin.InProcessLinks()
	case "tcp":
		links = cyclojoin.TCPLoopbackLinks()
	default:
		fmt.Fprintf(os.Stderr, "roundabout: unknown transport %q\n", *transport)
		return 2
	}

	var buf *trace.Buffer
	rcfg := cyclojoin.RingConfig{BufferSlots: *slots, OneSidedWrites: *oneSided}
	if *traced {
		buf = &trace.Buffer{}
		rcfg.Tracer = buf
	}
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     *nodes,
		Algorithm: alg,
		Predicate: pred,
		Opts:      cyclojoin.JoinOptions{Parallelism: *threads},
		Ring:      rcfg,
		Links:     links,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}
	defer func() {
		_ = cluster.Close()
	}()

	// The live health sampler rides the metrics mux: SSE/JSON snapshots at
	// /health/live (cyclotop's feed), health_* gauges on /metrics.
	if mux != nil {
		sampler := health.NewSampler(cluster.Ring(), health.Options{Interval: *healthInt})
		sampler.Start()
		defer sampler.Stop()
		mux.Handle("/health/live", sampler.Handler())
	}

	fmt.Printf("generating 2 × %d tuples (zipf=%.2f) ...\n", *tuples, *zipf)
	r, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "R", Tuples: *tuples, KeyDomain: *domain, Zipf: *zipf, Seed: *seed, PayloadWidth: 4,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}
	s, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{
		Name: "S", Tuples: *tuples, KeyDomain: *domain, Zipf: *zipf, Seed: *seed + 1, PayloadWidth: 4,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}

	mode := "send/recv"
	if *oneSided {
		mode = "one-sided writes"
	}
	fmt.Printf("cyclo-join: %s join of R ⋈ S (%s) on %d hosts over %s links (%s)\n",
		*algo, pred, *nodes, *transport, mode)
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundabout:", err)
		return 1
	}
	// Extra rotations reuse the stationed setup (§V's repeatable
	// revolutions) and keep fragments circulating, so live observers
	// (cyclotop, /health/live) have a spinning ring to watch.
	for i := 1; i < *rotations; i++ {
		if res, err = cluster.Rotate(); err != nil {
			fmt.Fprintf(os.Stderr, "roundabout: rotation %d: %v\n", i+1, err)
			return 1
		}
	}
	if *rotations > 1 {
		fmt.Printf("rotations: %d\n", *rotations)
	}
	fmt.Printf("matches: %d\n", res.Matches())
	fmt.Printf("setup phase: %v   join phase: %v\n", res.SetupTime, res.JoinTime)
	for i, ns := range res.Nodes {
		fmt.Printf("  host %d: processed %2d fragments, in %8d B, out %8d B, compute %v, wait %v\n",
			i, ns.Processed, ns.BytesIn, ns.BytesOut, ns.ProcessTime.Round(1e5), ns.WaitTime.Round(1e5))
	}
	if buf != nil {
		fmt.Printf("trace: %d events (%d received, %d processed, %d sent, %d retired)\n",
			buf.Len(), buf.Count(trace.FragmentReceived), buf.Count(trace.ProcessEnd),
			buf.Count(trace.FragmentSent), buf.Count(trace.FragmentRetired))
	}
	if *flightrec != "" {
		if err := writeFlightRecording(*flightrec); err != nil {
			fmt.Fprintln(os.Stderr, "roundabout:", err)
			return 1
		}
	}
	return 0
}

// writeFlightRecording drains the process flight recorder into a Perfetto
// trace-event JSON file.
func writeFlightRecording(path string) error {
	rec := trace.Flight()
	// The send reapers close post-to-completion spans off the retirement
	// critical path, so the join can finish a beat before the last send
	// spans land; wait for the recording to go quiet before snapshotting.
	prev := -1
	for i := 0; i < 40; i++ {
		n := len(rec.Snapshot())
		if n == prev {
			break
		}
		prev = n
		time.Sleep(5 * time.Millisecond)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight recording: %w", err)
	}
	if err := rec.WritePerfetto(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("flight recording: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flight recording: %w", err)
	}
	fmt.Printf("flight recording: %d spans -> %s (open in ui.perfetto.dev, or: cyclotrace %s)\n",
		len(rec.Snapshot()), path, path)
	if d := rec.Dropped(); d > 0 {
		fmt.Printf("flight recording: %d spans dropped (ring buffers full; raise shard capacity)\n", d)
	}
	return nil
}
