package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cyclojoin/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures from the current code")

const msN = int64(time.Millisecond)

// fixtureTracks / fixtureSpans build a deterministic three-node recording
// with a clearly slow node 2, two completed revolutions, and a spread of
// detail phases, exercising every section cyclotrace renders. The span set
// round-trips through WritePerfetto/ReadPerfetto so the golden files guard
// the full file-in, tables-out path.
func fixtureTracks() []trace.TrackInfo {
	return []trace.TrackInfo{
		{ID: 0, Node: 0, Entity: "join"},
		{ID: 1, Node: 1, Entity: "join"},
		{ID: 2, Node: 2, Entity: "join"},
		{ID: 3, Node: 0, Entity: "recv"},
		{ID: 4, Node: 0, Entity: "send"},
		{ID: 5, Node: -1, Entity: "wire"},
	}
}

func fixtureSpans() []trace.Span {
	return []trace.Span{
		// node 0: wait 3ms, join 5ms, stage 2ms (wall 10ms)
		{Start: 0, Dur: 3 * msN, Node: 0, Track: 0, Phase: trace.PhaseWait, Frag: -1, Hop: -1},
		{Start: 3 * msN, Dur: 5 * msN, Node: 0, Track: 0, Phase: trace.PhaseJoin, Frag: 0, Hop: 0, Arg: 512},
		{Start: 8 * msN, Dur: 2 * msN, Node: 0, Track: 0, Phase: trace.PhaseStage, Frag: 0, Hop: 0, Arg: 512},
		// node 1: wait 6ms, join 3ms, stage 1ms (wall 10ms) — most starved
		{Start: 0, Dur: 6 * msN, Node: 1, Track: 1, Phase: trace.PhaseWait, Frag: -1, Hop: -1},
		{Start: 6 * msN, Dur: 3 * msN, Node: 1, Track: 1, Phase: trace.PhaseJoin, Frag: 1, Hop: 0, Arg: 512},
		{Start: 9 * msN, Dur: 1 * msN, Node: 1, Track: 1, Phase: trace.PhaseStage, Frag: 1, Hop: 0, Arg: 512},
		// node 2: wait 1ms, join 11ms, stage 4ms (wall 16ms) — the straggler
		{Start: 0, Dur: 1 * msN, Node: 2, Track: 2, Phase: trace.PhaseWait, Frag: -1, Hop: -1},
		{Start: 1 * msN, Dur: 11 * msN, Node: 2, Track: 2, Phase: trace.PhaseJoin, Frag: 2, Hop: 0, Arg: 512},
		{Start: 12 * msN, Dur: 4 * msN, Node: 2, Track: 2, Phase: trace.PhaseStage, Frag: 2, Hop: 0, Arg: 512},
		// overlapping receive/send entities on node 0
		{Start: 500_000, Dur: 2 * msN, Node: 0, Track: 3, Phase: trace.PhaseReceive, Frag: 1, Hop: 1, Arg: 4096},
		{Start: 10 * msN, Dur: 1500_000, Node: 0, Track: 4, Phase: trace.PhaseSend, Frag: 0, Hop: 1, Arg: 4096},
		// two completed revolutions: frag 0 (join @3ms → retire @27ms),
		// frag 2 (join @1ms → retire @19ms)
		{Start: 27 * msN, Node: 1, Track: 1, Phase: trace.PhaseRetire, Frag: 0, Hop: 3},
		{Start: 19 * msN, Node: 0, Track: 0, Phase: trace.PhaseRetire, Frag: 2, Hop: 3},
		// detail phases: join internals overlap PhaseJoin above
		{Start: 3 * msN, Dur: 2 * msN, Node: 0, Track: 0, Phase: trace.PhaseBuild, Frag: 0, Hop: 0, Arg: 256},
		{Start: 5 * msN, Dur: 3 * msN, Node: 0, Track: 0, Phase: trace.PhaseProbe, Frag: 0, Hop: 0, Arg: 256},
		// transport work requests and a credit stall on the wire track
		{Start: 2 * msN, Dur: 40_000, Node: trace.NodeTransport, Track: 5, Phase: trace.PhaseWRSend, Frag: -1, Hop: -1, Arg: 4096, Aux: 1},
		{Start: 4 * msN, Dur: 65_000, Node: trace.NodeTransport, Track: 5, Phase: trace.PhaseWRSend, Frag: -1, Hop: -1, Arg: 4096, Aux: 2},
		{Start: 6 * msN, Dur: 80_000, Node: trace.NodeTransport, Track: 5, Phase: trace.PhaseWRRecv, Frag: -1, Hop: -1, Arg: 4096, Aux: 1},
		{Start: 7 * msN, Dur: 900_000, Node: trace.NodeTransport, Track: 5, Phase: trace.PhaseCreditStall, Frag: -1, Hop: -1},
	}
}

// loadFixture returns the analysis of testdata/flight.json, regenerating
// the fixture first under -update.
func loadFixture(t *testing.T) *trace.Analysis {
	t.Helper()
	path := filepath.Join("testdata", "flight.json")
	if *update {
		var buf bytes.Buffer
		if err := trace.WritePerfetto(&buf, fixtureTracks(), fixtureSpans()); err != nil {
			t.Fatalf("write fixture: %v", err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open fixture (run with -update to regenerate): %v", err)
	}
	defer f.Close()
	_, spans, err := trace.ReadPerfetto(f)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	return trace.Analyze(spans)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestRenderGolden pins the human-readable breakdown byte for byte. It
// exists to guard refactors of trace/analyze.go (the attribution model
// extraction must not change cyclotrace output at all).
func TestRenderGolden(t *testing.T) {
	a := loadFixture(t)
	var buf bytes.Buffer
	if err := render(&buf, a); err != nil {
		t.Fatalf("render: %v", err)
	}
	checkGolden(t, "breakdown.golden", buf.Bytes())
}

// TestRenderJSONGolden pins the -json output CI diffs against.
func TestRenderJSONGolden(t *testing.T) {
	a := loadFixture(t)
	var buf bytes.Buffer
	if err := renderJSON(&buf, a); err != nil {
		t.Fatalf("renderJSON: %v", err)
	}
	checkGolden(t, "breakdown.json.golden", buf.Bytes())
}

// TestFixtureShape sanity-checks the fixture itself so a silent -update
// against broken code cannot pin nonsense goldens: node 2 must be the
// slowest, node 1 the most starved, with two completed revolutions.
func TestFixtureShape(t *testing.T) {
	a := loadFixture(t)
	if a.SlowestNode != 2 {
		t.Errorf("slowest node = %d, want 2", a.SlowestNode)
	}
	if a.MostStarvedNode != 1 {
		t.Errorf("most starved node = %d, want 1", a.MostStarvedNode)
	}
	if len(a.Revolutions) != 2 {
		t.Errorf("revolutions = %d, want 2", len(a.Revolutions))
	}
	if len(a.Nodes) != 3 {
		t.Errorf("nodes = %d, want 3", len(a.Nodes))
	}
}
