// Command cyclotrace digests a flight recording (the Perfetto JSON written
// by roundabout -flightrec, or any trace.WritePerfetto output) into the
// paper's Fig 2/3-style cost breakdown: where each ring host's wall clock
// went per phase, how long fragment revolutions took, and which node the
// ring is waiting on.
//
// Usage:
//
//	roundabout -nodes 4 -flightrec flight.json
//	cyclotrace flight.json
//
// The same file loads in ui.perfetto.dev for the zoomable timeline view;
// cyclotrace is the terminal companion that turns it into tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"cyclojoin/internal/stats"
	"cyclojoin/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cyclotrace FILE\n\nFILE is a Perfetto trace-event JSON flight recording (roundabout -flightrec).")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclotrace:", err)
		return 1
	}
	defer func() {
		_ = f.Close()
	}()
	_, spans, err := trace.ReadPerfetto(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclotrace: %s: %v\n", flag.Arg(0), err)
		return 1
	}
	a := trace.Analyze(spans)
	if a.Spans == 0 {
		fmt.Println("cyclotrace: no spans in recording (was the flight recorder enabled?)")
		return 0
	}
	if err := render(a); err != nil {
		fmt.Fprintln(os.Stderr, "cyclotrace:", err)
		return 1
	}
	return 0
}

func render(a *trace.Analysis) error {
	fmt.Printf("flight recording: %d spans, %d ring hosts, %d completed revolutions\n\n",
		a.Spans, len(a.Nodes), len(a.Revolutions))

	if len(a.Nodes) > 0 {
		tbl := stats.NewTable("Per-node phase breakdown",
			"node", "receive", "wait", "join", "stage", "send", "wall", "coverage", "starved")
		for _, nb := range a.Nodes {
			tbl.AddRow(
				strconv.Itoa(nb.Node),
				fmtDur(nb.Phases[trace.PhaseReceive]),
				fmtDur(nb.Phases[trace.PhaseWait]),
				fmtDur(nb.Phases[trace.PhaseJoin]),
				fmtDur(nb.Phases[trace.PhaseStage]),
				fmtDur(nb.Phases[trace.PhaseSend]),
				fmtDur(nb.Wall),
				stats.Pct(nb.Coverage),
				stats.Pct(nb.Starvation),
			)
		}
		tbl.SetNote("wait+join+stage tile the join entity's wall clock (coverage ~100%);\n" +
			"receive/send run on their own entities and overlap the pipeline.")
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if len(a.Revolutions) > 0 {
		tbl := stats.NewTable("Revolution latency (first join to retirement)",
			"revolutions", "p50", "p90", "p99", "max")
		tbl.AddRow(
			strconv.Itoa(len(a.Revolutions)),
			fmtDur(a.RevolutionP(50)),
			fmtDur(a.RevolutionP(90)),
			fmtDur(a.RevolutionP(99)),
			fmtDur(a.Revolutions[len(a.Revolutions)-1]),
		)
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if len(a.Aux) > 0 {
		tbl := stats.NewTable("Detail phases (transport work requests, join internals)",
			"phase", "spans", "total", "p50", "p99", "max")
		for _, st := range a.Aux {
			tbl.AddRow(st.Phase.String(), strconv.Itoa(st.Count),
				fmtDur(st.Total), fmtDur(st.P50), fmtDur(st.P99), fmtDur(st.Max))
		}
		tbl.SetNote("build/probe/sort/merge overlap the join phase above; wr-* spans\n" +
			"measure post-to-completion latency on the transport tracks.")
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if a.SlowestNode >= 0 {
		fmt.Printf("ring imbalance: node %d is the slowest (largest join+stage time); "+
			"node %d is the most starved (largest wait share)\n",
			a.SlowestNode, a.MostStarvedNode)
	}
	return nil
}

// fmtDur renders a duration at a precision matched to its magnitude, so
// millisecond-scale phases and microsecond-scale work requests both stay
// readable in one table.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
