// Command cyclotrace digests a flight recording (the Perfetto JSON written
// by roundabout -flightrec, or any trace.WritePerfetto output) into the
// paper's Fig 2/3-style cost breakdown: where each ring host's wall clock
// went per phase, how long fragment revolutions took, and which node the
// ring is waiting on.
//
// Usage:
//
//	roundabout -nodes 4 -flightrec flight.json
//	cyclotrace flight.json
//	cyclotrace -json flight.json   # machine-readable breakdown for CI diffs
//
// The same file loads in ui.perfetto.dev for the zoomable timeline view;
// cyclotrace is the terminal companion that turns it into tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"cyclojoin/internal/stats"
	"cyclojoin/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	asJSON := flag.Bool("json", false, "emit the breakdown as JSON (durations in ns) instead of tables")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cyclotrace [-json] FILE\n\nFILE is a Perfetto trace-event JSON flight recording (roundabout -flightrec).")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclotrace:", err)
		return 1
	}
	defer func() {
		_ = f.Close()
	}()
	_, spans, err := trace.ReadPerfetto(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cyclotrace: %s: %v\n", flag.Arg(0), err)
		return 1
	}
	a := trace.Analyze(spans)
	if a.Spans == 0 && !*asJSON {
		fmt.Println("cyclotrace: no spans in recording (was the flight recorder enabled?)")
		return 0
	}
	renderer := render
	if *asJSON {
		renderer = renderJSON
	}
	if err := renderer(os.Stdout, a); err != nil {
		fmt.Fprintln(os.Stderr, "cyclotrace:", err)
		return 1
	}
	return 0
}

func render(w io.Writer, a *trace.Analysis) error {
	fmt.Fprintf(w, "flight recording: %d spans, %d ring hosts, %d completed revolutions\n\n",
		a.Spans, len(a.Nodes), len(a.Revolutions))

	if len(a.Nodes) > 0 {
		tbl := stats.NewTable("Per-node phase breakdown",
			"node", "receive", "wait", "join", "stage", "send", "wall", "coverage", "starved")
		for _, nb := range a.Nodes {
			tbl.AddRow(
				strconv.Itoa(nb.Node),
				fmtDur(nb.Phases[trace.PhaseReceive]),
				fmtDur(nb.Phases[trace.PhaseWait]),
				fmtDur(nb.Phases[trace.PhaseJoin]),
				fmtDur(nb.Phases[trace.PhaseStage]),
				fmtDur(nb.Phases[trace.PhaseSend]),
				fmtDur(nb.Wall),
				stats.Pct(nb.Coverage),
				stats.Pct(nb.Starvation),
			)
		}
		tbl.SetNote("wait+join+stage tile the join entity's wall clock (coverage ~100%);\n" +
			"receive/send run on their own entities and overlap the pipeline.")
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if len(a.Revolutions) > 0 {
		tbl := stats.NewTable("Revolution latency (first join to retirement)",
			"revolutions", "p50", "p90", "p99", "max")
		tbl.AddRow(
			strconv.Itoa(len(a.Revolutions)),
			fmtDur(a.RevolutionP(50)),
			fmtDur(a.RevolutionP(90)),
			fmtDur(a.RevolutionP(99)),
			fmtDur(a.Revolutions[len(a.Revolutions)-1]),
		)
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if len(a.Aux) > 0 {
		tbl := stats.NewTable("Detail phases (transport work requests, join internals)",
			"phase", "spans", "total", "p50", "p99", "max")
		for _, st := range a.Aux {
			tbl.AddRow(st.Phase.String(), strconv.Itoa(st.Count),
				fmtDur(st.Total), fmtDur(st.P50), fmtDur(st.P99), fmtDur(st.Max))
		}
		tbl.SetNote("build/probe/sort/merge overlap the join phase above; wr-* spans\n" +
			"measure post-to-completion latency on the transport tracks.")
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if a.SlowestNode >= 0 {
		fmt.Fprintf(w, "ring imbalance: node %d is the slowest (largest join+stage time); "+
			"node %d is the most starved (largest wait share)\n",
			a.SlowestNode, a.MostStarvedNode)
	}
	return nil
}

// The JSON report mirrors the tables with stable field names and integer
// nanosecond durations, so CI can diff two recordings with jq and the
// internal/health tests can use the offline analyzer as an oracle.

type jsonReport struct {
	Spans       int        `json:"spans"`
	Nodes       []jsonNode `json:"nodes"`
	Revolutions *jsonRevs  `json:"revolutions,omitempty"`
	Detail      []jsonStat `json:"detail,omitempty"`
	Imbalance   *jsonImbal `json:"imbalance,omitempty"`
}

type jsonNode struct {
	Node       int     `json:"node"`
	ReceiveNs  int64   `json:"receive_ns"`
	WaitNs     int64   `json:"wait_ns"`
	JoinNs     int64   `json:"join_ns"`
	StageNs    int64   `json:"stage_ns"`
	SendNs     int64   `json:"send_ns"`
	WallNs     int64   `json:"wall_ns"`
	BusyNs     int64   `json:"busy_ns"`
	Coverage   float64 `json:"coverage"`
	Starvation float64 `json:"starvation"`
}

type jsonRevs struct {
	Count int   `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
}

type jsonStat struct {
	Phase   string `json:"phase"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
}

type jsonImbal struct {
	SlowestNode     int `json:"slowest_node"`
	MostStarvedNode int `json:"most_starved_node"`
}

func renderJSON(w io.Writer, a *trace.Analysis) error {
	rep := jsonReport{Spans: a.Spans, Nodes: []jsonNode{}}
	for _, nb := range a.Nodes {
		rep.Nodes = append(rep.Nodes, jsonNode{
			Node:       nb.Node,
			ReceiveNs:  int64(nb.Phases[trace.PhaseReceive]),
			WaitNs:     int64(nb.Phases[trace.PhaseWait]),
			JoinNs:     int64(nb.Phases[trace.PhaseJoin]),
			StageNs:    int64(nb.Phases[trace.PhaseStage]),
			SendNs:     int64(nb.Phases[trace.PhaseSend]),
			WallNs:     int64(nb.Wall),
			BusyNs:     int64(nb.Busy),
			Coverage:   nb.Coverage,
			Starvation: nb.Starvation,
		})
	}
	if len(a.Revolutions) > 0 {
		rep.Revolutions = &jsonRevs{
			Count: len(a.Revolutions),
			P50Ns: int64(a.RevolutionP(50)),
			P90Ns: int64(a.RevolutionP(90)),
			P99Ns: int64(a.RevolutionP(99)),
			MaxNs: int64(a.Revolutions[len(a.Revolutions)-1]),
		}
	}
	for _, st := range a.Aux {
		rep.Detail = append(rep.Detail, jsonStat{
			Phase:   st.Phase.String(),
			Count:   st.Count,
			TotalNs: int64(st.Total),
			P50Ns:   int64(st.P50),
			P99Ns:   int64(st.P99),
			MaxNs:   int64(st.Max),
		})
	}
	if a.SlowestNode >= 0 {
		rep.Imbalance = &jsonImbal{SlowestNode: a.SlowestNode, MostStarvedNode: a.MostStarvedNode}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// fmtDur renders a duration at a precision matched to its magnitude, so
// millisecond-scale phases and microsecond-scale work requests both stay
// readable in one table.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
