package cyclojoin_test

import (
	"testing"

	"cyclojoin"
)

// TestQuickstart runs the README's quickstart path end-to-end through the
// public facade.
func TestQuickstart(t *testing.T) {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     3,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
		Opts:      cyclojoin.JoinOptions{Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()
	r, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{Name: "R", Tuples: 10_000, KeyDomain: 1_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{Name: "S", Tuples: 10_000, KeyDomain: 1_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches() <= 0 {
		t.Error("no matches on overlapping key domains")
	}
	if res.SetupTime <= 0 || res.JoinTime <= 0 {
		t.Error("phase times not populated")
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	if cyclojoin.HashJoin().Name() != "hash" {
		t.Error("HashJoin wrong")
	}
	if cyclojoin.SortMergeJoin().Name() != "sortmerge" {
		t.Error("SortMergeJoin wrong")
	}
	if cyclojoin.NestedLoopsJoin().Name() != "nested" {
		t.Error("NestedLoopsJoin wrong")
	}
	if !cyclojoin.SortMergeJoin().Supports(cyclojoin.BandJoin(5)) {
		t.Error("sort-merge must support band joins")
	}
	theta := cyclojoin.ThetaJoin("lt", func(r, s uint64) bool { return r < s })
	if !cyclojoin.NestedLoopsJoin().Supports(theta) {
		t.Error("nested loops must support theta joins")
	}
}

func TestFacadeExperiments(t *testing.T) {
	all := cyclojoin.Experiments()
	if len(all) != 13 {
		t.Fatalf("%d experiments, want 13 (every table and figure, plus the extensions)", len(all))
	}
	e, err := cyclojoin.ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.Run(cyclojoin.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 {
		t.Errorf("Table I has %d rows, want 4", tbl.Rows())
	}
}

func TestFacadeTCPLinks(t *testing.T) {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     2,
		Algorithm: cyclojoin.SortMergeJoin(),
		Predicate: cyclojoin.BandJoin(1),
		Links:     cyclojoin.TCPLoopbackLinks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()
	r, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{Name: "R", Tuples: 500, KeyDomain: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cyclojoin.Generate(cyclojoin.WorkloadSpec{Name: "S", Tuples: 500, KeyDomain: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches() <= 0 {
		t.Error("band join over TCP produced no matches")
	}
}

// TestOneSidedWriteCluster runs a distributed join with the ring's
// transmitters using RDMA write-with-immediate instead of send/recv.
func TestOneSidedWriteCluster(t *testing.T) {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     3,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
		Ring:      cyclojoin.RingConfig{OneSidedWrites: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()
	r := cyclojoin.SequentialRelation("R", 2000, 4)
	s := cyclojoin.SequentialRelation("S", 2000, 4)
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches() != 2000 {
		t.Errorf("matches = %d, want 2000", res.Matches())
	}
}

func TestHotSetStoreFacade(t *testing.T) {
	store, err := cyclojoin.NewHotSetStore(1<<20, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := cyclojoin.SequentialRelation("r", 100, 4)
	if err := store.Register("r", r); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Errorf("len = %d", got.Len())
	}
	if hot := store.Hottest(); len(hot) != 1 || hot[0].Name != "r" {
		t.Errorf("hottest = %+v", hot)
	}
}
