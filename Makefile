# The ring and tcplink code is concurrency-heavy: `make check` is the
# tier-1 gate (see ROADMAP.md) and runs the full suite under the race
# detector on top of build, vet and the cyclolint analyzer suite.

GO ?= go

# Ceiling for one standalone pass of the analyzer suite over ./...; the
# cyclolint target fails when analysis wall time exceeds it, so a
# quadratic fixpoint regression in an analyzer breaks the gate instead
# of quietly taxing every CI run.
LINT_BUDGET ?= 60s

.PHONY: check build vet lint cyclolint lint-sarif lint-stats lint-fix-clean test race chaos chaos-fuzz bench-metrics bench-ring bench-smoke bench-trace smoke-trace smoke-health

check: build vet lint race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzer suite (see internal/lint and
# DESIGN.md §9) plus staticcheck when it is installed locally. CI runs
# staticcheck and govulncheck in a dedicated pinned job; locally they are
# optional so a bare toolchain can still run `make check`.
lint: cyclolint
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# cyclolint is driven through `go vet -vettool` so package results are
# cached by the build cache (analyzer versions are stamped into the vetx
# facts, so editing an analyzer invalidates its cache entries);
# `bin/cyclolint ./...` works standalone too, and takes -fix / -json /
# -sarif.
cyclolint:
	$(GO) build -o bin/cyclolint ./cmd/cyclolint
	$(GO) vet -vettool=$(CURDIR)/bin/cyclolint ./...
	./bin/cyclolint -stats -budget $(LINT_BUDGET) ./...

# lint-sarif renders the suite's findings as SARIF 2.1.0 for GitHub code
# scanning. The exit status is ignored: the check gate fails the build,
# this artifact only annotates the PR.
lint-sarif:
	$(GO) build -o bin/cyclolint ./cmd/cyclolint
	./bin/cyclolint -sarif ./... > cyclolint.sarif || true

# lint-stats captures the per-analyzer wall-time breakdown to
# cyclolint-stats.txt (CI uploads it as a per-run artifact) and appends
# one trend row to the committed LINT_STATS.md: date, suite version,
# analyzer count, total wall time. Run it in any PR that changes the
# suite and commit the row — the table makes wall-time creep visible
# long before the LINT_BUDGET gate trips.
lint-stats:
	$(GO) build -o bin/cyclolint ./cmd/cyclolint
	./bin/cyclolint -stats ./... 2> cyclolint-stats.txt; st=$$?; \
	cat cyclolint-stats.txt; [ $$st -eq 0 ] || exit $$st
	printf '| %s | %s | %s | %s |\n' \
		"$$(date -u +%F)" \
		"$$(./bin/cyclolint -V=full | sed 's/^cyclolint version //; s/+.*//')" \
		"$$(grep -c 'cyclolint: stats: ' cyclolint-stats.txt | awk '{print $$1 - 1}')" \
		"$$(awk '/cyclolint: stats: total/ {print $$NF}' cyclolint-stats.txt)" \
		>> LINT_STATS.md
	tail -1 LINT_STATS.md

# lint-fix-clean asserts every mechanical fix is already applied: -fix
# over the tree must be a no-op. CI runs it so a committed finding whose
# suggested fix was ignored (instead of applied or suppressed with a
# justification) fails the build.
lint-fix-clean:
	$(GO) build -o bin/cyclolint ./cmd/cyclolint
	./bin/cyclolint -fix ./... || true
	git diff --exit-code

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos is the fault-injection e2e tier: the seeded cyclobench scenario
# suite (drop, flap, corrupt doorbell, jitter+reorder, slow node,
# partition) against live mem and tcp rings, race-enabled. The unit- and
# package-level chaos tests (TestChaos* in ring, core, chaoslink) already
# run under `race`; this drives the same machinery through the CLI the CI
# fuzz job uses, with a pinned seed so the gate is deterministic.
chaos:
	$(GO) run -race ./cmd/cyclobench -chaos -seed 1

# chaos-fuzz explores a fresh schedule per run (seed derived from the
# clock). The full output — including the reproduce line and the failing
# schedule, if any — lands in chaos_fuzz.txt for CI to upload.
chaos-fuzz:
	$(GO) run -race ./cmd/cyclobench -chaos -seed 0 > chaos_fuzz.txt 2>&1; st=$$?; cat chaos_fuzz.txt; exit $$st

# Proves the instrumentation budget: one hot-path event must cost < 10 ns.
bench-metrics:
	$(GO) test -run NONE -bench . -benchmem ./internal/metrics/

# Proves the flight recorder budget: span begin/end on the hot path must
# not allocate (the -benchmem column must read 0 allocs/op; the zero-alloc
# guard test enforces it).
bench-trace:
	$(GO) test -run NONE -bench 'BenchmarkSpan|BenchmarkPoint' -benchmem ./internal/trace/

# End-to-end flight-recorder smoke: run a small traced 4-node ring join,
# write the Perfetto recording, and print the cyclotrace cost breakdown.
# Artifacts: flight.json (load in ui.perfetto.dev) + flight_breakdown.txt.
smoke-trace:
	$(GO) run ./cmd/roundabout -nodes 4 -tuples 50000 -threads 2 -flightrec flight.json
	$(GO) run ./cmd/cyclotrace flight.json | tee flight_breakdown.txt

# End-to-end live-health smoke: spin a small ring through many rotations
# with the metrics mux up, then follow /health/live once with cyclotop.
# The -json pass proves the SSE payload decodes end to end (the snapshot
# lands in health_snapshot.json for CI to keep); the second pass prints
# the human table into the log.
smoke-health:
	$(GO) build -o bin/roundabout ./cmd/roundabout
	$(GO) build -o bin/cyclotop ./cmd/cyclotop
	./bin/roundabout -nodes 3 -tuples 20000 -threads 2 -rotations 400 -healthint 50ms -metrics 127.0.0.1:19199 & pid=$$!; \
	./bin/cyclotop -once -json -wait 15s http://127.0.0.1:19199/health/live > health_snapshot.json; st=$$?; \
	./bin/cyclotop -once -wait 5s http://127.0.0.1:19199/health/live || true; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	cat health_snapshot.json; exit $$st

# Ring hot-path benchmarks → BENCH_ring.json (preserves the recorded
# pre-zero-copy baseline; compare with the printed summary). The forward
# staging benchmark fails outright if the little-endian fast path ever
# allocates.
bench-ring:
	$(GO) test -run NONE -bench 'BenchmarkRingHop|BenchmarkForwardStage' -benchtime 2s ./internal/ring/ > /tmp/bench_ring.$$$$.txt && \
	$(GO) test -run NONE -bench 'BenchmarkEncode|BenchmarkDecode|BenchmarkViewBind' -benchtime 2s ./internal/relation/ >> /tmp/bench_ring.$$$$.txt && \
	$(GO) run ./cmd/benchring -o BENCH_ring.json < /tmp/bench_ring.$$$$.txt; \
	rm -f /tmp/bench_ring.$$$$.txt

# Short-form zero-alloc gate for CI: one quick pass over the guarded
# hot-path benchmarks, failing on any allocs/op > 0. The full sweep that
# rewrites BENCH_ring.json stays in bench-ring.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkForwardStage' -benchtime 100x ./internal/ring/ > /tmp/bench_smoke.$$$$.txt && \
	$(GO) test -run NONE -bench 'BenchmarkEncode$$|BenchmarkViewBind' -benchtime 1000x ./internal/relation/ >> /tmp/bench_smoke.$$$$.txt && \
	$(GO) run ./cmd/benchring -guard BenchmarkForwardStage,BenchmarkEncode,BenchmarkViewBind < /tmp/bench_smoke.$$$$.txt; \
	status=$$?; rm -f /tmp/bench_smoke.$$$$.txt; exit $$status
