# The ring and tcplink code is concurrency-heavy: `make check` is the
# tier-1 gate (see ROADMAP.md) and runs the full suite under the race
# detector on top of build and vet.

GO ?= go

.PHONY: check build vet test race bench-metrics

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Proves the instrumentation budget: one hot-path event must cost < 10 ns.
bench-metrics:
	$(GO) test -run NONE -bench . -benchmem ./internal/metrics/
