module cyclojoin

go 1.22
