package cyclojoin_test

import (
	"fmt"
	"log"

	"cyclojoin"
)

// ExampleNewCluster runs the smallest possible distributed equi-join: S is
// stationed across three hosts, R rotates once, the per-host counters sum
// to the join size.
func ExampleNewCluster() {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     3,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()

	r := cyclojoin.SequentialRelation("R", 1000, 4)
	s := cyclojoin.SequentialRelation("S", 1000, 4)
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", res.Matches())
	// Output: matches: 1000
}

// ExampleCluster_Rotate demonstrates setup reuse (§IV-D): one Station, two
// revolutions, full result both times.
func ExampleCluster_Rotate() {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     2,
		Algorithm: cyclojoin.SortMergeJoin(),
		Predicate: cyclojoin.EquiJoin(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()

	r := cyclojoin.SequentialRelation("R", 500, 4)
	s := cyclojoin.SequentialRelation("S", 500, 4)
	first, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		log.Fatal(err)
	}
	second, err := cluster.Rotate() // reuses the sorted runs
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(first.Matches(), second.Matches())
	// Output: 500 500
}

// ExampleBandJoin joins keys within a distance of 1 using sort-merge.
func ExampleBandJoin() {
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     2,
		Algorithm: cyclojoin.SortMergeJoin(),
		Predicate: cyclojoin.BandJoin(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()

	// Keys 0..9 on both sides: each r matches r-1, r, r+1 where present:
	// 10 exact + 9 above + 9 below = 28 pairs.
	r := cyclojoin.SequentialRelation("R", 10, 0)
	s := cyclojoin.SequentialRelation("S", 10, 0)
	res, err := cluster.JoinRelations(r, s, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("band matches:", res.Matches())
	// Output: band matches: 28
}

// ExampleNewWheel keeps a relation circulating and serves two joins from
// the same spinning data.
func ExampleNewWheel() {
	facts := cyclojoin.SequentialRelation("facts", 2000, 4)
	wheel, err := cyclojoin.NewWheel(cyclojoin.WheelConfig{Nodes: 2}, facts)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		_ = wheel.Close()
	}()

	for _, dimSize := range []int{100, 200} {
		dim := cyclojoin.SequentialRelation("dim", dimSize, 4)
		out, err := wheel.ExecuteJoin(cyclojoin.WheelJoin{
			Algorithm:  cyclojoin.HashJoin(),
			Predicate:  cyclojoin.EquiJoin(),
			Stationary: dim,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out.Matches())
	}
	// Output:
	// 100
	// 200
}

// ExampleNewQueryEngine runs SQL over the ring.
func ExampleNewQueryEngine() {
	catalog := cyclojoin.NewCatalog()
	if err := catalog.Register("users", "id", cyclojoin.SequentialRelation("users", 100, 4)); err != nil {
		log.Fatal(err)
	}
	if err := catalog.Register("events", "user_id", cyclojoin.SequentialRelation("events", 60, 4)); err != nil {
		log.Fatal(err)
	}
	engine, err := cyclojoin.NewQueryEngine(catalog, 2, cyclojoin.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Execute(
		"SELECT COUNT(*) FROM events JOIN users ON events.user_id = users.id WHERE users.id < 50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", res.Count)
	// Output: rows: 50
}

// ExamplePartition splits a relation into per-host fragments.
func ExamplePartition() {
	r := cyclojoin.SequentialRelation("R", 10, 0)
	frags, err := cyclojoin.Partition(r, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range frags {
		fmt.Printf("fragment %d/%d: %d tuples\n", f.Index, f.Of, f.Rel.Len())
	}
	// Output:
	// fragment 0/3: 3 tuples
	// fragment 1/3: 3 tuples
	// fragment 2/3: 4 tuples
}
