package health_test

import (
	"sync"
	"testing"
	"time"

	"cyclojoin/internal/core"
	"cyclojoin/internal/health"
	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/rdma/chaoslink"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/trace"
	"cyclojoin/internal/workload"
)

// slowAlg wraps a real algorithm and makes ONE node's join phase slow —
// the paper's dizzy node: overloaded compute, not a slow wire. The wrapper
// keys off Options.TraceNode, the host's ring position.
type slowAlg struct {
	inner join.Algorithm
	node  int
	delay time.Duration
}

func (a slowAlg) Name() string                   { return a.inner.Name() }
func (a slowAlg) Supports(p join.Predicate) bool { return a.inner.Supports(p) }

func (a slowAlg) SetupStationary(s *relation.Relation, p join.Predicate, opts join.Options) (join.Stationary, error) {
	st, err := a.inner.SetupStationary(s, p, opts)
	if err != nil || opts.TraceNode != a.node {
		return st, err
	}
	return slowStationary{Stationary: st, delay: a.delay}, nil
}

func (a slowAlg) SetupRotating(r *relation.Relation, p join.Predicate, opts join.Options) (*relation.Relation, error) {
	return a.inner.SetupRotating(r, p, opts)
}

type slowStationary struct {
	join.Stationary
	delay time.Duration
}

func (s slowStationary) Join(r *relation.Relation, c join.Collector) error {
	time.Sleep(s.delay)
	return s.Stationary.Join(r, c)
}

// spinRing runs one join plus extra revolutions on a live 3-node mem ring.
func spinRing(t *testing.T, c *core.Cluster, rotations int) {
	t.Helper()
	r := workload.Sequential("R", 600, 4)
	s := workload.Sequential("S", 600, 4)
	if _, err := c.JoinRelations(r, s, false); err != nil {
		t.Fatalf("join: %v", err)
	}
	for i := 0; i < rotations; i++ {
		if _, err := c.Rotate(); err != nil {
			t.Fatalf("rotation %d: %v", i+1, err)
		}
	}
}

// TestSamplerRaceUnderLiveRevolutions ticks the sampler at full speed over
// a spinning ring while concurrent readers hammer the published snapshot —
// the -race run proves the lock-free publication and the hot-path counter
// loads are clean.
func TestSamplerRaceUnderLiveRevolutions(t *testing.T) {
	c, err := core.NewCluster(core.Config{
		Nodes:     3,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Links:     ring.MemLinks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()

	s := health.NewSampler(c.Ring(), health.Options{Interval: time.Millisecond})
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // poll the lock-free pointer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snap := s.Current(); snap != nil {
				for _, ns := range snap.Nodes {
					_ = ns.BusyShare + ns.StallShare
				}
			}
		}
	}()
	go func() { // drain a subscription
		defer wg.Done()
		ch, cancel := s.Subscribe()
		defer cancel()
		for {
			select {
			case <-stop:
				return
			case snap, ok := <-ch:
				if !ok {
					return
				}
				_ = snap.Verdict.Kind.String()
			}
		}
	}()

	spinRing(t, c, 10)
	close(stop)
	wg.Wait()

	snap := s.Current()
	if snap == nil {
		t.Fatal("no snapshot published")
	}
	var processed int64
	for _, ns := range snap.Nodes {
		processed += ns.Processed
	}
	if len(snap.Nodes) != 3 {
		t.Errorf("len(Nodes) = %d, want 3", len(snap.Nodes))
	}
}

// TestE2EStragglerNamesTheSlowNode is the live/offline cross-check: node 2
// is the slow node (slow compute via slowAlg, plus a chaoslink-paced
// egress), the live sampler's verdict must name it within one sampling
// window, and the offline cyclotrace analyzer over the same run's flight
// recording must agree.
func TestE2EStragglerNamesTheSlowNode(t *testing.T) {
	rec := trace.Flight()
	rec.Reset()
	rec.Enable(trace.DefaultShardCap)
	defer rec.Reset()

	const slowNode = 2
	link := chaoslink.Link{From: slowNode, To: 0}
	plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
		link: {Seed: 1, Pace: time.Millisecond},
	}}
	c, err := core.NewCluster(core.Config{
		Nodes:     3,
		Algorithm: slowAlg{inner: hashjoin.Join{}, node: slowNode, delay: 2 * time.Millisecond},
		Predicate: join.Equi{},
		Links:     ring.LinkFactory(plan.Wrap(ring.MemLinks())),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()

	s := health.NewSampler(c.Ring(), health.Options{Interval: time.Hour})
	s.SampleOnce() // baseline; the next sample is the first real window

	spinRing(t, c, 20)

	snap := s.SampleOnce()
	for _, ns := range snap.Nodes {
		t.Logf("node %d: busy=%.3f wait=%.3f join=%.3f stage=%.3f stall=%.3f processed=%d",
			ns.Node, ns.BusyShare, ns.WaitShare, ns.JoinShare, ns.StageShare, ns.StallShare, ns.Processed)
	}
	t.Logf("slowest=%d starved=%d score=%.2f window=%v", snap.Slowest, snap.Starved, snap.Score, snap.Window)
	if snap.Verdict.Kind != health.Straggler {
		t.Fatalf("verdict = %v (%s), want straggler", snap.Verdict.Kind, snap.Verdict.Reason)
	}
	if snap.Verdict.Node != slowNode {
		t.Errorf("live straggler = node %d, want node %d (the slow node)", snap.Verdict.Node, slowNode)
	}

	// Offline oracle: the flight recording of the same run, through the
	// same attribution model cyclotrace uses, must blame the same node.
	a := trace.Analyze(rec.Snapshot())
	if a.SlowestNode != slowNode {
		t.Errorf("offline SlowestNode = %d, want %d", a.SlowestNode, slowNode)
	}
	if a.SlowestNode != snap.Verdict.Node {
		t.Errorf("live (%d) and offline (%d) attribution disagree", snap.Verdict.Node, a.SlowestNode)
	}
}
