package health

import "testing"

func TestWindowedQuantileInterpolates(t *testing.T) {
	// Bounds 10/100/1000: one window, 10 observations in (10,100].
	w := NewWindowed([]int64{10, 100, 1000}, 4)
	w.Push([]int64{0, 10, 0, 0})
	if got := w.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	// p50 → rank 5 of 10 inside (10,100]: 10 + 0.5*90 = 55.
	if got := w.Quantile(0.50); got != 55 {
		t.Errorf("p50 = %d, want 55", got)
	}
	// p100 lands at the bucket's upper bound.
	if got := w.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	// First bucket interpolates from zero.
	w2 := NewWindowed([]int64{10, 100}, 2)
	w2.Push([]int64{10, 0, 0})
	if got := w2.Quantile(0.50); got != 5 {
		t.Errorf("first-bucket p50 = %d, want 5", got)
	}
}

func TestWindowedRotationEvictsOldWindows(t *testing.T) {
	w := NewWindowed([]int64{10, 100}, 2)
	// Window 1: slow traffic in (10,100].
	w.Push([]int64{0, 8, 0})
	// Window 2: fast traffic in (0,10].
	w.Push([]int64{8, 0, 0})
	if got := w.Count(); got != 16 {
		t.Fatalf("Count = %d, want 16 (both windows live)", got)
	}
	// Window 3 rotates window 1 out: only fast traffic remains.
	w.Push([]int64{8, 0, 0})
	if got := w.Count(); got != 16 {
		t.Fatalf("Count = %d, want 16 after rotation", got)
	}
	if got := w.Quantile(0.99); got > 10 {
		t.Errorf("p99 = %d after the slow window rotated out, want <= 10", got)
	}
}

func TestWindowedInfBucketAndClamps(t *testing.T) {
	w := NewWindowed([]int64{10, 100}, 2)
	// All mass beyond the last finite bound.
	w.Push([]int64{0, 0, 5})
	if got := w.Quantile(0.99); got != 100 {
		t.Errorf("+Inf-bucket p99 = %d, want last finite bound 100", got)
	}
	// Negative deltas (reset source) clamp rather than corrupt the merge.
	w.Push([]int64{-3, 4, 0})
	if got := w.Count(); got != 9 {
		t.Errorf("Count = %d, want 9 (negative delta clamped)", got)
	}
	// Short delta slices zero-fill the missing buckets.
	w.Push([]int64{2})
	if got := w.Count(); got != 6 {
		t.Errorf("Count = %d, want 6 (5 rotated out, 4 + 2 live)", got)
	}
	// Empty histogram reads as zero.
	if got := NewWindowed(nil, 1).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}
