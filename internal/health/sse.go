package health

import (
	"encoding/json"
	"net/http"
)

// Handler serves the live health feed.
//
//	GET /health/live            → Server-Sent Events: one `data:` line per
//	                              sampling tick, each a JSON Snapshot. The
//	                              current snapshot (if any) is sent
//	                              immediately on connect, so a client
//	                              always gets a first event within one
//	                              sampling interval.
//	GET /health/live?once=1     → one JSON Snapshot, then the connection
//	                              closes (curl/CI friendly).
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("once") != "" {
			snap := s.Current()
			if snap == nil {
				snap = s.SampleOnce()
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(snap)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "health: streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		w.WriteHeader(http.StatusOK)

		send := func(snap *Snapshot) bool {
			b, err := json.Marshal(snap)
			if err != nil {
				return false
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
			if _, err := w.Write(b); err != nil {
				return false
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return false
			}
			fl.Flush()
			return true
		}

		if snap := s.Current(); snap != nil {
			if !send(snap) {
				return
			}
		}
		ch, cancel := s.Subscribe()
		defer cancel()
		for {
			select {
			case snap, ok := <-ch:
				if !ok || !send(snap) {
					return
				}
			case <-r.Context().Done():
				return
			case <-s.stop:
				return
			}
		}
	})
}
