// Package health is the ring's live telemetry pipeline: it samples each
// node's hot-path counters on a ticker (plain atomic loads — the hot path
// never knows it is being watched), differences successive snapshots into
// rolling windows, and runs the same attribution model the offline
// cyclotrace analyzer uses (trace.Attribute) over the windowed phase
// totals — continuously, with a typed verdict. A flagged straggler can be
// profiled on demand; the pprof goroutine labels the ring sets
// (cyclo_node/cyclo_entity) attribute the samples per node.
//
// Publication is lock-free: each tick builds a fresh immutable Snapshot
// and swaps it into an atomic pointer; readers (the SSE handler, the
// Prometheus gauges, cyclobench's -health table) never block the sampler
// and the sampler never blocks them. See DESIGN.md §12.
package health

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma/chaoslink"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/trace"
)

// Source is what the sampler observes each tick. *ring.Ring implements
// it; tests substitute synthetic sources.
type Source interface {
	HealthSnapshot(dst []ring.NodeHealth) []ring.NodeHealth
}

// VerdictKind classifies the ring's condition, worst first.
type VerdictKind int

const (
	// Healthy: no node dominates, no link stalls, no faults this window.
	Healthy VerdictKind = iota
	// Straggler: one node's busy time dwarfs the others' — the ring
	// spins at that node's pace (the paper's dizzy node).
	Straggler
	// CreditStall: a link's sender spends an outsized share of the
	// window waiting on send credits — downstream backpressure.
	CreditStall
	// Degraded: injected or real link faults (drops, corrupted
	// doorbells) hit this window; recovery or partial results follow.
	Degraded
)

var verdictNames = map[VerdictKind]string{
	Healthy:     "healthy",
	Straggler:   "straggler",
	CreditStall: "credit-stall",
	Degraded:    "degraded",
}

func (k VerdictKind) String() string {
	if s, ok := verdictNames[k]; ok {
		return s
	}
	return fmt.Sprintf("verdict(%d)", int(k))
}

// MarshalText renders the kind as its name in JSON payloads.
func (k VerdictKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name (cyclotop decodes snapshots).
func (k *VerdictKind) UnmarshalText(b []byte) error {
	for kind, name := range verdictNames {
		if name == string(b) {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("health: unknown verdict kind %q", b)
}

// Verdict is the sampler's typed conclusion for one window.
type Verdict struct {
	Kind VerdictKind `json:"kind"`
	// Node is the flagged ring position (straggler or stalling sender),
	// -1 when not node-scoped.
	Node int `json:"node"`
	// Link names the flagged directed link ("2→0"), empty otherwise.
	Link string `json:"link,omitempty"`
	// Score is the straggler ratio (flagged busy / mean others' busy)
	// or, for credit stalls, the stall share of the window.
	Score float64 `json:"score,omitempty"`
	// Reason is a one-line human explanation.
	Reason string `json:"reason,omitempty"`
}

// NodeSample is one node's windowed view.
type NodeSample struct {
	Node int `json:"node"`
	// EWMA-smoothed shares of the sampling window (0..1, and busy can
	// exceed 1 briefly when a long Process call straddles windows).
	BusyShare  float64 `json:"busy_share"`
	WaitShare  float64 `json:"wait_share"`
	JoinShare  float64 `json:"join_share"`
	StageShare float64 `json:"stage_share"`
	StallShare float64 `json:"stall_share"`
	// Windowed hop-latency percentiles (fragment residence on the join
	// entity), from the log-linear windowed histogram.
	HopP50Ns int64 `json:"hop_p50_ns"`
	HopP99Ns int64 `json:"hop_p99_ns"`
	// FragsPerSec is the window's processing rate.
	FragsPerSec float64 `json:"frags_per_sec"`
	// Window deltas and point-in-time readings.
	Processed    int64 `json:"processed"`
	Materializes int64 `json:"materializes"`
	QueueDepth   int64 `json:"queue_depth"`
	ChunkBytes   int64 `json:"chunk_bytes"`
}

// LinkFaults is one directed link's cumulative injected-fault tally
// (mirrors chaoslink.SnapshotFaults, JSON-friendly).
type LinkFaults struct {
	Link     string `json:"link"`
	Drops    int64  `json:"drops"`
	Corrupts int64  `json:"corrupts"`
	Delays   int64  `json:"delays"`
}

// Snapshot is one published tick: immutable once swapped in.
type Snapshot struct {
	Seq      int64         `json:"seq"`
	Time     time.Time     `json:"time"`
	Window   time.Duration `json:"window_ns"`
	Nodes    []NodeSample  `json:"nodes"`
	Verdict  Verdict       `json:"verdict"`
	Faults   []LinkFaults  `json:"faults,omitempty"`
	Slowest  int           `json:"slowest_node"`
	Starved  int           `json:"most_starved_node"`
	Score    float64       `json:"straggler_score"`
	Captures int64         `json:"profile_captures"`
}

// Options tunes the sampler; zero values take the defaults noted.
type Options struct {
	// Interval between samples (default 250ms).
	Interval time.Duration
	// Windows kept in the rolling hop histograms (default 8).
	Windows int
	// Alpha is the EWMA smoothing factor for phase shares (default 0.5:
	// responsive within two windows, immune to one-tick blips).
	Alpha float64
	// StragglerScore flags a node whose busy time exceeds the others'
	// mean by this ratio (default 2.0).
	StragglerScore float64
	// MinBusyShare keeps an idle ring from flagging noise: the flagged
	// node's busy share must reach this floor (default 0.10).
	MinBusyShare float64
	// StallShare flags a link whose sender stalled for at least this
	// share of the window (default 0.25).
	StallShare float64
	// AutoProfile > 0 captures a CPU profile of that duration when the
	// verdict transitions into Straggler (one capture in flight at a
	// time; fetch with LastProfile).
	AutoProfile time.Duration
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.Windows <= 0 {
		o.Windows = 8
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.5
	}
	if o.StragglerScore <= 1 {
		o.StragglerScore = 2.0
	}
	if o.MinBusyShare <= 0 {
		o.MinBusyShare = 0.10
	}
	if o.StallShare <= 0 {
		o.StallShare = 0.25
	}
	return o
}

// nodeState is the sampler's per-node working memory between ticks.
type nodeState struct {
	ewmaBusy, ewmaWait, ewmaJoin, ewmaStage, ewmaStall float64
	warm                                               bool
	hop                                                *WindowedHistogram
	prevHop                                            []int64
	deltaHop                                           []int64
	g                                                  nodeGauges
}

// nodeGauges are the per-node Prometheus series the sampler refreshes.
type nodeGauges struct {
	busy, wait, stall *metrics.Gauge
	hopP50, hopP99    *metrics.Gauge
}

// samplerMetrics are the ring-wide health series.
type samplerMetrics struct {
	samples  *metrics.Counter
	verdict  *metrics.Gauge
	score    *metrics.Gauge
	captures *metrics.Counter
}

func newSamplerMetrics() samplerMetrics {
	r := metrics.Default()
	return samplerMetrics{
		samples:  r.Counter("health_samples_total", "health sampler ticks"),
		verdict:  r.Gauge("health_verdict_state", "current verdict: 0 healthy, 1 straggler, 2 credit-stall, 3 degraded"),
		score:    r.Gauge("health_straggler_score_permille", "busy ratio of the slowest node to the others' mean, x1000"),
		captures: r.Counter("health_profile_captures_total", "auto-captured straggler CPU profiles"),
	}
}

func newNodeGauges(id int) nodeGauges {
	r := metrics.Default()
	node := strconv.Itoa(id)
	return nodeGauges{
		busy:   r.Gauge("health_node_busy_permille", "windowed busy (join+stage) share of wall clock, x1000", "node", node),
		wait:   r.Gauge("health_node_wait_permille", "windowed starvation share of wall clock, x1000", "node", node),
		stall:  r.Gauge("health_node_stall_permille", "windowed send-backpressure share of wall clock, x1000", "node", node),
		hopP50: r.Gauge("health_hop_p50_ns", "windowed hop-latency p50", "node", node),
		hopP99: r.Gauge("health_hop_p99_ns", "windowed hop-latency p99", "node", node),
	}
}

// Sampler runs the pipeline. Construct with NewSampler; Start launches
// the ticker goroutine, or call SampleOnce from your own cadence (tests).
type Sampler struct {
	src Source
	opt Options
	m   samplerMetrics

	cur      atomic.Pointer[Snapshot]
	seq      atomic.Int64
	captures atomic.Int64

	mu       sync.Mutex
	subs     map[chan *Snapshot]struct{}
	prev     []ring.NodeHealth
	scratch  []ring.NodeHealth
	prevTime time.Time
	states   map[int]*nodeState
	// prevFaults holds each link's drops+corrupts at the previous tick,
	// so Degraded fires on faults that moved THIS window, not on any
	// fault the process has ever seen.
	prevFaults map[string]int64
	lastKind   VerdictKind
	profile    []byte
	profBusy   bool

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler builds a sampler over src. It does not start sampling.
func NewSampler(src Source, opt Options) *Sampler {
	return &Sampler{
		src:        src,
		opt:        opt.withDefaults(),
		m:          newSamplerMetrics(),
		subs:       make(map[chan *Snapshot]struct{}),
		states:     make(map[int]*nodeState),
		prevFaults: make(map[string]int64),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start launches the ticker loop; the first sample is taken immediately
// (a baseline — deltas begin with the second). Idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			s.SampleOnce()
			t := time.NewTicker(s.opt.Interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.SampleOnce()
				case <-s.stop:
					return
				}
			}
		}()
	})
}

// Stop halts the ticker loop and waits for it to exit. Safe to call
// without Start (and more than once).
func (s *Sampler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
}

// Current returns the latest snapshot, or nil before the first sample.
func (s *Sampler) Current() *Snapshot { return s.cur.Load() }

// Subscribe registers a listener for future snapshots. The channel drops
// ticks a slow consumer misses (buffer 1, newest-wins semantics are the
// consumer's job via Current). cancel unregisters and closes the channel.
func (s *Sampler) Subscribe() (ch <-chan *Snapshot, cancel func()) {
	c := make(chan *Snapshot, 1)
	s.mu.Lock()
	s.subs[c] = struct{}{}
	s.mu.Unlock()
	var once sync.Once
	return c, func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.subs, c)
			s.mu.Unlock()
			close(c)
		})
	}
}

// SampleOnce takes one sample, publishes the snapshot, and returns it.
// The ticker loop calls this; tests call it directly for a deterministic
// cadence. Serialized by the sampler's mutex.
func (s *Sampler) SampleOnce() *Snapshot {
	now := time.Now()
	s.mu.Lock()
	cur := s.src.HealthSnapshot(s.scratch[:0])
	s.scratch = cur
	snap := s.build(now, cur)
	// Retain the cumulative readings for the next delta (a copy: scratch
	// is overwritten by the next tick's HealthSnapshot).
	s.prev = append(s.prev[:0], cur...)
	s.prevTime = now
	prevKind := s.lastKind
	s.lastKind = snap.Verdict.Kind
	subs := make([]chan *Snapshot, 0, len(s.subs))
	for c := range s.subs {
		subs = append(subs, c)
	}
	s.mu.Unlock()

	s.cur.Store(snap)
	s.export(snap)
	for _, c := range subs {
		select {
		case c <- snap:
		default: // consumer is behind; it will catch up from Current
		}
	}
	// Capture on the transition into Straggler only: one profile per
	// episode, not one per tick of a long episode.
	if snap.Verdict.Kind == Straggler && prevKind != Straggler && s.opt.AutoProfile > 0 {
		s.maybeProfile()
	}
	return snap
}

// build computes one snapshot from the current cumulative readings. The
// caller holds s.mu.
func (s *Sampler) build(now time.Time, cur []ring.NodeHealth) *Snapshot {
	snap := &Snapshot{
		Seq:      s.seq.Add(1),
		Time:     now,
		Slowest:  -1,
		Starved:  -1,
		Captures: s.captures.Load(),
		Verdict:  Verdict{Kind: Healthy, Node: -1, Reason: "warming up"},
	}
	prevByNode := make(map[int]*ring.NodeHealth, len(s.prev))
	for i := range s.prev {
		prevByNode[s.prev[i].Node] = &s.prev[i]
	}
	window := now.Sub(s.prevTime)
	first := s.prevTime.IsZero() || window <= 0
	snap.Window = window
	if first {
		snap.Window = 0
	}

	rows := make([]trace.PhaseTotals, 0, len(cur))
	var faultDelta int64
	alpha := s.opt.Alpha
	for i := range cur {
		nh := &cur[i]
		st := s.states[nh.Node]
		if st == nil {
			st = &nodeState{
				hop: NewWindowed(nh.HopBounds, s.opt.Windows),
				g:   newNodeGauges(nh.Node),
			}
			s.states[nh.Node] = st
		}
		ns := NodeSample{Node: nh.Node, QueueDepth: nh.QueueDepth, ChunkBytes: nh.ChunkBytes}
		if prev, ok := prevByNode[nh.Node]; ok && !first {
			w := float64(window.Nanoseconds())
			busy := float64(nh.JoinNs-prev.JoinNs+nh.StageNs-prev.StageNs) / w
			wait := float64(nh.WaitNs-prev.WaitNs) / w
			join := float64(nh.JoinNs-prev.JoinNs) / w
			stage := float64(nh.StageNs-prev.StageNs) / w
			stall := float64(nh.StallNs-prev.StallNs) / w
			if !st.warm {
				st.ewmaBusy, st.ewmaWait, st.ewmaJoin, st.ewmaStage, st.ewmaStall = busy, wait, join, stage, stall
				st.warm = true
			} else {
				st.ewmaBusy += alpha * (busy - st.ewmaBusy)
				st.ewmaWait += alpha * (wait - st.ewmaWait)
				st.ewmaJoin += alpha * (join - st.ewmaJoin)
				st.ewmaStage += alpha * (stage - st.ewmaStage)
				st.ewmaStall += alpha * (stall - st.ewmaStall)
			}
			ns.Processed = nh.Processed - prev.Processed
			ns.Materializes = nh.Materializes - prev.Materializes
			ns.FragsPerSec = float64(ns.Processed) / window.Seconds()
			rows = append(rows, trace.PhaseTotals{
				Node:  nh.Node,
				Wait:  time.Duration(nh.WaitNs - prev.WaitNs),
				Join:  time.Duration(nh.JoinNs - prev.JoinNs),
				Stage: time.Duration(nh.StageNs - prev.StageNs),
				Wall:  window,
			})
		}
		ns.BusyShare, ns.WaitShare, ns.StallShare = st.ewmaBusy, st.ewmaWait, st.ewmaStall
		ns.JoinShare, ns.StageShare = st.ewmaJoin, st.ewmaStage

		// Rotate the hop histogram window: delta of cumulative buckets.
		st.deltaHop = st.deltaHop[:0]
		for bi, c := range nh.HopCounts {
			var p int64
			if bi < len(st.prevHop) {
				p = st.prevHop[bi]
			}
			st.deltaHop = append(st.deltaHop, c-p)
		}
		st.prevHop = append(st.prevHop[:0], nh.HopCounts...)
		if !first {
			st.hop.Push(st.deltaHop)
		}
		ns.HopP50Ns = st.hop.Quantile(0.50)
		ns.HopP99Ns = st.hop.Quantile(0.99)
		snap.Nodes = append(snap.Nodes, ns)
	}

	worstLink, worstLinkDelta := "", int64(0)
	for _, fc := range chaoslink.SnapshotFaults() {
		name := fc.Link.String()
		snap.Faults = append(snap.Faults, LinkFaults{
			Link: name, Drops: fc.Drops, Corrupts: fc.Corrupts, Delays: fc.Delays,
		})
		failures := fc.Drops + fc.Corrupts
		d := failures - s.prevFaults[name]
		s.prevFaults[name] = failures
		if !first && d > 0 {
			faultDelta += d
			if d > worstLinkDelta {
				worstLink, worstLinkDelta = name, d
			}
		}
	}

	if first || len(rows) == 0 {
		return snap
	}
	attr := trace.Attribute(rows)
	snap.Slowest = attr.SlowestNode
	snap.Starved = attr.MostStarvedNode
	snap.Score = attr.StragglerScore
	snap.Verdict = s.verdict(snap, attr, faultDelta, worstLink)
	return snap
}

// verdict ranks the window's signals, worst first: faults beat a
// straggler beats a credit stall beats healthy. The caller holds s.mu.
func (s *Sampler) verdict(snap *Snapshot, attr trace.Attribution, faults int64, faultLink string) Verdict {
	// Degraded: failure faults (drops, corrupted doorbells — not mere
	// delays, which surface as straggling) moved this window; recovery
	// or graceful degradation is in play right now.
	if faults > 0 {
		return Verdict{
			Kind: Degraded, Node: -1, Link: faultLink,
			Reason: fmt.Sprintf("%d link fault(s) this window, worst on %s", faults, faultLink),
		}
	}
	// Straggler: the attribution model's ratio over smoothed floors.
	if attr.SlowestNode >= 0 && attr.StragglerScore >= s.opt.StragglerScore {
		if st := s.states[attr.SlowestNode]; st != nil && st.ewmaBusy >= s.opt.MinBusyShare {
			return Verdict{
				Kind: Straggler, Node: attr.SlowestNode, Score: attr.StragglerScore,
				Reason: fmt.Sprintf("node %d busy %.0f%% of wall, %.1fx the others' mean",
					attr.SlowestNode, st.ewmaBusy*100, attr.StragglerScore),
			}
		}
	}
	// CreditStall: dominant send-side backpressure names the egress link.
	stallNode, stallShare := -1, 0.0
	for id, st := range s.states {
		if st.warm && st.ewmaStall > stallShare {
			stallNode, stallShare = id, st.ewmaStall
		}
	}
	if stallNode >= 0 && stallShare >= s.opt.StallShare {
		to := (stallNode + 1) % len(snap.Nodes)
		return Verdict{
			Kind: CreditStall, Node: stallNode, Score: stallShare,
			Link: fmt.Sprintf("%d→%d", stallNode, to),
			Reason: fmt.Sprintf("node %d stalled %.0f%% of the window waiting on send credits toward node %d",
				stallNode, stallShare*100, to),
		}
	}
	return Verdict{Kind: Healthy, Node: -1, Reason: "ring balanced"}
}

// export refreshes the Prometheus series from a published snapshot.
func (s *Sampler) export(snap *Snapshot) {
	s.m.samples.Inc()
	s.m.verdict.Set(int64(snap.Verdict.Kind))
	s.m.score.Set(int64(snap.Score * 1000))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ns := range snap.Nodes {
		st := s.states[ns.Node]
		if st == nil {
			continue
		}
		st.g.busy.Set(int64(ns.BusyShare * 1000))
		st.g.wait.Set(int64(ns.WaitShare * 1000))
		st.g.stall.Set(int64(ns.StallShare * 1000))
		st.g.hopP50.Set(ns.HopP50Ns)
		st.g.hopP99.Set(ns.HopP99Ns)
	}
}
