package health

// WindowedHistogram turns a cumulative log-bucketed histogram into a
// rolling-window view: each sampling tick pushes the per-bucket count
// deltas observed in that window, the oldest window rotates out, and
// quantiles are read off the merged windows with linear interpolation
// inside the matched bucket ("log-linear": log-spaced bounds, linear
// within a bucket). Percentiles therefore track the last W windows of
// traffic instead of the whole process lifetime — a straggler that slows
// down NOW moves the p99 NOW.
//
// Not safe for concurrent use; the Sampler owns one per node and touches
// it only from its tick loop.
type WindowedHistogram struct {
	// bounds are inclusive upper bucket bounds, strictly increasing; an
	// implicit +Inf bucket follows. Shared with the source histogram —
	// read-only.
	bounds []int64
	// windows is a ring of per-window bucket deltas, each len(bounds)+1.
	windows [][]int64
	head    int
	filled  int
	// merged is the scratch sum across live windows, rebuilt on Push.
	merged []int64
	total  int64
}

// NewWindowed builds a rolling view over the given bucket bounds keeping
// the most recent `windows` pushes. windows must be >= 1.
func NewWindowed(bounds []int64, windows int) *WindowedHistogram {
	if windows < 1 {
		windows = 1
	}
	w := &WindowedHistogram{
		bounds:  bounds,
		windows: make([][]int64, windows),
		merged:  make([]int64, len(bounds)+1),
	}
	for i := range w.windows {
		w.windows[i] = make([]int64, len(bounds)+1)
	}
	return w
}

// Push rotates in one window of per-bucket deltas (len(bounds)+1 values).
// Negative deltas (a reset source) clamp to zero.
func (w *WindowedHistogram) Push(delta []int64) {
	slot := w.windows[w.head]
	for i := range slot {
		var d int64
		if i < len(delta) {
			d = delta[i]
		}
		if d < 0 {
			d = 0
		}
		slot[i] = d
	}
	w.head = (w.head + 1) % len(w.windows)
	if w.filled < len(w.windows) {
		w.filled++
	}
	// Re-merge: W is small (single digits) and this runs once per tick.
	w.total = 0
	for i := range w.merged {
		w.merged[i] = 0
	}
	for wi := 0; wi < w.filled; wi++ {
		for i, c := range w.windows[wi] {
			w.merged[i] += c
			w.total += c
		}
	}
}

// Count is the number of observations across the live windows.
func (w *WindowedHistogram) Count() int64 { return w.total }

// Quantile returns the q-th quantile (0 < q <= 1) over the merged
// windows, interpolating linearly inside the matched bucket. The first
// bucket interpolates from zero; the +Inf bucket reports the last finite
// bound (the histogram cannot resolve beyond it). Returns 0 when empty.
func (w *WindowedHistogram) Quantile(q float64) int64 {
	if w.total == 0 || len(w.bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(w.total)
	var cum float64
	for i, c := range w.merged {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i >= len(w.bounds) {
				return w.bounds[len(w.bounds)-1]
			}
			var lo int64
			if i > 0 {
				lo = w.bounds[i-1]
			}
			hi := w.bounds[i]
			frac := (rank - cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return w.bounds[len(w.bounds)-1]
}
