package health

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"time"
)

// CaptureProfile records a CPU profile for d and returns the pprof bytes.
// The ring's entity goroutines carry cyclo_node/cyclo_entity labels, so
// `go tool pprof -tagfocus cyclo_node=<id>` isolates a flagged node's
// samples. Fails if another CPU profile is already running.
func CaptureProfile(d time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("health: start cpu profile: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// maybeProfile auto-captures a profile (the caller gates on the verdict
// transition): single-flight, asynchronous, stored for LastProfile.
func (s *Sampler) maybeProfile() {
	s.mu.Lock()
	if s.profBusy {
		s.mu.Unlock()
		return
	}
	s.profBusy = true
	s.mu.Unlock()
	go func() {
		b, err := CaptureProfile(s.opt.AutoProfile)
		s.mu.Lock()
		if err == nil {
			s.profile = b
			s.captures.Add(1)
			s.m.captures.Inc()
		}
		s.profBusy = false
		s.mu.Unlock()
	}()
}

// LastProfile returns the most recent auto-captured straggler CPU
// profile, or nil when none has completed yet.
func (s *Sampler) LastProfile() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.profile
}
