package health

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cyclojoin/internal/ring"
)

// fakeSource feeds the sampler hand-written cumulative counters; tests
// mutate rows between SampleOnce calls to simulate load.
type fakeSource struct {
	rows []ring.NodeHealth
}

func (f *fakeSource) HealthSnapshot(dst []ring.NodeHealth) []ring.NodeHealth {
	return append(dst, f.rows...)
}

func threeNodes() *fakeSource {
	return &fakeSource{rows: []ring.NodeHealth{{Node: 0}, {Node: 1}, {Node: 2}}}
}

// tick takes a sample after a short sleep so the window has real width.
func tick(s *Sampler) *Snapshot {
	time.Sleep(5 * time.Millisecond)
	return s.SampleOnce()
}

func TestBaselineThenHealthy(t *testing.T) {
	src := threeNodes()
	s := NewSampler(src, Options{})
	base := s.SampleOnce()
	if base.Window != 0 {
		t.Errorf("baseline Window = %v, want 0", base.Window)
	}
	if base.Verdict.Kind != Healthy {
		t.Errorf("baseline verdict = %v, want healthy", base.Verdict.Kind)
	}
	if s.Current() != base {
		t.Error("Current() should return the published baseline")
	}

	// Balanced load: every node equally busy.
	for i := range src.rows {
		src.rows[i].JoinNs += int64(2 * time.Millisecond)
		src.rows[i].Processed += 7
	}
	snap := tick(s)
	if snap.Verdict.Kind != Healthy {
		t.Errorf("balanced verdict = %v (%s), want healthy", snap.Verdict.Kind, snap.Verdict.Reason)
	}
	if snap.Window <= 0 {
		t.Errorf("second sample Window = %v, want > 0", snap.Window)
	}
	if len(snap.Nodes) != 3 {
		t.Fatalf("len(Nodes) = %d, want 3", len(snap.Nodes))
	}
	if snap.Nodes[1].Processed != 7 {
		t.Errorf("node 1 Processed delta = %d, want 7", snap.Nodes[1].Processed)
	}
	if snap.Nodes[1].FragsPerSec <= 0 {
		t.Errorf("node 1 FragsPerSec = %v, want > 0", snap.Nodes[1].FragsPerSec)
	}
}

func TestStragglerVerdictNamesTheBusyNode(t *testing.T) {
	src := threeNodes()
	s := NewSampler(src, Options{})
	s.SampleOnce()

	// Node 2 burns an entire second of join+stage while the others barely
	// move: busy share >> MinBusyShare, ratio >> StragglerScore.
	src.rows[0].JoinNs += int64(2 * time.Millisecond)
	src.rows[1].JoinNs += int64(2 * time.Millisecond)
	src.rows[2].JoinNs += int64(500 * time.Millisecond)
	src.rows[2].StageNs += int64(500 * time.Millisecond)
	snap := tick(s)
	if snap.Verdict.Kind != Straggler {
		t.Fatalf("verdict = %v (%s), want straggler", snap.Verdict.Kind, snap.Verdict.Reason)
	}
	if snap.Verdict.Node != 2 {
		t.Errorf("straggler node = %d, want 2", snap.Verdict.Node)
	}
	if snap.Slowest != 2 {
		t.Errorf("Slowest = %d, want 2", snap.Slowest)
	}
	if snap.Verdict.Score < 2 {
		t.Errorf("straggler score = %v, want >= 2", snap.Verdict.Score)
	}
}

func TestCreditStallVerdictNamesTheEgressLink(t *testing.T) {
	src := threeNodes()
	s := NewSampler(src, Options{})
	s.SampleOnce()

	// Balanced busy (no straggler), but node 1's sender spends a full
	// second blocked on credits: stall share dominates.
	for i := range src.rows {
		src.rows[i].JoinNs += int64(3 * time.Millisecond)
	}
	src.rows[1].StallNs += int64(time.Second)
	snap := tick(s)
	if snap.Verdict.Kind != CreditStall {
		t.Fatalf("verdict = %v (%s), want credit-stall", snap.Verdict.Kind, snap.Verdict.Reason)
	}
	if snap.Verdict.Node != 1 {
		t.Errorf("stalling node = %d, want 1", snap.Verdict.Node)
	}
	if snap.Verdict.Link != "1→2" {
		t.Errorf("stalled link = %q, want 1→2", snap.Verdict.Link)
	}
}

func TestVerdictKindTextRoundTrip(t *testing.T) {
	for _, k := range []VerdictKind{Healthy, Straggler, CreditStall, Degraded} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", k, err)
		}
		var back VerdictKind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", b, err)
		}
		if back != k {
			t.Errorf("round trip %v -> %q -> %v", k, b, back)
		}
	}
	var bad VerdictKind
	if err := bad.UnmarshalText([]byte("spinning")); err == nil {
		t.Error("UnmarshalText accepted an unknown kind")
	}
}

func TestSubscribeDeliversAndCancelCloses(t *testing.T) {
	src := threeNodes()
	s := NewSampler(src, Options{})
	ch, cancel := s.Subscribe()
	snap := s.SampleOnce()
	select {
	case got := <-ch:
		if got != snap {
			t.Error("subscriber received a different snapshot than published")
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never received the snapshot")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}
	cancel() // idempotent
}

func TestHandlerOnceServesJSON(t *testing.T) {
	src := threeNodes()
	s := NewSampler(src, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?once=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(snap.Nodes) != 3 {
		t.Errorf("len(Nodes) = %d, want 3", len(snap.Nodes))
	}
}

func TestHandlerStreamsSSE(t *testing.T) {
	src := threeNodes()
	s := NewSampler(src, Options{Interval: 5 * time.Millisecond})
	s.Start()
	defer s.Stop()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancelReq := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReq()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	// The payload must decode end to end: read two events (the immediate
	// replay plus one live tick) and check sequence numbers move.
	sc := bufio.NewScanner(resp.Body)
	var seqs []int64
	for sc.Scan() && len(seqs) < 2 {
		line := sc.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(bytes.TrimPrefix(line, []byte("data: ")), &snap); err != nil {
			t.Fatalf("bad SSE payload: %v", err)
		}
		seqs = append(seqs, snap.Seq)
	}
	if len(seqs) < 2 {
		t.Fatalf("read %d events, want 2 (scan err: %v)", len(seqs), sc.Err())
	}
	if seqs[1] <= seqs[0] {
		t.Errorf("sequence did not advance: %v", seqs)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	s := NewSampler(threeNodes(), Options{Interval: time.Millisecond})
	s.Start()
	s.Start()
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop()
	if s.Current() == nil {
		t.Error("no snapshot published before Stop")
	}
	// Stop without Start must not hang.
	s2 := NewSampler(threeNodes(), Options{})
	s2.Stop()
}
