// Package query is a small SQL front end over cyclo-join — a working slice
// of the "complete SQL-enabled system" the paper names as its ongoing
// research goal (§VII).
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT ( COUNT(*) | * )
//	FROM table ( JOIN table ON table.col = table.col )*
//	( WHERE table.col op number ( AND table.col op number )* )?
//
// with op ∈ {=, <, <=, >, >=} and an additional BETWEEN lo AND hi form.
//
// Every registered relation exposes exactly one join-key column (the
// paper's workloads are key + opaque payload), so all join and filter
// predicates refer to that column; the parser resolves names against the
// catalog and rejects anything else. Multi-way joins execute as the paper
// sketches for ternary joins (§IV-A): a left-deep chain of cyclo-join
// runs, each materializing its distributed result as the rotating input of
// the next.
package query

import (
	"fmt"
	"sort"

	"cyclojoin/internal/relation"
)

// Catalog maps table names to relations and their key-column names.
type Catalog struct {
	tables map[string]catalogEntry
}

type catalogEntry struct {
	rel *relation.Relation
	key string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]catalogEntry)}
}

// Register adds a table under the given name, exposing keyColumn as its
// join-key column. Re-registering a name replaces the table.
func (c *Catalog) Register(name, keyColumn string, rel *relation.Relation) error {
	if name == "" || keyColumn == "" {
		return fmt.Errorf("query: register needs a table and a key column name")
	}
	if rel == nil {
		return fmt.Errorf("query: register %s: nil relation", name)
	}
	c.tables[name] = catalogEntry{rel: rel, key: keyColumn}
	return nil
}

// Tables lists the registered table names, sorted.
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (c *Catalog) lookup(name string) (catalogEntry, error) {
	e, ok := c.tables[name]
	if !ok {
		return catalogEntry{}, fmt.Errorf("query: unknown table %q", name)
	}
	return e, nil
}

// Result is a query's outcome.
type Result struct {
	// Count is the row count (always populated).
	Count int64
	// Rows is the materialized output for SELECT *; nil for COUNT(*) and
	// aggregates.
	Rows *relation.Relation
	// AggValue holds the SUM/MIN/MAX result over the selected key column;
	// nil when no aggregate was selected or no rows qualified (SQL NULL).
	AggValue *uint64
}
