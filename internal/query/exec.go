package query

import (
	"fmt"
	"sync"

	"cyclojoin/internal/core"
	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/join/sortmerge"
	"cyclojoin/internal/relation"
)

// Engine executes parsed queries on a cyclo-join ring.
type Engine struct {
	catalog *Catalog
	nodes   int
	opts    join.Options
}

// NewEngine builds an engine that runs every join on a ring of the given
// size.
func NewEngine(catalog *Catalog, nodes int, opts join.Options) (*Engine, error) {
	if catalog == nil {
		return nil, fmt.Errorf("query: nil catalog")
	}
	if nodes < 1 {
		return nil, fmt.Errorf("query: %d nodes", nodes)
	}
	return &Engine{catalog: catalog, nodes: nodes, opts: opts}, nil
}

// Execute parses, validates and runs one query.
func (e *Engine) Execute(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	inputs, err := e.bind(st)
	if err != nil {
		return nil, err
	}

	// Filters push down to the base tables before any join runs.
	filtered := make([]*relation.Relation, len(inputs))
	for i, in := range inputs {
		filtered[i] = applyFilters(in.rel, filtersFor(st, st.Tables[i]))
	}

	wantAgg := st.Agg == AggSum || st.Agg == AggMin || st.Agg == AggMax
	if (st.OrderByTable != "" || st.Limit >= 0) && (wantAgg || st.CountOnly) {
		return nil, fmt.Errorf("query: ORDER BY / LIMIT apply to SELECT *, not aggregates")
	}

	if len(filtered) == 1 {
		out := filtered[0]
		res := &Result{Count: int64(out.Len())}
		switch {
		case wantAgg:
			res.AggValue = aggregateKeys(out, st.Agg)
		case !st.CountOnly:
			res.Rows = shapeOutput(out, st)
			res.Count = int64(res.Rows.Len())
		}
		return res, nil
	}

	// Left-deep chain of cyclo-join runs (§IV-A's ternary-join
	// composition, generalized): the running intermediate rotates, the
	// next base table is stationed.
	cur := filtered[0]
	for step := 1; step < len(filtered); step++ {
		last := step == len(filtered)-1
		var agg *aggregator
		if last && wantAgg {
			agg = &aggregator{kind: st.Agg}
		}
		countOnly := last && st.CountOnly
		next, count, err := e.joinStep(cur, filtered[step], countOnly, agg, step)
		if err != nil {
			return nil, fmt.Errorf("query: join step %d (%s): %w", step, st.Tables[step], err)
		}
		if agg != nil {
			return &Result{Count: agg.rows(), AggValue: agg.value()}, nil
		}
		if countOnly {
			return &Result{Count: count}, nil
		}
		cur = next
	}
	cur = shapeOutput(cur, st)
	return &Result{Count: int64(cur.Len()), Rows: cur}, nil
}

// shapeOutput applies ORDER BY and LIMIT to a materialized result.
func shapeOutput(out *relation.Relation, st *Statement) *relation.Relation {
	if st.OrderByTable != "" {
		out = sortmerge.SortedCopy(out)
		if st.OrderDesc {
			out = reverseRelation(out)
		}
	}
	if st.Limit >= 0 && st.Limit < out.Len() {
		view, err := out.Slice(0, st.Limit)
		if err != nil {
			// Bounds checked above; unreachable.
			panic(err)
		}
		out = view
	}
	return out
}

// reverseRelation returns a copy with tuples in reverse order.
func reverseRelation(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Schema(), r.Len())
	for i := r.Len() - 1; i >= 0; i-- {
		if err := out.AppendFrom(r, i); err != nil {
			// Same schema; unreachable.
			panic(err)
		}
	}
	return out
}

// aggregator folds matched output keys under SUM/MIN/MAX. It is shared by
// every host's join entity, so it must be safe for concurrent use.
type aggregator struct {
	mu   sync.Mutex
	kind AggKind
	n    int64
	sum  uint64
	min  uint64
	max  uint64
	seen bool
}

var _ join.Collector = (*aggregator)(nil)

// Emit implements join.Collector.
func (a *aggregator) Emit(rKey, sKey uint64, rPay, sPay []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	a.sum += rKey
	if !a.seen || rKey < a.min {
		a.min = rKey
	}
	if !a.seen || rKey > a.max {
		a.max = rKey
	}
	a.seen = true
}

func (a *aggregator) rows() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// value returns the aggregate, or nil when no rows matched (SQL's NULL).
func (a *aggregator) value() *uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.seen {
		return nil
	}
	var v uint64
	switch a.kind {
	case AggSum:
		v = a.sum
	case AggMin:
		v = a.min
	case AggMax:
		v = a.max
	}
	return &v
}

// aggregateKeys folds a base relation's keys without a join.
func aggregateKeys(rel *relation.Relation, kind AggKind) *uint64 {
	if rel.Len() == 0 {
		return nil
	}
	v := rel.Key(0)
	for i := 1; i < rel.Len(); i++ {
		k := rel.Key(i)
		switch kind {
		case AggSum:
			v += k
		case AggMin:
			if k < v {
				v = k
			}
		case AggMax:
			if k > v {
				v = k
			}
		}
	}
	return &v
}

// bound is one FROM-clause table resolved against the catalog.
type bound struct {
	name string
	rel  *relation.Relation
	key  string
}

// bind resolves and semantically validates the statement.
func (e *Engine) bind(st *Statement) ([]bound, error) {
	seen := map[string]bool{}
	inputs := make([]bound, len(st.Tables))
	for i, name := range st.Tables {
		if seen[name] {
			return nil, fmt.Errorf("query: table %q appears twice (self-joins need aliases, which are not supported)", name)
		}
		seen[name] = true
		entry, err := e.catalog.lookup(name)
		if err != nil {
			return nil, err
		}
		inputs[i] = bound{name: name, rel: entry.rel, key: entry.key}
	}

	keyOf := map[string]string{}
	for _, b := range inputs {
		keyOf[b.name] = b.key
	}
	checkCol := func(table, col string) error {
		key, ok := keyOf[table]
		if !ok {
			return fmt.Errorf("query: table %q not in FROM clause", table)
		}
		if col != key {
			return fmt.Errorf("query: column %s.%s is not the table's join key (%s.%s)", table, col, table, key)
		}
		return nil
	}

	for i, jc := range st.Joins {
		newcomer := st.Tables[i+1]
		if jc.LeftTable != newcomer && jc.RightTable != newcomer {
			return nil, fmt.Errorf("query: JOIN %s ON condition does not reference %s", newcomer, newcomer)
		}
		other := jc.LeftTable
		if other == newcomer {
			other = jc.RightTable
		}
		if pos := indexOf(st.Tables, other); pos < 0 || pos > i {
			return nil, fmt.Errorf("query: JOIN %s ON references %s, which is not joined yet", newcomer, other)
		}
		if err := checkCol(jc.LeftTable, jc.LeftCol); err != nil {
			return nil, err
		}
		if err := checkCol(jc.RightTable, jc.RightCol); err != nil {
			return nil, err
		}
	}
	for _, f := range st.Filters {
		if err := checkCol(f.Table, f.Col); err != nil {
			return nil, err
		}
	}
	if st.Agg == AggSum || st.Agg == AggMin || st.Agg == AggMax {
		if err := checkCol(st.AggTable, st.AggCol); err != nil {
			return nil, err
		}
	}
	if st.OrderByTable != "" {
		if err := checkCol(st.OrderByTable, st.OrderByCol); err != nil {
			return nil, err
		}
	}
	return inputs, nil
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

func filtersFor(st *Statement, table string) []Filter {
	var out []Filter
	for _, f := range st.Filters {
		if f.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// applyFilters scans rel and keeps the tuples passing every filter.
func applyFilters(rel *relation.Relation, filters []Filter) *relation.Relation {
	if len(filters) == 0 {
		return rel
	}
	out := relation.New(rel.Schema(), rel.Len()/2)
	for i := 0; i < rel.Len(); i++ {
		keep := true
		for _, f := range filters {
			if !f.Matches(rel.Key(i)) {
				keep = false
				break
			}
		}
		if keep {
			if err := out.AppendFrom(rel, i); err != nil {
				// Same schema by construction; unreachable.
				panic(err)
			}
		}
	}
	return out
}

// joinStep runs one cyclo-join: `rotating` circulates against the
// stationed `stationary`. With countOnly it returns only the match count;
// with agg set, matches fold into the shared aggregator; otherwise the
// concatenated materialized result is returned.
func (e *Engine) joinStep(rotating, stationary *relation.Relation, countOnly bool, agg *aggregator, step int) (*relation.Relation, int64, error) {
	outName := fmt.Sprintf("join-%d", step)
	rWidth := rotating.Schema().PayloadWidth
	sWidth := stationary.Schema().PayloadWidth

	cfg := core.Config{
		Nodes:     e.nodes,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Opts:      e.opts,
	}
	switch {
	case agg != nil:
		cfg.Collectors = func(node int) join.Collector { return agg }
	case !countOnly:
		cfg.Collectors = func(node int) join.Collector {
			return join.NewMaterializer(outName, rWidth, sWidth)
		}
	}
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		_ = cluster.Close()
	}()

	sFrags, err := relation.Partition(stationary, e.nodes)
	if err != nil {
		return nil, 0, err
	}
	rParts, err := relation.Partition(rotating, e.nodes)
	if err != nil {
		return nil, 0, err
	}
	rFrags := make([][]*relation.Fragment, e.nodes)
	for i, f := range rParts {
		rFrags[i] = []*relation.Fragment{f}
	}
	res, err := cluster.Join(sFrags, rFrags)
	if err != nil {
		return nil, 0, err
	}
	if agg != nil {
		return nil, agg.rows(), nil
	}
	if countOnly {
		return nil, res.Matches(), nil
	}

	frags := make([]*relation.Fragment, len(res.Collectors))
	outSchema := relation.Schema{Name: outName, PayloadWidth: rWidth + relation.KeyWidth + sWidth}
	for i, c := range res.Collectors {
		m, ok := c.(*join.Materializer)
		if !ok {
			return nil, 0, fmt.Errorf("query: unexpected collector %T", c)
		}
		frags[i] = &relation.Fragment{Rel: m.Result(), Index: i, Of: len(res.Collectors)}
	}
	out, err := relation.Concat(outSchema, frags)
	if err != nil {
		return nil, 0, err
	}
	return out, int64(out.Len()), nil
}
