package query

import (
	"fmt"
	"strings"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/planner"
	"cyclojoin/internal/relation"
)

// Explain analyzes a query without executing it: it binds the statement,
// applies the WHERE filters to estimate the base cardinalities, sizes every
// join step with the correlated-sampling estimator, and costs each step
// with the cyclo-join planner. The result is the textual plan a database
// shell prints for EXPLAIN.
func (e *Engine) Explain(sql string) (string, error) {
	st, err := Parse(sql)
	if err != nil {
		return "", err
	}
	inputs, err := e.bind(st)
	if err != nil {
		return "", err
	}
	cal := costmodel.Default()

	var b strings.Builder
	fmt.Fprintf(&b, "ring: %d hosts, %d join threads\n", e.nodes, e.opts.Workers())

	filtered := make([]*relation.Relation, len(inputs))
	for i, in := range inputs {
		fs := filtersFor(st, st.Tables[i])
		filtered[i] = applyFilters(in.rel, fs)
		if len(fs) > 0 {
			fmt.Fprintf(&b, "scan %s: %d rows, filtered to %d\n", in.name, in.rel.Len(), filtered[i].Len())
		} else {
			fmt.Fprintf(&b, "scan %s: %d rows\n", in.name, filtered[i].Len())
		}
	}

	// estimationRate trades estimation time for accuracy; ≈6 % of the key
	// space is plenty for plan-level decisions.
	const estimationRate = 16
	curRows := float64(filtered[0].Len())
	cur := filtered[0]
	for step := 1; step < len(filtered); step++ {
		est := EstimateJoinSizeFloat(cur, filtered[step], estimationRate)
		plan, err := planner.Choose(cal, planner.Workload{
			RTuples: int(curRows),
			STuples: filtered[step].Len(),
			Nodes:   e.nodes,
			Threads: e.opts.Workers(),
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "cyclo-join %d: rotate %.0f rows against %s (%d rows) — plan %s, est. output %.0f rows\n",
			step, curRows, st.Tables[step], filtered[step].Len(), plan, est)
		curRows = est
		// EXPLAIN does not execute, so the true intermediate is not
		// available for the next step's estimate. Because every join in
		// the chain shares the key column, the just-joined stationary
		// side is a usable proxy for the intermediate's key distribution
		// (its keys survive into the output); the cardinality comes from
		// the estimate above.
		cur = filtered[step]
	}

	switch {
	case st.Agg == AggSum || st.Agg == AggMin || st.Agg == AggMax:
		fmt.Fprintf(&b, "aggregate: %s(%s.%s)\n", strings.ToUpper(string(st.Agg)), st.AggTable, st.AggCol)
	case st.CountOnly:
		fmt.Fprintf(&b, "aggregate: COUNT(*)\n")
	default:
		fmt.Fprintf(&b, "materialize result")
		if st.OrderByTable != "" {
			dir := "ASC"
			if st.OrderDesc {
				dir = "DESC"
			}
			fmt.Fprintf(&b, ", ORDER BY %s.%s %s", st.OrderByTable, st.OrderByCol, dir)
		}
		if st.Limit >= 0 {
			fmt.Fprintf(&b, ", LIMIT %d", st.Limit)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// EstimateJoinSizeFloat adapts the planner's estimator for EXPLAIN (kept
// here to avoid a query→planner→query cycle in the estimator tests).
func EstimateJoinSizeFloat(r, s *relation.Relation, rate int) float64 {
	return planner.EstimateJoinSize(r, s, rate)
}
