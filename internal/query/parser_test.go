package query

import (
	"strings"
	"testing"
)

func TestParseCount(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if !st.CountOnly || len(st.Tables) != 1 || st.Tables[0] != "orders" {
		t.Errorf("statement = %+v", st)
	}
}

func TestParseStar(t *testing.T) {
	st, err := Parse("select * from r")
	if err != nil {
		t.Fatal(err)
	}
	if st.CountOnly {
		t.Error("SELECT * parsed as count")
	}
}

func TestParseJoinChain(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM r JOIN s ON r.k = s.k JOIN t ON s.k = t.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tables) != 3 || len(st.Joins) != 2 {
		t.Fatalf("tables=%v joins=%v", st.Tables, st.Joins)
	}
	if st.Joins[0] != (JoinCond{LeftTable: "r", LeftCol: "k", RightTable: "s", RightCol: "k"}) {
		t.Errorf("join 0 = %+v", st.Joins[0])
	}
}

func TestParseWhere(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM r WHERE r.k < 100 AND r.k >= 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Filters) != 2 {
		t.Fatalf("filters = %+v", st.Filters)
	}
	if st.Filters[0].Op != OpLt || st.Filters[0].Value != 100 {
		t.Errorf("filter 0 = %+v", st.Filters[0])
	}
	if st.Filters[1].Op != OpGe || st.Filters[1].Value != 10 {
		t.Errorf("filter 1 = %+v", st.Filters[1])
	}
}

func TestParseBetween(t *testing.T) {
	st, err := Parse("SELECT * FROM r WHERE r.k BETWEEN 5 AND 9")
	if err != nil {
		t.Fatal(err)
	}
	f := st.Filters[0]
	if f.Op != OpBetween || f.Value != 5 || f.Hi != 9 {
		t.Errorf("filter = %+v", f)
	}
}

func TestParseNumberWithUnderscores(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM r WHERE r.k < 1_000_000")
	if err != nil {
		t.Fatal(err)
	}
	if st.Filters[0].Value != 1_000_000 {
		t.Errorf("value = %d", st.Filters[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT COUNT(*)",
		"SELECT COUNT(* FROM r",
		"SELECT banana FROM r",
		"SELECT * FROM",
		"SELECT * FROM r JOIN",
		"SELECT * FROM r JOIN s",
		"SELECT * FROM r JOIN s ON r.k",
		"SELECT * FROM r JOIN s ON r.k = s",
		"SELECT * FROM r WHERE",
		"SELECT * FROM r WHERE r.k",
		"SELECT * FROM r WHERE r.k !! 3",
		"SELECT * FROM r WHERE r.k BETWEEN 9 AND 5",
		"SELECT * FROM r WHERE r.k < 10 trailing",
		"SELECT * FROM select",
		"SELECT * FROM r; DROP TABLE r",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select count(*) from R join S on R.k = S.k where S.k between 1 and 2"); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMatches(t *testing.T) {
	tests := []struct {
		f    Filter
		key  uint64
		want bool
	}{
		{Filter{Op: OpEq, Value: 5}, 5, true},
		{Filter{Op: OpEq, Value: 5}, 6, false},
		{Filter{Op: OpLt, Value: 5}, 4, true},
		{Filter{Op: OpLt, Value: 5}, 5, false},
		{Filter{Op: OpLe, Value: 5}, 5, true},
		{Filter{Op: OpGt, Value: 5}, 6, true},
		{Filter{Op: OpGe, Value: 5}, 5, true},
		{Filter{Op: OpBetween, Value: 3, Hi: 7}, 3, true},
		{Filter{Op: OpBetween, Value: 3, Hi: 7}, 7, true},
		{Filter{Op: OpBetween, Value: 3, Hi: 7}, 8, false},
		{Filter{Op: FilterOp("??")}, 1, false},
	}
	for _, tt := range tests {
		if got := tt.f.Matches(tt.key); got != tt.want {
			t.Errorf("%+v.Matches(%d) = %v, want %v", tt.f, tt.key, got, tt.want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, q := range []string{"SELECT #", "a ~ b", "99999999999999999999999999"} {
		if _, err := lex(q); err == nil {
			t.Errorf("lex(%q): want error", q)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, err := lex("abc 12 <=")
	if err != nil {
		t.Fatal(err)
	}
	joined := make([]string, 0, len(toks))
	for _, tk := range toks {
		joined = append(joined, tk.String())
	}
	s := strings.Join(joined, " ")
	for _, want := range []string{"abc", "12", "<=", "end of query"} {
		if !strings.Contains(s, want) {
			t.Errorf("token strings %q missing %q", s, want)
		}
	}
}
