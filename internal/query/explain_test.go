package query

import (
	"strings"
	"testing"
)

func TestExplainSingleTable(t *testing.T) {
	e := newEngine(t, fixture(t))
	out, err := e.Explain("SELECT COUNT(*) FROM nums WHERE nums.id < 10")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scan nums: 100 rows, filtered to 10", "COUNT(*)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainJoinChain(t *testing.T) {
	e := newEngine(t, fixture(t))
	out, err := e.Explain(
		"SELECT * FROM nums JOIN evens ON nums.id = evens.id JOIN dups ON evens.id = dups.id " +
			"ORDER BY nums.id DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ring: 3 hosts",
		"scan nums: 100 rows",
		"cyclo-join 1:",
		"cyclo-join 2:",
		"plan ",
		"(rotate",
		"est. output",
		"ORDER BY nums.id DESC",
		"LIMIT 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainAggregate(t *testing.T) {
	e := newEngine(t, fixture(t))
	out, err := e.Explain("SELECT SUM(nums.id) FROM nums JOIN evens ON nums.id = evens.id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SUM(nums.id)") {
		t.Errorf("explain missing aggregate:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	e := newEngine(t, fixture(t))
	for _, q := range []string{"nonsense", "SELECT COUNT(*) FROM missing"} {
		if _, err := e.Explain(q); err == nil {
			t.Errorf("Explain(%q): want error", q)
		}
	}
}
