package query

import "testing"

func TestParseOrderByLimit(t *testing.T) {
	st, err := Parse("SELECT * FROM r ORDER BY r.k DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if st.OrderByTable != "r" || st.OrderByCol != "k" || !st.OrderDesc || st.Limit != 10 {
		t.Errorf("statement = %+v", st)
	}
	st, err = Parse("SELECT * FROM r ORDER BY r.k ASC")
	if err != nil {
		t.Fatal(err)
	}
	if st.OrderDesc || st.Limit != -1 {
		t.Errorf("statement = %+v", st)
	}
	st, err = Parse("SELECT * FROM r LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if st.Limit != 3 || st.OrderByTable != "" {
		t.Errorf("statement = %+v", st)
	}
	bad := []string{
		"SELECT * FROM r ORDER r.k",
		"SELECT * FROM r ORDER BY",
		"SELECT * FROM r LIMIT",
		"SELECT * FROM r LIMIT x",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}

func TestOrderByAscending(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT * FROM nums WHERE nums.id < 10 ORDER BY nums.id ASC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 10 {
		t.Fatalf("rows = %d", res.Rows.Len())
	}
	for i := 1; i < res.Rows.Len(); i++ {
		if res.Rows.Key(i) < res.Rows.Key(i-1) {
			t.Fatal("not ascending")
		}
	}
}

func TestOrderByDescendingWithLimit(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT * FROM nums ORDER BY nums.id DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 3 || res.Count != 3 {
		t.Fatalf("rows = %d count = %d", res.Rows.Len(), res.Count)
	}
	want := []uint64{99, 98, 97}
	for i, k := range want {
		if res.Rows.Key(i) != k {
			t.Errorf("row %d = %d, want %d", i, res.Rows.Key(i), k)
		}
	}
}

func TestOrderByOverJoin(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute(
		"SELECT * FROM nums JOIN evens ON nums.id = evens.id ORDER BY evens.id DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 2 {
		t.Fatalf("rows = %d", res.Rows.Len())
	}
	if res.Rows.Key(0) != 98 || res.Rows.Key(1) != 96 {
		t.Errorf("keys = %d, %d, want 98, 96", res.Rows.Key(0), res.Rows.Key(1))
	}
}

func TestLimitLargerThanResult(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT * FROM nums WHERE nums.id < 5 LIMIT 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 5 {
		t.Errorf("rows = %d", res.Rows.Len())
	}
}

func TestOrderByRejectedForAggregates(t *testing.T) {
	e := newEngine(t, fixture(t))
	bad := []string{
		"SELECT COUNT(*) FROM nums ORDER BY nums.id",
		"SELECT SUM(nums.id) FROM nums LIMIT 3",
	}
	for _, q := range bad {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("Execute(%q): want error", q)
		}
	}
}

func TestOrderByUnknownColumnRejected(t *testing.T) {
	e := newEngine(t, fixture(t))
	if _, err := e.Execute("SELECT * FROM nums ORDER BY nums.other"); err == nil {
		t.Error("unknown ORDER BY column: want error")
	}
	if _, err := e.Execute("SELECT * FROM nums ORDER BY evens.id"); err == nil {
		t.Error("ORDER BY table outside FROM: want error")
	}
}

func TestReservedWordsRejectedAsIdentifiers(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM order",
		"SELECT * FROM r JOIN limit ON r.k = limit.k",
		"SELECT * FROM r WHERE sum.k < 3",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): want error", q)
		}
	}
}
