package query

import "testing"

func TestParseAggregates(t *testing.T) {
	st, err := Parse("SELECT SUM(r.k) FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != AggSum || st.AggTable != "r" || st.AggCol != "k" {
		t.Errorf("statement = %+v", st)
	}
	st, err = Parse("select min(a.x) from a join b on a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != AggMin {
		t.Errorf("agg = %q", st.Agg)
	}
	if _, err := Parse("SELECT SUM(*) FROM r"); err == nil {
		t.Error("SUM(*): want error")
	}
	if _, err := Parse("SELECT MAX(r) FROM r"); err == nil {
		t.Error("MAX without column: want error")
	}
}

func TestSingleTableAggregates(t *testing.T) {
	e := newEngine(t, fixture(t)) // nums has keys 0..99 once each
	tests := []struct {
		sql  string
		want uint64
	}{
		{"SELECT SUM(nums.id) FROM nums WHERE nums.id < 5", 0 + 1 + 2 + 3 + 4},
		{"SELECT MIN(nums.id) FROM nums WHERE nums.id >= 40", 40},
		{"SELECT MAX(nums.id) FROM nums WHERE nums.id < 40", 39},
		{"SELECT SUM(nums.id) FROM nums", 99 * 100 / 2},
	}
	for _, tt := range tests {
		res, err := e.Execute(tt.sql)
		if err != nil {
			t.Errorf("%s: %v", tt.sql, err)
			continue
		}
		if res.AggValue == nil {
			t.Errorf("%s: nil aggregate", tt.sql)
			continue
		}
		if *res.AggValue != tt.want {
			t.Errorf("%s: got %d, want %d", tt.sql, *res.AggValue, tt.want)
		}
		if res.Rows != nil {
			t.Errorf("%s: aggregate must not materialize rows", tt.sql)
		}
	}
}

func TestAggregateOverJoin(t *testing.T) {
	e := newEngine(t, fixture(t))
	// nums ⋈ evens matches even keys 0..98: sum = 2*(0+1+..+49) = 2450.
	res, err := e.Execute("SELECT SUM(nums.id) FROM nums JOIN evens ON nums.id = evens.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.AggValue == nil || *res.AggValue != 2450 {
		t.Errorf("SUM over join = %v, want 2450", res.AggValue)
	}
	if res.Count != 50 {
		t.Errorf("count = %d, want 50", res.Count)
	}

	res, err = e.Execute("SELECT MAX(nums.id) FROM nums JOIN evens ON nums.id = evens.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.AggValue == nil || *res.AggValue != 98 {
		t.Errorf("MAX over join = %v, want 98", res.AggValue)
	}

	// Duplicates multiply: nums ⋈ dups matches keys 0..9, ten copies
	// each → SUM = 10 * 45.
	res, err = e.Execute("SELECT SUM(dups.id) FROM nums JOIN dups ON nums.id = dups.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.AggValue == nil || *res.AggValue != 450 {
		t.Errorf("SUM with duplicates = %v, want 450", res.AggValue)
	}
}

func TestAggregateEmptyResultIsNull(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT SUM(nums.id) FROM nums WHERE nums.id > 10000")
	if err != nil {
		t.Fatal(err)
	}
	if res.AggValue != nil {
		t.Errorf("aggregate over empty set = %v, want nil (SQL NULL)", *res.AggValue)
	}
	res, err = e.Execute("SELECT MIN(nums.id) FROM nums JOIN evens ON nums.id = evens.id WHERE evens.id > 10000")
	if err != nil {
		t.Fatal(err)
	}
	if res.AggValue != nil {
		t.Error("aggregate over empty join should be nil")
	}
}

func TestAggregateValidation(t *testing.T) {
	e := newEngine(t, fixture(t))
	bad := []string{
		"SELECT SUM(missing.id) FROM nums",
		"SELECT SUM(nums.wrong) FROM nums",
		"SELECT SUM(evens.id) FROM nums", // evens not in FROM
	}
	for _, q := range bad {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("Execute(%q): want error", q)
		}
	}
}
