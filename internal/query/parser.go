package query

import "fmt"

// AggKind names an aggregate function.
type AggKind string

// Supported aggregates over the join-key column.
const (
	AggNone  AggKind = ""
	AggCount AggKind = "count"
	AggSum   AggKind = "sum"
	AggMin   AggKind = "min"
	AggMax   AggKind = "max"
)

// Statement is the parsed form of a query.
type Statement struct {
	// CountOnly distinguishes SELECT COUNT(*) from SELECT *.
	CountOnly bool
	// Agg is the aggregate selected, if any (COUNT sets both CountOnly
	// and Agg for backward compatibility).
	Agg AggKind
	// AggTable/AggCol name the aggregated column for SUM/MIN/MAX.
	AggTable, AggCol string
	// Tables lists the FROM/JOIN tables in syntactic order.
	Tables []string
	// Joins holds one condition per JOIN clause; Joins[i] connects
	// Tables[i+1] to one of Tables[0..i].
	Joins []JoinCond
	// Filters holds the WHERE conjuncts.
	Filters []Filter
	// OrderBy names the ORDER BY column's table ("" = no ordering).
	OrderByTable, OrderByCol string
	// OrderDesc selects descending order.
	OrderDesc bool
	// Limit caps the result rows; negative means no limit.
	Limit int
}

// JoinCond is one ON table.col = table.col condition.
type JoinCond struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// FilterOp is a comparison operator in a WHERE conjunct.
type FilterOp string

// Filter operators.
const (
	OpEq      FilterOp = "="
	OpLt      FilterOp = "<"
	OpLe      FilterOp = "<="
	OpGt      FilterOp = ">"
	OpGe      FilterOp = ">="
	OpBetween FilterOp = "between"
)

// Filter is one WHERE conjunct on a table's key column.
type Filter struct {
	Table, Col string
	Op         FilterOp
	// Value is the comparison operand (BETWEEN's lower bound).
	Value uint64
	// Hi is BETWEEN's upper bound.
	Hi uint64
}

// Matches evaluates the filter against a key.
func (f Filter) Matches(key uint64) bool {
	switch f.Op {
	case OpEq:
		return key == f.Value
	case OpLt:
		return key < f.Value
	case OpLe:
		return key <= f.Value
	case OpGt:
		return key > f.Value
	case OpGe:
		return key >= f.Value
	case OpBetween:
		return key >= f.Value && key <= f.Hi
	default:
		return false
	}
}

// Parse turns SQL text into a Statement. Semantic checks against a catalog
// happen in Plan/Execute, not here.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: parse error at position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// keyword consumes an identifier with the given lowercase text.
func (p *parser) keyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != kw {
		return p.errf("expected %s, found %s", kw, t)
	}
	p.next()
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) symbol(s string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != s {
		return p.errf("expected %q, found %s", s, t)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	switch t.text {
	case "select", "from", "join", "on", "where", "and", "count", "between",
		"sum", "min", "max", "order", "by", "limit", "asc", "desc":
		return "", p.errf("reserved word %s used as identifier", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) number() (uint64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, found %s", t)
	}
	p.next()
	return t.num, nil
}

// column parses table.col.
func (p *parser) column() (table, col string, err error) {
	table, err = p.ident()
	if err != nil {
		return "", "", err
	}
	if err := p.symbol("."); err != nil {
		return "", "", err
	}
	col, err = p.ident()
	if err != nil {
		return "", "", err
	}
	return table, col, nil
}

func (p *parser) statement() (*Statement, error) {
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	st := &Statement{}
	switch {
	case p.isKeyword("count"):
		p.next()
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		if err := p.symbol("*"); err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		st.CountOnly = true
		st.Agg = AggCount
	case p.isKeyword("sum") || p.isKeyword("min") || p.isKeyword("max"):
		st.Agg = AggKind(p.peek().text)
		p.next()
		if err := p.symbol("("); err != nil {
			return nil, err
		}
		tbl, col, err := p.column()
		if err != nil {
			return nil, err
		}
		if err := p.symbol(")"); err != nil {
			return nil, err
		}
		st.AggTable, st.AggCol = tbl, col
	case p.peek().kind == tokSymbol && p.peek().text == "*":
		p.next()
	default:
		return nil, p.errf("expected COUNT(*), SUM/MIN/MAX(column) or *, found %s", p.peek())
	}

	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Tables = append(st.Tables, first)

	for p.isKeyword("join") {
		p.next()
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Tables = append(st.Tables, tbl)
		if err := p.keyword("on"); err != nil {
			return nil, err
		}
		lt, lc, err := p.column()
		if err != nil {
			return nil, err
		}
		if err := p.symbol("="); err != nil {
			return nil, err
		}
		rt, rc, err := p.column()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc})
	}

	if p.isKeyword("where") {
		p.next()
		for {
			f, err := p.filter()
			if err != nil {
				return nil, err
			}
			st.Filters = append(st.Filters, f)
			if !p.isKeyword("and") {
				break
			}
			p.next()
		}
	}

	st.Limit = -1
	if p.isKeyword("order") {
		p.next()
		if err := p.keyword("by"); err != nil {
			return nil, err
		}
		tbl, col, err := p.column()
		if err != nil {
			return nil, err
		}
		st.OrderByTable, st.OrderByCol = tbl, col
		switch {
		case p.isKeyword("asc"):
			p.next()
		case p.isKeyword("desc"):
			p.next()
			st.OrderDesc = true
		}
	}
	if p.isKeyword("limit") {
		p.next()
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		st.Limit = int(n)
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", t)
	}
	return st, nil
}

func (p *parser) filter() (Filter, error) {
	tbl, col, err := p.column()
	if err != nil {
		return Filter{}, err
	}
	f := Filter{Table: tbl, Col: col}
	t := p.peek()
	switch {
	case t.kind == tokSymbol && t.text == "=":
		p.next()
		f.Op = OpEq
	case t.kind == tokCompare:
		p.next()
		f.Op = FilterOp(t.text)
	case t.kind == tokIdent && t.text == "between":
		p.next()
		lo, err := p.number()
		if err != nil {
			return Filter{}, err
		}
		if err := p.keyword("and"); err != nil {
			return Filter{}, err
		}
		hi, err := p.number()
		if err != nil {
			return Filter{}, err
		}
		if lo > hi {
			return Filter{}, p.errf("BETWEEN bounds inverted: %d > %d", lo, hi)
		}
		f.Op, f.Value, f.Hi = OpBetween, lo, hi
		return f, nil
	default:
		return Filter{}, p.errf("expected comparison operator, found %s", t)
	}
	v, err := p.number()
	if err != nil {
		return Filter{}, err
	}
	f.Value = v
	return f, nil
}
