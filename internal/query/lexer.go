package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokSymbol  // ( ) , . * =
	tokCompare // < <= > >=
)

type token struct {
	kind tokenKind
	text string // identifiers lowercased; symbols verbatim
	num  uint64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokNumber:
		return strconv.FormatUint(t.num, 10)
	default:
		return t.text
	}
}

// lex splits a query into tokens. Keywords are not distinguished here —
// the parser matches identifier text.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == '=':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<' || c == '>':
			text := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				text += "="
			}
			toks = append(toks, token{kind: tokCompare, text: text, pos: i})
			i += len(text)
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			n, err := strconv.ParseUint(strings.ReplaceAll(input[i:j], "_", ""), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q at %d: %w", input[i:j], i, err)
			}
			toks = append(toks, token{kind: tokNumber, num: n, pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(input[i:j]), pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
