package query

import "testing"

// FuzzParse: the SQL parser must never panic and must either reject input
// or produce a structurally sane statement.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM r",
		"SELECT * FROM r JOIN s ON r.k = s.k",
		"SELECT COUNT(*) FROM a JOIN b ON a.x = b.y JOIN c ON b.y = c.z WHERE a.x BETWEEN 1 AND 9",
		"select * from t where t.k <= 1_000",
		"SELECT",
		"SELECT * FROM r WHERE r.k < ",
		")))((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if len(st.Tables) == 0 {
			t.Fatal("accepted statement without tables")
		}
		if len(st.Joins) != len(st.Tables)-1 {
			t.Fatalf("accepted statement with %d tables but %d joins", len(st.Tables), len(st.Joins))
		}
		for _, fl := range st.Filters {
			if fl.Table == "" || fl.Col == "" {
				t.Fatal("accepted filter without table.column")
			}
			if fl.Op == OpBetween && fl.Value > fl.Hi {
				t.Fatal("accepted inverted BETWEEN")
			}
		}
	})
}
