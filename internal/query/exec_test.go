package query

import (
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

// fixture builds a catalog with three small relations whose join sizes are
// easy to reason about:
//
//	nums:  keys 0..99, one each
//	evens: keys 0,2,..,198, one each (overlap with nums: 0..98 even = 50)
//	dups:  keys 0..9, ten copies each
func fixture(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	nums := workload.Sequential("nums", 100, 2)
	evens := relation.New(relation.Schema{Name: "evens", PayloadWidth: 2}, 100)
	for i := 0; i < 100; i++ {
		if err := evens.Append(uint64(2*i), []byte{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	dups := relation.New(relation.Schema{Name: "dups", PayloadWidth: 2}, 100)
	for i := 0; i < 100; i++ {
		if err := dups.Append(uint64(i%10), []byte{3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	for _, reg := range []struct {
		name, key string
		rel       *relation.Relation
	}{
		{"nums", "id", nums},
		{"evens", "id", evens},
		{"dups", "id", dups},
	} {
		if err := cat.Register(reg.name, reg.key, reg.rel); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func newEngine(t *testing.T, cat *Catalog) *Engine {
	t.Helper()
	e, err := NewEngine(cat, 3, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 3, join.Options{}); err == nil {
		t.Error("nil catalog: want error")
	}
	if _, err := NewEngine(NewCatalog(), 0, join.Options{}); err == nil {
		t.Error("zero nodes: want error")
	}
}

func TestCatalogRegisterValidation(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Register("", "k", workload.Sequential("x", 1, 0)); err == nil {
		t.Error("empty name: want error")
	}
	if err := cat.Register("x", "k", nil); err == nil {
		t.Error("nil relation: want error")
	}
}

func TestSingleTableCount(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT COUNT(*) FROM nums")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 {
		t.Errorf("count = %d, want 100", res.Count)
	}
	if res.Rows != nil {
		t.Error("COUNT(*) must not materialize")
	}
}

func TestSingleTableFilter(t *testing.T) {
	e := newEngine(t, fixture(t))
	tests := []struct {
		sql  string
		want int64
	}{
		{"SELECT COUNT(*) FROM nums WHERE nums.id < 10", 10},
		{"SELECT COUNT(*) FROM nums WHERE nums.id >= 90", 10},
		{"SELECT COUNT(*) FROM nums WHERE nums.id BETWEEN 10 AND 19", 10},
		{"SELECT COUNT(*) FROM nums WHERE nums.id = 42", 1},
		{"SELECT COUNT(*) FROM nums WHERE nums.id < 50 AND nums.id >= 40", 10},
		{"SELECT COUNT(*) FROM dups WHERE dups.id = 3", 10},
	}
	for _, tt := range tests {
		res, err := e.Execute(tt.sql)
		if err != nil {
			t.Errorf("%s: %v", tt.sql, err)
			continue
		}
		if res.Count != tt.want {
			t.Errorf("%s: count = %d, want %d", tt.sql, res.Count, tt.want)
		}
	}
}

func TestSelectStarMaterializes(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT * FROM nums WHERE nums.id < 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == nil || res.Rows.Len() != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTwoWayJoin(t *testing.T) {
	e := newEngine(t, fixture(t))
	// nums ⋈ evens on id: even keys 0..98 → 50 matches.
	res, err := e.Execute("SELECT COUNT(*) FROM nums JOIN evens ON nums.id = evens.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 {
		t.Errorf("count = %d, want 50", res.Count)
	}
}

func TestTwoWayJoinWithDuplicates(t *testing.T) {
	e := newEngine(t, fixture(t))
	// nums(0..99) ⋈ dups(0..9 ×10): 10 keys × 10 copies = 100.
	res, err := e.Execute("SELECT COUNT(*) FROM nums JOIN dups ON nums.id = dups.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 {
		t.Errorf("count = %d, want 100", res.Count)
	}
}

func TestThreeWayJoin(t *testing.T) {
	e := newEngine(t, fixture(t))
	// (nums ⋈ evens) ⋈ dups: even keys < 10 present in dups: 0,2,4,6,8 →
	// 5 keys × 10 duplicates = 50.
	res, err := e.Execute(
		"SELECT COUNT(*) FROM nums JOIN evens ON nums.id = evens.id JOIN dups ON evens.id = dups.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 {
		t.Errorf("count = %d, want 50", res.Count)
	}
}

func TestJoinWithFilterPushdown(t *testing.T) {
	e := newEngine(t, fixture(t))
	// dups.id in {0..4} → 5 keys × 10 copies joined with nums → 50.
	res, err := e.Execute(
		"SELECT COUNT(*) FROM nums JOIN dups ON nums.id = dups.id WHERE dups.id < 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 {
		t.Errorf("count = %d, want 50", res.Count)
	}
}

func TestSelectStarJoinPayloadLayout(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute("SELECT * FROM nums JOIN evens ON nums.id = evens.id WHERE nums.id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Rows.Len())
	}
	if res.Rows.Key(0) != 4 {
		t.Errorf("key = %d, want 4", res.Rows.Key(0))
	}
	// Payload: nums payload (2) + embedded key (8) + evens payload (2).
	if w := res.Rows.Schema().PayloadWidth; w != 12 {
		t.Errorf("output payload width = %d, want 12", w)
	}
}

func TestSemanticErrors(t *testing.T) {
	e := newEngine(t, fixture(t))
	bad := []string{
		"SELECT COUNT(*) FROM missing",
		"SELECT COUNT(*) FROM nums JOIN nums ON nums.id = nums.id",
		"SELECT COUNT(*) FROM nums JOIN evens ON nums.wrong = evens.id",
		"SELECT COUNT(*) FROM nums JOIN evens ON nums.id = evens.wrong",
		"SELECT COUNT(*) FROM nums JOIN evens ON nums.id = dups.id",
		"SELECT COUNT(*) FROM nums WHERE evens.id < 5",
		"SELECT COUNT(*) FROM nums WHERE nums.other < 5",
	}
	for _, q := range bad {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("Execute(%q): want error", q)
		}
	}
}

func TestEmptyJoinResult(t *testing.T) {
	e := newEngine(t, fixture(t))
	res, err := e.Execute(
		"SELECT COUNT(*) FROM nums JOIN evens ON nums.id = evens.id WHERE evens.id > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Errorf("count = %d, want 0", res.Count)
	}
}
