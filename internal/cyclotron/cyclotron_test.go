package cyclotron

import (
	"fmt"
	"sync"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/join/nested"
	"cyclojoin/internal/join/sortmerge"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/workload"
)

func newWheel(t *testing.T, nodes int, rotating *relation.Relation) *Wheel {
	t.Helper()
	w, err := New(Config{Nodes: nodes, FragmentsPerHost: 2}, rotating)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = w.Close()
	})
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}, workload.Sequential("R", 10, 0)); err == nil {
		t.Error("zero nodes: want error")
	}
}

func TestSingleJoinMatchesOracle(t *testing.T) {
	r := workload.Sequential("R", 3000, 4)
	s := workload.Sequential("S", 3000, 4)
	w := newWheel(t, 3, r)
	out, err := w.ExecuteJoin(JoinSpec{
		Algorithm:  hashjoin.Join{},
		Predicate:  join.Equi{},
		Stationary: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Matches() != 3000 {
		t.Errorf("matches = %d, want 3000", out.Matches())
	}
	if out.Revolution < 1 {
		t.Errorf("revolution = %d", out.Revolution)
	}
}

func TestSpecValidation(t *testing.T) {
	w := newWheel(t, 2, workload.Sequential("R", 100, 0))
	s := workload.Sequential("S", 100, 0)
	bad := []JoinSpec{
		{Predicate: join.Equi{}, Stationary: s},
		{Algorithm: hashjoin.Join{}, Stationary: s},
		{Algorithm: hashjoin.Join{}, Predicate: join.Equi{}},
		{Algorithm: hashjoin.Join{}, Predicate: join.Band{Width: 1}, Stationary: s},
	}
	for i, spec := range bad {
		if _, err := w.ExecuteJoin(spec); err == nil {
			t.Errorf("spec %d: want error", i)
		}
	}
}

// TestConcurrentJoinsShareRevolutions is the Cyclotron economy: many
// queries, each needing one revolution, ride far fewer revolutions than
// queries because they batch onto shared spins.
func TestConcurrentJoinsShareRevolutions(t *testing.T) {
	r := workload.Sequential("R", 6000, 4)
	w := newWheel(t, 3, r)
	const queries = 12
	var wg sync.WaitGroup
	errs := make([]error, queries)
	matches := make([]int64, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			s := workload.Sequential(fmt.Sprintf("S%d", q), 1000+100*q, 4)
			out, err := w.ExecuteJoin(JoinSpec{
				Algorithm:  hashjoin.Join{},
				Predicate:  join.Equi{},
				Stationary: s,
			})
			if err != nil {
				errs[q] = err
				return
			}
			matches[q] = out.Matches()
		}(q)
	}
	wg.Wait()
	for q := 0; q < queries; q++ {
		if errs[q] != nil {
			t.Fatalf("query %d: %v", q, errs[q])
		}
		if want := int64(1000 + 100*q); matches[q] != want {
			t.Errorf("query %d: matches = %d, want %d", q, matches[q], want)
		}
	}
	if revs := w.Revolutions(); revs > queries {
		t.Errorf("%d revolutions for %d queries; batching broken", revs, queries)
	} else {
		t.Logf("%d queries served by %d revolutions", queries, revs)
	}
}

// TestMixedAlgorithmsOneWheel: different algorithms and predicates riding
// the same circulating data.
func TestMixedAlgorithmsOneWheel(t *testing.T) {
	r, err := workload.Generate(workload.Spec{Name: "R", Tuples: 2000, KeyDomain: 300, Seed: 1, PayloadWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.Generate(workload.Spec{Name: "S", Tuples: 2000, KeyDomain: 300, Seed: 2, PayloadWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := newWheel(t, 3, r)

	specs := []JoinSpec{
		{Algorithm: hashjoin.Join{}, Predicate: join.Equi{}, Stationary: s,
			Collectors: func(int) join.Collector { return join.NewPairSet() }},
		{Algorithm: sortmerge.Join{}, Predicate: join.Band{Width: 2}, Stationary: s,
			Collectors: func(int) join.Collector { return join.NewPairSet() }},
		{Algorithm: nested.Join{}, Predicate: join.Theta{Name: "mod5", Fn: func(a, b uint64) bool { return a%5 == b%5 }},
			Stationary: s, Collectors: func(int) join.Collector { return join.NewPairSet() }},
	}
	var wg sync.WaitGroup
	outs := make([]*Outcome, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JoinSpec) {
			defer wg.Done()
			outs[i], errs[i] = w.ExecuteJoin(spec)
		}(i, spec)
	}
	wg.Wait()
	for i, spec := range specs {
		if errs[i] != nil {
			t.Fatalf("spec %d: %v", i, errs[i])
		}
		want := join.NewPairSet()
		jointest.Oracle(r, s, spec.Predicate, want)
		got := map[[2]uint64]int{}
		for _, c := range outs[i].Collectors {
			for k, v := range c.(*join.PairSet).Pairs() {
				got[k] += v
			}
		}
		wantPairs := want.Pairs()
		if len(got) != len(wantPairs) {
			t.Errorf("spec %d (%s): %d distinct pairs, want %d", i, spec.Predicate, len(got), len(wantPairs))
			continue
		}
		for k, v := range wantPairs {
			if got[k] != v {
				t.Errorf("spec %d: pair %v count %d, want %d", i, k, got[k], v)
			}
		}
	}
}

// TestSequentialJoinsAdvanceRevolutions: the wheel keeps spinning across
// successive queries.
func TestSequentialJoinsAdvanceRevolutions(t *testing.T) {
	r := workload.Sequential("R", 600, 4)
	s := workload.Sequential("S", 600, 4)
	w := newWheel(t, 2, r)
	for i := 0; i < 3; i++ {
		out, err := w.ExecuteJoin(JoinSpec{Algorithm: hashjoin.Join{}, Predicate: join.Equi{}, Stationary: s})
		if err != nil {
			t.Fatal(err)
		}
		if out.Matches() != 600 {
			t.Errorf("round %d: matches = %d", i, out.Matches())
		}
	}
	if revs := w.Revolutions(); revs != 3 {
		t.Errorf("revolutions = %d, want 3", revs)
	}
}

func TestCloseRejectsNewJoins(t *testing.T) {
	r := workload.Sequential("R", 100, 0)
	w, err := New(Config{Nodes: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	_, err = w.ExecuteJoin(JoinSpec{
		Algorithm: hashjoin.Join{}, Predicate: join.Equi{},
		Stationary: workload.Sequential("S", 100, 0),
	})
	if err == nil {
		t.Error("join on closed wheel: want error")
	}
}

// TestWheelOverOneSidedWrites: the wheel spins on the write-based
// transport too.
func TestWheelOverOneSidedWrites(t *testing.T) {
	r := workload.Sequential("R", 1200, 4)
	w, err := New(Config{
		Nodes:            3,
		FragmentsPerHost: 2,
		Ring:             ring.Config{OneSidedWrites: true},
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = w.Close()
	}()
	s := workload.Sequential("S", 1200, 4)
	out, err := w.ExecuteJoin(JoinSpec{Algorithm: hashjoin.Join{}, Predicate: join.Equi{}, Stationary: s})
	if err != nil {
		t.Fatal(err)
	}
	if out.Matches() != 1200 {
		t.Errorf("matches = %d, want 1200", out.Matches())
	}
}
