// Package cyclotron implements continuous data circulation — the Data
// Cyclotron operating mode ([13], [16]) that frames the paper: "we keep
// (the hot set of the) data continuously circulating in the ring. Queries
// remain local to one or more nodes and pick necessary pieces of data as
// they flow by" (§II-C).
//
// A Wheel keeps one relation's fragments revolving around a Data
// Roundabout ring in the background. Join queries attach at revolution
// boundaries: each submitted join stations its own access structures on
// the hosts, rides exactly one full revolution, and detaches with its
// distributed result. Queries submitted while a revolution is in flight
// are batched onto the next one, so concurrent queries share the ring's
// bandwidth — one spin of the data serves all of them, which is the
// Cyclotron economy: the rotating relation crosses each link once per
// revolution no matter how many queries consume it.
//
// Because the circulating fragments stay in their original order (no
// per-query reorganization is possible on shared data), the local join
// algorithms see unorganized rotating input. The radix hash join probes
// order-independently; the sort-merge join falls back to sorting each
// arriving fragment, which is correct but pays the sort on every hop —
// the trade the paper's setup-reuse discussion (§IV-D) is about.
package cyclotron

import (
	"errors"
	"fmt"
	"sync"

	"cyclojoin/internal/join"
	"cyclojoin/internal/metrics"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
)

// Wheel instrumentation: how often the ring spins and how many queries
// each spin amortizes — the Cyclotron economy made observable.
var (
	mRevolutions = metrics.Default().Counter("cyclotron_revolutions_total", "completed wheel revolutions")
	mJoins       = metrics.Default().Counter("cyclotron_joins_total", "join queries served by the wheel")
	mBatchJoins  = metrics.Default().Histogram("cyclotron_batch_depth", "join queries batched onto one revolution",
		[]int64{1, 2, 4, 8, 16, 32, 64})
)

// Config sizes the wheel's ring.
type Config struct {
	// Nodes is the ring size.
	Nodes int
	// Ring tunes the transport buffers; Ring.Nodes is overridden.
	Ring ring.Config
	// Links selects the transport; nil means in-process links.
	Links ring.LinkFactory
	// FragmentsPerHost splits each host's share of the rotating relation
	// into this many circulating fragments (more fragments, smoother
	// pipelining). Zero means 1.
	FragmentsPerHost int
}

// JoinSpec describes one join riding the wheel.
type JoinSpec struct {
	// Algorithm is the local join implementation.
	Algorithm join.Algorithm
	// Predicate is the join condition.
	Predicate join.Predicate
	// Opts tunes the local algorithm.
	Opts join.Options
	// Stationary is the relation to station (partitioned evenly across
	// the hosts).
	Stationary *relation.Relation
	// Collectors builds per-host collectors; nil means counters.
	Collectors func(node int) join.Collector
}

// Outcome is one completed join.
type Outcome struct {
	// Collectors holds the per-host results.
	Collectors []join.Collector
	// Revolution is the wheel revolution that served this join.
	Revolution int
}

// Matches sums counter collectors; -1 for custom collectors.
func (o *Outcome) Matches() int64 {
	var total int64
	for _, c := range o.Collectors {
		counter, ok := c.(*join.Counter)
		if !ok {
			return -1
		}
		total += counter.Count()
	}
	return total
}

// request is one enqueued join.
type request struct {
	spec JoinSpec
	done chan result
}

type result struct {
	out *Outcome
	err error
}

// active is one query's per-host state during a revolution.
type active struct {
	stationary join.Stationary
	collector  join.Collector
}

// hostProc is the per-node join entity: it applies every active query to
// each fragment flowing by.
type hostProc struct {
	mu      sync.Mutex
	actives []*active
}

var _ ring.Processor = (*hostProc)(nil)

// Process implements ring.Processor.
func (p *hostProc) Process(frag *relation.Fragment) error {
	p.mu.Lock()
	actives := p.actives
	p.mu.Unlock()
	for _, a := range actives {
		if err := a.stationary.Join(frag.Rel, a.collector); err != nil {
			return err
		}
	}
	return nil
}

func (p *hostProc) set(actives []*active) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.actives = actives
}

// Wheel keeps a relation circulating and serves joins against it.
type Wheel struct {
	cfg   Config
	ring  *ring.Ring
	procs []*hostProc
	frags [][]*relation.Fragment

	submitc chan *request
	stopc   chan struct{}
	donec   chan struct{}

	mu          sync.Mutex
	revolutions int
	closed      bool
}

// ErrClosed is returned for joins submitted to a closed wheel.
var ErrClosed = errors.New("cyclotron: wheel closed")

// New builds a wheel with the given rotating relation and starts its
// background revolution loop.
func New(cfg Config, rotating *relation.Relation) (*Wheel, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cyclotron: %d nodes", cfg.Nodes)
	}
	perHost := cfg.FragmentsPerHost
	if perHost < 1 {
		perHost = 1
	}
	parts, err := relation.Partition(rotating, cfg.Nodes*perHost)
	if err != nil {
		return nil, fmt.Errorf("cyclotron: partition rotating relation: %w", err)
	}
	frags := make([][]*relation.Fragment, cfg.Nodes)
	for i, f := range parts {
		frags[i%cfg.Nodes] = append(frags[i%cfg.Nodes], f)
	}

	w := &Wheel{
		cfg:     cfg,
		frags:   frags,
		procs:   make([]*hostProc, cfg.Nodes),
		submitc: make(chan *request),
		stopc:   make(chan struct{}),
		donec:   make(chan struct{}),
	}
	procs := make([]ring.Processor, cfg.Nodes)
	for i := range procs {
		w.procs[i] = &hostProc{}
		procs[i] = w.procs[i]
	}
	rcfg := cfg.Ring
	rcfg.Nodes = cfg.Nodes
	rg, err := ring.New(rcfg, cfg.Links, procs)
	if err != nil {
		return nil, fmt.Errorf("cyclotron: build ring: %w", err)
	}
	w.ring = rg
	go w.loop()
	return w, nil
}

// Revolutions reports how many full revolutions the wheel has completed.
func (w *Wheel) Revolutions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.revolutions
}

// ExecuteJoin stations the spec's relation, rides one revolution, and
// returns the distributed result. Safe for concurrent use; concurrent
// joins are batched onto shared revolutions.
func (w *Wheel) ExecuteJoin(spec JoinSpec) (*Outcome, error) {
	switch {
	case spec.Algorithm == nil:
		return nil, errors.New("cyclotron: nil algorithm")
	case spec.Predicate == nil:
		return nil, errors.New("cyclotron: nil predicate")
	case spec.Stationary == nil:
		return nil, errors.New("cyclotron: nil stationary relation")
	case !spec.Algorithm.Supports(spec.Predicate):
		return nil, fmt.Errorf("cyclotron: algorithm %q does not support %s: %w",
			spec.Algorithm.Name(), spec.Predicate, join.ErrUnsupportedPredicate)
	}
	req := &request{spec: spec, done: make(chan result, 1)}
	select {
	case w.submitc <- req:
	case <-w.stopc:
		return nil, ErrClosed
	}
	select {
	case res := <-req.done:
		return res.out, res.err
	case <-w.donec:
		return nil, ErrClosed
	}
}

// loop runs revolutions, batching all requests that arrived since the
// previous one.
func (w *Wheel) loop() {
	defer close(w.donec)
	for {
		// Wait for at least one query; the wheel idles rather than
		// spinning empty revolutions (the paper's always-spinning ring
		// trades idle bandwidth for latency; for a library, idling is
		// the sane default).
		var batch []*request
		select {
		case <-w.stopc:
			return
		case req := <-w.submitc:
			batch = append(batch, req)
		}
		// Batch everything else already queued.
	drain:
		for {
			select {
			case req := <-w.submitc:
				batch = append(batch, req)
			default:
				break drain
			}
		}
		w.revolve(batch)
	}
}

// revolve runs one revolution serving the batch.
func (w *Wheel) revolve(batch []*request) {
	type prepared struct {
		req        *request
		actives    []*active // per host
		collectors []join.Collector
	}
	preps := make([]prepared, 0, len(batch))
	fail := func(req *request, err error) {
		req.done <- result{err: err}
	}

	for _, req := range batch {
		sFrags, err := relation.Partition(req.spec.Stationary, w.cfg.Nodes)
		if err != nil {
			fail(req, fmt.Errorf("cyclotron: partition stationary: %w", err))
			continue
		}
		p := prepared{req: req, actives: make([]*active, w.cfg.Nodes), collectors: make([]join.Collector, w.cfg.Nodes)}
		var wg sync.WaitGroup
		errs := make([]error, w.cfg.Nodes)
		for i := 0; i < w.cfg.Nodes; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				st, err := req.spec.Algorithm.SetupStationary(sFrags[i].Rel, req.spec.Predicate, req.spec.Opts)
				if err != nil {
					errs[i] = err
					return
				}
				col := join.Collector(&join.Counter{})
				if req.spec.Collectors != nil {
					col = req.spec.Collectors(i)
				}
				p.actives[i] = &active{stationary: st, collector: col}
				p.collectors[i] = col
			}(i)
		}
		wg.Wait()
		setupErr := errors.Join(errs...)
		if setupErr != nil {
			fail(req, fmt.Errorf("cyclotron: setup: %w", setupErr))
			continue
		}
		preps = append(preps, p)
	}
	if len(preps) == 0 {
		return
	}

	for i, proc := range w.procs {
		actives := make([]*active, 0, len(preps))
		for _, p := range preps {
			actives = append(actives, p.actives[i])
		}
		proc.set(actives)
	}
	err := w.ring.Run(w.frags)
	for _, proc := range w.procs {
		proc.set(nil)
	}

	w.mu.Lock()
	w.revolutions++
	rev := w.revolutions
	w.mu.Unlock()
	mRevolutions.Inc()
	mJoins.Add(int64(len(preps)))
	mBatchJoins.Observe(int64(len(preps)))

	for _, p := range preps {
		if err != nil {
			fail(p.req, err)
			continue
		}
		p.req.done <- result{out: &Outcome{Collectors: p.collectors, Revolution: rev}}
	}
}

// Close stops the wheel. Pending joins fail with ErrClosed.
func (w *Wheel) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stopc)
	<-w.donec
	return w.ring.Close()
}
