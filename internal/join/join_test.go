package join

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
)

func TestEquiMatches(t *testing.T) {
	p := Equi{}
	if !p.Matches(5, 5) || p.Matches(5, 6) {
		t.Error("Equi predicate wrong")
	}
}

func TestBandMatches(t *testing.T) {
	tests := []struct {
		width  uint64
		r, s   uint64
		expect bool
	}{
		{0, 5, 5, true},
		{0, 5, 6, false},
		{2, 5, 7, true},
		{2, 7, 5, true},
		{2, 5, 8, false},
		{2, 8, 5, false},
		{10, 0, 10, true},
		{10, 0, 11, false},
		{1, ^uint64(0), ^uint64(0) - 1, true},
	}
	for _, tt := range tests {
		p := Band{Width: tt.width}
		if got := p.Matches(tt.r, tt.s); got != tt.expect {
			t.Errorf("Band(%d).Matches(%d, %d) = %v, want %v", tt.width, tt.r, tt.s, got, tt.expect)
		}
	}
}

// TestBandSymmetric: band joins are symmetric in their arguments.
func TestBandSymmetric(t *testing.T) {
	f := func(w, r, s uint64) bool {
		p := Band{Width: w % 1000}
		return p.Matches(r, s) == p.Matches(s, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBandZeroIsEqui: Band{0} must be exactly Equi.
func TestBandZeroIsEqui(t *testing.T) {
	f := func(r, s uint64) bool {
		return Band{}.Matches(r, s) == Equi{}.Matches(r, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThetaMatches(t *testing.T) {
	lt := Theta{Name: "less", Fn: func(r, s uint64) bool { return r < s }}
	if !lt.Matches(1, 2) || lt.Matches(2, 1) {
		t.Error("Theta predicate wrong")
	}
	if lt.String() != "theta(less)" {
		t.Errorf("String() = %q", lt.String())
	}
	if (Theta{Fn: lt.Fn}).String() != "theta" {
		t.Error("unnamed theta String() wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.Workers() != 1 {
		t.Errorf("Workers() = %d, want 1", o.Workers())
	}
	if o.L2Bytes() != DefaultL2Bytes {
		t.Errorf("L2Bytes() = %d, want %d", o.L2Bytes(), DefaultL2Bytes)
	}
	o = Options{Parallelism: 4, L2CacheBytes: 1 << 10}
	if o.Workers() != 4 || o.L2Bytes() != 1<<10 {
		t.Error("explicit options not honored")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Emit(1, 1, nil, nil)
			}
		}()
	}
	wg.Wait()
	if c.Count() != workers*per {
		t.Errorf("Count = %d, want %d", c.Count(), workers*per)
	}
	c.Reset()
	if c.Count() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestMaterializerLayout(t *testing.T) {
	m := NewMaterializer("out", 2, 3)
	m.Emit(7, 9, []byte{1, 2}, []byte{3, 4, 5})
	out := m.Result()
	if out.Len() != 1 {
		t.Fatalf("Len = %d", out.Len())
	}
	if out.Key(0) != 7 {
		t.Errorf("key = %d, want rKey 7", out.Key(0))
	}
	pay := out.Payload(0)
	if len(pay) != 2+8+3 {
		t.Fatalf("payload width = %d", len(pay))
	}
	if pay[0] != 1 || pay[1] != 2 {
		t.Error("rPay not first")
	}
	if got := binary.LittleEndian.Uint64(pay[2:10]); got != 9 {
		t.Errorf("embedded sKey = %d, want 9", got)
	}
	if pay[10] != 3 || pay[12] != 5 {
		t.Error("sPay not last")
	}
}

func TestRekeyedMaterializer(t *testing.T) {
	m := NewRekeyedMaterializer("out", 1, 1)
	m.Emit(7, 9, []byte{0xaa}, []byte{0xbb})
	out := m.Result()
	if out.Key(0) != 9 {
		t.Errorf("key = %d, want sKey 9", out.Key(0))
	}
	pay := out.Payload(0)
	if got := binary.LittleEndian.Uint64(pay[:8]); got != 7 {
		t.Errorf("embedded rKey = %d, want 7", got)
	}
	if pay[8] != 0xaa || pay[9] != 0xbb {
		t.Error("payload order wrong")
	}
}

func TestMaterializerCopiesPayload(t *testing.T) {
	m := NewMaterializer("out", 1, 0)
	buf := []byte{42}
	m.Emit(1, 1, buf, nil)
	buf[0] = 0 // caller reuses its buffer
	if got := m.Result().Payload(0)[0]; got != 42 {
		t.Errorf("payload[0] = %d, want 42: materializer aliased caller's buffer", got)
	}
}

func TestPairSetEqual(t *testing.T) {
	a, b := NewPairSet(), NewPairSet()
	a.Emit(1, 2, nil, nil)
	a.Emit(1, 2, nil, nil)
	b.Emit(1, 2, nil, nil)
	if a.Equal(b) {
		t.Error("multiset counts differ but Equal returned true")
	}
	b.Emit(1, 2, nil, nil)
	if !a.Equal(b) {
		t.Error("identical multisets not Equal")
	}
	b.Emit(3, 4, nil, nil)
	if a.Equal(b) {
		t.Error("extra pair not detected")
	}
}

func TestTee(t *testing.T) {
	var a, b Counter
	tee := Tee{&a, &b}
	tee.Emit(1, 1, nil, nil)
	if a.Count() != 1 || b.Count() != 1 {
		t.Error("Tee did not fan out")
	}
}

func TestDiscard(t *testing.T) {
	Discard{}.Emit(1, 2, []byte{1}, []byte{2}) // must not panic
}
