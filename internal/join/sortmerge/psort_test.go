package sortmerge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

func TestParallelSortedCopyEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 100, 4095, 4096, 8192, 50_000} {
		for _, workers := range []int{1, 2, 4, 7} {
			r := jointest.RandomRelation(rng, "R", n, 1000, 4)
			seq := SortedCopy(r)
			par := ParallelSortedCopy(r, workers)
			// Neither sort is stable, so payload order among equal keys
			// may differ; the key sequence and the (key, payload)
			// multiset must match exactly.
			if par.Len() != seq.Len() {
				t.Fatalf("n=%d workers=%d: length %d vs %d", n, workers, par.Len(), seq.Len())
			}
			for i := 0; i < par.Len(); i++ {
				if par.Key(i) != seq.Key(i) {
					t.Fatalf("n=%d workers=%d: key order differs at %d", n, workers, i)
				}
			}
			if !sameTupleMultiset(par, seq) {
				t.Errorf("n=%d workers=%d: tuple multiset differs", n, workers)
			}
		}
	}
}

// sameTupleMultiset compares two relations as multisets of (key, payload)
// tuples.
func sameTupleMultiset(a, b *relation.Relation) bool {
	count := func(r *relation.Relation) map[string]int {
		m := make(map[string]int, r.Len())
		buf := make([]byte, 0, 8+r.Schema().PayloadWidth)
		for i := 0; i < r.Len(); i++ {
			buf = buf[:0]
			k := r.Key(i)
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(k>>s))
			}
			buf = append(buf, r.Payload(i)...)
			m[string(buf)]++
		}
		return m
	}
	ma, mb := count(a), count(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func TestParallelSortedCopyDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := jointest.RandomRelation(rng, "R", 20_000, 100, 4)
	snapshot := r.Clone()
	_ = ParallelSortedCopy(r, 4)
	if !r.Equal(snapshot) {
		t.Error("input mutated")
	}
}

func TestParallelSortedCopyAlreadySorted(t *testing.T) {
	r := workload.Sequential("R", 20_000, 4)
	if ParallelSortedCopy(r, 4) != r {
		t.Error("already-sorted input should be returned unchanged")
	}
}

// TestParallelSortProperty: sortedness plus multiset preservation, with
// payloads still attached to their keys.
func TestParallelSortProperty(t *testing.T) {
	f := func(keys []uint64, workersRaw uint8) bool {
		workers := int(workersRaw%6) + 1
		rel := relation.New(relation.Schema{Name: "R", PayloadWidth: 2}, len(keys))
		for _, k := range keys {
			k %= 500
			if err := rel.Append(k, []byte{byte(k), byte(k >> 4)}); err != nil {
				return false
			}
		}
		sorted := ParallelSortedCopy(rel, workers)
		if !IsSorted(sorted) || sorted.Len() != rel.Len() {
			return false
		}
		// Payloads must still match their keys.
		for i := 0; i < sorted.Len(); i++ {
			k := sorted.Key(i)
			pay := sorted.Payload(i)
			if pay[0] != byte(k) || pay[1] != byte(k>>4) {
				return false
			}
		}
		got := workload.Multiplicities(sorted)
		want := workload.Multiplicities(rel)
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeRunsEmptyAndSkewedRuns(t *testing.T) {
	schema := relation.Schema{Name: "R"}
	runs := []*relation.Relation{
		relation.FromKeys(schema, nil),
		relation.FromKeys(schema, []uint64{1, 3, 5}),
		relation.FromKeys(schema, nil),
		relation.FromKeys(schema, []uint64{2}),
		relation.FromKeys(schema, []uint64{0, 0, 9}),
	}
	out := mergeRuns(schema, runs)
	want := []uint64{0, 0, 1, 2, 3, 5, 9}
	if out.Len() != len(want) {
		t.Fatalf("len = %d, want %d", out.Len(), len(want))
	}
	for i, k := range want {
		if out.Key(i) != k {
			t.Errorf("out[%d] = %d, want %d", i, out.Key(i), k)
		}
	}
}

func TestMergeRunsAllEmpty(t *testing.T) {
	schema := relation.Schema{Name: "R"}
	out := mergeRuns(schema, []*relation.Relation{relation.FromKeys(schema, nil)})
	if out.Len() != 0 {
		t.Errorf("len = %d", out.Len())
	}
}
