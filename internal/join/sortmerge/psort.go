package sortmerge

import (
	"container/heap"
	"sort"
	"sync"

	"cyclojoin/internal/relation"
)

// ParallelSortedCopy returns a copy of r sorted by join key using
// `workers` goroutines: the input splits into contiguous runs, each run is
// sorted independently, and a k-way merge produces the output.
//
// This is the improvement the paper points at for its setup phase
// (§IV-C.2: "our implementation bears some potential for improvement, such
// as the use of a SIMD-optimized sorting algorithm [6]"); a multi-core
// merge sort is the portable analogue. With workers ≤ 1 (or small inputs)
// it falls back to the sequential sort.
func ParallelSortedCopy(r *relation.Relation, workers int) *relation.Relation {
	const minPerRun = 4096
	if workers <= 1 || r.Len() < 2*minPerRun {
		return SortedCopy(r)
	}
	if IsSorted(r) {
		return r
	}
	runs := workers
	if max := r.Len() / minPerRun; runs > max {
		runs = max
	}

	// Sort contiguous runs concurrently, each on its own copy.
	parts := make([]*relation.Relation, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		lo, hi := r.Len()*i/runs, r.Len()*(i+1)/runs
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			view, err := r.Slice(lo, hi)
			if err != nil {
				// Bounds are derived from r.Len(); unreachable.
				panic(err)
			}
			cp := view.Clone()
			sort.Sort(&sorter{rel: cp, tmp: make([]byte, cp.Schema().PayloadWidth)})
			parts[i] = cp
		}(i, lo, hi)
	}
	wg.Wait()

	return mergeRuns(r.Schema(), parts)
}

// mergeRuns k-way-merges sorted runs via a min-heap of run cursors: one
// heap adjustment per output tuple, log₂ k comparisons each.
func mergeRuns(schema relation.Schema, runs []*relation.Relation) *relation.Relation {
	total := 0
	for _, run := range runs {
		total += run.Len()
	}
	out := relation.New(schema, total)

	h := make(runHeap, 0, len(runs))
	for i, run := range runs {
		if run.Len() > 0 {
			h = append(h, runCursor{run: i, key: run.Key(0)})
		}
	}
	heap.Init(&h)
	cursors := make([]int, len(runs))
	for h.Len() > 0 {
		top := &h[0]
		run := runs[top.run]
		if err := out.AppendFrom(run, cursors[top.run]); err != nil {
			// Runs share the input schema; unreachable.
			panic(err)
		}
		cursors[top.run]++
		if next := cursors[top.run]; next < run.Len() {
			top.key = run.Key(next)
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// runCursor is one run's head in the merge heap.
type runCursor struct {
	key uint64
	run int
}

type runHeap []runCursor

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	// Tie-break on run index so the merge is deterministic.
	return h[i].run < h[j].run
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(runCursor)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
