// Package sortmerge implements the sort-merge join of §IV-C.2.
//
// Setup phase: sort the fragment by join key (the paper uses the C library
// qsort; we use the standard library's introsort via sort.Sort, swapping key
// and payload columns in place). Join phase: merge the sorted rotating
// fragment against the sorted stationary fragment with a strictly
// sequential, cache-friendly access pattern.
//
// Like the paper's implementation, the merge supports band joins
// (|rKey − sKey| ≤ w) as well as plain equi-joins, and the join phase is
// multi-threaded: the rotating fragment is split into as many contiguous
// sub-partitions as there are workers, and each worker merges its piece
// against the stationary run, locating its start position by binary search.
package sortmerge

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"cyclojoin/internal/join"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/trace"
)

// Join implements join.Algorithm with a sort-merge join. The zero value is
// ready to use.
type Join struct{}

var _ join.Algorithm = Join{}

// Name implements join.Algorithm.
func (Join) Name() string { return "sortmerge" }

// Supports implements join.Algorithm: equi-joins and band joins (§IV-C.2).
func (Join) Supports(p join.Predicate) bool {
	switch p.(type) {
	case join.Equi, join.Band:
		return true
	default:
		return false
	}
}

func bandWidth(p join.Predicate) (uint64, error) {
	switch pred := p.(type) {
	case join.Equi:
		return 0, nil
	case join.Band:
		return pred.Width, nil
	default:
		return 0, fmt.Errorf("%w: sort-merge join cannot evaluate %s", join.ErrUnsupportedPredicate, p)
	}
}

// SetupStationary implements join.Algorithm: sort a copy of s, using the
// configured parallelism (sorted runs + k-way merge).
func (Join) SetupStationary(s *relation.Relation, p join.Predicate, opts join.Options) (join.Stationary, error) {
	w, err := bandWidth(p)
	if err != nil {
		return nil, err
	}
	fl := opts.FlightRecorder()
	ss := fl.Shard(opts.TraceNode, "join/sort")
	spd := ss.Begin(trace.PhaseSort)
	spd.Arg = int64(s.Len())
	sorted := ParallelSortedCopy(s, opts.Workers())
	st := &stationary{rel: sorted, width: w, opts: opts}
	// One merge track per worker: Join runs the merge phase concurrently
	// and shards are single-producer.
	st.mergeShards = make([]*trace.Shard, opts.Workers())
	for i := range st.mergeShards {
		st.mergeShards[i] = fl.Shard(opts.TraceNode, "join/merge/"+strconv.Itoa(i))
	}
	ss.End(spd)
	return st, nil
}

// SetupRotating implements join.Algorithm: sort a copy of r. The sorted
// fragment then circulates the ring, so every host's merge sees sorted
// input — this is the paper's "re-organized data (sorted ...)" setup-reuse.
func (Join) SetupRotating(r *relation.Relation, p join.Predicate, opts join.Options) (*relation.Relation, error) {
	if _, err := bandWidth(p); err != nil {
		return nil, err
	}
	return ParallelSortedCopy(r, opts.Workers()), nil
}

// SortedCopy returns a copy of r sorted by join key. If r is already
// sorted, it is returned unchanged (no copy).
func SortedCopy(r *relation.Relation) *relation.Relation {
	if IsSorted(r) {
		return r
	}
	cp := r.Clone()
	sort.Sort(&sorter{rel: cp, tmp: make([]byte, cp.Schema().PayloadWidth)})
	return cp
}

// IsSorted reports whether r's keys are non-decreasing.
func IsSorted(r *relation.Relation) bool {
	keys := r.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// sorter sorts a relation in place, moving keys and payload blocks together.
type sorter struct {
	rel *relation.Relation
	tmp []byte
}

var _ sort.Interface = (*sorter)(nil)

func (s *sorter) Len() int           { return s.rel.Len() }
func (s *sorter) Less(i, j int) bool { return s.rel.Key(i) < s.rel.Key(j) }

func (s *sorter) Swap(i, j int) {
	keys := s.rel.Keys()
	keys[i], keys[j] = keys[j], keys[i]
	w := s.rel.Schema().PayloadWidth
	if w == 0 {
		return
	}
	pay := s.rel.PayloadColumn()
	a, b := pay[i*w:(i+1)*w], pay[j*w:(j+1)*w]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}

// stationary is the sorted stationary fragment.
type stationary struct {
	rel   *relation.Relation
	width uint64
	opts  join.Options
	// mergeShards records per-worker merge spans (index = worker).
	mergeShards []*trace.Shard
}

var _ join.Stationary = (*stationary)(nil)

// Bytes implements join.Stationary.
func (st *stationary) Bytes() int { return st.rel.Bytes() }

// Join implements join.Stationary: merge r (sorted, or sorted on the fly if
// a caller skipped SetupRotating) against the sorted stationary run.
func (st *stationary) Join(r *relation.Relation, c join.Collector) error {
	r = SortedCopy(r)
	workers := st.opts.Workers()
	n := r.Len()
	if n == 0 || st.rel.Len() == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		st.mergeRange(r, 0, n, 0, c)
		return nil
	}
	// Split R_j into contiguous sub-partitions r_{j,k}, one per core
	// (§IV-C.2): "Individual threads then join the stationary S_i with one
	// piece of R_j."
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st.mergeRange(r, lo, hi, w, c)
		}(w)
	}
	wg.Wait()
	return nil
}

// mergeRange merges r[lo:hi] against the full stationary run using the
// sliding-window band merge. For width 0 this degenerates to the classic
// equi sort-merge with duplicate handling.
func (st *stationary) mergeRange(r *relation.Relation, lo, hi, worker int, c join.Collector) {
	ms := st.mergeShard(worker)
	pd := ms.Begin(trace.PhaseMerge)
	pd.Arg = int64(hi - lo)
	sKeys := st.rel.Keys()
	w := st.width
	// Binary-search the first s that can match r[lo].
	first := r.Key(lo)
	low := satSub(first, w)
	si := sort.Search(len(sKeys), func(i int) bool { return sKeys[i] >= low })
	for ri := lo; ri < hi; ri++ {
		rk := r.Key(ri)
		lowK := satSub(rk, w)
		for si < len(sKeys) && sKeys[si] < lowK {
			si++
		}
		highK := satAdd(rk, w)
		for sj := si; sj < len(sKeys) && sKeys[sj] <= highK; sj++ {
			c.Emit(rk, sKeys[sj], r.Payload(ri), st.rel.Payload(sj))
		}
	}
	ms.End(pd)
}

// mergeShard returns the worker's merge track, tolerating a stationary
// built outside SetupStationary (tests construct the struct directly).
func (st *stationary) mergeShard(worker int) *trace.Shard {
	if worker < len(st.mergeShards) && st.mergeShards[worker] != nil {
		return st.mergeShards[worker]
	}
	return trace.NopShard()
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}
