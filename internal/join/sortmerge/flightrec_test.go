package sortmerge

import (
	"math/rand"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/trace"
)

// TestFlightSpans: a traced sort-merge join records one sort span and one
// merge span per worker, labeled with the configured ring position.
func TestFlightSpans(t *testing.T) {
	rec := trace.NewRecorder(256)
	rng := rand.New(rand.NewSource(11))
	s := jointest.RandomRelation(rng, "S", 4000, 1000, 8)
	r := jointest.RandomRelation(rng, "R", 4000, 1000, 8)
	opts := join.Options{Parallelism: 2, Flight: rec, TraceNode: 1}

	st, err := Join{}.SetupStationary(s, join.Band{Width: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Join(r, join.Discard{}); err != nil {
		t.Fatal(err)
	}

	var sorts, merges int
	for _, sp := range rec.Snapshot() {
		if sp.Node != 1 {
			t.Fatalf("span on node %d, want 1: %+v", sp.Node, sp)
		}
		switch sp.Phase {
		case trace.PhaseSort:
			sorts++
			if sp.Arg != int64(s.Len()) {
				t.Errorf("sort span covers %d tuples, want %d", sp.Arg, s.Len())
			}
		case trace.PhaseMerge:
			merges++
		default:
			t.Fatalf("unexpected phase: %+v", sp)
		}
		if sp.Dur < 1 {
			t.Fatalf("span never ended: %+v", sp)
		}
	}
	if sorts != 1 {
		t.Errorf("sort spans = %d, want 1", sorts)
	}
	if merges != opts.Workers() {
		t.Errorf("merge spans = %d, want %d (one per worker)", merges, opts.Workers())
	}
}
