package sortmerge

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

func TestSupports(t *testing.T) {
	var j Join
	if !j.Supports(join.Equi{}) || !j.Supports(join.Band{Width: 3}) {
		t.Error("must support equi and band")
	}
	if j.Supports(join.Theta{Fn: func(a, b uint64) bool { return true }}) {
		t.Error("must not support theta")
	}
}

func TestSetupRejectsTheta(t *testing.T) {
	r := workload.Sequential("R", 4, 0)
	theta := join.Theta{Fn: func(a, b uint64) bool { return true }}
	if _, err := (Join{}).SetupStationary(r, theta, join.Options{}); err == nil {
		t.Error("SetupStationary(theta): want error")
	}
	if _, err := (Join{}).SetupRotating(r, theta, join.Options{}); err == nil {
		t.Error("SetupRotating(theta): want error")
	}
}

func TestEquiMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tests := []struct {
		name   string
		rN, sN int
		domain int
		par    int
	}{
		{"tiny", 10, 10, 5, 1},
		{"duplicates", 300, 200, 8, 1},
		{"sparse", 400, 500, 100000, 1},
		{"parallel", 1500, 1200, 64, 4},
		{"empty R", 0, 10, 5, 1},
		{"empty S", 10, 0, 5, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := jointest.RandomRelation(rng, "R", tt.rN, tt.domain, 4)
			s := jointest.RandomRelation(rng, "S", tt.sN, tt.domain, 4)
			jointest.CheckAgainstOracle(t, Join{}, r, s, join.Equi{}, join.Options{Parallelism: tt.par})
		})
	}
}

func TestBandMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, width := range []uint64{0, 1, 3, 10, 1000} {
		r := jointest.RandomRelation(rng, "R", 300, 200, 4)
		s := jointest.RandomRelation(rng, "S", 250, 200, 4)
		jointest.CheckAgainstOracle(t, Join{}, r, s, join.Band{Width: width}, join.Options{Parallelism: 2})
	}
}

// TestBandNearKeyDomainEdges exercises the saturating arithmetic at 0 and
// MaxUint64.
func TestBandNearKeyDomainEdges(t *testing.T) {
	maxK := ^uint64(0)
	rKeys := []uint64{0, 1, 2, maxK - 1, maxK}
	sKeys := []uint64{0, 3, maxK - 2, maxK}
	r := relation.FromKeys(relation.Schema{Name: "R"}, rKeys)
	s := relation.FromKeys(relation.Schema{Name: "S"}, sKeys)
	jointest.CheckAgainstOracle(t, Join{}, r, s, join.Band{Width: 2}, join.Options{})
}

func TestEquiProperty(t *testing.T) {
	f := func(rKeys, sKeys []uint64) bool {
		for i := range rKeys {
			rKeys[i] %= 50
		}
		for i := range sKeys {
			sKeys[i] %= 50
		}
		r := relation.FromKeys(relation.Schema{Name: "R"}, rKeys)
		s := relation.FromKeys(relation.Schema{Name: "S"}, sKeys)
		want := join.NewPairSet()
		jointest.Oracle(r, s, join.Equi{}, want)
		st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{})
		if err != nil {
			return false
		}
		got := join.NewPairSet()
		if err := st.Join(r, got); err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBandProperty(t *testing.T) {
	f := func(rKeys, sKeys []uint64, wRaw uint8) bool {
		for i := range rKeys {
			rKeys[i] %= 100
		}
		for i := range sKeys {
			sKeys[i] %= 100
		}
		p := join.Band{Width: uint64(wRaw % 10)}
		r := relation.FromKeys(relation.Schema{Name: "R"}, rKeys)
		s := relation.FromKeys(relation.Schema{Name: "S"}, sKeys)
		want := join.NewPairSet()
		jointest.Oracle(r, s, p, want)
		st, err := Join{}.SetupStationary(s, p, join.Options{})
		if err != nil {
			return false
		}
		got := join.NewPairSet()
		if err := st.Join(r, got); err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortedCopySortsAndPreservesPayloads(t *testing.T) {
	rel := relation.New(relation.Schema{Name: "R", PayloadWidth: 1}, 0)
	for _, k := range []uint64{5, 1, 3, 1, 9} {
		if err := rel.Append(k, []byte{byte(k * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	sorted := SortedCopy(rel)
	if !IsSorted(sorted) {
		t.Fatal("not sorted")
	}
	if rel.Key(0) != 5 {
		t.Error("SortedCopy mutated its input")
	}
	// Payload must travel with its key.
	for i := 0; i < sorted.Len(); i++ {
		if sorted.Payload(i)[0] != byte(sorted.Key(i)*10) {
			t.Fatalf("tuple %d: payload %d does not match key %d", i, sorted.Payload(i)[0], sorted.Key(i))
		}
	}
}

func TestSortedCopyNoCopyWhenSorted(t *testing.T) {
	rel := workload.Sequential("R", 10, 0)
	if SortedCopy(rel) != rel {
		t.Error("already-sorted relation should be returned unchanged")
	}
}

func TestSetupRotatingSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := jointest.RandomRelation(rng, "R", 500, 1000, 4)
	rot, err := Join{}.SetupRotating(r, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(rot) {
		t.Error("SetupRotating did not sort")
	}
	got, want := workload.Multiplicities(rot), workload.Multiplicities(r)
	for k, c := range want {
		if got[k] != c {
			t.Errorf("key %d multiplicity changed: %d → %d", k, c, got[k])
		}
	}
}

// TestJoinToleratesUnsortedRotating checks the robustness path: a caller
// that skips SetupRotating still gets correct results.
func TestJoinToleratesUnsortedRotating(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	r := jointest.RandomRelation(rng, "R", 200, 40, 4)
	s := jointest.RandomRelation(rng, "S", 200, 40, 4)
	want := join.NewPairSet()
	jointest.Oracle(r, s, join.Equi{}, want)
	st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := join.NewPairSet()
	if err := st.Join(r, got); err != nil { // r not sorted
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("unsorted rotating fragment joined incorrectly")
	}
}

func TestParallelMergeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	r := jointest.RandomRelation(rng, "R", 2000, 64, 4)
	s := jointest.RandomRelation(rng, "S", 2000, 64, 4)
	run := func(par int) *join.PairSet {
		st, err := Join{}.SetupStationary(s, join.Band{Width: 2}, join.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		ps := join.NewPairSet()
		if err := st.Join(SortedCopy(r), ps); err != nil {
			t.Fatal(err)
		}
		return ps
	}
	if !run(1).Equal(run(8)) {
		t.Error("parallel merge differs from serial")
	}
}

func TestStationaryBytes(t *testing.T) {
	s := workload.Sequential("S", 100, 4)
	st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes() != s.Bytes() {
		t.Errorf("Bytes() = %d, want %d", st.Bytes(), s.Bytes())
	}
}
