// Package join defines the interfaces between cyclo-join and the local join
// algorithms that run on each Data Roundabout host.
//
// The paper's key architectural point (§IV-C) is that cyclo-join can
// orchestrate *any* single-host join algorithm: the algorithm never learns
// that the setup is distributed. We capture the required shape with two
// interfaces that mirror the paper's two processing phases:
//
//   - Algorithm.SetupStationary builds the reusable access structure over
//     the local stationary fragment S_i (hash tables for the radix join,
//     a sorted run for sort-merge join) — the "setup phase";
//   - Stationary.Join combines one rotating fragment R_j with the prepared
//     S_i — the "join phase", executed once per ring hop.
//
// Algorithm.SetupRotating reorganizes a rotating fragment once before it
// enters the ring (radix-clustering or sorting R_j), implementing the
// paper's §IV-D trade: spend network bandwidth shipping reorganized data to
// save CPU on every subsequent hop.
package join

import (
	"fmt"

	"cyclojoin/internal/relation"
	"cyclojoin/internal/trace"
)

// Predicate is a join condition on a pair of keys.
type Predicate interface {
	// Matches reports whether an R tuple with key rKey joins with an S
	// tuple with key sKey.
	Matches(rKey, sKey uint64) bool
	// String names the predicate for diagnostics.
	String() string
}

// Equi is the equality predicate rKey == sKey.
type Equi struct{}

// Matches implements Predicate.
func (Equi) Matches(rKey, sKey uint64) bool { return rKey == sKey }

// String implements Predicate.
func (Equi) String() string { return "equi" }

// Band matches keys within a fixed distance: |rKey − sKey| ≤ Width.
// Band joins are the paper's motivating example of a non-equi predicate
// cyclo-join supports via sort-merge (§IV-A, [7]).
type Band struct {
	// Width is the maximum absolute key distance that still matches.
	Width uint64
}

// Matches implements Predicate.
func (b Band) Matches(rKey, sKey uint64) bool {
	if rKey >= sKey {
		return rKey-sKey <= b.Width
	}
	return sKey-rKey <= b.Width
}

// String implements Predicate.
func (b Band) String() string { return fmt.Sprintf("band(±%d)", b.Width) }

// Theta wraps an arbitrary key predicate; only the nested-loops algorithm
// accepts it.
type Theta struct {
	// Name describes the predicate in diagnostics.
	Name string
	// Fn evaluates the predicate.
	Fn func(rKey, sKey uint64) bool
}

// Matches implements Predicate.
func (t Theta) Matches(rKey, sKey uint64) bool { return t.Fn(rKey, sKey) }

// String implements Predicate.
func (t Theta) String() string {
	if t.Name != "" {
		return "theta(" + t.Name + ")"
	}
	return "theta"
}

// Options tunes a local join algorithm.
type Options struct {
	// Parallelism is the number of worker goroutines used in the join
	// phase (the paper uses all four cores of its quad-core Xeons). Zero
	// means 1.
	Parallelism int
	// L2CacheBytes is the target cache residency for radix partitions
	// (4 MB unified L2 on the paper's testbed). Zero means DefaultL2Bytes.
	L2CacheBytes int
	// RadixBits forces the radix-partition fan-out to 2^RadixBits.
	// Zero means: derive from L2CacheBytes so that one S partition plus
	// its hash table fits in (a quarter of) L2, as in [22].
	RadixBits int
	// Flight is the span recorder algorithm-internal phases (build, probe,
	// sort, merge) report to. Nil means the process-wide trace.Flight()
	// (which records nothing unless enabled).
	Flight *trace.Recorder
	// TraceNode labels this host's join spans with its ring position.
	TraceNode int
}

// DefaultL2Bytes is the paper testbed's 4 MB unified L2 cache.
const DefaultL2Bytes = 4 << 20

// Workers returns the effective worker count.
func (o Options) Workers() int {
	if o.Parallelism <= 0 {
		return 1
	}
	return o.Parallelism
}

// L2Bytes returns the effective cache-size target.
func (o Options) L2Bytes() int {
	if o.L2CacheBytes <= 0 {
		return DefaultL2Bytes
	}
	return o.L2CacheBytes
}

// FlightRecorder returns the effective span recorder.
func (o Options) FlightRecorder() *trace.Recorder {
	if o.Flight == nil {
		return trace.Flight()
	}
	return o.Flight
}

// ErrUnsupportedPredicate is returned by SetupStationary when the algorithm
// cannot evaluate the given predicate (e.g. a band join on the hash join).
var ErrUnsupportedPredicate = fmt.Errorf("join: unsupported predicate")

// Algorithm is a local two-phase join implementation.
type Algorithm interface {
	// Name identifies the algorithm ("hash", "sortmerge", "nested").
	Name() string
	// Supports reports whether the algorithm can evaluate p.
	Supports(p Predicate) bool
	// SetupStationary runs the setup phase over the local stationary
	// fragment, returning the prepared access structure.
	SetupStationary(s *relation.Relation, p Predicate, opts Options) (Stationary, error)
	// SetupRotating reorganizes a rotating fragment before its first ring
	// hop. The returned relation replaces the fragment's contents; it must
	// contain the same multiset of tuples. Algorithms with no useful
	// reorganization return the input unchanged.
	SetupRotating(r *relation.Relation, p Predicate, opts Options) (*relation.Relation, error)
}

// Stationary is a prepared stationary fragment, ready to be joined against
// any number of rotating fragments.
type Stationary interface {
	// Join runs the join phase: combine the rotating fragment r with the
	// prepared stationary fragment, emitting every match to c exactly
	// once. Implementations may emit concurrently from several
	// goroutines; c must be safe for concurrent use.
	Join(r *relation.Relation, c Collector) error
	// Bytes estimates the in-memory size of the access structure, used to
	// account for the cost of shipping it over the ring in setup-reuse
	// mode (§IV-D).
	Bytes() int
}
