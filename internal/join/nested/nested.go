// Package nested implements the block nested-loops join that cyclo-join
// falls back to for arbitrary join predicates ("our system falls back to the
// universal but slower nested loops join", §IV-C).
//
// The stationary fragment is scanned in cache-sized blocks; for each block,
// the rotating fragment is scanned once and every pair is tested against the
// predicate. The join phase parallelizes over contiguous chunks of the
// rotating fragment, like the other algorithms.
package nested

import (
	"sync"

	"cyclojoin/internal/join"
	"cyclojoin/internal/relation"
)

// Join implements join.Algorithm with a block nested-loops join. The zero
// value is ready to use.
type Join struct{}

var _ join.Algorithm = Join{}

// Name implements join.Algorithm.
func (Join) Name() string { return "nested" }

// Supports implements join.Algorithm: nested loops evaluates any predicate.
func (Join) Supports(p join.Predicate) bool { return p != nil }

// SetupStationary implements join.Algorithm. Nested loops has no access
// structure; setup just retains the fragment.
func (Join) SetupStationary(s *relation.Relation, p join.Predicate, opts join.Options) (join.Stationary, error) {
	return &stationary{rel: s, pred: p, opts: opts}, nil
}

// SetupRotating implements join.Algorithm: no useful reorganization.
func (Join) SetupRotating(r *relation.Relation, p join.Predicate, opts join.Options) (*relation.Relation, error) {
	return r, nil
}

type stationary struct {
	rel  *relation.Relation
	pred join.Predicate
	opts join.Options
}

var _ join.Stationary = (*stationary)(nil)

// Bytes implements join.Stationary. There is no access structure beyond the
// fragment itself.
func (st *stationary) Bytes() int { return st.rel.Bytes() }

// Join implements join.Stationary.
func (st *stationary) Join(r *relation.Relation, c join.Collector) error {
	workers := st.opts.Workers()
	n := r.Len()
	if n == 0 || st.rel.Len() == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		st.joinRange(r, 0, n, c)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.joinRange(r, lo, hi, c)
		}()
	}
	wg.Wait()
	return nil
}

// blockTuples sizes the stationary block so one block of keys stays within
// the L1 data cache (32 KB on the paper's Xeons).
const blockTuples = 4096

func (st *stationary) joinRange(r *relation.Relation, lo, hi int, c join.Collector) {
	sKeys := st.rel.Keys()
	for blockLo := 0; blockLo < len(sKeys); blockLo += blockTuples {
		blockHi := blockLo + blockTuples
		if blockHi > len(sKeys) {
			blockHi = len(sKeys)
		}
		for ri := lo; ri < hi; ri++ {
			rk := r.Key(ri)
			for si := blockLo; si < blockHi; si++ {
				if st.pred.Matches(rk, sKeys[si]) {
					c.Emit(rk, sKeys[si], r.Payload(ri), st.rel.Payload(si))
				}
			}
		}
	}
}
