package nested

import (
	"math/rand"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

func TestSupportsEverything(t *testing.T) {
	var j Join
	preds := []join.Predicate{
		join.Equi{},
		join.Band{Width: 5},
		join.Theta{Name: "lt", Fn: func(r, s uint64) bool { return r < s }},
	}
	for _, p := range preds {
		if !j.Supports(p) {
			t.Errorf("must support %s", p)
		}
	}
	if j.Supports(nil) {
		t.Error("nil predicate must be rejected")
	}
}

func TestMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	preds := []join.Predicate{
		join.Equi{},
		join.Band{Width: 3},
		join.Theta{Name: "lt", Fn: func(r, s uint64) bool { return r < s }},
		join.Theta{Name: "modshare", Fn: func(r, s uint64) bool { return r%7 == s%7 }},
	}
	for _, p := range preds {
		t.Run(p.String(), func(t *testing.T) {
			r := jointest.RandomRelation(rng, "R", 150, 60, 4)
			s := jointest.RandomRelation(rng, "S", 120, 60, 4)
			jointest.CheckAgainstOracle(t, Join{}, r, s, p, join.Options{Parallelism: 3})
		})
	}
}

// TestBlockingCoversWholeStationary uses a stationary fragment larger than
// one block to exercise the block loop.
func TestBlockingCoversWholeStationary(t *testing.T) {
	n := blockTuples*2 + 17
	s := workload.Sequential("S", n, 0)
	r := relation.FromKeys(relation.Schema{Name: "R"}, []uint64{0, uint64(blockTuples), uint64(n - 1)})
	st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var c join.Counter
	if err := st.Join(r, &c); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 3 {
		t.Errorf("count = %d, want 3 (one match per block region)", c.Count())
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := workload.Sequential("E", 0, 0)
	full := workload.Sequential("F", 10, 0)
	for _, tc := range []struct{ r, s *relation.Relation }{{empty, full}, {full, empty}, {empty, empty}} {
		st, err := Join{}.SetupStationary(tc.s, join.Equi{}, join.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var c join.Counter
		if err := st.Join(tc.r, &c); err != nil {
			t.Fatal(err)
		}
		if c.Count() != 0 {
			t.Errorf("empty-input join produced %d matches", c.Count())
		}
	}
}

func TestSetupRotatingIdentity(t *testing.T) {
	r := workload.Sequential("R", 5, 2)
	rot, err := Join{}.SetupRotating(r, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rot != r {
		t.Error("nested loops should not reorganize the rotating fragment")
	}
}

func TestCrossProduct(t *testing.T) {
	alwaysTrue := join.Theta{Name: "true", Fn: func(r, s uint64) bool { return true }}
	r := workload.Sequential("R", 13, 0)
	s := workload.Sequential("S", 7, 0)
	st, err := Join{}.SetupStationary(s, alwaysTrue, join.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var c join.Counter
	if err := st.Join(r, &c); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 13*7 {
		t.Errorf("cross product = %d, want %d", c.Count(), 13*7)
	}
}
