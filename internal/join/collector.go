package join

import (
	"sync"
	"sync/atomic"

	"cyclojoin/internal/relation"
)

// Collector receives join matches. Implementations must be safe for
// concurrent use: the multi-threaded join phases emit from several
// goroutines at once (§IV-C: "uses all four cores ... to run the join phase
// in parallel").
type Collector interface {
	// Emit records one match between an R tuple (rKey, rPay) and an S
	// tuple (sKey, sPay). The payload slices are only valid during the
	// call; implementations that retain them must copy.
	Emit(rKey, sKey uint64, rPay, sPay []byte)
}

// Counter counts matches. The zero value is ready to use.
type Counter struct {
	n atomic.Int64
}

var _ Collector = (*Counter)(nil)

// Emit implements Collector.
func (c *Counter) Emit(rKey, sKey uint64, rPay, sPay []byte) { c.n.Add(1) }

// Count returns the number of matches emitted so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// Discard drops all matches; useful for benchmarking the pure join cost.
type Discard struct{}

var _ Collector = Discard{}

// Emit implements Collector.
func (Discard) Emit(rKey, sKey uint64, rPay, sPay []byte) {}

// Materializer builds the join result as a relation. The output schema is
//
//	key      = rKey
//	payload  = rPay ‖ sKey (8 bytes little-endian) ‖ sPay
//
// so the result of one cyclo-join run can feed a subsequent run, keyed on
// the R side (the ternary-join composition of §IV-A). Use Rekeyed to key the
// output on the S side instead.
type Materializer struct {
	mu  sync.Mutex
	out *relation.Relation
	// rekey selects sKey as the output key when true.
	rekey bool
}

var _ Collector = (*Materializer)(nil)

// NewMaterializer builds a collector producing tuples keyed on rKey.
// rPayWidth and sPayWidth are the payload widths of the two inputs.
func NewMaterializer(name string, rPayWidth, sPayWidth int) *Materializer {
	return &Materializer{
		out: relation.New(relation.Schema{
			Name:         name,
			PayloadWidth: rPayWidth + relation.KeyWidth + sPayWidth,
		}, 0),
	}
}

// NewRekeyedMaterializer builds a collector producing tuples keyed on sKey,
// with payload rKey ‖ rPay ‖ sPay.
func NewRekeyedMaterializer(name string, rPayWidth, sPayWidth int) *Materializer {
	m := NewMaterializer(name, rPayWidth, sPayWidth)
	m.rekey = true
	return m
}

// Emit implements Collector.
func (m *Materializer) Emit(rKey, sKey uint64, rPay, sPay []byte) {
	pay := make([]byte, 0, len(rPay)+8+len(sPay))
	outKey := rKey
	otherKey := sKey
	if m.rekey {
		outKey, otherKey = sKey, rKey
	}
	if m.rekey {
		pay = appendKeyLE(pay, otherKey)
		pay = append(pay, rPay...)
		pay = append(pay, sPay...)
	} else {
		pay = append(pay, rPay...)
		pay = appendKeyLE(pay, otherKey)
		pay = append(pay, sPay...)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.out.Append(outKey, pay); err != nil {
		// Width is fixed by construction; a mismatch is a programming
		// error in this package, not a runtime condition.
		panic(err)
	}
}

func appendKeyLE(dst []byte, k uint64) []byte {
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(k>>(8*i)))
	}
	return dst
}

// Result returns the materialized output relation.
func (m *Materializer) Result() *relation.Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.out
}

// PairSet records matches as (rKey, sKey) multiset counts — the
// order-insensitive representation the tests use to compare algorithms
// against the nested-loops oracle.
type PairSet struct {
	mu    sync.Mutex
	pairs map[[2]uint64]int
}

var _ Collector = (*PairSet)(nil)

// NewPairSet returns an empty pair multiset collector.
func NewPairSet() *PairSet {
	return &PairSet{pairs: make(map[[2]uint64]int)}
}

// Emit implements Collector.
func (p *PairSet) Emit(rKey, sKey uint64, rPay, sPay []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pairs[[2]uint64{rKey, sKey}]++
}

// Pairs returns a copy of the pair multiset.
func (p *PairSet) Pairs() map[[2]uint64]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	cp := make(map[[2]uint64]int, len(p.pairs))
	for k, v := range p.pairs {
		cp[k] = v
	}
	return cp
}

// Equal reports whether two pair multisets are identical.
func (p *PairSet) Equal(o *PairSet) bool {
	a, b := p.Pairs(), o.Pairs()
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Tee fans one match stream out to several collectors.
type Tee []Collector

var _ Collector = Tee(nil)

// Emit implements Collector.
func (t Tee) Emit(rKey, sKey uint64, rPay, sPay []byte) {
	for _, c := range t {
		c.Emit(rKey, sKey, rPay, sPay)
	}
}
