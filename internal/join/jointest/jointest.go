// Package jointest provides shared test fixtures for the join algorithm
// packages: a brute-force oracle independent of any production algorithm,
// random relation generators, and an equivalence checker that compares an
// algorithm's output against the oracle as a (rKey, sKey) pair multiset.
package jointest

import (
	"math/rand"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/relation"
)

// Oracle emits every matching pair of r × s to c with a plain double loop.
// It shares no code with the production algorithms.
func Oracle(r, s *relation.Relation, p join.Predicate, c join.Collector) {
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			if p.Matches(r.Key(i), s.Key(j)) {
				c.Emit(r.Key(i), s.Key(j), r.Payload(i), s.Payload(j))
			}
		}
	}
}

// RandomRelation builds a relation of n tuples with keys drawn from
// [0, domain) and payloadWidth bytes of random payload.
func RandomRelation(rng *rand.Rand, name string, n, domain, payloadWidth int) *relation.Relation {
	rel := relation.New(relation.Schema{Name: name, PayloadWidth: payloadWidth}, n)
	pay := make([]byte, payloadWidth)
	for i := 0; i < n; i++ {
		for j := range pay {
			pay[j] = byte(rng.Intn(256))
		}
		if err := rel.Append(uint64(rng.Intn(domain)), pay); err != nil {
			panic(err)
		}
	}
	return rel
}

// CheckAgainstOracle runs alg end-to-end (SetupRotating + SetupStationary +
// Join) on (r, s, p) and fails the test if the pair multiset differs from
// the oracle's.
func CheckAgainstOracle(t *testing.T, alg join.Algorithm, r, s *relation.Relation, p join.Predicate, opts join.Options) {
	t.Helper()
	want := join.NewPairSet()
	Oracle(r, s, p, want)

	st, err := alg.SetupStationary(s, p, opts)
	if err != nil {
		t.Fatalf("%s: SetupStationary: %v", alg.Name(), err)
	}
	rot, err := alg.SetupRotating(r, p, opts)
	if err != nil {
		t.Fatalf("%s: SetupRotating: %v", alg.Name(), err)
	}
	got := join.NewPairSet()
	if err := st.Join(rot, got); err != nil {
		t.Fatalf("%s: Join: %v", alg.Name(), err)
	}
	if !got.Equal(want) {
		t.Errorf("%s: join output differs from oracle: got %d distinct pairs, want %d (r=%d s=%d pred=%s)",
			alg.Name(), len(got.Pairs()), len(want.Pairs()), r.Len(), s.Len(), p)
	}
}
