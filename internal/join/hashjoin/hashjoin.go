// Package hashjoin implements the radix-partitioned hash join of Manegold,
// Boncz and Kersten [22] that the paper ports from MonetDB (§IV-C.1).
//
// The algorithm runs in the two phases cyclo-join expects:
//
//   - setup: radix-cluster the stationary fragment S_i into 2^bits
//     partitions by a hash of the join key, sized so that one partition
//     plus its hash table fits into the L2 cache, then build a
//     bucket-chained hash table per partition;
//   - join: for each tuple of the rotating fragment R_j, locate its
//     partition and probe that partition's hash table. Because the
//     partition fits in L2, all probes for a partition are cache-resident.
//
// The join phase is embarrassingly parallel across disjoint partitions; we
// run it on Options.Parallelism goroutines exactly as the paper runs it on
// the four cores of its Xeons.
package hashjoin

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"

	"cyclojoin/internal/join"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/trace"
)

// Join implements join.Algorithm with a radix-partitioned hash join.
// The zero value is ready to use.
type Join struct{}

var _ join.Algorithm = Join{}

// Name implements join.Algorithm.
func (Join) Name() string { return "hash" }

// Supports implements join.Algorithm: hash joins inherently support only
// equality predicates (§IV-C).
func (Join) Supports(p join.Predicate) bool {
	_, ok := p.(join.Equi)
	return ok
}

// SetupStationary implements join.Algorithm: radix-cluster s and build the
// per-partition hash tables.
func (j Join) SetupStationary(s *relation.Relation, p join.Predicate, opts join.Options) (join.Stationary, error) {
	if !j.Supports(p) {
		return nil, fmt.Errorf("%w: hash join cannot evaluate %s", join.ErrUnsupportedPredicate, p)
	}
	fl := opts.FlightRecorder()
	bs := fl.Shard(opts.TraceNode, "join/build")
	bpd := bs.Begin(trace.PhaseBuild)
	bpd.Arg = int64(s.Len())
	b := RadixBits(s.Bytes(), opts)
	st := &stationary{bits: b, opts: opts, payWidth: s.Schema().PayloadWidth}
	st.parts = parallelCluster(s, b, opts.Workers())
	for i := range st.parts {
		st.parts[i].buildTable(b)
	}
	// One probe track per worker: Join runs the probe phase concurrently
	// and shards are single-producer.
	st.probeShards = make([]*trace.Shard, opts.Workers())
	for w := range st.probeShards {
		st.probeShards[w] = fl.Shard(opts.TraceNode, "join/probe/"+strconv.Itoa(w))
	}
	bs.End(bpd)
	return st, nil
}

// SetupRotating implements join.Algorithm: radix-cluster the rotating
// fragment so that the join phase scans it partition-by-partition with
// cache-friendly locality. The clustering is purely an optimization — the
// probe is order-independent — which is why a fragment clustered with a
// different fan-out than the stationary side still joins correctly.
func (Join) SetupRotating(r *relation.Relation, p join.Predicate, opts join.Options) (*relation.Relation, error) {
	if _, ok := p.(join.Equi); !ok {
		return nil, fmt.Errorf("%w: hash join cannot evaluate %s", join.ErrUnsupportedPredicate, p)
	}
	b := RadixBits(r.Bytes(), opts)
	if b == 0 {
		return r, nil
	}
	parts := parallelCluster(r, b, opts.Workers())
	out := relation.New(r.Schema(), r.Len())
	for i := range parts {
		pt := &parts[i]
		for t := range pt.keys {
			if err := out.Append(pt.keys[t], pt.payload(t)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// RadixBits derives the radix fan-out: enough partitions that one stationary
// partition plus its hash table (≈ 2× the partition's data volume) fits in a
// quarter of the L2 cache, following the sizing rule of [22].
func RadixBits(dataBytes int, opts join.Options) int {
	target := opts.L2Bytes() / 4
	if target <= 0 {
		target = 1
	}
	need := (2*dataBytes + target - 1) / target
	if need <= 1 {
		return 0
	}
	b := bits.Len(uint(need - 1)) // ceil(log2(need))
	const maxBits = 14
	if b > maxBits {
		b = maxBits
	}
	return b
}

// partition is one radix-clustered piece of the stationary fragment plus its
// bucket-chained hash table.
type partition struct {
	keys []uint64
	pay  []byte
	payW int
	// head/next/mask are written once by buildTable during
	// SetupStationary and read-only by the probe workers Join launches
	// later; the setup-then-join contract is the happens-before edge.

	// head holds, per hash bucket, 1+index of the chain head (0 = empty).
	//
	//cyclolint:sharesafe built during SetupStationary, read-only once Join's probe workers start
	head []int32
	// next holds, per tuple, 1+index of the next tuple in its chain.
	//
	//cyclolint:sharesafe built during SetupStationary, read-only once Join's probe workers start
	next []int32
	//cyclolint:sharesafe built during SetupStationary, read-only once Join's probe workers start
	mask uint64
}

func (pt *partition) payload(i int) []byte {
	if pt.payW == 0 {
		return nil
	}
	return pt.pay[i*pt.payW : (i+1)*pt.payW]
}

// bucketOf selects a radix partition from the *low* bits of the key hash.
func bucketOf(key uint64, radixBits int) uint64 {
	if radixBits == 0 {
		return 0
	}
	return relation.HashKey(key) & ((1 << radixBits) - 1)
}

// cluster distributes r's tuples into 2^radixBits partitions via a counting
// sort (two scans, no per-tuple allocation).
func cluster(r *relation.Relation, radixBits int) []partition {
	n := 1 << radixBits
	payW := r.Schema().PayloadWidth
	counts := make([]int, n)
	for i := 0; i < r.Len(); i++ {
		counts[bucketOf(r.Key(i), radixBits)]++
	}
	parts := make([]partition, n)
	for p := range parts {
		parts[p] = partition{
			keys: make([]uint64, 0, counts[p]),
			pay:  make([]byte, 0, counts[p]*payW),
			payW: payW,
		}
	}
	for i := 0; i < r.Len(); i++ {
		p := &parts[bucketOf(r.Key(i), radixBits)]
		p.keys = append(p.keys, r.Key(i))
		p.pay = append(p.pay, r.Payload(i)...)
	}
	return parts
}

// buildTable constructs the bucket-chained hash table over the partition.
// The in-partition hash uses the bits *above* the radix bits so that the
// radix split and the table lookup draw on independent parts of the hash.
func (pt *partition) buildTable(radixBits int) {
	n := len(pt.keys)
	if n == 0 {
		return
	}
	size := 1
	for size < 2*n {
		size <<= 1
	}
	pt.mask = uint64(size - 1)
	pt.head = make([]int32, size)
	pt.next = make([]int32, n)
	for i := 0; i < n; i++ {
		b := (relation.HashKey(pt.keys[i]) >> radixBits) & pt.mask
		pt.next[i] = pt.head[b]
		pt.head[b] = int32(i + 1)
	}
}

// probe emits all matches of key/pay against the partition's table.
func (pt *partition) probe(key uint64, rPay []byte, radixBits int, c join.Collector) {
	if len(pt.keys) == 0 {
		return
	}
	b := (relation.HashKey(key) >> radixBits) & pt.mask
	for e := pt.head[b]; e != 0; e = pt.next[e-1] {
		i := int(e - 1)
		if pt.keys[i] == key {
			c.Emit(key, key, rPay, pt.payload(i))
		}
	}
}

// stationary is the prepared stationary fragment.
type stationary struct {
	bits     int
	parts    []partition
	opts     join.Options
	payWidth int
	// probeShards records per-worker probe spans (index = worker).
	probeShards []*trace.Shard
}

var _ join.Stationary = (*stationary)(nil)

// Bytes implements join.Stationary: the clustered copy plus table arrays.
func (st *stationary) Bytes() int {
	total := 0
	for i := range st.parts {
		pt := &st.parts[i]
		total += len(pt.keys)*8 + len(pt.pay) + len(pt.head)*4 + len(pt.next)*4
	}
	return total
}

// Join implements join.Stationary: probe every tuple of r against its
// partition's hash table, splitting r across Options.Parallelism workers.
func (st *stationary) Join(r *relation.Relation, c join.Collector) error {
	workers := st.opts.Workers()
	n := r.Len()
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		st.joinRange(r, 0, n, 0, c)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st.joinRange(r, lo, hi, w, c)
		}(w)
	}
	wg.Wait()
	return nil
}

func (st *stationary) joinRange(r *relation.Relation, lo, hi, worker int, c join.Collector) {
	ps := st.probeShard(worker)
	pd := ps.Begin(trace.PhaseProbe)
	pd.Arg = int64(hi - lo)
	for i := lo; i < hi; i++ {
		k := r.Key(i)
		pt := &st.parts[bucketOf(k, st.bits)]
		pt.probe(k, r.Payload(i), st.bits, c)
	}
	ps.End(pd)
}

// probeShard returns the worker's probe track, tolerating a stationary
// built outside SetupStationary (tests construct the struct directly).
func (st *stationary) probeShard(worker int) *trace.Shard {
	if worker < len(st.probeShards) && st.probeShards[worker] != nil {
		return st.probeShards[worker]
	}
	return trace.NopShard()
}

// Partitions exposes the number of radix partitions, for tests and the
// ablation benchmarks.
func (st *stationary) Partitions() int { return len(st.parts) }

// MaxPartitionBytes returns the data volume of the largest partition —
// the quantity that must stay under the L2 budget for the cache-resident
// probe argument of §V-D to hold.
func (st *stationary) MaxPartitionBytes() int {
	maxB := 0
	for i := range st.parts {
		b := len(st.parts[i].keys)*8 + len(st.parts[i].pay)
		if b > maxB {
			maxB = b
		}
	}
	return maxB
}
