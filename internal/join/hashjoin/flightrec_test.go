package hashjoin

import (
	"math/rand"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/trace"
)

// TestFlightSpans: a traced hash join records one build span and one
// probe span per worker, labeled with the configured ring position.
func TestFlightSpans(t *testing.T) {
	rec := trace.NewRecorder(256)
	rng := rand.New(rand.NewSource(7))
	s := jointest.RandomRelation(rng, "S", 4000, 1000, 8)
	r := jointest.RandomRelation(rng, "R", 4000, 1000, 8)
	opts := join.Options{Parallelism: 2, Flight: rec, TraceNode: 3}

	st, err := Join{}.SetupStationary(s, join.Equi{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Join(r, join.Discard{}); err != nil {
		t.Fatal(err)
	}

	var builds, probes int
	for _, sp := range rec.Snapshot() {
		if sp.Node != 3 {
			t.Fatalf("span on node %d, want 3: %+v", sp.Node, sp)
		}
		switch sp.Phase {
		case trace.PhaseBuild:
			builds++
			if sp.Arg != int64(s.Len()) {
				t.Errorf("build span covers %d tuples, want %d", sp.Arg, s.Len())
			}
		case trace.PhaseProbe:
			probes++
		default:
			t.Fatalf("unexpected phase: %+v", sp)
		}
		if sp.Dur < 1 {
			t.Fatalf("span never ended: %+v", sp)
		}
	}
	if builds != 1 {
		t.Errorf("build spans = %d, want 1", builds)
	}
	if probes != opts.Workers() {
		t.Errorf("probe spans = %d, want %d (one per worker)", probes, opts.Workers())
	}
}
