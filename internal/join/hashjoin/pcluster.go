package hashjoin

import (
	"sync"

	"cyclojoin/internal/relation"
)

// parallelCluster distributes r's tuples into 2^radixBits partitions using
// `workers` goroutines: a per-worker histogram pass computes exclusive
// prefix offsets, then each worker scatters its contiguous input range into
// the preallocated partition arrays without locks — the textbook parallel
// counting sort that multi-core radix joins use for their partition phase.
//
// With one worker (or small inputs) it falls back to the sequential
// cluster().
func parallelCluster(r *relation.Relation, radixBits, workers int) []partition {
	const minPerWorker = 8192
	n := r.Len()
	if workers <= 1 || n < 2*minPerWorker || radixBits == 0 {
		return cluster(r, radixBits)
	}
	if max := n / minPerWorker; workers > max {
		workers = max
	}
	parts := 1 << radixBits
	payW := r.Schema().PayloadWidth

	// Pass 1: per-worker histograms over contiguous input ranges.
	hist := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hist[w] = make([]int, parts)
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := hist[w]
			for i := lo; i < hi; i++ {
				h[bucketOf(r.Key(i), radixBits)]++
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Exclusive prefix sums: offset[w][p] is where worker w writes its
	// first tuple of partition p.
	totals := make([]int, parts)
	offsets := make([][]int, workers)
	for w := 0; w < workers; w++ {
		offsets[w] = make([]int, parts)
	}
	for p := 0; p < parts; p++ {
		run := 0
		for w := 0; w < workers; w++ {
			offsets[w][p] = run
			run += hist[w][p]
		}
		totals[p] = run
	}

	// Preallocate the partition columns at their exact final sizes.
	out := make([]partition, parts)
	for p := range out {
		out[p] = partition{
			keys: make([]uint64, totals[p]),
			pay:  make([]byte, totals[p]*payW),
			payW: payW,
		}
	}

	// Pass 2: scatter. Workers write disjoint ranges per partition, so no
	// synchronization is needed.
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cursor := offsets[w]
			for i := lo; i < hi; i++ {
				p := bucketOf(r.Key(i), radixBits)
				at := cursor[p]
				cursor[p]++
				out[p].keys[at] = r.Key(i)
				if payW > 0 {
					copy(out[p].pay[at*payW:(at+1)*payW], r.Payload(i))
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}
