package hashjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

func TestSupports(t *testing.T) {
	var j Join
	if !j.Supports(join.Equi{}) {
		t.Error("must support equi")
	}
	if j.Supports(join.Band{Width: 1}) {
		t.Error("must not support band")
	}
	if j.Supports(join.Theta{Fn: func(a, b uint64) bool { return true }}) {
		t.Error("must not support theta")
	}
}

func TestSetupRejectsUnsupportedPredicate(t *testing.T) {
	var j Join
	r := workload.Sequential("R", 4, 0)
	if _, err := j.SetupStationary(r, join.Band{Width: 1}, join.Options{}); err == nil {
		t.Error("SetupStationary(band): want error")
	}
	if _, err := j.SetupRotating(r, join.Band{Width: 1}, join.Options{}); err == nil {
		t.Error("SetupRotating(band): want error")
	}
}

func TestMatchesOracleSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tests := []struct {
		name       string
		rN, sN     int
		domain     int
		pay        int
		par        int
		l2Override int
	}{
		{"tiny", 10, 10, 5, 4, 1, 0},
		{"duplicates heavy", 200, 300, 10, 4, 1, 0},
		{"wide domain", 500, 400, 100000, 4, 1, 0},
		{"no payload", 100, 100, 50, 0, 1, 0},
		{"parallel", 1000, 800, 64, 4, 4, 0},
		{"forced multi-partition", 2000, 2000, 256, 4, 2, 1 << 10},
		{"empty R", 0, 50, 10, 4, 1, 0},
		{"empty S", 50, 0, 10, 4, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := jointest.RandomRelation(rng, "R", tt.rN, tt.domain, tt.pay)
			s := jointest.RandomRelation(rng, "S", tt.sN, tt.domain, tt.pay)
			opts := join.Options{Parallelism: tt.par, L2CacheBytes: tt.l2Override}
			jointest.CheckAgainstOracle(t, Join{}, r, s, join.Equi{}, opts)
		})
	}
}

// TestMatchesOracleProperty drives the radix join with quick-generated keys.
func TestMatchesOracleProperty(t *testing.T) {
	f := func(rKeys, sKeys []uint64) bool {
		// Shrink the domain so matches actually occur.
		for i := range rKeys {
			rKeys[i] %= 64
		}
		for i := range sKeys {
			sKeys[i] %= 64
		}
		r := relation.FromKeys(relation.Schema{Name: "R"}, rKeys)
		s := relation.FromKeys(relation.Schema{Name: "S"}, sKeys)
		want := join.NewPairSet()
		jointest.Oracle(r, s, join.Equi{}, want)
		st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{L2CacheBytes: 512})
		if err != nil {
			return false
		}
		got := join.NewPairSet()
		if err := st.Join(r, got); err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSetupRotatingPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := jointest.RandomRelation(rng, "R", 1000, 32, 4)
	rot, err := Join{}.SetupRotating(r, join.Equi{}, join.Options{L2CacheBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rot.Len() != r.Len() {
		t.Fatalf("rotated len %d != %d", rot.Len(), r.Len())
	}
	if got, want := workload.Multiplicities(rot), workload.Multiplicities(r); len(got) != len(want) {
		t.Fatal("distinct key count changed")
	} else {
		for k, c := range want {
			if got[k] != c {
				t.Errorf("key %d multiplicity %d, want %d", k, got[k], c)
			}
		}
	}
}

// TestSetupRotatingClusters verifies the clustered layout: tuples of the
// same radix bucket must be contiguous.
func TestSetupRotatingClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := jointest.RandomRelation(rng, "R", 4096, 1024, 4)
	opts := join.Options{L2CacheBytes: 1 << 10}
	b := RadixBits(r.Bytes(), opts)
	if b == 0 {
		t.Fatal("test needs multi-partition clustering")
	}
	rot, err := Join{}.SetupRotating(r, join.Equi{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	last := uint64(0)
	started := false
	for i := 0; i < rot.Len(); i++ {
		bk := bucketOf(rot.Key(i), b)
		if started && bk != last && seen[bk] {
			t.Fatalf("bucket %d reappears at tuple %d: layout not clustered", bk, i)
		}
		if !started || bk != last {
			seen[last] = true
			last = bk
			started = true
		}
	}
}

func TestRadixBits(t *testing.T) {
	tests := []struct {
		bytes, l2 int
		want      int
	}{
		{0, 1 << 20, 0},
		{100, 1 << 20, 0},     // fits in a quarter of L2
		{1 << 20, 1 << 20, 3}, // 2*1MB over 256KB target → 8 parts
		{64 << 20, join.DefaultL2Bytes, 7},
		{1 << 40, 1 << 20, 14}, // clamped
	}
	for _, tt := range tests {
		opts := join.Options{L2CacheBytes: tt.l2}
		if got := RadixBits(tt.bytes, opts); got != tt.want {
			t.Errorf("RadixBits(%d, l2=%d) = %d, want %d", tt.bytes, tt.l2, got, tt.want)
		}
	}
}

func TestStationaryPartitionsFitCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := jointest.RandomRelation(rng, "S", 20000, 1<<20, 4)
	opts := join.Options{L2CacheBytes: 16 << 10}
	stIface, err := Join{}.SetupStationary(s, join.Equi{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := stIface.(*stationary)
	if !ok {
		t.Fatal("unexpected stationary type")
	}
	if st.Partitions() < 2 {
		t.Fatalf("expected multiple partitions, got %d", st.Partitions())
	}
	// Uniform keys: the largest partition should be near the L2/4 target.
	// Allow 2× slack for hash variance.
	if maxB := st.MaxPartitionBytes(); maxB > opts.L2Bytes()/2 {
		t.Errorf("largest partition %d B exceeds half of L2 budget %d B", maxB, opts.L2Bytes())
	}
}

func TestStationaryBytesPositive(t *testing.T) {
	s := workload.Sequential("S", 100, 4)
	st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes() < s.Bytes() {
		t.Errorf("Bytes() = %d, want ≥ data volume %d", st.Bytes(), s.Bytes())
	}
}

func TestParallelProbeEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := jointest.RandomRelation(rng, "R", 3000, 100, 4)
	s := jointest.RandomRelation(rng, "S", 3000, 100, 4)
	run := func(par int) *join.PairSet {
		st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		ps := join.NewPairSet()
		if err := st.Join(r, ps); err != nil {
			t.Fatal(err)
		}
		return ps
	}
	serial, parallel := run(1), run(8)
	if !serial.Equal(parallel) {
		t.Error("parallel probe output differs from serial")
	}
}

// TestProbeCostConstantShape is the unit-level analogue of Equation (?) in
// §V-B: the number of key comparisons per probe must not grow with the
// stationary size when keys are unique (rare collisions).
func TestSelfJoinCount(t *testing.T) {
	// Self-join of a relation with unique keys has exactly n matches.
	s := workload.Sequential("S", 5000, 4)
	st, err := Join{}.SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var c join.Counter
	if err := st.Join(s, &c); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 5000 {
		t.Errorf("self-join count = %d, want 5000", c.Count())
	}
}
