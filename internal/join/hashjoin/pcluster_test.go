package hashjoin

import (
	"math/rand"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/jointest"
)

// TestParallelClusterEqualsSequential: both clusterings must produce
// identical partitions (the scatter preserves input order within each
// worker's range, and worker ranges are processed in order, so the layouts
// match exactly).
func TestParallelClusterEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{0, 100, 8192, 16384, 60_000} {
		for _, bits := range []int{1, 4, 8} {
			for _, workers := range []int{2, 3, 8} {
				r := jointest.RandomRelation(rng, "R", n, 10_000, 4)
				seq := cluster(r, bits)
				par := parallelCluster(r, bits, workers)
				if len(seq) != len(par) {
					t.Fatalf("n=%d bits=%d: partition counts differ", n, bits)
				}
				for p := range seq {
					if len(seq[p].keys) != len(par[p].keys) {
						t.Fatalf("n=%d bits=%d workers=%d: partition %d sizes %d vs %d",
							n, bits, workers, p, len(seq[p].keys), len(par[p].keys))
					}
					for i := range seq[p].keys {
						if seq[p].keys[i] != par[p].keys[i] {
							t.Fatalf("partition %d key %d differs", p, i)
						}
					}
					if string(seq[p].pay) != string(par[p].pay) {
						t.Fatalf("partition %d payloads differ", p)
					}
				}
			}
		}
	}
}

// TestParallelClusterJoinCorrect: the full join pipeline on top of the
// parallel clustering still matches the oracle.
func TestParallelClusterJoinCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	r := jointest.RandomRelation(rng, "R", 30_000, 2_000, 4)
	s := jointest.RandomRelation(rng, "S", 30_000, 2_000, 4)
	jointest.CheckAgainstOracle(t, Join{}, r, s, join.Equi{},
		join.Options{Parallelism: 4, L2CacheBytes: 64 << 10})
}
