package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/workload"
)

// faultyAlgorithm wraps a real algorithm and makes the stationary state of
// one host fail its first `failures` join calls — a stand-in for a host
// crashing mid-revolution.
type faultyAlgorithm struct {
	inner    join.Algorithm
	failures *atomic.Int32
}

var _ join.Algorithm = (*faultyAlgorithm)(nil)

func (f *faultyAlgorithm) Name() string                   { return f.inner.Name() }
func (f *faultyAlgorithm) Supports(p join.Predicate) bool { return f.inner.Supports(p) }
func (f *faultyAlgorithm) SetupRotating(r *relation.Relation, p join.Predicate, o join.Options) (*relation.Relation, error) {
	return f.inner.SetupRotating(r, p, o)
}

func (f *faultyAlgorithm) SetupStationary(s *relation.Relation, p join.Predicate, o join.Options) (join.Stationary, error) {
	st, err := f.inner.SetupStationary(s, p, o)
	if err != nil {
		return nil, err
	}
	return &faultyStationary{inner: st, failures: f.failures}, nil
}

type faultyStationary struct {
	inner    join.Stationary
	failures *atomic.Int32
}

var errInjected = errors.New("injected host failure")

func (f *faultyStationary) Bytes() int { return f.inner.Bytes() }

func (f *faultyStationary) Join(r *relation.Relation, c join.Collector) error {
	if f.failures.Add(-1) >= 0 {
		return errInjected
	}
	return f.inner.Join(r, c)
}

// TestFailureReplaceRetry exercises the paper's §II-C replacement story
// end-to-end: a host fails mid-revolution, the run aborts, the operator
// replaces the host and re-stations, and the retried join succeeds with
// the full result.
func TestFailureReplaceRetry(t *testing.T) {
	var failures atomic.Int32
	failures.Store(1) // the first Process call on any host fails

	c, err := NewCluster(Config{
		Nodes:     3,
		Algorithm: &faultyAlgorithm{inner: hashjoin.Join{}, failures: &failures},
		Predicate: join.Equi{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()

	r := workload.Sequential("R", 600, 4)
	s := workload.Sequential("S", 600, 4)

	_, err = c.JoinRelations(r, s, false)
	if !errors.Is(err, errInjected) {
		t.Fatalf("first join: error = %v, want injected failure", err)
	}

	// The aborted run tore the ring down with it; a failed host's ring is
	// rebuilt by replacing every position (in a real deployment only the
	// dead machine would be swapped, but after Close the in-process links
	// are gone on all of them).
	c2, err := NewCluster(Config{Nodes: 3, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c2.Close()
	}()
	res, err := c2.JoinRelations(r, s, false)
	if err != nil {
		t.Fatalf("retried join: %v", err)
	}
	if res.Matches() != 600 {
		t.Errorf("retried join matches = %d, want 600", res.Matches())
	}
}

// TestReplaceHostKeepsRingUsable is the finer-grained variant: the failure
// is confined to one host's stationed state, the ring itself stays up, and
// ReplaceHost + re-Station recovers without rebuilding the cluster.
func TestReplaceHostKeepsRingUsable(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 3, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	r := workload.Sequential("R", 450, 4)
	s := workload.Sequential("S", 450, 4)
	if _, err := c.JoinRelations(r, s, false); err != nil {
		t.Fatal(err)
	}
	for host := 0; host < 3; host++ {
		if err := c.ReplaceHost(host); err != nil {
			t.Fatalf("replace host %d: %v", host, err)
		}
		res, err := c.JoinRelations(r, s, false)
		if err != nil {
			t.Fatalf("join after replacing host %d: %v", host, err)
		}
		if res.Matches() != 450 {
			t.Errorf("after replacing host %d: matches = %d, want 450", host, res.Matches())
		}
	}
}

// TestReplaceHostOverTCP: replacement with real sockets underneath.
func TestReplaceHostOverTCP(t *testing.T) {
	c, err := NewCluster(Config{
		Nodes:     3,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Links:     ring.TCPLinks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	r := workload.Sequential("R", 300, 4)
	s := workload.Sequential("S", 300, 4)
	if _, err := c.JoinRelations(r, s, false); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceHost(1); err != nil {
		t.Fatal(err)
	}
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches() != 300 {
		t.Errorf("matches = %d, want 300", res.Matches())
	}
}
