package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/join/nested"
	"cyclojoin/internal/join/sortmerge"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/workload"
)

// mergedPairs sums the per-host PairSet collectors into one multiset.
func mergedPairs(t *testing.T, res *Result) map[[2]uint64]int {
	t.Helper()
	out := map[[2]uint64]int{}
	for _, c := range res.Collectors {
		ps, ok := c.(*join.PairSet)
		if !ok {
			t.Fatalf("collector is %T, want *join.PairSet", c)
		}
		for k, v := range ps.Pairs() {
			out[k] += v
		}
	}
	return out
}

func oraclePairs(r, s *relation.Relation, p join.Predicate) map[[2]uint64]int {
	ps := join.NewPairSet()
	jointest.Oracle(r, s, p, ps)
	return ps.Pairs()
}

func pairSetCollectors(i int) join.Collector { return join.NewPairSet() }

func equalPairs(a, b map[[2]uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDistributedJoinMatchesOracle is the headline correctness property:
// for every algorithm and every ring size, the union of the per-host
// results equals the centralized join (§IV-B).
func TestDistributedJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := jointest.RandomRelation(rng, "R", 600, 80, 4)
	s := jointest.RandomRelation(rng, "S", 500, 80, 4)
	want := oraclePairs(r, s, join.Equi{})

	algs := []join.Algorithm{hashjoin.Join{}, sortmerge.Join{}, nested.Join{}}
	for _, alg := range algs {
		for _, nodes := range []int{1, 2, 3, 6} {
			t.Run(fmt.Sprintf("%s/%dnodes", alg.Name(), nodes), func(t *testing.T) {
				c, err := NewCluster(Config{
					Nodes:      nodes,
					Algorithm:  alg,
					Predicate:  join.Equi{},
					Opts:       join.Options{Parallelism: 2},
					Collectors: pairSetCollectors,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer func() {
					_ = c.Close()
				}()
				res, err := c.JoinRelations(r, s, false)
				if err != nil {
					t.Fatal(err)
				}
				if got := mergedPairs(t, res); !equalPairs(got, want) {
					t.Errorf("distributed result differs from oracle: %d vs %d distinct pairs", len(got), len(want))
				}
			})
		}
	}
}

func TestCounterMatchesExpectedJoinSize(t *testing.T) {
	rSpec := workload.Spec{Name: "R", Tuples: 2000, KeyDomain: 100, Seed: 1, PayloadWidth: 4}
	sSpec := workload.Spec{Name: "S", Tuples: 1500, KeyDomain: 100, Seed: 2, PayloadWidth: 4}
	r, err := workload.Generate(rSpec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.Generate(sSpec)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workload.ExpectedMatches(workload.Multiplicities(r), workload.Multiplicities(s)))

	c, err := NewCluster(Config{Nodes: 4, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matches(); got != want {
		t.Errorf("Matches() = %d, want %d", got, want)
	}
	if res.SetupTime <= 0 || res.JoinTime <= 0 {
		t.Errorf("phase times not measured: setup=%v join=%v", res.SetupTime, res.JoinTime)
	}
}

// TestSetupReuse: Rotate twice against one Station — both revolutions must
// produce the full result (the §IV-D amortization).
func TestSetupReuse(t *testing.T) {
	r := workload.Sequential("R", 300, 4)
	s := workload.Sequential("S", 300, 4)
	c, err := NewCluster(Config{Nodes: 3, Algorithm: sortmerge.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	sFrags, err := relation.Partition(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	rParts, err := relation.Partition(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	rFrags := make([][]*relation.Fragment, 3)
	for i, f := range rParts {
		rFrags[i] = []*relation.Fragment{f}
	}
	if err := c.Station(sFrags, rFrags); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, err := c.Rotate()
		if err != nil {
			t.Fatalf("rotate %d: %v", round, err)
		}
		if got := res.Matches(); got != 300 {
			t.Errorf("rotate %d: matches = %d, want 300", round, got)
		}
	}
}

func TestSkipRotatingSetupSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	r := jointest.RandomRelation(rng, "R", 400, 50, 4)
	s := jointest.RandomRelation(rng, "S", 400, 50, 4)
	want := oraclePairs(r, s, join.Equi{})
	for _, skip := range []bool{false, true} {
		c, err := NewCluster(Config{
			Nodes:             3,
			Algorithm:         hashjoin.Join{},
			Predicate:         join.Equi{},
			Collectors:        pairSetCollectors,
			SkipRotatingSetup: skip,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.JoinRelations(r, s, false)
		if err != nil {
			t.Fatal(err)
		}
		if got := mergedPairs(t, res); !equalPairs(got, want) {
			t.Errorf("skip=%v: wrong result", skip)
		}
		_ = c.Close()
	}
}

// TestRotateSmaller: with role swapping, the pair orientation flips but the
// join content is the same.
func TestRotateSmaller(t *testing.T) {
	big := workload.Sequential("BIG", 1000, 4)
	small := workload.Sequential("SMALL", 100, 4)
	c, err := NewCluster(Config{Nodes: 2, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	// R=big, S=small, rotateSmaller=true → small rotates, big stays.
	res, err := c.JoinRelations(big, small, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matches(); got != 100 {
		t.Errorf("matches = %d, want 100", got)
	}
}

func TestBandJoinOnRing(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	r := jointest.RandomRelation(rng, "R", 300, 100, 4)
	s := jointest.RandomRelation(rng, "S", 300, 100, 4)
	p := join.Band{Width: 2}
	want := oraclePairs(r, s, p)
	c, err := NewCluster(Config{
		Nodes:      3,
		Algorithm:  sortmerge.Join{},
		Predicate:  p,
		Collectors: pairSetCollectors,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergedPairs(t, res); !equalPairs(got, want) {
		t.Error("distributed band join differs from oracle")
	}
}

func TestThetaJoinOnRing(t *testing.T) {
	p := join.Theta{Name: "mod3", Fn: func(r, s uint64) bool { return r%3 == s%3 }}
	rng := rand.New(rand.NewSource(34))
	r := jointest.RandomRelation(rng, "R", 120, 40, 4)
	s := jointest.RandomRelation(rng, "S", 100, 40, 4)
	want := oraclePairs(r, s, p)
	c, err := NewCluster(Config{
		Nodes:      2,
		Algorithm:  nested.Join{},
		Predicate:  p,
		Collectors: pairSetCollectors,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergedPairs(t, res); !equalPairs(got, want) {
		t.Error("distributed theta join differs from oracle")
	}
}

func TestTCPLinksCluster(t *testing.T) {
	r := workload.Sequential("R", 200, 4)
	s := workload.Sequential("S", 200, 4)
	c, err := NewCluster(Config{
		Nodes:     3,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Links:     ring.TCPLinks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matches(); got != 200 {
		t.Errorf("matches = %d, want 200", got)
	}
}

func TestReplaceHostThenRejoin(t *testing.T) {
	r := workload.Sequential("R", 150, 4)
	s := workload.Sequential("S", 150, 4)
	c, err := NewCluster(Config{Nodes: 3, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.JoinRelations(r, s, false); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceHost(1); err != nil {
		t.Fatal(err)
	}
	// Rotation without re-stationing must be rejected: the new host has
	// no S_i.
	if _, err := c.Rotate(); err == nil {
		t.Error("Rotate after ReplaceHost without Station: want error")
	}
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matches(); got != 150 {
		t.Errorf("matches after replacement = %d, want 150", got)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Nodes: 2, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}}
	tests := []struct {
		name string
		mut  func(Config) Config
	}{
		{"zero nodes", func(c Config) Config { c.Nodes = 0; return c }},
		{"nil algorithm", func(c Config) Config { c.Algorithm = nil; return c }},
		{"nil predicate", func(c Config) Config { c.Predicate = nil; return c }},
		{"unsupported predicate", func(c Config) Config { c.Predicate = join.Band{Width: 1}; return c }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCluster(tt.mut(base)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestUnsupportedPredicateErrorIsTyped(t *testing.T) {
	_, err := NewCluster(Config{Nodes: 1, Algorithm: hashjoin.Join{}, Predicate: join.Band{Width: 1}})
	if !errors.Is(err, join.ErrUnsupportedPredicate) {
		t.Errorf("error chain = %v, want ErrUnsupportedPredicate", err)
	}
}

func TestRotateBeforeStation(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	if _, err := c.Rotate(); err == nil {
		t.Error("want error")
	}
}

func TestStationValidation(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	if err := c.Station(nil, nil); err == nil {
		t.Error("want error for wrong slot counts")
	}
}

// TestSyncTimeObservable: with a deliberately starved transport (tiny
// buffers forcing many small fragments) the ring's wait-time counters are
// populated — the quantity Fig 11 charts.
func TestWaitTimeCounters(t *testing.T) {
	r := workload.Sequential("R", 5000, 4)
	s := workload.Sequential("S", 5000, 4)
	c, err := NewCluster(Config{
		Nodes:     3,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Ring:      ring.Config{BufferSlots: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	res, err := c.JoinRelations(r, s, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, ns := range res.Nodes {
		if ns.Processed == 0 {
			t.Errorf("node %d processed nothing", i)
		}
	}
}
