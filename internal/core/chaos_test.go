package core

import (
	"errors"
	"testing"
	"time"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/rdma/chaoslink"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/testutil"
	"cyclojoin/internal/workload"
)

// TestChaosJoinRecovers is the cluster-level recovery story: a link drops
// a frame mid-revolution, ring recovery re-dials it and re-routes the
// retained frame, and the distributed join still produces the exact
// result — the fault is invisible above the ring API.
func TestChaosJoinRecovers(t *testing.T) {
	transports := []struct {
		name  string
		links func() ring.LinkFactory
	}{
		{"mem", ring.MemLinks},
		{"tcp", ring.TCPLinks},
	}
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			testutil.CheckNoLeaks(t)
			plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
				{From: 0, To: 1}: {FailFrame: 2},
			}}
			c, err := NewCluster(Config{
				Nodes:     3,
				Algorithm: hashjoin.Join{},
				Predicate: join.Equi{},
				Links:     ring.LinkFactory(plan.Wrap(tr.links())),
				Ring: ring.Config{
					Recovery: ring.Recovery{MaxRetries: 3, Backoff: time.Millisecond},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				_ = c.Close()
			}()
			r := workload.Sequential("R", 600, 4)
			s := workload.Sequential("S", 600, 4)
			res, err := c.JoinRelations(r, s, false)
			if err != nil {
				t.Fatalf("join under injected link failure: %v", err)
			}
			if res.Matches() != 600 {
				t.Errorf("matches = %d, want 600", res.Matches())
			}
			if res.Partial != nil {
				t.Errorf("recovered join reported a partial result: %+v", res.Partial)
			}
			if dials := plan.Dials(chaoslink.Link{From: 0, To: 1}); dials != 2 {
				t.Errorf("faulty link dialed %d times, want 2 (original + recovery re-dial)", dials)
			}
		})
	}
}

// TestChaosJoinPartialResult: when the fault is a partition and the retry
// budget runs out, the join degrades gracefully — the caller gets a typed
// error AND a usable partial result naming how much of the revolution
// completed.
func TestChaosJoinPartialResult(t *testing.T) {
	testutil.CheckNoLeaks(t)
	plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
		{From: 0, To: 1}: {FailFrame: 2, RefuseRedials: true},
	}}
	c, err := NewCluster(Config{
		Nodes:     3,
		Algorithm: hashjoin.Join{},
		Predicate: join.Equi{},
		Links:     ring.LinkFactory(plan.Wrap(ring.MemLinks())),
		Ring: ring.Config{
			Recovery: ring.Recovery{MaxRetries: 2, Backoff: 100 * time.Microsecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	r := workload.Sequential("R", 600, 4)
	s := workload.Sequential("S", 600, 4)
	res, err := c.JoinRelations(r, s, false)
	if err == nil {
		t.Fatal("join across a partition: want an error")
	}
	var pe *ring.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want a *ring.PartialError in the chain", err)
	}
	if !errors.Is(err, chaoslink.ErrPartitioned) {
		t.Errorf("error chain %v does not surface the partition cause", err)
	}
	if res == nil {
		t.Fatal("partial failure returned no result at all")
	}
	if res.Partial == nil {
		t.Fatal("result does not carry the partial-progress report")
	}
	if res.Partial.Retired >= res.Partial.Total {
		t.Errorf("partial result claims full progress: %d/%d", res.Partial.Retired, res.Partial.Total)
	}
	// The collectors hold whatever matched before the partition; they
	// must be readable, and never exceed the full join.
	if m := res.Matches(); m < 0 || m > 600 {
		t.Errorf("partial matches = %d, want within [0, 600]", m)
	}
}
