// Package core implements cyclo-join (§IV): the distributed join strategy
// that keeps one relation stationary — partitioned as S_i across the Data
// Roundabout hosts — while the other relation's fragments R_j rotate around
// the ring. Every host joins each fragment flowing by against its local S_i
// with an ordinary single-host join algorithm; after one revolution the
// union of the per-host results is the complete join R ⋈ S, available as a
// distributed table.
//
// The two paper phases map onto two calls:
//
//   - Station runs the setup phase: in parallel on every host, build the
//     access structure over S_i (hash tables / sorted runs) and reorganize
//     the local rotating fragments (radix-clustering / sorting). Because
//     the reorganized fragments travel the ring, this work is invested
//     once and amortized over every hop (§IV-D).
//   - Rotate runs the join phase: one full revolution of the rotating
//     fragments. It can be called repeatedly against the same stationed
//     state — that is the setup-reuse trade at the heart of §V-E.
//
// Join combines both for the common case.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cyclojoin/internal/join"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
)

// Config describes a cyclo-join cluster.
type Config struct {
	// Nodes is the number of ring hosts.
	Nodes int
	// Algorithm is the local join algorithm (hash, sort-merge, nested).
	Algorithm join.Algorithm
	// Predicate is the join condition; the algorithm must support it.
	Predicate join.Predicate
	// Opts tunes the local algorithm (parallelism, cache target).
	Opts join.Options
	// Ring tunes the transport (buffer slots and sizes). Ring.Nodes is
	// overridden by Nodes.
	Ring ring.Config
	// Links selects the transport; nil means in-process links.
	Links ring.LinkFactory
	// Collectors builds the per-host result collector for each Rotate
	// call; nil means one join.Counter per host.
	Collectors func(node int) join.Collector
	// SkipRotatingSetup disables the reorganization of rotating fragments
	// (for the setup-reuse ablation); the join output is unchanged, only
	// the locality of the join phase suffers.
	SkipRotatingSetup bool
}

func (c Config) validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cyclojoin: %d nodes", c.Nodes)
	case c.Algorithm == nil:
		return errors.New("cyclojoin: nil algorithm")
	case c.Predicate == nil:
		return errors.New("cyclojoin: nil predicate")
	case !c.Algorithm.Supports(c.Predicate):
		return fmt.Errorf("cyclojoin: algorithm %q does not support predicate %s: %w",
			c.Algorithm.Name(), c.Predicate, join.ErrUnsupportedPredicate)
	}
	return nil
}

// hostState is the mutable per-node state the ring processor reads.
type hostState struct {
	mu         sync.Mutex
	stationary join.Stationary
	collector  join.Collector
}

func (h *hostState) current() (join.Stationary, join.Collector) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stationary, h.collector
}

// Cluster is a running cyclo-join deployment: a Data Roundabout ring whose
// join entities probe incoming fragments against stationed local state.
type Cluster struct {
	cfg   Config
	ring  *ring.Ring
	hosts []*hostState

	mu       sync.Mutex
	rotating [][]*relation.Fragment // reorganized fragments, by home node
	setupDur time.Duration
	closed   bool
}

// Ring exposes the cluster's transport ring as a live-telemetry source:
// internal/health samples its HealthSnapshot on a ticker. Callers must
// not Close or Run the ring directly — the cluster owns its lifecycle.
func (c *Cluster) Ring() *ring.Ring { return c.ring }

// joinOpts derives host i's join options: label the host's algorithm spans
// with its ring position, and default the algorithm's flight recorder to the
// ring's so one recorder sees the whole cross-layer picture.
func (c *Cluster) joinOpts(i int) join.Options {
	opts := c.cfg.Opts
	opts.TraceNode = i
	if opts.Flight == nil {
		opts.Flight = c.cfg.Ring.Flight
	}
	return opts
}

// NewCluster builds the ring. No data is stationed yet.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, hosts: make([]*hostState, cfg.Nodes)}
	procs := make([]ring.Processor, cfg.Nodes)
	for i := range procs {
		h := &hostState{}
		c.hosts[i] = h
		procs[i] = ring.ProcessorFunc(func(frag *relation.Fragment) error {
			st, col := h.current()
			if st == nil {
				return errors.New("cyclojoin: fragment arrived before Station")
			}
			return st.Join(frag.Rel, col)
		})
	}
	rcfg := cfg.Ring
	rcfg.Nodes = cfg.Nodes
	r, err := ring.New(rcfg, cfg.Links, procs)
	if err != nil {
		return nil, fmt.Errorf("cyclojoin: build ring: %w", err)
	}
	c.ring = r
	return c, nil
}

// Station runs the setup phase. sFrags[i] is the stationary piece S_i held
// by host i; rFrags[i] are the rotating fragments initially homed at host
// i. Hosts run their setup concurrently, as the cluster's machines would.
func (c *Cluster) Station(sFrags []*relation.Fragment, rFrags [][]*relation.Fragment) error {
	if len(sFrags) != c.cfg.Nodes || len(rFrags) != c.cfg.Nodes {
		return fmt.Errorf("cyclojoin: Station with %d stationary and %d rotating slots for %d nodes",
			len(sFrags), len(rFrags), c.cfg.Nodes)
	}
	start := time.Now()
	rotated := make([][]*relation.Fragment, c.cfg.Nodes)
	errs := make([]error, c.cfg.Nodes)
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := c.joinOpts(i)
			st, err := c.cfg.Algorithm.SetupStationary(sFrags[i].Rel, c.cfg.Predicate, opts)
			if err != nil {
				errs[i] = fmt.Errorf("cyclojoin: host %d: setup stationary: %w", i, err)
				return
			}
			c.hosts[i].mu.Lock()
			c.hosts[i].stationary = st
			c.hosts[i].mu.Unlock()

			rotated[i] = make([]*relation.Fragment, len(rFrags[i]))
			for j, f := range rFrags[i] {
				rel := f.Rel
				if !c.cfg.SkipRotatingSetup {
					rel, err = c.cfg.Algorithm.SetupRotating(f.Rel, c.cfg.Predicate, opts)
					if err != nil {
						errs[i] = fmt.Errorf("cyclojoin: host %d: setup rotating fragment %d: %w", i, f.Index, err)
						return
					}
				}
				rotated[i][j] = &relation.Fragment{Rel: rel, Index: f.Index, Of: f.Of}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.rotating = rotated
	c.setupDur = time.Since(start)
	c.mu.Unlock()
	return nil
}

// Result reports one Rotate's outcome.
type Result struct {
	// SetupTime is the wall-clock duration of the most recent Station.
	SetupTime time.Duration
	// JoinTime is the wall-clock duration of the revolution.
	JoinTime time.Duration
	// Collectors holds each host's result collector — together they are
	// the distributed join result.
	Collectors []join.Collector
	// Nodes snapshots the ring counters (sync time, traffic) after the
	// run.
	Nodes []ring.NodeStats
	// Partial is non-nil when the revolution ended early: link recovery
	// was enabled but a link kept failing past its retry budget, and the
	// ring degraded gracefully. The collectors then hold every match
	// produced by the fragments (and hops) that did complete.
	Partial *ring.PartialError
}

// Matches sums the match counts if the collectors are join.Counters
// (the default). It returns -1 when a custom collector type is in use.
func (r *Result) Matches() int64 {
	var total int64
	for _, c := range r.Collectors {
		counter, ok := c.(*join.Counter)
		if !ok {
			return -1
		}
		total += counter.Count()
	}
	return total
}

// Rotate runs one full revolution of the stationed rotating fragments and
// returns the per-host results. It may be called repeatedly; each call
// reuses the setup-phase investment.
func (c *Cluster) Rotate() (*Result, error) {
	c.mu.Lock()
	rotating := c.rotating
	setup := c.setupDur
	c.mu.Unlock()
	if rotating == nil {
		return nil, errors.New("cyclojoin: Rotate before Station")
	}
	collectors := make([]join.Collector, c.cfg.Nodes)
	for i := range collectors {
		if c.cfg.Collectors != nil {
			collectors[i] = c.cfg.Collectors(i)
		} else {
			collectors[i] = &join.Counter{}
		}
		c.hosts[i].mu.Lock()
		c.hosts[i].collector = collectors[i]
		c.hosts[i].mu.Unlock()
	}
	start := time.Now()
	if err := c.ring.Run(rotating); err != nil {
		var pe *ring.PartialError
		if !errors.As(err, &pe) {
			return nil, fmt.Errorf("cyclojoin: rotate: %w", err)
		}
		// Bounded-retry exhaustion: the ring gave up on a link but kept
		// every completed hop's work. Surface the partial result WITH the
		// error — callers decide whether an incomplete join is usable.
		return &Result{
			SetupTime:  setup,
			JoinTime:   time.Since(start),
			Collectors: collectors,
			Nodes:      c.ring.Stats(),
			Partial:    pe,
		}, fmt.Errorf("cyclojoin: rotate: %w", err)
	}
	return &Result{
		SetupTime:  setup,
		JoinTime:   time.Since(start),
		Collectors: collectors,
		Nodes:      c.ring.Stats(),
	}, nil
}

// Join is Station followed by one Rotate.
func (c *Cluster) Join(sFrags []*relation.Fragment, rFrags [][]*relation.Fragment) (*Result, error) {
	if err := c.Station(sFrags, rFrags); err != nil {
		return nil, err
	}
	return c.Rotate()
}

// JoinRelations partitions both relations evenly across the hosts (the
// paper's starting condition: data pre-distributed, S reasonably even) and
// runs Station + Rotate. S is stationary, R rotates. If rotateSmaller is
// set and R is larger than S, the roles are swapped, following the §IV-B
// guidance to rotate the smaller input; note that swapping exchanges the
// rKey/sKey sides seen by collectors.
func (c *Cluster) JoinRelations(r, s *relation.Relation, rotateSmaller bool) (*Result, error) {
	if rotateSmaller && r.Bytes() > s.Bytes() {
		r, s = s, r
	}
	sFrags, err := relation.Partition(s, c.cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("cyclojoin: partition stationary: %w", err)
	}
	rParts, err := relation.Partition(r, c.cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("cyclojoin: partition rotating: %w", err)
	}
	rFrags := make([][]*relation.Fragment, c.cfg.Nodes)
	for i, f := range rParts {
		rFrags[i] = []*relation.Fragment{f}
	}
	return c.Join(sFrags, rFrags)
}

// ReplaceHost swaps the host at position i for a fresh one (idle ring
// only). The new host has no stationed state until the next Station.
func (c *Cluster) ReplaceHost(i int) error {
	if i < 0 || i >= c.cfg.Nodes {
		return fmt.Errorf("cyclojoin: replace host %d of %d", i, c.cfg.Nodes)
	}
	h := &hostState{}
	c.hosts[i] = h
	proc := ring.ProcessorFunc(func(frag *relation.Fragment) error {
		st, col := h.current()
		if st == nil {
			return errors.New("cyclojoin: fragment arrived before Station")
		}
		return st.Join(frag.Rel, col)
	})
	if err := c.ring.ReplaceNode(i, proc); err != nil {
		return fmt.Errorf("cyclojoin: replace host %d: %w", i, err)
	}
	// Stationed state died with the host; require a fresh Station.
	c.mu.Lock()
	c.rotating = nil
	c.mu.Unlock()
	return nil
}

// Close shuts the ring down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.ring.Close()
}
