package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/join/jointest"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/workload"
)

// TestDistributedJoinProperty drives random ring sizes, cardinalities, key
// domains and transport modes through the full stack and compares against
// the oracle — the repository's broadest property test.
func TestDistributedJoinProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed int64, nodesRaw, rRaw, sRaw, domRaw uint16, oneSided bool) bool {
		nodes := int(nodesRaw%5) + 1
		rN := int(rRaw % 800)
		sN := int(sRaw % 800)
		domain := int(domRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		r := jointest.RandomRelation(rng, "R", rN, domain, 4)
		s := jointest.RandomRelation(rng, "S", sN, domain, 4)

		c, err := NewCluster(Config{
			Nodes:      nodes,
			Algorithm:  hashjoin.Join{},
			Predicate:  join.Equi{},
			Ring:       ring.Config{OneSidedWrites: oneSided},
			Collectors: func(int) join.Collector { return join.NewPairSet() },
		})
		if err != nil {
			return false
		}
		defer func() {
			_ = c.Close()
		}()
		res, err := c.JoinRelations(r, s, false)
		if err != nil {
			return false
		}
		want := join.NewPairSet()
		jointest.Oracle(r, s, join.Equi{}, want)
		got := map[[2]uint64]int{}
		for _, col := range res.Collectors {
			for k, v := range col.(*join.PairSet).Pairs() {
				got[k] += v
			}
		}
		wantPairs := want.Pairs()
		if len(got) != len(wantPairs) {
			return false
		}
		for k, v := range wantPairs {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMatchCountInvariantAcrossRingSizes: the total match count must be
// identical for every ring size and transport mode — the fragment layout
// is an implementation detail.
func TestMatchCountInvariantAcrossRingSizes(t *testing.T) {
	r, err := workload.Generate(workload.Spec{Name: "R", Tuples: 3000, KeyDomain: 500, Seed: 51, PayloadWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.Generate(workload.Spec{Name: "S", Tuples: 2500, KeyDomain: 500, Seed: 52, PayloadWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(workload.ExpectedMatches(workload.Multiplicities(r), workload.Multiplicities(s)))
	for _, nodes := range []int{1, 2, 3, 4, 5, 6} {
		for _, oneSided := range []bool{false, true} {
			c, err := NewCluster(Config{
				Nodes:     nodes,
				Algorithm: hashjoin.Join{},
				Predicate: join.Equi{},
				Ring:      ring.Config{OneSidedWrites: oneSided},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.JoinRelations(r, s, false)
			if err != nil {
				t.Fatalf("nodes=%d oneSided=%v: %v", nodes, oneSided, err)
			}
			if got := res.Matches(); got != want {
				t.Errorf("nodes=%d oneSided=%v: matches = %d, want %d", nodes, oneSided, got, want)
			}
			_ = c.Close()
		}
	}
}

// TestUnevenFragmentDistribution: cyclo-join must tolerate arbitrary
// initial placement of the rotating fragments (§IV-A: "we do not care how
// the data is distributed").
func TestUnevenFragmentDistribution(t *testing.T) {
	const nodes = 3
	c, err := NewCluster(Config{Nodes: nodes, Algorithm: hashjoin.Join{}, Predicate: join.Equi{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	r := workload.Sequential("R", 900, 4)
	s := workload.Sequential("S", 900, 4)
	sFrags, err := relation.Partition(s, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// All rotating fragments start at host 0.
	rParts, err := relation.Partition(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	rFrags := make([][]*relation.Fragment, nodes)
	rFrags[0] = rParts
	res, err := c.Join(sFrags, rFrags)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Matches(); got != 900 {
		t.Errorf("matches = %d, want 900", got)
	}
}
