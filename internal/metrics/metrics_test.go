package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Dec()
	g.Add(2)
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %d, want 8", got)
	}
}

func TestLookupIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "node", "0")
	b := r.Counter("x_total", "x", "node", "0")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "x", "node", "1")
	if a == c {
		t.Error("different labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("registering m as gauge after counter: want panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5125 {
		t.Errorf("sum = %d, want 5125", got)
	}
	// Bucket occupancy: ≤10 holds 5 and 10; ≤100 holds 11 and 99; ≤1000
	// empty; +Inf holds 5000.
	want := []int64{2, 2, 0, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(16, 4, 4)
	want := []int64{16, 64, 256, 1024}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("v", "", []int64{8, 64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j % 100))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// parseExposition parses Prometheus text lines into name{labels} → value.
// It is deliberately strict: any malformed line fails the test.
func parseExposition(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "frames", "dir", "tx").Add(3)
	r.Counter("frames_total", "frames", "dir", "rx").Add(2)
	r.Gauge("depth", "queue depth").Set(9)
	h := r.Histogram("size_bytes", "frame sizes", []int64{64, 4096})
	h.Observe(10)
	h.Observe(100)
	h.Observe(1 << 20)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		"# TYPE depth gauge",
		"# TYPE size_bytes histogram",
		"# HELP frames_total frames",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	vals := parseExposition(t, text)
	checks := map[string]int64{
		`frames_total{dir="tx"}`:       3,
		`frames_total{dir="rx"}`:       2,
		`depth`:                        9,
		`size_bytes_bucket{le="64"}`:   1,
		`size_bytes_bucket{le="4096"}`: 2,
		`size_bytes_bucket{le="+Inf"}`: 3,
		`size_bytes_sum`:               110 + 1<<20,
		`size_bytes_count`:             3,
	}
	for k, want := range checks {
		if got, ok := vals[k]; !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", k, got, ok, want)
		}
	}
}

func TestSamplesFlattenHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Inc()
	h := r.Histogram("b_ns", "", []int64{10})
	h.Observe(3)
	h.Observe(30)
	samples := r.Samples()
	byName := make(map[string]int64)
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["a_total"] != 1 || byName["b_ns_count"] != 2 || byName["b_ns_sum"] != 33 {
		t.Errorf("samples = %+v", samples)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "", "path", `a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `e_total{path="a\"b\\c"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}
