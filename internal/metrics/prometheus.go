package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one line per series, with histograms expanded into
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.order {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			labels := renderLabels(s.labels)
			switch inst := s.inst.(type) {
			case *Counter:
				writeSample(bw, f.name, labels, inst.Value())
			case *Gauge:
				writeSample(bw, f.name, labels, inst.Value())
			case *Histogram:
				writeHistogram(bw, f.name, labels, inst)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(w io.Writer, name, labels string, v int64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// writeHistogram emits the cumulative bucket, sum and count series of
// one histogram.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+strconv.FormatInt(bound, 10)+`"`), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), cum)
	writeSample(w, name+"_sum", labels, h.Sum())
	writeSample(w, name+"_count", labels, cum)
}

// joinLabels appends the le label to an already-rendered label set.
func joinLabels(labels, le string) string {
	if labels == "" {
		return le
	}
	return labels + "," + le
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
