// Package metrics is the runtime measurement layer of the reproduction: a
// small, dependency-free registry of atomic counters, gauges and
// fixed-bucket histograms, with a Prometheus-text exposition writer.
//
// The design constraint is the one the transport itself lives under
// (§III-B: per-work-request overhead decides whether RDMA pays off): a
// metric update on the ring hot path must cost one uncontended atomic
// add — no locks, no maps, no allocation. Instruments are therefore
// looked up (and created) once, at wiring time, through the Registry;
// the hot path only touches the returned pointer. Counter and Gauge
// updates are exactly one atomic op; Histogram.Observe is two (bucket
// and sum). BenchmarkCounterInc in this package proves the per-event
// cost stays below the 10 ns budget.
//
// Values are int64 throughout — bytes, event counts, nanoseconds —
// because the instrumented code deals in integers and int64 is what a
// single machine word can update atomically. The exposition layer turns
// them into Prometheus text; the cyclobench -metrics flag renders the
// same samples as a fixed-width table instead.
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument types within a Registry.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing event count. The zero value is
// usable, but hot paths should hold the pointer a Registry hands out so
// every increment is a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//cyclolint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is a programming error; it is applied as-is
// rather than checked, to keep the hot path branch-free.
//
//cyclolint:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, resident bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//cyclolint:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
//
//cyclolint:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
//
//cyclolint:hotpath
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
//
//cyclolint:hotpath
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of int64 observations
// (latencies in nanoseconds, frame sizes in bytes). Bucket bounds are
// fixed at creation; Observe performs a binary search over them plus two
// atomic adds, and never allocates.
type Histogram struct {
	// bounds are inclusive upper bounds, strictly increasing. An
	// implicit +Inf bucket follows the last bound.
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1
	sum     atomic.Int64
}

// Observe records one value.
//
//cyclolint:hotpath
func (h *Histogram) Observe(v int64) {
	// Open-coded binary search: sort.Search's closure can escape and this
	// is the per-fragment hot path — Observe must never allocate.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the histogram's inclusive upper bucket bounds. The slice
// is the histogram's own (immutable after construction); callers must not
// modify it.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Buckets appends the current per-bucket counts (not cumulative)
// (len(Bounds())+1 values, the last being the +Inf bucket) to dst and
// returns it. Cold-path: samplers diff successive snapshots to get
// per-window counts; the loads are not atomic as a set, which is fine for
// monitoring (each bucket is individually consistent).
func (h *Histogram) Buckets(dst []int64) []int64 {
	for i := range h.buckets {
		dst = append(dst, h.buckets[i].Load())
	}
	return dst
}

// ExponentialBounds builds count bucket bounds starting at start and
// growing by factor — the usual shape for latency and size histograms.
func ExponentialBounds(start, factor int64, count int) []int64 {
	if start <= 0 || factor < 2 || count <= 0 {
		panic(fmt.Sprintf("metrics: ExponentialBounds(%d, %d, %d)", start, factor, count))
	}
	bounds := make([]int64, count)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return bounds
}

// series is one labeled instrument within a family.
type series struct {
	labels []string // alternating key, value; rendered at exposition time
	inst   any      // *Counter, *Gauge or *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []int64 // histogram families only; all series share bounds
	series []*series
	byKey  map[string]*series
}

// Registry creates and holds instruments. Lookup is idempotent: asking
// for the same name and label set returns the same instrument, so
// restarted components keep accumulating into their counters. Lookup
// takes a lock and is meant for wiring time, not the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry the instrumented packages
// use, in the style of expvar: transport and ring metrics register here
// so a single exposition endpoint sees the whole process.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// seriesKey renders the identity of a label set.
func seriesKey(labels []string) string {
	return strings.Join(labels, "\x00")
}

// lookup finds or creates the series for name+labels, enforcing kind
// consistency.
func (r *Registry) lookup(kind Kind, name, help string, bounds []int64, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %q", name, labels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := seriesKey(labels)
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: labels}
	switch kind {
	case KindCounter:
		s.inst = &Counter{}
	case KindGauge:
		s.inst = &Gauge{}
	case KindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.buckets = make([]atomic.Int64, len(f.bounds)+1)
		s.inst = h
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the counter for name and labels (alternating key,
// value), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(KindCounter, name, help, nil, labels).inst.(*Counter)
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(KindGauge, name, help, nil, labels).inst.(*Gauge)
}

// Histogram returns the histogram for name and labels, creating it on
// first use. The bounds of the first creation win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: %s: histogram with no bounds", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bounds not increasing: %v", name, bounds))
		}
	}
	return r.lookup(KindHistogram, name, help, bounds, labels).inst.(*Histogram)
}

// Sample is one exposed value, flattened for table rendering. Histograms
// expand into two samples, name_count and name_sum.
type Sample struct {
	// Name is the metric name (with _count/_sum suffix for histograms).
	Name string
	// Labels is the rendered label set, e.g. `node="0",dir="tx"`, empty
	// when unlabeled.
	Labels string
	// Kind is the owning family's instrument kind.
	Kind Kind
	// Value is the sampled value.
	Value int64
}

// Samples snapshots every series in registration order.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, f := range r.order {
		for _, s := range f.series {
			labels := renderLabels(s.labels)
			switch inst := s.inst.(type) {
			case *Counter:
				out = append(out, Sample{Name: f.name, Labels: labels, Kind: f.kind, Value: inst.Value()})
			case *Gauge:
				out = append(out, Sample{Name: f.name, Labels: labels, Kind: f.kind, Value: inst.Value()})
			case *Histogram:
				out = append(out,
					Sample{Name: f.name + "_count", Labels: labels, Kind: f.kind, Value: inst.Count()},
					Sample{Name: f.name + "_sum", Labels: labels, Kind: f.kind, Value: inst.Sum()})
			}
		}
	}
	return out
}

// renderLabels formats an alternating key/value list as k="v",...
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
