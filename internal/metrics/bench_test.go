package metrics

import "testing"

// The instrumentation budget: sampling an event from the ring hot path
// must stay under 10 ns, or the measurement layer itself would distort
// the per-work-request overheads it exists to expose. Counter.Inc and
// Gauge.Add are one atomic add; Histogram.Observe is a binary search
// plus two atomic adds.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(4096)
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_ns", "", ExponentialBounds(1024, 4, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
}
