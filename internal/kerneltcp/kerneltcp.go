// Package kerneltcp is the software-TCP baseline of §V-G: the same
// QueuePair contract as package rdma, but with the data flow of Figure 2 —
// every message is staged through "kernel" buffers on both sides, so the
// payload crosses the memory bus the extra times that dominate the CPU cost
// of classical network stacks (Fig 3).
//
// The extra copies are performed for real (user buffer → kernel staging
// buffer on send, kernel staging buffer → user buffer on receive), and the
// package counts them, together with the simulated context switches (one
// per send/receive syscall pair), so experiments can report the CPU
// overhead a kernel stack would have added. This mirrors the paper's
// methodology: "we changed the transmitter and receiver of Data Roundabout
// to use send and recv calls instead of their RDMA counterparts".
package kerneltcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"cyclojoin/internal/rdma"
)

const queueDepth = 256
const maxFrame = 1 << 30

// Stats counts the kernel-path overhead work a link performed.
type Stats struct {
	// Copies is the number of user↔kernel buffer copies (one per send,
	// one per receive — the minimum a non-zero-copy stack performs).
	Copies atomic.Int64
	// BytesCopied is the payload volume moved by those copies; the same
	// bytes cross the memory bus again inside the copy, which is the bus
	// contention §III-A warns about.
	BytesCopied atomic.Int64
	// ContextSwitches counts the kernel entries/exits the socket calls
	// would have caused (one per message per direction).
	ContextSwitches atomic.Int64
}

type link struct {
	conn  net.Conn
	stats *Stats

	sendQ chan *rdma.Buffer
	recvQ chan *rdma.Buffer
	cq    chan rdma.Completion

	// kernel staging buffers, one per direction, grown on demand — the
	// socket buffer stand-ins.
	sendStage []byte
	recvStage []byte

	failOnce  sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var _ rdma.QueuePair = (*link)(nil)

// New wraps an established connection. The returned Stats is live: it
// updates as the link moves data.
func New(conn net.Conn) (rdma.QueuePair, *Stats) {
	st := &Stats{}
	l := &link{
		conn:  conn,
		stats: st,
		sendQ: make(chan *rdma.Buffer, queueDepth),
		recvQ: make(chan *rdma.Buffer, queueDepth),
		cq:    make(chan rdma.Completion, rdma.CQDepth),
		done:  make(chan struct{}),
	}
	l.wg.Add(2)
	go func() {
		defer l.wg.Done()
		l.writeLoop()
	}()
	go func() {
		defer l.wg.Done()
		l.readLoop()
	}()
	return l, st
}

func (l *link) writeLoop() {
	var hdr [4]byte
	for {
		var sb *rdma.Buffer
		select {
		case <-l.done:
			return
		case sb = <-l.sendQ:
		}
		payload := sb.Bytes()
		// The user→kernel copy a Berkeley-sockets send() performs.
		if cap(l.sendStage) < len(payload) {
			l.sendStage = make([]byte, len(payload))
		}
		stage := l.sendStage[:len(payload)]
		copy(stage, payload)
		l.stats.Copies.Add(1)
		l.stats.BytesCopied.Add(int64(len(payload)))
		l.stats.ContextSwitches.Add(1)

		binary.BigEndian.PutUint32(hdr[:], uint32(len(stage)))
		if _, err := l.conn.Write(hdr[:]); err != nil {
			l.fail(rdma.Completion{Op: rdma.OpSend, Buf: sb, Err: fmt.Errorf("kerneltcp: write header: %w", err)})
			return
		}
		if _, err := l.conn.Write(stage); err != nil {
			l.fail(rdma.Completion{Op: rdma.OpSend, Buf: sb, Err: fmt.Errorf("kerneltcp: write payload: %w", err)})
			return
		}
		l.complete(rdma.Completion{Op: rdma.OpSend, Buf: sb})
	}
}

func (l *link) readLoop() {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(l.conn, hdr[:]); err != nil {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("kerneltcp: read header: %w", err)})
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n > maxFrame {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("kerneltcp: frame length %d exceeds limit", n)})
			return
		}
		// The kernel receives into its own buffer first...
		if cap(l.recvStage) < n {
			l.recvStage = make([]byte, n)
		}
		stage := l.recvStage[:n]
		if _, err := io.ReadFull(l.conn, stage); err != nil {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("kerneltcp: read payload: %w", err)})
			return
		}
		var rb *rdma.Buffer
		select {
		case <-l.done:
			return
		case rb = <-l.recvQ:
		}
		if n > rb.Cap() {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Buf: rb,
				Err: fmt.Errorf("%w: message %d B, buffer %d B", rdma.ErrBufferTooSmall, n, rb.Cap())})
			return
		}
		// ...and only then copies into the user's buffer (recv()).
		copy(rb.Data()[:n], stage)
		l.stats.Copies.Add(1)
		l.stats.BytesCopied.Add(int64(n))
		l.stats.ContextSwitches.Add(1)
		if err := rb.SetLen(n); err != nil {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Buf: rb, Err: err})
			return
		}
		l.complete(rdma.Completion{Op: rdma.OpRecv, Buf: rb})
	}
}

func (l *link) complete(c rdma.Completion) {
	select {
	case l.cq <- c:
	case <-l.done:
	}
}

func (l *link) fail(c rdma.Completion) {
	l.failOnce.Do(func() {
		select {
		case l.cq <- c:
		default:
		}
		close(l.done)
		_ = l.conn.Close()
	})
}

// PostSend implements rdma.QueuePair.
func (l *link) PostSend(b *rdma.Buffer) error {
	// Check shutdown first: with a closed done channel and free queue
	// space, a bare select would choose nondeterministically.
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	select {
	case <-l.done:
		return rdma.ErrClosed
	case l.sendQ <- b:
		return nil
	}
}

// PostRecv implements rdma.QueuePair.
func (l *link) PostRecv(b *rdma.Buffer) error {
	// Check shutdown first: with a closed done channel and free queue
	// space, a bare select would choose nondeterministically.
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	select {
	case <-l.done:
		return rdma.ErrClosed
	case l.recvQ <- b:
		return nil
	}
}

// Completions implements rdma.QueuePair.
func (l *link) Completions() <-chan rdma.Completion { return l.cq }

// Close implements rdma.QueuePair.
func (l *link) Close() error {
	l.closeOnce.Do(func() {
		l.failOnce.Do(func() {
			close(l.done)
			_ = l.conn.Close()
		})
		l.wg.Wait()
		close(l.cq)
	})
	return nil
}
