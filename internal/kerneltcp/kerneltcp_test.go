package kerneltcp

import (
	"net"
	"testing"
	"time"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/rdmatest"
)

// TestConformance: the kernel-TCP baseline must be a drop-in replacement
// for the RDMA transports (§V-G swaps it under the unchanged ring runtime).
func TestConformance(t *testing.T) {
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		c1, c2 := net.Pipe()
		a, _ := New(c1)
		b, _ := New(c2)
		return a, b
	})
}

// TestStatsCountCopies verifies the defining property of the baseline: every
// message costs one user→kernel copy at the sender and one kernel→user copy
// at the receiver, of exactly the payload volume.
func TestStatsCountCopies(t *testing.T) {
	c1, c2 := net.Pipe()
	a, aStats := New(c1)
	b, bStats := New(c2)
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	dev := rdma.OpenDevice("t")

	const msgs, size = 10, 100
	for i := 0; i < msgs; i++ {
		rb, err := dev.Register(size)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.PostRecv(rb); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		for i := 0; i < msgs; i++ {
			sb, err := dev.Register(size)
			if err != nil {
				return
			}
			if err := sb.SetLen(size); err != nil {
				return
			}
			if err := a.PostSend(sb); err != nil {
				return
			}
		}
	}()
	got := 0
	deadline := time.After(5 * time.Second)
	for got < msgs {
		select {
		case c, ok := <-b.Completions():
			if !ok {
				t.Fatal("cq closed")
			}
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			if c.Op == rdma.OpRecv {
				got++
			}
		case <-deadline:
			t.Fatalf("received %d/%d", got, msgs)
		}
	}
	if n := aStats.Copies.Load(); n != msgs {
		t.Errorf("sender copies = %d, want %d", n, msgs)
	}
	if n := bStats.Copies.Load(); n != msgs {
		t.Errorf("receiver copies = %d, want %d", n, msgs)
	}
	if v := aStats.BytesCopied.Load(); v != msgs*size {
		t.Errorf("sender bytes copied = %d, want %d", v, msgs*size)
	}
	if v := bStats.BytesCopied.Load(); v != msgs*size {
		t.Errorf("receiver bytes copied = %d, want %d", v, msgs*size)
	}
	if aStats.ContextSwitches.Load() == 0 || bStats.ContextSwitches.Load() == 0 {
		t.Error("context switches not counted")
	}
}

// TestNoOneSidedOps: a kernel socket has no remote-memory access; the
// baseline must NOT claim the one-sided interface.
func TestNoOneSidedOps(t *testing.T) {
	c1, c2 := net.Pipe()
	a, _ := New(c1)
	b, _ := New(c2)
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	if _, ok := a.(rdma.WriteQueuePair); ok {
		t.Error("kernel-TCP baseline must not implement WriteQueuePair")
	}
}
