package ring

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cyclojoin/internal/rdma/chaoslink"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/testutil"
	"cyclojoin/internal/workload"
)

// The tests in this file run revolutions over a faulty network: a
// chaoslink.Plan sits between the ring and the real transport and injects
// drops, partitions, corrupt doorbells, and delays from a seeded schedule.
// The acceptance bar is the paper's exactly-once invariant under fire —
// after recovery, every node has still seen every fragment exactly once,
// with byte-identical contents, and no buffer credit or goroutine has
// leaked. Run with -race.

// chaosTransports is the transport matrix every recovery property is
// checked against.
var chaosTransports = []struct {
	name  string
	links func() LinkFactory
}{
	{"mem", MemLinks},
	{"tcp", TCPLinks},
}

// buildAssign spreads nodes*chunks fragments of a fresh relation round-robin
// across the nodes and returns the assignment plus per-fragment content
// checksums.
func buildAssign(t *testing.T, nodes, chunks, tuples int) ([][]*relation.Fragment, map[int]uint64) {
	t.Helper()
	rel := workload.Sequential("R", tuples, 8)
	frags, err := relation.Partition(rel, nodes*chunks)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]uint64, len(frags))
	assign := make([][]*relation.Fragment, nodes)
	for i, f := range frags {
		want[f.Index] = fragChecksum(f)
		assign[i%nodes] = append(assign[i%nodes], f)
	}
	return assign, want
}

// newChecksumRing builds a ring whose processors checksum every fragment.
func newChecksumRing(t *testing.T, cfg Config, links LinkFactory) (*Ring, []*checksummer) {
	t.Helper()
	sums := make([]*checksummer, cfg.Nodes)
	procs := make([]Processor, cfg.Nodes)
	for i := range procs {
		sums[i] = newChecksummer()
		procs[i] = sums[i]
	}
	r, err := New(cfg, links, procs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r, sums
}

// assertExactlyOnce verifies every node saw every fragment exactly once
// with byte-identical contents — the invariant recovery must preserve.
func assertExactlyOnce(t *testing.T, sums []*checksummer, want map[int]uint64) {
	t.Helper()
	for n, cs := range sums {
		cs.mu.Lock()
		got := cs.sums
		if len(got) != len(want) {
			t.Errorf("node %d saw %d distinct fragments, want %d", n, len(got), len(want))
		}
		for idx, s := range got {
			if len(s) != 1 {
				t.Errorf("node %d processed fragment %d %d times, want exactly once", n, idx, len(s))
			}
			for _, sum := range s {
				if sum != want[idx] {
					t.Errorf("node %d fragment %d: checksum %#x, want %#x (content corrupted in recovery?)", n, idx, sum, want[idx])
				}
			}
		}
		cs.mu.Unlock()
	}
}

// assertAtMostOnce is the partial-result variant: no duplicates, no
// corruption — but gaps are expected.
func assertAtMostOnce(t *testing.T, sums []*checksummer, want map[int]uint64) {
	t.Helper()
	for n, cs := range sums {
		cs.mu.Lock()
		for idx, s := range cs.sums {
			if len(s) > 1 {
				t.Errorf("node %d processed fragment %d %d times after partial run, want at most once", n, idx, len(s))
			}
			for _, sum := range s {
				if sum != want[idx] {
					t.Errorf("node %d fragment %d: checksum %#x, want %#x", n, idx, sum, want[idx])
				}
			}
		}
		cs.mu.Unlock()
	}
}

// assertPoolsWhole verifies the buffer accounting after a completed run:
// no receive credit still pinned, and every send buffer back in its pool —
// a recovery that leaked either would wedge a later revolution. The final
// send completion of a revolution races Run's return by a reaper
// scheduling beat, so the check polls briefly before declaring a leak.
func assertPoolsWhole(t *testing.T, r *Ring) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		whole := true
		for _, n := range r.nodes {
			if pinnedCount(n) != 0 || n.freeSend.Len() != n.sendPool {
				whole = false
			}
		}
		if whole {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i, n := range r.nodes {
		if got := pinnedCount(n); got != 0 {
			t.Errorf("node %d: %d receive buffers still pinned after run", i, got)
		}
		if got, want := n.freeSend.Len(), n.sendPool; got != want {
			t.Errorf("node %d: send pool holds %d of %d buffers after run", i, got, want)
		}
	}
}

// TestChaosSingleDropRecovery injects one RC-style link failure (error
// completion + dead queue pair) mid-revolution and requires the run to
// complete via re-dial and frame re-routing: nil error, exactly-once
// byte-identical delivery, a second dial on the failed link only, and
// whole buffer pools afterwards.
func TestChaosSingleDropRecovery(t *testing.T) {
	for _, tr := range chaosTransports {
		for _, writes := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/writes=%v", tr.name, writes), func(t *testing.T) {
				testutil.CheckNoLeaks(t)
				const nodes = 3
				plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
					{From: 0, To: 1}: {FailFrame: 3},
				}}
				r, sums := newChecksumRing(t, Config{
					Nodes:          nodes,
					BufferSlots:    2,
					OneSidedWrites: writes,
					Recovery:       Recovery{MaxRetries: 3, Backoff: time.Millisecond},
				}, plan.Wrap(tr.links()))
				assign, want := buildAssign(t, nodes, 4, 240)
				if err := r.Run(assign); err != nil {
					t.Fatalf("Run did not recover from injected drop: %v", err)
				}
				assertExactlyOnce(t, sums, want)
				if got := plan.Dials(chaoslink.Link{From: 0, To: 1}); got != 2 {
					t.Errorf("faulted link dialed %d times, want 2 (initial + recovery re-dial)", got)
				}
				assertPoolsWhole(t, r)
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosFlappingLinkRecovers re-dials into a still-faulty link: the
// first recovery lands on a link that fails again, and only the third dial
// comes up clean. Progress between failures must keep the retry budget
// from exhausting.
func TestChaosFlappingLinkRecovers(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const nodes = 3
	plan := &chaoslink.Plan{
		PerLink:    map[chaoslink.Link]*chaoslink.Scenario{{From: 1, To: 2}: {FailFrame: 2}},
		FaultDials: 2,
	}
	r, sums := newChecksumRing(t, Config{
		Nodes:       nodes,
		BufferSlots: 2,
		Recovery:    Recovery{MaxRetries: 3, Backoff: time.Millisecond},
	}, plan.Wrap(MemLinks()))
	assign, want := buildAssign(t, nodes, 4, 240)
	if err := r.Run(assign); err != nil {
		t.Fatalf("Run did not survive a flapping link: %v", err)
	}
	assertExactlyOnce(t, sums, want)
	if got := plan.Dials(chaoslink.Link{From: 1, To: 2}); got != 3 {
		t.Errorf("flapping link dialed %d times, want 3", got)
	}
	assertPoolsWhole(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPartitionDegradesGracefully partitions a link (every re-dial
// refused) and requires bounded retry to give up with a PartialError that
// reports honest progress — duplicates and corruption are still forbidden.
func TestChaosPartitionDegradesGracefully(t *testing.T) {
	for _, tr := range chaosTransports {
		t.Run(tr.name, func(t *testing.T) {
			testutil.CheckNoLeaks(t)
			const nodes = 3
			plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
				{From: 0, To: 1}: {FailFrame: 2, RefuseRedials: true},
			}}
			r, sums := newChecksumRing(t, Config{
				Nodes:       nodes,
				BufferSlots: 2,
				Recovery:    Recovery{MaxRetries: 2, Backoff: 100 * time.Microsecond},
			}, plan.Wrap(tr.links()))
			assign, want := buildAssign(t, nodes, 4, 240)
			total := 0
			for _, fs := range assign {
				total += len(fs)
			}
			err := r.Run(assign)
			if err == nil {
				t.Fatal("Run succeeded across a partitioned link")
			}
			var pe *PartialError
			if !errors.As(err, &pe) {
				t.Fatalf("Run returned %v, want a *PartialError", err)
			}
			if pe.Total != total {
				t.Errorf("PartialError.Total = %d, want %d", pe.Total, total)
			}
			if pe.Retired >= pe.Total {
				t.Errorf("PartialError claims %d/%d retired despite the partition", pe.Retired, pe.Total)
			}
			if !errors.Is(err, chaoslink.ErrPartitioned) {
				t.Errorf("error chain %v does not surface the partition cause", err)
			}
			assertAtMostOnce(t, sums, want)
		})
	}
}

// TestChaosCorruptImmediate poisons a write-mode doorbell: the receiver
// must reject the impossible announced length without trusting a byte,
// return the receive credit upstream, and the ring must recover the link
// and finish exactly-once.
func TestChaosCorruptImmediate(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const nodes = 3
	rejectsBefore := mDoorbellRejects.Value()
	plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
		{From: 0, To: 1}: {FailFrame: 2, CorruptImm: true},
	}}
	r, sums := newChecksumRing(t, Config{
		Nodes:          nodes,
		BufferSlots:    2,
		OneSidedWrites: true,
		Recovery:       Recovery{MaxRetries: 3, Backoff: time.Millisecond},
	}, plan.Wrap(MemLinks()))
	assign, want := buildAssign(t, nodes, 4, 240)
	if err := r.Run(assign); err != nil {
		t.Fatalf("Run did not recover from corrupt doorbell: %v", err)
	}
	assertExactlyOnce(t, sums, want)
	if got := mDoorbellRejects.Value() - rejectsBefore; got < 1 {
		t.Errorf("doorbell rejects delta = %d, want >= 1", got)
	}
	if got := plan.Dials(chaoslink.Link{From: 0, To: 1}); got != 2 {
		t.Errorf("poisoned link dialed %d times, want 2", got)
	}
	assertPoolsWhole(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDelayForcesMaterialize paces one link so slowly that the
// upstream node runs out of free send buffers and must take the
// materialize (copy-out) fallback — and the join results must still be
// byte-identical to the zero-copy path.
func TestChaosDelayForcesMaterialize(t *testing.T) {
	for _, writes := range []bool{false, true} {
		t.Run(fmt.Sprintf("writes=%v", writes), func(t *testing.T) {
			testutil.CheckNoLeaks(t)
			const nodes = 3
			plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
				{From: 0, To: 1}: {Delay: 200 * time.Microsecond, Pace: 2 * time.Millisecond},
			}}
			r, sums := newChecksumRing(t, Config{
				Nodes:          nodes,
				BufferSlots:    1,
				OneSidedWrites: writes,
			}, plan.Wrap(MemLinks()))
			before := r.nodes[0].m.materializes.Value()
			assign, want := buildAssign(t, nodes, 4, 240)
			if err := r.Run(assign); err != nil {
				t.Fatal(err)
			}
			assertExactlyOnce(t, sums, want)
			if got := r.nodes[0].m.materializes.Value() - before; got < 1 {
				t.Errorf("paced node materialized %d fragments, want >= 1 (congestion fallback never engaged)", got)
			}
			assertPoolsWhole(t, r)
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosReorderedDoorbells jitters and reorders write-mode doorbells:
// out-of-order landing is legal in write mode (each frame owns an exposed
// slot), and delivery must stay exactly-once and uncorrupted.
func TestChaosReorderedDoorbells(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const nodes = 3
	plan := &chaoslink.Plan{Default: &chaoslink.Scenario{
		Seed:    7,
		Delay:   50 * time.Microsecond,
		Jitter:  300 * time.Microsecond,
		Reorder: true,
	}}
	r, sums := newChecksumRing(t, Config{
		Nodes:          nodes,
		BufferSlots:    2,
		OneSidedWrites: true,
	}, plan.Wrap(MemLinks()))
	assign, want := buildAssign(t, nodes, 4, 240)
	if err := r.Run(assign); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, sums, want)
	assertPoolsWhole(t, r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCloseMidRevolution closes the ring while a revolution is in
// flight, in every transport/mode combination. Run must return ErrClosed
// and no goroutine may be stranded (CheckNoLeaks enforces it).
func TestChaosCloseMidRevolution(t *testing.T) {
	for _, tr := range chaosTransports {
		for _, writes := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/writes=%v", tr.name, writes), func(t *testing.T) {
				testutil.CheckNoLeaks(t)
				const nodes = 3
				recs := make([]*recorder, nodes)
				procs := make([]Processor, nodes)
				for i := range recs {
					recs[i] = newRecorder()
					recs[i].delay = 2 * time.Millisecond
					procs[i] = recs[i]
				}
				r, err := New(Config{Nodes: nodes, BufferSlots: 2, OneSidedWrites: writes}, tr.links(), procs)
				if err != nil {
					t.Fatal(err)
				}
				assign, _ := buildAssign(t, nodes, 4, 240)
				runErr := make(chan error, 1)
				go func() { runErr <- r.Run(assign) }()
				// Let the revolution get moving before tearing it down.
				deadline := time.After(2 * time.Second)
				for len(recs[0].counts()) == 0 {
					select {
					case <-deadline:
						t.Fatal("revolution never started")
					case <-time.After(time.Millisecond):
					}
				}
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
				select {
				case err := <-runErr:
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Run after mid-revolution Close returned %v, want ErrClosed", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("Run did not return after Close")
				}
			})
		}
	}
}

// TestChaosCloseDuringRecovery closes the ring while recovery is mid
// backoff against a partitioned link: the control goroutine must abandon
// the re-dial loop promptly and nothing may leak.
func TestChaosCloseDuringRecovery(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const nodes = 3
	plan := &chaoslink.Plan{PerLink: map[chaoslink.Link]*chaoslink.Scenario{
		{From: 0, To: 1}: {FailFrame: 1, RefuseRedials: true},
	}}
	r, _ := newChecksumRing(t, Config{
		Nodes:       nodes,
		BufferSlots: 2,
		Recovery:    Recovery{MaxRetries: 1 << 20, Backoff: 250 * time.Millisecond},
	}, plan.Wrap(MemLinks()))
	assign, _ := buildAssign(t, nodes, 2, 120)
	runErr := make(chan error, 1)
	go func() { runErr <- r.Run(assign) }()
	deadline := time.After(2 * time.Second)
	for plan.Dials(chaoslink.Link{From: 0, To: 1}) < 2 {
		select {
		case <-deadline:
			t.Fatal("recovery never attempted a re-dial")
		case <-time.After(time.Millisecond):
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Run closed during recovery returned %v, want ErrClosed in the chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Close during recovery backoff")
	}
}
