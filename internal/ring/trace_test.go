package ring

import (
	"testing"

	"cyclojoin/internal/relation"
	"cyclojoin/internal/trace"
)

// TestTraceEvents runs a traced revolution and checks the event algebra:
// every fragment is processed once per node, received once per non-home
// node, sent once per forwarding node, and retired exactly once.
func TestTraceEvents(t *testing.T) {
	const nodes = 3
	buf := &trace.Buffer{}
	procs := make([]Processor, nodes)
	for i := range procs {
		procs[i] = ProcessorFunc(func(f *relation.Fragment) error { return nil })
	}
	r, err := New(Config{Nodes: nodes, Tracer: buf}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = r.Close()
	}()
	frags := buildFrags(t, nodes, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}

	wantProcess := nodes * nodes // each of `nodes` fragments at each node
	if got := buf.Count(trace.ProcessStart); got != wantProcess {
		t.Errorf("ProcessStart events = %d, want %d", got, wantProcess)
	}
	if got := buf.Count(trace.ProcessEnd); got != wantProcess {
		t.Errorf("ProcessEnd events = %d, want %d", got, wantProcess)
	}
	// Each fragment crosses nodes-1 links → received nodes-1 times.
	wantRecv := nodes * (nodes - 1)
	if got := buf.Count(trace.FragmentReceived); got != wantRecv {
		t.Errorf("FragmentReceived events = %d, want %d", got, wantRecv)
	}
	if got := buf.Count(trace.FragmentSent); got != wantRecv {
		t.Errorf("FragmentSent events = %d, want %d", got, wantRecv)
	}
	if got := buf.Count(trace.FragmentRetired); got != nodes {
		t.Errorf("FragmentRetired events = %d, want %d", got, nodes)
	}

	// Per (fragment, node): a ProcessStart must precede its ProcessEnd,
	// and hops grow monotonically per fragment.
	type key struct{ frag, node int }
	started := map[key]bool{}
	for _, ev := range buf.Events() {
		k := key{ev.Fragment, ev.Node}
		switch ev.Kind {
		case trace.ProcessStart:
			if started[k] {
				t.Fatalf("fragment %d processed twice at node %d", ev.Fragment, ev.Node)
			}
			started[k] = true
		case trace.ProcessEnd:
			if !started[k] {
				t.Fatalf("ProcessEnd without ProcessStart for fragment %d at node %d", ev.Fragment, ev.Node)
			}
		}
	}
}

func TestTraceBufferOps(t *testing.T) {
	var b trace.Buffer
	b.Record(trace.Event{Kind: trace.ProcessStart})
	b.Record(trace.Event{Kind: trace.ProcessEnd})
	if b.Len() != 2 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.Count(trace.ProcessStart) != 1 {
		t.Error("Count wrong")
	}
	evs := b.Events()
	evs[0].Kind = trace.FragmentSent // must not affect the buffer
	if b.Count(trace.ProcessStart) != 1 {
		t.Error("Events() exposed internal storage")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestTraceKindString(t *testing.T) {
	kinds := []trace.Kind{
		trace.FragmentReceived, trace.ProcessStart, trace.ProcessEnd,
		trace.FragmentSent, trace.FragmentRetired, trace.Kind(99),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", uint8(k))
		}
	}
}
