package ring

import (
	"fmt"
	"sort"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/trace"
)

// Link-failure recovery: the ring's answer to a faulty network (§II-C "any
// failing node can easily be replaced" extends to failing links). The unit
// of failure is one directed link; the unit of recovery is a revolution in
// flight.
//
// The machinery reuses the node-replacement quiesce primitives. When a
// transport error surfaces on link from→to, Run (the only goroutine that
// reads errc) stops the sender-side transmitter and the receiver-side
// receiver, snapshots the sender's retained frames — every staged frame
// whose send work request never completed successfully — re-dials the link
// through the same factory with exponential backoff, restarts both
// endpoints, and re-routes the retained frames over the new link. Because
// every frame carries its hop count, a re-routed frame resumes its
// revolution at the last completed hop; nothing is reprocessed and nothing
// is lost.
//
// Exactly-once depends on two disciplines, both enforced in node.go:
//
//   - a transmitter tracks each frame from the moment it is dequeued until
//     its work request completes successfully, so a fault in between
//     leaves the frame retained (transports guarantee every posted work
//     request comes back through the completion queue, rdma.ErrFlushed at
//     worst);
//   - on failure or stop, reapers and receivers drain their completion
//     queue to channel close before the recovery snapshot is taken, so a
//     frame that did complete is never re-sent and a frame that did arrive
//     is never dropped.
//
// When a link keeps failing without a fragment retiring in between,
// bounded retry (Recovery.MaxRetries) gives up and Run returns a
// PartialError reporting how much of the revolution completed — graceful
// degradation instead of a wedged cluster.

var (
	mLinkFailures   = metrics.Default().Counter("ring_link_failures_total", "transport link failures observed by ring nodes")
	mLinkRecoveries = metrics.Default().Counter("ring_link_recoveries_total", "links re-established by revolution-level recovery")
	mRedials        = metrics.Default().Counter("ring_link_redials_total", "re-dial attempts during link recovery")
	mRerouted       = metrics.Default().Counter("ring_frames_rerouted_total", "retained frames re-routed over a recovered link")
	mPartials       = metrics.Default().Counter("ring_partial_results_total", "runs ended with a partial result after bounded retries")
)

// Recovery configures revolution-level link retry. The zero value disables
// recovery: any transport error aborts the run, as before.
type Recovery struct {
	// MaxRetries bounds consecutive recovery attempts per link without
	// forward progress (a fragment retiring anywhere resets the count).
	// Re-dial failures consume attempts too. 0 disables recovery.
	MaxRetries int
	// Backoff is the delay before the first re-dial, doubled per
	// consecutive attempt. Zero means DefaultRecoveryBackoff.
	Backoff time.Duration
}

// DefaultRecoveryBackoff is the initial re-dial delay when
// Recovery.Backoff is zero.
const DefaultRecoveryBackoff = 2 * time.Millisecond

// recvSettleTimeout bounds how long recovery waits for the receiving
// endpoint of a failed buffered-wire link to observe the sender-side
// teardown (recvDead). The wait normally resolves in microseconds — the
// sender's closed socket turns into an EOF right behind the last
// in-flight frame — so the bound only matters if the wire never
// delivers one.
const recvSettleTimeout = 250 * time.Millisecond

// backoff returns the effective initial re-dial delay.
func (rc Recovery) backoff() time.Duration {
	if rc.Backoff <= 0 {
		return DefaultRecoveryBackoff
	}
	return rc.Backoff
}

// ErrClosed is returned by Run when the ring is closed mid-revolution.
var ErrClosed = fmt.Errorf("ring: closed")

// LinkError describes a failed ring link. It is the error Run wraps when
// recovery is disabled or exhausted, so callers can tell a network fault
// from a processing fault.
type LinkError struct {
	// From and To are the ring positions of the link's sender and
	// receiver.
	From, To int
	// Err is the underlying transport error.
	Err error
}

// Error implements error.
func (e *LinkError) Error() string {
	return fmt.Sprintf("ring: link %d→%d failed: %v", e.From, e.To, e.Err)
}

// Unwrap exposes the transport error.
func (e *LinkError) Unwrap() error { return e.Err }

// PartialError is Run's graceful-degradation result: recovery was
// configured but a link kept failing, and the run ends with only part of
// the injected fragments having completed their revolution.
type PartialError struct {
	// Retired is how many fragments completed a full revolution.
	Retired int
	// Total is how many fragments the run injected.
	Total int
	// Last is the failure that exhausted the retry budget.
	Last error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("ring: partial result: %d/%d fragments retired before giving up: %v", e.Retired, e.Total, e.Last)
}

// Unwrap exposes the final link failure.
func (e *PartialError) Unwrap() error { return e.Last }

// linkFailure is the internal errc payload for transport faults: the
// LinkError plus the queue pair that observed it, so Run can discard the
// echoes a single fault produces (both endpoints report, and so may both
// the transmitter's post path and its reaper) once the link has been
// replaced.
type linkFailure struct {
	le *LinkError
	// qp is the endpoint the failure was observed on; sender says which
	// end.
	qp     rdma.QueuePair
	sender bool
}

// Error implements error.
func (f *linkFailure) Error() string { return f.le.Error() }

// Unwrap exposes the LinkError (and transitively the transport error).
func (f *linkFailure) Unwrap() error { return f.le }

// failLink reports a transport failure on one of the node's links, typed
// so Run can attempt recovery. A nil stop skips the deliberate-teardown
// suppression (callers outside the start/stop machinery).
func (n *node) failLink(stop chan struct{}, sender bool, qp rdma.QueuePair, err error) {
	if stop != nil {
		select {
		case <-stop:
			return
		default:
		}
	}
	var from, to int
	if sender {
		from, to = n.id, (n.id+1)%n.cfg.Nodes
	} else {
		from, to = (n.id-1+n.cfg.Nodes)%n.cfg.Nodes, n.id
	}
	n.report(&linkFailure{le: &LinkError{From: from, To: to, Err: err}, qp: qp, sender: sender})
}

// recoverable reports whether Run should attempt link recovery. A
// single-node ring recovers nothing: its only link is a self-loop whose
// quiesce would deadlock against the node's own pipeline.
func (r *Ring) recoverable() bool {
	return r.cfg.Recovery.MaxRetries > 0 && r.cfg.Nodes > 1
}

// stale reports whether f describes an endpoint the ring no longer uses —
// the echo of an already-recovered failure.
func (r *Ring) stale(f *linkFailure) bool {
	if f.sender {
		return r.nodes[f.le.From].out != f.qp
	}
	return r.nodes[f.le.To].in != f.qp
}

// linkRetry tracks one link's consecutive recovery attempts.
type linkRetry struct {
	attempts int
	lastDone int
}

// sleep pauses for d, abandoned early if the ring closes. Reports whether
// the full pause elapsed.
func (r *Ring) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.quit:
		return false
	}
}

// recoverLink replaces the failed link from→to and re-routes the sender's
// retained frames over it. st carries the link's consecutive-attempt
// count, already incremented for this failure; re-dial failures increment
// it further against the same MaxRetries budget.
func (r *Ring) recoverLink(from, to int, st *linkRetry) error {
	pd := r.frelink.Begin(trace.PhaseRelink)
	fromN, toN := r.nodes[from], r.nodes[to]

	// Quiesce both endpoints. stopSend closes the sender's queue pair,
	// which flushes every posted work request back through the reaper's
	// drain pass; sendWG.Wait inside stopSend therefore guarantees the
	// retained-frame snapshot below is complete and final. stopRecv
	// symmetrically drains delivered-but-unprocessed frames into the
	// pipeline before the old endpoint is discarded.
	fromN.stopSend()
	// On a buffered wire (tcplink), frames the sender already counted
	// delivered can still be in the kernel socket buffers. stopSend just
	// closed the sending endpoint, so an EOF is on its way to the receiver
	// right behind them; closing the receiving endpoint before its read
	// loop has consumed them would discard frames exactly-once accounting
	// says were delivered. Wait (bounded) for the receive loop to observe
	// the teardown — every in-flight frame is delivered first, then
	// recvDead closes. Synchronous transports (memlink) skip the wait: a
	// send completion there means the frame is already in the peer's CQ.
	if rdma.Buffered(toN.in) {
		select {
		case <-toN.recvDead:
		case <-time.After(recvSettleTimeout):
		case <-r.quit:
			r.frelink.End(pd)
			return ErrClosed
		}
	}
	toN.stopRecv()
	retained := fromN.takeRetained()

	var src, dst rdma.QueuePair
	for {
		backoff := r.cfg.Recovery.backoff()
		if shift := st.attempts - 1; shift > 0 {
			if shift > 16 {
				shift = 16
			}
			backoff <<= shift
		}
		if !r.sleep(backoff) {
			r.frelink.End(pd)
			return ErrClosed
		}
		mRedials.Inc()
		s, d, err := r.links(from, to)
		if err == nil {
			src, dst = s, d
			break
		}
		st.attempts++
		if st.attempts > r.cfg.Recovery.MaxRetries {
			pd.Arg = int64(st.attempts)
			r.frelink.End(pd)
			return &LinkError{From: from, To: to,
				Err: fmt.Errorf("re-dial failed after %d attempts: %w", st.attempts-1, err)}
		}
	}

	// Bring the receiver up before the sender so the new link starts with
	// receive buffers posted (write mode: credits advertised) — the same
	// order New wires a fresh ring in.
	if err := toN.beginRecv(dst); err != nil {
		r.frelink.End(pd)
		return err
	}
	if err := fromN.beginSend(src); err != nil {
		r.frelink.End(pd)
		return err
	}
	for _, ob := range retained {
		mRerouted.Inc()
		if !fromN.requeue(ob) {
			r.frelink.End(pd)
			return &LinkError{From: from, To: to,
				Err: fmt.Errorf("re-routing %d retained frames stalled", len(retained))}
		}
	}
	mLinkRecoveries.Inc()
	pd.Arg = int64(st.attempts)
	pd.Aux = int64(len(retained))
	r.frelink.End(pd)
	return nil
}

// ---- transmitter-side frame retention (node methods) ----

// trackInflight records a dequeued outbound frame as undelivered. The
// entry lives until the frame's work request completes successfully; a
// link failure in between leaves it for takeRetained.
//
//cyclolint:hotpath
func (n *node) trackInflight(buf *rdma.Buffer, ob outbound) {
	n.inflightMu.Lock()
	n.inflightSend[buf] = ob
	n.inflightMu.Unlock()
}

// untrackInflight clears a frame whose delivery the transport confirmed.
//
//cyclolint:hotpath
func (n *node) untrackInflight(buf *rdma.Buffer) {
	n.inflightMu.Lock()
	delete(n.inflightSend, buf)
	n.inflightMu.Unlock()
}

// takeRetained removes and returns every undelivered outbound frame, in
// deterministic (fragment index, hops) order. Call only with the
// transmitter stopped: stopSend's wait ensures no tracker is mid-update
// and every completion has been drained.
func (n *node) takeRetained() []outbound {
	n.inflightMu.Lock()
	bufs := make([]*rdma.Buffer, 0, len(n.inflightSend))
	out := make([]outbound, 0, len(n.inflightSend))
	for buf, ob := range n.inflightSend {
		bufs = append(bufs, buf)
		out = append(out, ob)
	}
	for _, b := range bufs {
		delete(n.inflightSend, b)
	}
	n.inflightMu.Unlock()
	// Close the send spans the failed posts left open, so the trace shows
	// the aborted send attempts instead of leaking pendings.
	for _, b := range bufs {
		n.endSendSpan(b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].index != out[j].index {
			return out[i].index < out[j].index
		}
		return out[i].hops < out[j].hops
	})
	return out
}

// requeue hands a retained frame back to the (restarted) transmitter via
// requeueQ, which the transmitter drains before sendQ. The push is
// bounded: requeueQ's capacity covers every buffer the send pool can
// produce, so a full queue means the new link already failed again —
// better to give up and let the caller escalate than wedge the control
// goroutine.
func (n *node) requeue(ob outbound) bool {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n.requeueQ.TryPush(ob) {
			n.txWake.Signal()
			return true
		}
		select {
		case <-n.quit:
			return false
		default:
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}
