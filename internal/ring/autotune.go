package ring

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/trace"
)

// Autotuner adapts the fragment chunk size against observed transfer
// throughput, finding the paper's Fig 5 sweet spot live instead of
// hard-coding it. The search space is the power-of-two ladder of Fig 5;
// the tuner hill-climbs it with a triangle probe: it spends one window at
// the current centre, one at half the size, one back at the centre, and
// one at double the size, then recentres on whichever of the three earned
// the best smoothed throughput.
//
// Moving UP the ladder requires a real improvement (see upMargin): at
// equal throughput the tuner prefers the smaller chunk, so on Fig 5's
// saturating curve it settles at the knee — the smallest size within a
// few percent of link speed — rather than drifting to the bound. Smaller
// chunks at equal throughput mean lower per-hop latency, finer recovery
// granularity, and more pipeline overlap.
//
// The tuner is passive: it never re-chunks a running ring. ChunkBytes
// reports the size a closed-loop driver should use for its next transfers
// (the probe schedule), Best reports the converged centre, and
// relation.PartitionByBytes turns either into a fragment plan. A live
// ring feeds Observe from its transmit reaper (Config.Autotune); the
// current centre is surfaced as the ring_autotune_chunk_bytes gauge and
// as PhaseAutotune points in the flight recorder.
type Autotuner struct {
	// next is the size a closed-loop driver should use now: the probe
	// target, which cycles around the centre. Loaded lock-free by
	// ChunkBytes on hot paths.
	next atomic.Int64
	// best is the current centre of the climb, updated at recentre.
	best atomic.Int64

	mu     sync.Mutex
	minLog uint // smallest probed size, log2
	maxLog uint // largest probed size, log2
	curLog uint // centre of the climb, log2
	window int  // observations per probe window
	cycle  int  // position in the triangle probe: cur, half, cur, double

	// One probe window's accumulators.
	winBytes int64
	winDur   time.Duration
	winN     int
	// total counts every accepted observation over the tuner's lifetime
	// (diagnostics; see Samples).
	total int64

	// Smoothed throughput (bytes/s) per power-of-two bucket; observations
	// are bucketed by their own mean chunk size, so open-loop feeds (a
	// ring whose fragment size the tuner does not control) still land in
	// the right bucket.
	seen [maxChunkLog + 1]bool
	tput [maxChunkLog + 1]float64

	gauge *metrics.Gauge
	shard *trace.Shard
}

const (
	// minChunkLog/maxChunkLog bound the ladder: 1 B to 1 GB, the extent
	// of the paper's Fig 5 sweep.
	minChunkLog = 0
	maxChunkLog = 30
	// autotuneWindow is the default number of observations per probe
	// window. Small enough to recentre within a revolution's worth of
	// hops, large enough to smooth scheduler jitter.
	autotuneWindow = 16
	// ewmaAlpha is the weight of a new window in the per-bucket smoothed
	// throughput.
	ewmaAlpha = 0.4
	// upMargin is the relative throughput improvement a larger chunk must
	// show before the tuner moves up the ladder (≥2%); moving down only
	// has to match. The asymmetry parks the climb at the knee of a
	// saturating curve instead of its upper bound.
	upMargin = 1.02
)

// NewAutotuner creates a tuner probing power-of-two chunk sizes in
// [minBytes, maxBytes] (both rounded to powers of two, clamped to the
// Fig 5 ladder of 1 B–1 GB). Non-positive bounds default to 1 kB and
// DefaultBufferBytes. The climb starts at the lower bound — the paper's
// Fig 5 narrative read left to right.
func NewAutotuner(minBytes, maxBytes int) *Autotuner {
	if minBytes <= 0 {
		minBytes = 1 << 10
	}
	if maxBytes <= 0 {
		maxBytes = DefaultBufferBytes
	}
	lo := log2Clamp(minBytes)
	hi := log2Clamp(maxBytes)
	if hi < lo {
		hi = lo
	}
	a := &Autotuner{
		minLog: lo,
		maxLog: hi,
		curLog: lo,
		window: autotuneWindow,
		gauge: metrics.Default().Gauge("ring_autotune_chunk_bytes",
			"chunk size currently recommended by the ring autotuner"),
		shard: trace.Flight().Shard(trace.NodeTransport, "autotune"),
	}
	a.next.Store(1 << lo)
	a.best.Store(1 << lo)
	a.gauge.Set(1 << lo)
	return a
}

// log2Clamp rounds n to the nearest power-of-two exponent and clamps it
// to the Fig 5 ladder.
func log2Clamp(n int) uint {
	if n < 1 {
		n = 1
	}
	l := uint(bits.Len(uint(n)) - 1)
	// Round up once the remainder passes half the lower power of two.
	if l < maxChunkLog && uint(n)-(1<<l) > (1<<l)/2 {
		l++
	}
	if l > maxChunkLog {
		l = maxChunkLog
	}
	return l
}

// ChunkBytes returns the chunk size a closed-loop driver should use for
// its next transfers. It cycles through the triangle-probe schedule as
// windows complete; use Best for the converged recommendation.
//
//cyclolint:hotpath
func (a *Autotuner) ChunkBytes() int { return int(a.next.Load()) }

// Best returns the centre of the climb — the tuner's current best fixed
// chunk size.
//
//cyclolint:hotpath
func (a *Autotuner) Best() int { return int(a.best.Load()) }

// Observe feeds one transfer measurement: bytes moved and the elapsed
// time attributed to them (for a transmit reaper, the time since the
// previous completion burst — which makes the metric the achieved
// through-the-transmitter rate, Fig 5's y-axis). Zero-valued samples are
// ignored. Safe for concurrent use; allocation-free.
//
//cyclolint:hotpath
func (a *Autotuner) Observe(bytes int, elapsed time.Duration) {
	if bytes <= 0 || elapsed <= 0 {
		return
	}
	a.mu.Lock()
	a.winBytes += int64(bytes)
	a.winDur += elapsed
	a.winN++
	a.total++
	if a.winN >= a.window {
		a.closeWindow()
	}
	a.mu.Unlock()
}

// Samples reports how many observations the tuner has accepted — a
// liveness diagnostic for checking the feed is actually wired.
func (a *Autotuner) Samples() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// closeWindow folds the finished probe window into the per-size smoothed
// throughput, advances the probe schedule, and recentres at the end of
// each triangle. Called with mu held.
func (a *Autotuner) closeWindow() {
	idx := log2Clamp(int(a.winBytes / int64(a.winN)))
	t := float64(a.winBytes) / a.winDur.Seconds()
	if a.seen[idx] {
		a.tput[idx] += ewmaAlpha * (t - a.tput[idx])
	} else {
		a.tput[idx] = t
		a.seen[idx] = true
	}
	a.winBytes, a.winDur, a.winN = 0, 0, 0

	// An open-loop feed (a ring whose chunk size the tuner does not
	// control) lands observations away from the probe neighbourhood;
	// drift the centre one step per window toward the observed operating
	// point so the recommendation tracks reality. Closed-loop windows
	// land within cur±1 by construction and never trigger this.
	if idx > a.curLog+1 && a.curLog < a.maxLog {
		a.setCentre(a.curLog + 1)
	} else if idx+1 < a.curLog && a.curLog > a.minLog {
		a.setCentre(a.curLog - 1)
	}

	a.cycle = (a.cycle + 1) % 4
	if a.cycle == 0 {
		a.recentre()
	}
	a.next.Store(1 << a.probeLog())
}

// setCentre moves the climb's centre and publishes it. Called with mu
// held.
func (a *Autotuner) setCentre(l uint) {
	a.curLog = l
	a.best.Store(1 << l)
	a.gauge.Set(1 << l)
}

// probeLog maps the triangle-probe position to a size: centre, half,
// centre, double. Called with mu held.
func (a *Autotuner) probeLog() uint {
	switch a.cycle {
	case 1:
		if a.curLog > a.minLog {
			return a.curLog - 1
		}
	case 3:
		if a.curLog < a.maxLog {
			return a.curLog + 1
		}
	}
	return a.curLog
}

// recentre moves the climb's centre to the best-performing neighbour.
// Called with mu held.
func (a *Autotuner) recentre() {
	cur := a.curLog
	bestLog, bestT := cur, a.tput[cur]
	if lo := cur - 1; cur > a.minLog && a.seen[lo] && a.tput[lo] >= bestT {
		// Downhill at equal or better throughput: prefer the smaller
		// chunk.
		bestLog, bestT = lo, a.tput[lo]
	}
	if hi := cur + 1; cur < a.maxLog && a.seen[hi] && a.tput[hi] > bestT*upMargin {
		bestLog = hi
	}
	if bestLog != a.curLog {
		a.setCentre(bestLog)
	}
	// Record every recentre decision — including "stay put" — so the
	// flight recorder shows the full convergence trajectory.
	a.shard.Point(trace.PhaseAutotune, -1, -1, int64(1)<<bestLog)
}
