package ring

import (
	"testing"
	"time"

	"cyclojoin/internal/trace"
)

// runTracedRing drives a full ring run with a private flight recorder and
// returns the recording. The processors sleep a little so the join spans
// dominate the per-iteration bookkeeping overhead, as a real join does.
func runTracedRing(t *testing.T, nodes int, oneSided bool) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder(trace.DefaultShardCap)
	cfg := Config{Flight: rec, OneSidedWrites: oneSided}
	r, recs := newRecorderRing(t, nodes, cfg, MemLinks())
	for _, rc := range recs {
		rc.delay = time.Millisecond
	}
	frags := buildFrags(t, nodes, 1000)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	return rec
}

// awaitSpanCount polls until the recorder holds at least want spans of
// phase p: send spans close on the reaper goroutine, which is off the
// retirement critical path and may lag Run's return.
func awaitSpanCount(rec *trace.Recorder, p trace.Phase, want int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := 0
		for _, sp := range rec.Snapshot() {
			if sp.Phase == p {
				got++
			}
		}
		if got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(time.Millisecond)
	}
}

// checkFlightRecording asserts the span population a full revolution of
// every fragment must produce: every join-entity phase accounted for,
// every fragment's retirement marked, and the pipeline phases tiling each
// node's wall clock.
func checkFlightRecording(t *testing.T, rec *trace.Recorder, nodes int) {
	t.Helper()
	// Let the reapers close the trailing send spans before snapshotting.
	awaitSpanCount(rec, trace.PhaseSend, nodes*(nodes-1))
	spans := rec.Snapshot()
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d spans on a small run", rec.Dropped())
	}
	counts := make(map[trace.Phase]int)
	for _, sp := range spans {
		counts[sp.Phase]++
		if sp.Phase != trace.PhaseRetire && sp.Dur < 1 {
			t.Fatalf("span %+v never ended", sp)
		}
	}
	// Every fragment is processed once per node: nodes fragments × nodes
	// hops of join+stage, and one ended wait per dequeue.
	wantJoins := nodes * nodes
	if counts[trace.PhaseJoin] != wantJoins {
		t.Errorf("join spans = %d, want %d", counts[trace.PhaseJoin], wantJoins)
	}
	if counts[trace.PhaseStage] != wantJoins {
		t.Errorf("stage spans = %d, want %d", counts[trace.PhaseStage], wantJoins)
	}
	if counts[trace.PhaseWait] != wantJoins {
		t.Errorf("ended wait spans = %d, want %d", counts[trace.PhaseWait], wantJoins)
	}
	// Each fragment arrives off the wire at every node except its origin.
	wantRecv := nodes * (nodes - 1)
	if counts[trace.PhaseReceive] != wantRecv {
		t.Errorf("receive spans = %d, want %d", counts[trace.PhaseReceive], wantRecv)
	}
	if counts[trace.PhaseRetire] != nodes {
		t.Errorf("retire points = %d, want %d", counts[trace.PhaseRetire], nodes)
	}
	// Sends: each fragment is posted nodes-1 times. A completion can in
	// principle still be unreaped despite the wait above, so allow up to
	// one open span per node.
	if got := counts[trace.PhaseSend]; got < wantRecv-nodes || got > wantRecv {
		t.Errorf("send spans = %d, want %d (±%d reaper slack)", got, wantRecv, nodes)
	}

	// The wait/join/stage spans must tile each node's join-entity track:
	// that is the property that makes cyclotrace's per-phase breakdown
	// reconcile with wall time.
	a := trace.Analyze(spans)
	if len(a.Nodes) != nodes {
		t.Fatalf("analysis covers %d nodes, want %d", len(a.Nodes), nodes)
	}
	for _, nb := range a.Nodes {
		if nb.Coverage < 0.95 || nb.Coverage > 1.01 {
			t.Errorf("node %d: join-entity coverage %.3f outside [0.95, 1.01] (wall %v, phases %v)",
				nb.Node, nb.Coverage, nb.Wall, nb.Phases)
		}
	}
	if len(a.Revolutions) != nodes {
		t.Errorf("analysis found %d completed revolutions, want %d", len(a.Revolutions), nodes)
	}
}

func TestFlightRecorderRingSendRecv(t *testing.T) {
	const nodes = 4
	rec := runTracedRing(t, nodes, false)
	checkFlightRecording(t, rec, nodes)
}

func TestFlightRecorderRingWrites(t *testing.T) {
	const nodes = 4
	rec := runTracedRing(t, nodes, true)
	checkFlightRecording(t, rec, nodes)
}

// TestFlightRecorderDisabledByDefault: a ring built without Config.Flight
// and without enabling the global recorder must leave no spans behind.
func TestFlightRecorderDisabledByDefault(t *testing.T) {
	if trace.Flight().Enabled() {
		t.Skip("global flight recorder enabled by another test")
	}
	before := len(trace.Flight().Snapshot())
	r, _ := newRecorderRing(t, 3, Config{}, MemLinks())
	frags := buildFrags(t, 3, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	if after := len(trace.Flight().Snapshot()); after != before {
		t.Fatalf("untraced run recorded %d spans", after-before)
	}
}
