// Package ring implements the Data Roundabout runtime (§II-C, §III-D): a
// logical ring of hosts, each owning a statically allocated pool of
// registered buffers, through which fragments of a relation circulate in
// one direction.
//
// Each node runs the paper's three asynchronous entities as goroutines:
//
//   - the *receiver* keeps receive buffers posted on the inbound queue
//     pair and decodes arriving fragments;
//   - the *join entity* (Processor) consumes one fragment at a time;
//   - the *transmitter* encodes processed fragments into free send buffers
//     and posts them to the outbound queue pair.
//
// Communication fully overlaps with processing: while the join entity works
// on one fragment, the receiver is already placing the next one and the
// transmitter is pushing the previous one out. Backpressure is the RDMA
// receiver-not-ready discipline: a node that falls behind stops reposting
// receive buffers, which stalls its upstream neighbor only after the
// neighbor has exhausted the slack in its own buffer pool — the mechanism
// behind the skew resilience observed in §V-D.
package ring

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/memlink"
	"cyclojoin/internal/rdma/tcplink"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/trace"
)

// mStallAborts counts runs killed by the stall watchdog — the signal
// that a host wedged and took the ring down with it.
var mStallAborts = metrics.Default().Counter("ring_stall_aborts_total", "runs aborted by the stall watchdog")

// Processor is the per-node "join entity": it is handed every fragment that
// flows through the node, exactly once per revolution.
type Processor interface {
	// Process consumes one fragment. It runs on the node's processing
	// goroutine; returning an error aborts the whole ring run.
	Process(frag *relation.Fragment) error
}

// ProcessorFunc adapts a function to the Processor interface.
type ProcessorFunc func(frag *relation.Fragment) error

// Process implements Processor.
func (f ProcessorFunc) Process(frag *relation.Fragment) error { return f(frag) }

// LinkFactory creates the unidirectional link carrying traffic from node
// `from` to node `to`, returning the sender-side and receiver-side queue
// pairs.
type LinkFactory func(from, to int) (src, dst rdma.QueuePair, err error)

// MemLinks is the in-process zero-copy link factory.
func MemLinks() LinkFactory {
	return func(from, to int) (rdma.QueuePair, rdma.QueuePair, error) {
		a, b := memlink.Pair()
		return a, b, nil
	}
}

// TCPLinks builds real TCP loopback links — the whole ring then runs over
// the operating system's network stack.
func TCPLinks() LinkFactory {
	return func(from, to int) (rdma.QueuePair, rdma.QueuePair, error) {
		ln, err := tcplink.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		defer func() {
			_ = ln.Close()
		}()
		type accepted struct {
			qp  rdma.QueuePair
			err error
		}
		ch := make(chan accepted, 1)
		go func() {
			qp, err := ln.Accept()
			ch <- accepted{qp, err}
		}()
		src, err := tcplink.Dial(ln.Addr())
		if err != nil {
			return nil, nil, err
		}
		acc := <-ch
		if acc.err != nil {
			_ = src.Close()
			return nil, nil, acc.err
		}
		return src, acc.qp, nil
	}
}

// Config sizes a ring.
type Config struct {
	// Nodes is the ring size (the paper evaluates 1–6).
	Nodes int
	// BufferSlots is the number of ring-buffer elements per node per
	// direction. More slots mean more pipelining slack (§V-D). Zero means
	// DefaultBufferSlots.
	BufferSlots int
	// BufferBytes is the registered size of each buffer element and thus
	// the maximum encoded fragment size. Zero means DefaultBufferBytes.
	BufferBytes int
	// Tracer receives runtime events (nil disables tracing).
	Tracer trace.Tracer
	// Flight is the span recorder for the flight recorder. Nil means the
	// process-wide trace.Flight() (which records nothing unless enabled).
	// Recording must be enabled before New: nodes take their shards at
	// construction time.
	Flight *trace.Recorder
	// OneSidedWrites switches the transmitters to RDMA write-with-
	// immediate into buffers the downstream neighbor exposes, with
	// explicit credit flow control on the reverse channel, instead of
	// two-sided send/recv. Requires a transport implementing
	// rdma.WriteQueuePair (memlink, tcplink — not the kernel-TCP
	// baseline).
	OneSidedWrites bool
	// StallTimeout aborts a Run when no fragment retires for this long —
	// the watchdog that turns a hung host (stuck join entity, dead
	// machine behind a silent link) into a diagnostic error instead of a
	// wedged cluster. Zero disables the watchdog. After a stall abort
	// the ring is unusable; Close abandons goroutines that refuse to
	// stop.
	StallTimeout time.Duration
	// Recovery enables revolution-level link retry/resume: on a transport
	// fault, Run re-dials the failed link through the same factory and
	// re-routes the sender's retained frames instead of aborting (see
	// recovery.go). The zero value keeps the historical fail-fast
	// behavior. Recovery needs Nodes > 1.
	Recovery Recovery
	// Autotune, when non-nil, receives per-burst transmit throughput
	// observations from every node's send reaper, feeding the live
	// chunk-size search (see Autotuner). The ring never re-chunks frames
	// in flight; the tuner's recommendation steers the NEXT partitioning
	// (relation.PartitionByBytes) and is surfaced via the
	// ring_autotune_chunk_bytes gauge and PhaseAutotune trace points.
	Autotune *Autotuner
}

// tracer returns the effective tracer.
func (c Config) tracer() trace.Tracer {
	if c.Tracer == nil {
		return trace.Nop{}
	}
	return c.Tracer
}

// flightRecorder returns the effective span recorder.
func (c Config) flightRecorder() *trace.Recorder {
	if c.Flight == nil {
		return trace.Flight()
	}
	return c.Flight
}

// Defaults for Config.
const (
	DefaultBufferSlots = 4
	DefaultBufferBytes = 4 << 20
)

func (c Config) slots() int {
	if c.BufferSlots <= 0 {
		return DefaultBufferSlots
	}
	return c.BufferSlots
}

func (c Config) bufBytes() int {
	if c.BufferBytes <= 0 {
		return DefaultBufferBytes
	}
	return c.BufferBytes
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("ring: config with %d nodes", c.Nodes)
	}
	return nil
}

// NodeStats snapshots one node's counters after (or during) a run.
type NodeStats struct {
	// Processed counts fragments handled by the join entity.
	Processed int
	// Retired counts fragments that completed their revolution here.
	Retired int
	// BytesIn and BytesOut count decoded/encoded fragment volume.
	BytesIn, BytesOut int64
	// ProcessTime is time spent inside Processor.Process — the paper's
	// "join" time.
	ProcessTime time.Duration
	// WaitTime is time the join entity spent waiting for data to arrive —
	// the paper's "sync" time (§V-F).
	WaitTime time.Duration
	// StageTime is post-Process staging time (forward copy, encode,
	// retirement bookkeeping); ProcessTime+StageTime is the node's busy
	// time in the attribution model's sense.
	StageTime time.Duration
	// StallTime is send-side backpressure: waiting on a free send buffer
	// or (write mode) a remote credit.
	StallTime time.Duration
	// RegisteredBytes is the node's pinned buffer volume.
	RegisteredBytes int64
}

// retirement announces that a fragment completed its revolution. It is
// deliberately metadata-only: the fragment's bytes stay in the retiring
// node's registered receive buffer, whose credit goes straight back to the
// transport. A consumer that needed the tuples would Materialize before
// release; the orchestrator only counts.
type retirement struct {
	index, hops int
}

// Ring is a running Data Roundabout.
type Ring struct {
	cfg   Config
	links LinkFactory
	nodes []*node

	retired chan retirement
	errc    chan error
	// quit is closed by Close, unblocking a Run in progress (and any
	// recovery backoff sleep) so a mid-revolution shutdown returns
	// ErrClosed instead of wedging.
	quit chan struct{}
	// frelink records PhaseRelink recovery spans on its own track.
	frelink *trace.Shard

	mu     sync.Mutex
	closed bool
}

// New builds and starts a ring whose node i forwards to node (i+1) mod n.
// procs supplies one Processor per node.
func New(cfg Config, links LinkFactory, procs []Processor) (*Ring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(procs) != cfg.Nodes {
		return nil, fmt.Errorf("ring: %d processors for %d nodes", len(procs), cfg.Nodes)
	}
	if links == nil {
		links = MemLinks()
	}
	r := &Ring{
		cfg:     cfg,
		links:   links,
		retired: make(chan retirement, 64),
		errc:    make(chan error, cfg.Nodes*4),
		quit:    make(chan struct{}),
		frelink: cfg.flightRecorder().Shard(trace.NodeTransport, "ring/recovery"),
		nodes:   make([]*node, cfg.Nodes),
	}
	for i := range r.nodes {
		r.nodes[i] = newNode(i, cfg, procs[i], r.retired, r.errc)
	}
	// Wire links: out of i → in of i+1.
	for i := range r.nodes {
		next := (i + 1) % cfg.Nodes
		src, dst, err := links(i, next)
		if err != nil {
			r.closeNodes()
			return nil, fmt.Errorf("ring: link %d→%d: %w", i, next, err)
		}
		r.nodes[i].out = src
		r.nodes[next].in = dst
	}
	for _, n := range r.nodes {
		if err := n.start(); err != nil {
			_ = r.Close()
			return nil, err
		}
	}
	return r, nil
}

// Size returns the number of nodes.
func (r *Ring) Size() int { return r.cfg.Nodes }

// Stats returns per-node counter snapshots.
func (r *Ring) Stats() []NodeStats {
	out := make([]NodeStats, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.snapshot()
	}
	return out
}

// Run injects perNode[i] fragments at node i and blocks until every
// injected fragment has completed one full revolution (visited every node
// exactly once). Fragment hop counts are reset on injection. A Ring can
// Run any number of times; runs must not overlap.
func (r *Ring) Run(perNode [][]*relation.Fragment) error {
	if len(perNode) != r.cfg.Nodes {
		return fmt.Errorf("ring: Run with %d node slots, ring has %d", len(perNode), r.cfg.Nodes)
	}
	total := 0
	for i, frags := range perNode {
		for _, f := range frags {
			if err := f.Validate(); err != nil {
				return fmt.Errorf("ring: inject at node %d: %w", i, err)
			}
			f.Hops = 0
			total++
		}
	}
	// Inject asynchronously: a node's processing queue may be smaller than
	// its fragment list, and injection must not deadlock against the
	// node's own consumption. The non-blocking pass below usually empties
	// the whole list inline (injection counts are normally sized to the
	// ring's queues); only a remainder that would block costs a goroutine.
	var wg sync.WaitGroup
	for i, frags := range perNode {
		n := r.nodes[i]
		j := 0
		for j < len(frags) && n.tryInject(frags[j]) {
			j++
		}
		if j == len(frags) {
			continue
		}
		wg.Add(1)
		go func(n *node, frags []*relation.Fragment) {
			defer wg.Done()
			for _, f := range frags {
				if !n.inject(f) {
					return
				}
			}
		}(n, frags[j:])
	}
	defer wg.Wait()

	var stall <-chan time.Time
	var timer *time.Timer
	if r.cfg.StallTimeout > 0 {
		timer = time.NewTimer(r.cfg.StallTimeout)
		defer timer.Stop()
		stall = timer.C
	}
	resetStall := func() {
		if timer == nil {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(r.cfg.StallTimeout)
	}
	// retries tracks consecutive recovery attempts per link (keyed by the
	// sending node); a retirement anywhere means the ring is making
	// progress and resets the failing link's budget.
	var retries map[int]*linkRetry
	done := 0
	for done < total {
		select {
		case <-r.retired:
			done++
			// Drain retirements already queued without re-entering the
			// multi-way select: on a busy ring they arrive in bursts.
			for done < total {
				select {
				case <-r.retired:
					done++
					continue
				default:
				}
				break
			}
			resetStall()
		case <-r.quit:
			return ErrClosed
		case err := <-r.errc:
			var lf *linkFailure
			if !errors.As(err, &lf) || !r.recoverable() {
				_ = r.Close()
				return fmt.Errorf("ring: run aborted: %w", err)
			}
			if r.stale(lf) {
				// An echo of an already-recovered failure (the second
				// endpoint reporting, or a queued duplicate).
				continue
			}
			mLinkFailures.Inc()
			if retries == nil {
				retries = make(map[int]*linkRetry)
			}
			st := retries[lf.le.From]
			if st == nil {
				st = &linkRetry{}
				retries[lf.le.From] = st
			}
			if done > st.lastDone {
				st.attempts = 0
			}
			st.lastDone = done
			st.attempts++
			if st.attempts > r.cfg.Recovery.MaxRetries {
				mPartials.Inc()
				_ = r.Close()
				return &PartialError{Retired: done, Total: total, Last: lf.le}
			}
			if rerr := r.recoverLink(lf.le.From, lf.le.To, st); rerr != nil {
				mPartials.Inc()
				_ = r.Close()
				return &PartialError{Retired: done, Total: total, Last: rerr}
			}
			// The outage consumed watchdog time through no fault of the
			// surviving pipeline; give the recovered ring a fresh window.
			resetStall()
		case <-stall:
			// Unblock injectors and loops without waiting for them —
			// a stuck join entity cannot be interrupted.
			mStallAborts.Inc()
			r.abandon()
			return fmt.Errorf("ring: stalled: no fragment retired for %v (%d/%d done); per-node progress: %s",
				r.cfg.StallTimeout, done, total, r.progressSummary())
		}
	}
	return nil
}

// abandon signals every node to quit without waiting for goroutines; used
// when a stuck processor makes an orderly stop impossible.
func (r *Ring) abandon() {
	for _, n := range r.nodes {
		if n != nil {
			n.quitOnce.Do(func() { close(n.quit) })
		}
	}
}

// progressSummary renders per-node counters for stall diagnostics.
func (r *Ring) progressSummary() string {
	out := ""
	for i, n := range r.nodes {
		st := n.snapshot()
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("node %d processed %d", i, st.Processed)
	}
	return out
}

// ReplaceNode swaps in a new processor at position i with fresh links to
// its neighbors — the paper's "any failing node can easily be replaced by
// another machine" (§II-C). The ring must be idle (no Run in progress).
func (r *Ring) ReplaceNode(i int, proc Processor) error {
	if i < 0 || i >= len(r.nodes) {
		return fmt.Errorf("ring: replace node %d of %d", i, len(r.nodes))
	}
	old := r.nodes[i]
	n := newNode(i, r.cfg, proc, r.retired, r.errc)

	if r.cfg.Nodes == 1 {
		old.stop()
		src, dst, err := r.links(i, i)
		if err != nil {
			return fmt.Errorf("ring: replace node %d: %w", i, err)
		}
		n.out, n.in = src, dst
		r.nodes[i] = n
		return n.start()
	}
	prev := (i - 1 + r.cfg.Nodes) % r.cfg.Nodes
	next := (i + 1) % r.cfg.Nodes

	// Quiesce the neighbor endpoints facing the old node first, so that
	// tearing the old node down does not surface as link errors on the
	// survivors.
	r.nodes[prev].stopSend()
	r.nodes[next].stopRecv()
	old.stop()

	srcPrev, dstNew, err := r.links(prev, i)
	if err != nil {
		return fmt.Errorf("ring: replace node %d: link %d→%d: %w", i, prev, i, err)
	}
	srcNew, dstNext, err := r.links(i, next)
	if err != nil {
		return fmt.Errorf("ring: replace node %d: link %d→%d: %w", i, i, next, err)
	}
	n.in, n.out = dstNew, srcNew
	r.nodes[i] = n
	if err := n.start(); err != nil {
		return err
	}
	if err := r.nodes[prev].beginSend(srcPrev); err != nil {
		return err
	}
	if err := r.nodes[next].beginRecv(dstNext); err != nil {
		return err
	}
	return nil
}

// Close stops all nodes. It is idempotent.
func (r *Ring) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	close(r.quit)
	r.closeNodes()
	return nil
}

func (r *Ring) closeNodes() {
	for _, n := range r.nodes {
		if n != nil {
			n.stop()
		}
	}
}
