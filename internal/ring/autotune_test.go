package ring

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

// driveClosed runs the tuner closed-loop against a synthetic throughput
// curve (bytes/s as a function of chunk size) for the given number of
// probe windows.
func driveClosed(a *Autotuner, tput func(int) float64, windows int) {
	for w := 0; w < windows; w++ {
		for i := 0; i < autotuneWindow; i++ {
			s := a.ChunkBytes()
			elapsed := time.Duration(float64(s) / tput(s) * float64(time.Second))
			a.Observe(s, elapsed)
		}
	}
}

// bestOnLadder scans the power-of-two ladder inside the tuner's bounds.
func bestOnLadder(tput func(int) float64, minBytes, maxBytes int) (int, float64) {
	best, bestT := minBytes, 0.0
	for s := minBytes; s <= maxBytes; s *= 2 {
		if t := tput(s); t > bestT {
			best, bestT = s, t
		}
	}
	return best, bestT
}

// TestAutotunerClimbsSaturatingCurve reproduces the Fig 5 shape: per-WR
// overhead makes tiny chunks overhead-bound and the curve saturates. The
// tuner must climb from the 1 B end to within 10% of the best fixed
// chunk — and park at the knee, not at the upper bound.
func TestAutotunerClimbsSaturatingCurve(t *testing.T) {
	const bandwidth = 1.1e9 // bytes/s
	const overhead = 1e-6   // seconds per work request
	tput := func(s int) float64 {
		return float64(s) / (float64(s)/bandwidth + overhead)
	}
	a := NewAutotuner(1, 1<<30)
	driveClosed(a, tput, 4*64)

	_, bestT := bestOnLadder(tput, 1, 1<<30)
	got := tput(a.Best())
	if got < 0.9*bestT {
		t.Fatalf("converged to %d B at %.3g B/s, below 90%% of best fixed %.3g B/s",
			a.Best(), got, bestT)
	}
	if a.Best() == 1<<30 {
		t.Fatalf("parked at the upper bound instead of the knee")
	}
}

// TestAutotunerFindsInteriorPeak gives the curve a genuine interior
// maximum (large chunks pay a pipelining penalty on top of the per-WR
// overhead) and checks the climb stops there from both ends.
func TestAutotunerFindsInteriorPeak(t *testing.T) {
	const bandwidth = 1.1e9
	const overhead = 1e-6
	const penalty = 4.0e9 // bytes; drag grows as s/penalty
	tput := func(s int) float64 {
		wire := float64(s)/bandwidth + overhead
		return float64(s) / (wire * (1 + float64(s)/penalty))
	}
	lo, hi := 1<<10, 1<<28
	_, bestT := bestOnLadder(tput, lo, hi)
	for name, start := range map[string]struct{ min, max int }{
		"from-below": {lo, hi},
	} {
		a := NewAutotuner(start.min, start.max)
		driveClosed(a, tput, 4*64)
		if got := tput(a.Best()); got < 0.9*bestT {
			t.Errorf("%s: converged to %d B at %.3g B/s, below 90%% of peak %.3g B/s",
				name, a.Best(), got, bestT)
		}
	}
}

// TestAutotunerOpenLoopDrift feeds observations at a fixed size the
// tuner did not recommend (a ring with a static fragment plan); the
// centre must drift to the actual operating point.
func TestAutotunerOpenLoopDrift(t *testing.T) {
	a := NewAutotuner(1<<10, 1<<24)
	const actual = 1 << 18
	for w := 0; w < 64; w++ {
		for i := 0; i < autotuneWindow; i++ {
			a.Observe(actual, time.Millisecond)
		}
	}
	if got := a.Best(); got != actual {
		t.Fatalf("centre = %d B after open-loop feed at %d B", got, actual)
	}
}

// TestAutotunerBounds checks recommendations never escape the configured
// ladder segment, even under out-of-range observations.
func TestAutotunerBounds(t *testing.T) {
	lo, hi := 1<<12, 1<<16
	a := NewAutotuner(lo, hi)
	sizes := []int{1, 64, lo, hi, 1 << 20, 1 << 30}
	for w := 0; w < 200; w++ {
		s := sizes[w%len(sizes)]
		for i := 0; i < autotuneWindow; i++ {
			a.Observe(s, time.Microsecond)
		}
		if c := a.ChunkBytes(); c < lo || c > hi {
			t.Fatalf("ChunkBytes = %d outside [%d, %d]", c, lo, hi)
		}
		if b := a.Best(); b < lo || b > hi {
			t.Fatalf("Best = %d outside [%d, %d]", b, lo, hi)
		}
	}
}

// TestAutotunerIgnoresDegenerateSamples: zero and negative samples must
// not poison the accumulators.
func TestAutotunerIgnoresDegenerateSamples(t *testing.T) {
	a := NewAutotuner(1<<10, 1<<20)
	a.Observe(0, time.Second)
	a.Observe(-5, time.Second)
	a.Observe(1<<12, 0)
	a.Observe(1<<12, -time.Second)
	if got := a.Best(); got != 1<<10 {
		t.Fatalf("degenerate samples moved the centre to %d", got)
	}
	tput := func(s int) float64 { return float64(s) / (float64(s)/1e9 + 1e-6) }
	driveClosed(a, tput, 4*32)
	if got := tput(a.Best()); math.IsNaN(got) || got <= 0 {
		t.Fatalf("tuner state poisoned: Best=%d", a.Best())
	}
}

// TestAutotunerConcurrent exercises Observe against the lock-free
// readers under the race detector.
func TestAutotunerConcurrent(t *testing.T) {
	a := NewAutotuner(1<<10, 1<<24)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := a.ChunkBytes()
				a.Observe(s, time.Microsecond)
				_ = a.Best()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestAutotunerLiveRingFeed runs a real ring with Config.Autotune set and
// checks the send reapers actually feed the tuner — in both transport
// modes — and that the recommendation stays on the configured ladder.
func TestAutotunerLiveRingFeed(t *testing.T) {
	for _, writes := range []bool{false, true} {
		t.Run(fmt.Sprintf("writes=%v", writes), func(t *testing.T) {
			tuner := NewAutotuner(1<<10, DefaultBufferBytes)
			r, _ := newRecorderRing(t, 3, Config{
				OneSidedWrites: writes,
				Autotune:       tuner,
			}, MemLinks())
			rel := workload.Sequential("R", 960, 4)
			frags, err := relation.Partition(rel, 12)
			if err != nil {
				t.Fatal(err)
			}
			assign := make([][]*relation.Fragment, 3)
			for i, f := range frags {
				assign[i%3] = append(assign[i%3], f)
			}
			for rev := 0; rev < 4; rev++ {
				if err := r.Run(assign); err != nil {
					t.Fatal(err)
				}
			}
			if tuner.Samples() == 0 {
				t.Fatal("send reapers fed no observations to the autotuner")
			}
			if b := tuner.Best(); b < 1<<10 || b > DefaultBufferBytes {
				t.Errorf("Best = %d escaped the configured ladder", b)
			}
		})
	}
}

// TestLog2Clamp pins the bucketing: round to the nearest power of two,
// clamped to the Fig 5 ladder.
func TestLog2Clamp(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{
		{-3, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {6, 2}, {7, 3},
		{1 << 20, 20}, {3 << 20, 21}, {7 << 20, 23}, {1 << 30, 30}, {1 << 31, 30},
	}
	for _, c := range cases {
		if got := log2Clamp(c.n); got != c.want {
			t.Errorf("log2Clamp(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
