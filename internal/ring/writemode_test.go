package ring

import (
	"fmt"
	"testing"

	"cyclojoin/internal/relation"
	"cyclojoin/internal/testutil"
	"cyclojoin/internal/workload"
)

// TestWriteModeOneRevolution: the one-sided transport mode must be
// behaviorally identical to send/recv.
func TestWriteModeOneRevolution(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 6} {
		t.Run(fmt.Sprintf("%dnodes", nodes), func(t *testing.T) {
			testutil.CheckNoLeaks(t)
			r, recs := newRecorderRing(t, nodes, Config{OneSidedWrites: true}, nil)
			frags := buildFrags(t, nodes, 600)
			if err := r.Run(perNode(frags)); err != nil {
				t.Fatal(err)
			}
			for n, rec := range recs {
				got := rec.counts()
				if len(got) != nodes {
					t.Errorf("node %d saw %d distinct fragments, want %d", n, len(got), nodes)
				}
				for idx, times := range got {
					if times != 1 {
						t.Errorf("node %d processed fragment %d %d times", n, idx, times)
					}
				}
			}
		})
	}
}

func TestWriteModeOverTCP(t *testing.T) {
	testutil.CheckNoLeaks(t)
	r, recs := newRecorderRing(t, 3, Config{OneSidedWrites: true}, TCPLinks())
	frags := buildFrags(t, 3, 400)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		if len(rec.counts()) != 3 {
			t.Errorf("node %d saw %d fragments", n, len(rec.counts()))
		}
	}
}

func TestWriteModeMultipleRuns(t *testing.T) {
	r, recs := newRecorderRing(t, 3, Config{OneSidedWrites: true, BufferSlots: 2}, nil)
	frags := buildFrags(t, 3, 300)
	for round := 0; round < 3; round++ {
		if err := r.Run(perNode(frags)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for n, rec := range recs {
		for idx, times := range rec.counts() {
			if times != 3 {
				t.Errorf("node %d fragment %d seen %d times, want 3", n, idx, times)
			}
		}
	}
}

// TestWriteModeReplaceNode: node replacement re-exposes buffers and
// re-establishes credits on the fresh links.
func TestWriteModeReplaceNode(t *testing.T) {
	r, _ := newRecorderRing(t, 3, Config{OneSidedWrites: true}, nil)
	frags := buildFrags(t, 3, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	replacement := newRecorder()
	if err := r.ReplaceNode(1, replacement); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	if got := replacement.counts(); len(got) != 3 {
		t.Errorf("replacement saw %d fragments, want 3", len(got))
	}
}

// TestWriteModeBackpressure: with one slow node and minimal credit slack,
// nothing is lost or duplicated.
func TestWriteModeBackpressure(t *testing.T) {
	const nodes = 4
	recs := make([]*recorder, nodes)
	procs := make([]Processor, nodes)
	for i := range recs {
		recs[i] = newRecorder()
		if i == 2 {
			recs[i].delay = 2e6 // 2ms
		}
		procs[i] = recs[i]
	}
	r, err := New(Config{Nodes: nodes, BufferSlots: 1, OneSidedWrites: true}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = r.Close()
	}()
	rel := workload.Sequential("R", 400, 4)
	frags, err := relation.Partition(rel, nodes*3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([][]*relation.Fragment, nodes)
	for i, f := range frags {
		assign[i%nodes] = append(assign[i%nodes], f)
	}
	if err := r.Run(assign); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		for idx, times := range rec.counts() {
			if times != 1 {
				t.Errorf("node %d fragment %d seen %d times", n, idx, times)
			}
		}
		if len(rec.counts()) != len(frags) {
			t.Errorf("node %d saw %d fragments, want %d", n, len(rec.counts()), len(frags))
		}
	}
}
