package ring

// The health snapshot is the ring's side of the live telemetry contract
// (DESIGN.md §12): internal/health samples it on a ticker and diffs
// successive snapshots into windowed rates. Everything here reads the
// counters the hot path already maintains — plain atomic loads, no locks,
// no allocation beyond the caller-reusable dst slices — so sampling a
// spinning ring costs the hot path nothing.

// NodeHealth is one node's cumulative hot-path accounting. All fields are
// monotonically non-decreasing except QueueDepth and ChunkBytes (point-in-
// time readings); samplers difference two snapshots to get a window.
type NodeHealth struct {
	Node int
	// Fragment and byte flow.
	Processed, Retired int64
	BytesIn, BytesOut  int64
	// Join-entity time split (ns): wait is starvation, join is
	// Processor.Process, stage is post-process staging; stall is
	// send-side backpressure (free-buffer or remote-credit waits).
	WaitNs, JoinNs, StageNs, StallNs int64
	// Materializes counts congestion fallbacks (no free send buffer).
	Materializes int64
	// QueueDepth is the join entity's input backlog right now.
	QueueDepth int64
	// ChunkBytes is the autotuner's current chunk size, 0 without one.
	ChunkBytes int64
	// HopBounds/HopCounts snapshot the node's hop-latency histogram
	// (fragment residence on the join entity): HopBounds are inclusive
	// upper bounds shared with the metrics registry (read-only),
	// HopCounts has len(HopBounds)+1 entries, the last being +Inf.
	HopBounds []int64
	HopCounts []int64
}

// HealthSnapshot assembles one NodeHealth per node, appending to dst
// (pass a previous call's slice, truncated to 0 via dst[:0], to avoid
// reallocation). Safe to call concurrently with running revolutions.
func (r *Ring) HealthSnapshot(dst []NodeHealth) []NodeHealth {
	var chunk int64
	if r.cfg.Autotune != nil {
		chunk = int64(r.cfg.Autotune.ChunkBytes())
	}
	for _, n := range r.nodes {
		nh := NodeHealth{
			Node:         n.id,
			Processed:    n.stats.processed.Load(),
			Retired:      n.stats.retired.Load(),
			BytesIn:      n.stats.bytesIn.Load(),
			BytesOut:     n.stats.bytesOut.Load(),
			WaitNs:       n.stats.waitNs.Load(),
			JoinNs:       n.stats.processNs.Load(),
			StageNs:      n.stats.stageNs.Load(),
			StallNs:      n.stats.stallNs.Load(),
			Materializes: n.m.materializes.Value(),
			QueueDepth:   n.m.procDepth.Value(),
			ChunkBytes:   chunk,
			HopBounds:    n.m.hopNs.Bounds(),
		}
		nh.HopCounts = n.m.hopNs.Buckets(make([]int64, 0, len(nh.HopBounds)+1))
		dst = append(dst, nh)
	}
	return dst
}
