package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/trace"
)

// mDoorbellRejects counts write-with-immediate doorbells rejected because
// the immediate announced a length the exposed buffer cannot hold — a
// corrupt doorbell, the write-mode analogue of a framing error.
var mDoorbellRejects = metrics.Default().Counter("ring_doorbell_rejects_total", "write doorbells rejected for an impossible announced length")

// One-sided transport mode: instead of send/recv, the transmitter places
// each fragment directly into a registered buffer the downstream neighbor
// has exposed, using RDMA write-with-immediate (the immediate carries the
// encoded length, serving as the doorbell). Flow control is explicit
// credits: the receiver advertises one credit per exposed buffer on the
// reverse direction of the same queue pair, and re-credits a buffer once
// the pipeline no longer references the frame inside it — after the frame
// has been staged for forwarding or its fragment retired. Until then the
// join entity reads tuples directly out of the exposed buffer.
//
// This is the "RDMA as distributed shared memory" wiring of a Data
// Roundabout; functionally it must be indistinguishable from the send/recv
// mode, and the ring test suite runs both.

// creditMagic guards credit messages on the reverse channel.
const creditMagic = 0x43524454 // "CRDT"

// creditBytes is the wire size of one credit message.
const creditBytes = 8

// encodeCredit writes a credit for key into an 8-byte buffer.
func encodeCredit(buf *rdma.Buffer, key rdma.RemoteKey) error {
	binary.BigEndian.PutUint32(buf.Data()[0:4], creditMagic)
	binary.BigEndian.PutUint32(buf.Data()[4:8], uint32(key))
	return buf.SetLen(creditBytes)
}

// decodeCredit parses a credit message.
func decodeCredit(b []byte) (rdma.RemoteKey, error) {
	if len(b) != creditBytes || binary.BigEndian.Uint32(b[0:4]) != creditMagic {
		return 0, fmt.Errorf("ring: malformed credit message (%d B)", len(b))
	}
	return rdma.RemoteKey(binary.BigEndian.Uint32(b[4:8])), nil
}

// startRecvWrites is the write-mode receiver: expose the receive pool,
// advertise credits upstream, and consume write-with-immediate doorbells.
func (n *node) startRecvWrites(qp rdma.QueuePair) error {
	wqp, ok := qp.(rdma.WriteQueuePair)
	if !ok {
		return fmt.Errorf("ring: node %d: transport %T does not support one-sided writes", n.id, qp)
	}
	n.in = qp
	n.recvStop = make(chan struct{})
	stop := n.recvStop

	// Small registered buffers to send credit messages from.
	creditPool, err := n.dev.RegisterPool(n.cfg.slots(), creditBytes)
	if err != nil {
		return fmt.Errorf("ring: node %d: register credit pool: %w", n.id, err)
	}
	freeCredits := make(chan *rdma.Buffer, n.cfg.slots())
	for _, b := range creditPool {
		freeCredits <- b
	}

	keyOf := make(map[*rdma.Buffer]rdma.RemoteKey, len(n.recvBufs))
	sendCredit := func(key rdma.RemoteKey) error {
		var cb *rdma.Buffer
		select {
		case cb = <-freeCredits:
		case <-stop:
			return nil
		case <-n.quit:
			return nil
		}
		if err := encodeCredit(cb, key); err != nil {
			return err
		}
		return wqp.PostSend(cb)
	}
	// sendCreditBatch is the write-mode batch repost: one batched post
	// carries every credit the join loop deferred — one doorbell per
	// drain instead of one per frame. Called only from the join loop
	// (flushCredits), so the scratch slice is single-threaded. A stop or
	// quit mid-acquisition abandons the batch like sendCredit does: the
	// restart handshake re-credits every exposed buffer from scratch.
	creditScratch := make([]*rdma.Buffer, 0, n.cfg.slots())
	sendCreditBatch := func(bufs []*rdma.Buffer) error {
		creditScratch = creditScratch[:0]
		for range bufs {
			var cb *rdma.Buffer
			select {
			case cb = <-freeCredits:
			case <-stop:
				for _, cb := range creditScratch {
					freeCredits <- cb
				}
				return nil
			case <-n.quit:
				for _, cb := range creditScratch {
					freeCredits <- cb
				}
				return nil
			}
			creditScratch = append(creditScratch, cb)
		}
		for i, b := range bufs {
			if err := encodeCredit(creditScratch[i], keyOf[b]); err != nil {
				return err
			}
		}
		return rdma.PostSendBatch(wqp, creditScratch)
	}
	// Expose every buffer — pinned ones too, since a frame still held by
	// the pipeline will return its credit through this (re)started
	// receiver — but advertise initial credits only for buffers not
	// currently occupied by an in-flight frame.
	var creditNow []rdma.RemoteKey
	n.recvMu.Lock()
	for _, b := range n.recvBufs {
		key, err := wqp.Expose(b)
		if err != nil {
			n.recvMu.Unlock()
			return fmt.Errorf("ring: node %d: expose receive buffer: %w", n.id, err)
		}
		keyOf[b] = key
		if !n.pinned[b] {
			creditNow = append(creditNow, key)
		}
	}
	// In write mode a receive credit returns upstream as a credit message
	// for the released buffer's exposed key.
	n.repost = func(b *rdma.Buffer) error { return sendCredit(keyOf[b]) }
	n.repostBatch = sendCreditBatch
	n.recvMu.Unlock()
	for _, key := range creditNow {
		if err := sendCredit(key); err != nil {
			return fmt.Errorf("ring: node %d: initial credit: %w", n.id, err)
		}
	}

	dead := make(chan struct{})
	n.recvDead = dead
	n.recvWG.Add(1)
	go func() {
		defer n.recvWG.Done()
		n.labelEntity("recv")
		n.recvLoopWrites(wqp, stop, freeCredits, dead)
	}()
	return nil
}

func (n *node) recvLoopWrites(qp rdma.WriteQueuePair, stop chan struct{}, freeCredits chan *rdma.Buffer, dead chan struct{}) {
	var batch [reapBatch]rdma.Completion
	for {
		var c rdma.Completion
		var ok bool
		// Fast path: take an already-queued completion with one
		// non-blocking receive instead of arming the multi-way select.
		select {
		case c, ok = <-qp.Completions():
		default:
			select {
			case <-stop:
				n.drainRecvWrites(qp)
				return
			case <-n.quit:
				n.drainRecvWrites(qp)
				return
			case c, ok = <-qp.Completions():
			}
		}
		if !ok {
			close(dead)
			return
		}
		// Bulk reap: one blocking receive, then drain whatever else the
		// transport already completed — one receiver wakeup per burst.
		batch[0] = c
		m := 1 + rdma.PollCQ(qp, batch[1:])
		for i := 0; i < m; i++ {
			c := batch[i]
			if c.Err != nil {
				if c.Op == rdma.OpSend && errors.Is(c.Err, rdma.ErrClosed) {
					// A credit message raced an upstream link teardown (node
					// replacement closes the neighbor's endpoint while late
					// credits are still in flight). Losing it is harmless —
					// the replacement handshake re-credits every exposed
					// buffer from scratch.
					continue
				}
				n.failLink(stop, false, qp, fmt.Errorf("ring: node %d: write-mode receive: %w", n.id, c.Err))
				// Signal the terminal event BEFORE the drain: drainRecvWrites
				// blocks until recovery closes the endpoint, and recovery may
				// be waiting on this signal to know the wire is dry.
				close(dead)
				n.doorbellTail(batch[i+1 : m])
				n.drainRecvWrites(qp)
				return
			}
			switch c.Op {
			case rdma.OpSend:
				// A credit message went out; its buffer is free again.
				select {
				case freeCredits <- c.Buf:
				case <-n.quit:
					return
				}
			case rdma.OpWrite:
				// Doorbell: a fragment landed in c.Buf; Imm carries the
				// encoded length. The frame is bound in place and the buffer
				// stays un-credited until the pipeline releases it.
				if !n.deliverDoorbell(qp, stop, c) {
					close(dead)
					n.doorbellTail(batch[i+1 : m])
					n.drainRecvWrites(qp)
					return
				}
			}
		}
	}
}

// doorbellTail applies drainRecvWrites's rules to completions already
// moved out of the completion queue when a fault cut a reaped batch
// short: doorbells that landed before the fault still reach the
// pipeline, corrupt ones release their credit, and credit-send
// completions are dropped (the restarted receiver re-advertises from
// scratch).
func (n *node) doorbellTail(tail []rdma.Completion) {
	for _, c := range tail {
		if c.Err != nil || c.Op != rdma.OpWrite {
			continue
		}
		length := int(c.Imm)
		if length > c.Buf.Cap() {
			mDoorbellRejects.Inc()
			n.releaseRecv(c.Buf)
			continue
		}
		n.deliver(c.Buf, c.Buf.Data()[:length])
	}
}

// deliverDoorbell validates one write-with-immediate doorbell and hands
// its frame to the pipeline. A corrupt doorbell (announced length the
// exposed buffer cannot hold) fails the link — but the exposed buffer
// itself is intact and unreferenced, so its credit goes back upstream
// first: the receive pool must stay whole across the failure, whether the
// ring recovers the link or an operator keeps running degraded.
func (n *node) deliverDoorbell(qp rdma.WriteQueuePair, stop chan struct{}, c rdma.Completion) bool {
	length := int(c.Imm)
	if length > c.Buf.Cap() {
		mDoorbellRejects.Inc()
		n.releaseRecv(c.Buf)
		n.failLink(stop, false, qp, fmt.Errorf("ring: node %d: write doorbell claims %d B in a %d B buffer", n.id, length, c.Buf.Cap()))
		return false
	}
	n.deliver(c.Buf, c.Buf.Data()[:length])
	return true
}

// drainRecvWrites consumes the inbound completion queue to channel close,
// delivering doorbells that landed before the fault or stop — their
// writers have confirmed completions and will not re-send. Corrupt
// doorbells release their buffer credit and are skipped (the failure is
// already on its way to Run); credit-send completions need no handling,
// since the restarted receiver re-advertises from scratch.
func (n *node) drainRecvWrites(qp rdma.WriteQueuePair) {
	for c := range qp.Completions() {
		if c.Err != nil || c.Op != rdma.OpWrite {
			continue
		}
		length := int(c.Imm)
		if length > c.Buf.Cap() {
			mDoorbellRejects.Inc()
			n.releaseRecv(c.Buf)
			continue
		}
		n.deliver(c.Buf, c.Buf.Data()[:length])
	}
}

// startSendWrites is the write-mode transmitter: collect credits from the
// downstream neighbor and write fragments straight into its buffers.
func (n *node) startSendWrites(qp rdma.QueuePair) error {
	wqp, ok := qp.(rdma.WriteQueuePair)
	if !ok {
		return fmt.Errorf("ring: node %d: transport %T does not support one-sided writes", n.id, qp)
	}
	n.out = qp
	n.sendStop = make(chan struct{})
	stop := n.sendStop

	// Buffers to receive credit messages into.
	creditPool, err := n.dev.RegisterPool(n.cfg.slots(), creditBytes)
	if err != nil {
		return fmt.Errorf("ring: node %d: register credit receive pool: %w", n.id, err)
	}
	for _, b := range creditPool {
		if err := wqp.PostRecv(b); err != nil {
			return fmt.Errorf("ring: node %d: post credit receive: %w", n.id, err)
		}
	}
	credits := make(chan rdma.RemoteKey, n.cfg.slots())

	n.sendWG.Add(2)
	go func() {
		defer n.sendWG.Done()
		n.labelEntity("send")
		n.sendLoopWrites(wqp, stop, credits)
	}()
	go func() {
		defer n.sendWG.Done()
		n.labelEntity("send")
		n.sendReaperWrites(wqp, stop, credits)
	}()
	return nil
}

func (n *node) sendLoopWrites(qp rdma.WriteQueuePair, stop chan struct{}, credits chan rdma.RemoteKey) {
	for {
		ob, ok := n.nextOutbound(stop)
		if !ok {
			return
		}
		buf, sz := ob.staged, ob.sz
		// Track the frame as undelivered from the moment it leaves the
		// queue — including through the credit wait below, so a stop or
		// fault mid-wait leaves the frame retained for re-routing.
		n.trackInflight(buf, ob)
		// Wait for a free slot in the neighbor's exposed pool. The frame
		// already left this node's receive memory (staged in the join
		// loop), so waiting here never withholds the upstream credit. A
		// credit-stall span records only the slow path, so an uncongested
		// ring pays nothing.
		var key rdma.RemoteKey
		select {
		case key = <-credits:
		default:
			cs := n.fsend.Begin(trace.PhaseCreditStall)
			cs.Frag, cs.Hop, cs.Arg = int32(ob.index), int32(ob.hops), int64(sz)
			stallStart := time.Now()
			select {
			case <-stop:
				// End the stall span on shutdown so the trace keeps the
				// stalled interval instead of silently truncating it.
				n.fsend.End(cs)
				return
			case <-n.quit:
				n.fsend.End(cs)
				return
			case key = <-credits:
			}
			n.stats.stallNs.Add(time.Since(stallStart).Nanoseconds())
			n.fsend.End(cs)
		}
		spd := n.fsend.Begin(trace.PhaseSend)
		spd.Frag, spd.Hop, spd.Arg = int32(ob.index), int32(ob.hops), int64(sz)
		if spd.Active() {
			n.pendMu.Lock()
			n.sendPend[buf] = spd
			n.pendMu.Unlock()
		}
		if err := qp.PostWriteImm(key, 0, buf, uint32(sz)); err != nil {
			n.failLink(stop, true, qp, fmt.Errorf("ring: node %d: post write: %w", n.id, err))
			return
		}
		n.stats.bytesOut.Add(int64(sz))
		n.m.bytesOut.Add(int64(sz))
		if n.trOn {
			n.tr.Record(trace.Event{
				Time: time.Now(), Node: n.id, Kind: trace.FragmentSent,
				Fragment: ob.index, Hops: ob.hops, Bytes: sz,
			})
		}
	}
}

// sendReaperWrites recycles completed write buffers (confirming their
// frames as delivered) and collects credits. It reaps in bulk — one
// blocking receive per burst, then a PollCQ drain — and reposts every
// consumed credit receive buffer of the burst with a single batched
// post.
//
//cyclolint:hotpath
func (n *node) sendReaperWrites(qp rdma.WriteQueuePair, stop chan struct{}, credits chan rdma.RemoteKey) {
	var batch [reapBatch]rdma.Completion
	var creditBufs [reapBatch]*rdma.Buffer
	var lastBurst time.Time // autotuner baseline; zero until the first burst
	for {
		var c rdma.Completion
		var ok bool
		// Fast path mirrors recvLoopWrites: skip the select when a
		// completion is already waiting.
		select {
		case c, ok = <-qp.Completions():
		default:
			select {
			case <-stop:
				n.drainSendCQ(qp)
				return
			case <-n.quit:
				n.drainSendCQ(qp)
				return
			case c, ok = <-qp.Completions():
			}
		}
		if !ok {
			return
		}
		batch[0] = c
		m := 1 + rdma.PollCQ(qp, batch[1:])
		nCredits := 0
		burstBytes := 0
		for i := 0; i < m; i++ {
			c := batch[i]
			if c.Err != nil {
				//cyclolint:coldpath transport fault: recovery or abort follows
				n.failLink(stop, true, qp, fmt.Errorf("ring: node %d: write-mode send: %w", n.id, c.Err))
				n.reapSendTail(batch[i+1 : m])
				n.drainSendCQ(qp)
				return
			}
			switch c.Op {
			case rdma.OpWrite:
				burstBytes += c.Buf.Len()
				n.endSendSpan(c.Buf)
				n.untrackInflight(c.Buf)
				n.freeSend.TryPush(c.Buf)
				n.poolWake.Signal()
			case rdma.OpRecv:
				key, err := decodeCredit(c.Buf.Bytes())
				if err != nil {
					//cyclolint:coldpath corrupt credit fault: recovery or abort follows
					n.failLink(stop, true, qp, fmt.Errorf("ring: node %d: %w", n.id, err))
					n.reapSendTail(batch[i+1 : m])
					n.drainSendCQ(qp)
					return
				}
				select {
				case credits <- key:
				case <-n.quit:
					n.drainSendCQ(qp)
					return
				}
				creditBufs[nCredits] = c.Buf
				nCredits++
			}
		}
		if nCredits > 0 {
			// One batched repost covers every credit consumed this burst.
			if err := rdma.PostRecvBatch(qp, creditBufs[:nCredits]); err != nil {
				//cyclolint:coldpath transport fault: recovery or abort follows
				n.failLink(stop, true, qp, fmt.Errorf("ring: node %d: repost credit receive: %w", n.id, err))
				n.drainSendCQ(qp)
				return
			}
		}
		lastBurst = n.observeBurst(lastBurst, burstBytes)
	}
}
