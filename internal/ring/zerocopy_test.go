package ring

import (
	"fmt"
	"sync"
	"testing"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

// The tests in this file target the zero-copy buffer lifecycle: join
// entities read fragments straight out of registered receive memory, and
// the receive credit goes back to the transport only after the frame has
// been staged onward (or retired). The hazards are use-after-release (a
// view read after its buffer was reposted and overwritten), credit leaks
// (a pinned buffer never released), and credit duplication across node
// replacement. Run with -race.

// fragChecksum folds a fragment's full tuple contents — not just its
// index — so any read of a reposted (and since overwritten) buffer shows
// up as a checksum mismatch rather than a silently wrong join.
func fragChecksum(frag *relation.Fragment) uint64 {
	h := uint64(1469598103934665603)
	for _, k := range frag.Rel.Keys() {
		h = (h ^ k) * 1099511628211
	}
	for _, b := range frag.Rel.PayloadColumn() {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// checksummer records the content checksum of every fragment it sees.
type checksummer struct {
	mu   sync.Mutex
	sums map[int][]uint64 // fragment index → checksums in arrival order
}

func newChecksummer() *checksummer { return &checksummer{sums: map[int][]uint64{}} }

func (c *checksummer) Process(frag *relation.Fragment) error {
	sum := fragChecksum(frag)
	c.mu.Lock()
	c.sums[frag.Index] = append(c.sums[frag.Index], sum)
	c.mu.Unlock()
	return nil
}

// TestViewContentsStableUnderPipelining floods a ring with more fragments
// than it has buffer slots, in both transport modes, and verifies every
// node observed byte-identical tuple contents for every fragment on every
// revolution. A premature credit release would let the upstream neighbor
// overwrite a frame while a join entity still reads through its view.
func TestViewContentsStableUnderPipelining(t *testing.T) {
	for _, writes := range []bool{false, true} {
		t.Run(fmt.Sprintf("writes=%v", writes), func(t *testing.T) {
			const nodes = 4
			const rounds = 3
			rel := workload.Sequential("R", 640, 16)
			frags, err := relation.Partition(rel, nodes*4)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[int]uint64, len(frags))
			for _, f := range frags {
				want[f.Index] = fragChecksum(f)
			}
			assign := make([][]*relation.Fragment, nodes)
			for i, f := range frags {
				assign[i%nodes] = append(assign[i%nodes], f)
			}

			procs := make([]Processor, nodes)
			sums := make([]*checksummer, nodes)
			for i := range procs {
				sums[i] = newChecksummer()
				procs[i] = sums[i]
			}
			r, err := New(Config{Nodes: nodes, BufferSlots: 2, OneSidedWrites: writes}, nil, procs)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = r.Close() }()

			for round := 0; round < rounds; round++ {
				if err := r.Run(assign); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}
			for n, cs := range sums {
				for idx, got := range cs.sums {
					if len(got) != rounds {
						t.Errorf("node %d fragment %d: %d observations, want %d", n, idx, len(got), rounds)
					}
					for rev, sum := range got {
						if sum != want[idx] {
							t.Errorf("node %d fragment %d revolution %d: checksum %#x, want %#x (view read after buffer release?)",
								n, idx, rev, sum, want[idx])
						}
					}
				}
			}
		})
	}
}

// TestBackpressureSingleSlotSendRecv is the send/recv twin of
// TestWriteModeBackpressure: one buffer slot everywhere, one slow node,
// more fragments than the ring has slack. The delayed credit return must
// not introduce a circular wait (credit waiting on send progress waiting
// on downstream credit).
func TestBackpressureSingleSlotSendRecv(t *testing.T) {
	const nodes = 4
	recs := make([]*recorder, nodes)
	procs := make([]Processor, nodes)
	for i := range recs {
		recs[i] = newRecorder()
		if i == 2 {
			recs[i].delay = 2e6 // 2ms
		}
		procs[i] = recs[i]
	}
	r, err := New(Config{Nodes: nodes, BufferSlots: 1}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
	rel := workload.Sequential("R", 400, 4)
	frags, err := relation.Partition(rel, nodes*3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([][]*relation.Fragment, nodes)
	for i, f := range frags {
		assign[i%nodes] = append(assign[i%nodes], f)
	}
	if err := r.Run(assign); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		for idx, times := range rec.counts() {
			if times != 1 {
				t.Errorf("node %d fragment %d seen %d times", n, idx, times)
			}
		}
		if len(rec.counts()) != len(frags) {
			t.Errorf("node %d saw %d fragments, want %d", n, len(rec.counts()), len(frags))
		}
	}
}

// pinnedCount inspects a node's receive-credit accounting.
func pinnedCount(n *node) int {
	n.recvMu.Lock()
	defer n.recvMu.Unlock()
	return len(n.pinned)
}

// TestCreditsFullyReturnedAfterRun: when a Run completes, every receive
// buffer's credit must be back with the transport — a leaked pin would
// shrink the ring's slack on every revolution until it wedged.
func TestCreditsFullyReturnedAfterRun(t *testing.T) {
	for _, writes := range []bool{false, true} {
		t.Run(fmt.Sprintf("writes=%v", writes), func(t *testing.T) {
			r, _ := newRecorderRing(t, 3, Config{OneSidedWrites: writes, BufferSlots: 2}, nil)
			frags := buildFrags(t, 3, 600)
			for round := 0; round < 3; round++ {
				if err := r.Run(perNode(frags)); err != nil {
					t.Fatal(err)
				}
				for _, n := range r.nodes {
					if got := pinnedCount(n); got != 0 {
						t.Fatalf("round %d: node %d still pins %d receive buffers after Run", round, n.id, got)
					}
				}
			}
		})
	}
}

// TestReplaceNodeUnderLoad replaces a node between heavily pipelined runs
// in both transport modes: the fresh links must re-establish exactly one
// credit per free receive buffer (no duplicates for buffers that were
// pinned at handover, none lost).
func TestReplaceNodeUnderLoad(t *testing.T) {
	for _, writes := range []bool{false, true} {
		t.Run(fmt.Sprintf("writes=%v", writes), func(t *testing.T) {
			const nodes = 3
			r, _ := newRecorderRing(t, nodes, Config{OneSidedWrites: writes, BufferSlots: 2}, nil)
			rel := workload.Sequential("R", 300, 4)
			frags, err := relation.Partition(rel, nodes*3)
			if err != nil {
				t.Fatal(err)
			}
			assign := make([][]*relation.Fragment, nodes)
			for i, f := range frags {
				assign[i%nodes] = append(assign[i%nodes], f)
			}
			if err := r.Run(assign); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < nodes; i++ {
				replacement := newRecorder()
				if err := r.ReplaceNode(i, replacement); err != nil {
					t.Fatalf("replace node %d: %v", i, err)
				}
				if err := r.Run(assign); err != nil {
					t.Fatalf("run after replacing node %d: %v", i, err)
				}
				if got := len(replacement.counts()); got != len(frags) {
					t.Errorf("replacement at %d saw %d fragments, want %d", i, got, len(frags))
				}
			}
		})
	}
}

// TestForwardPathZeroAlloc drives the real per-hop pipeline primitives —
// view bind, pin, stage-forward, credit release — over registered buffers
// and asserts the steady-state forward path performs zero heap
// allocations per fragment on the little-endian fast path.
func TestForwardPathZeroAlloc(t *testing.T) {
	if !relation.NativeLittleEndian() {
		t.Skip("portable-endian build: key column binds through the scratch path")
	}
	n := newNode(0, Config{Nodes: 2}, nil, nil, make(chan error, 4))
	recv, err := n.dev.RegisterPool(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	send, err := n.dev.RegisterPool(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rbuf, sbuf := recv[0], send[0]
	n.recvBufs = recv
	n.views[rbuf] = new(relation.View)
	reposted := 0
	n.repost = func(b *rdma.Buffer) error { reposted++; return nil }

	frags := buildFrags(t, 1, 4096)
	sz, err := relation.Encode(frags[0], rbuf.Data())
	if err != nil {
		t.Fatal(err)
	}
	if err := rbuf.SetLen(sz); err != nil {
		t.Fatal(err)
	}

	var failure error
	allocs := testing.AllocsPerRun(200, func() {
		v := n.views[rbuf]
		if err := v.Bind(rbuf.Bytes(), "rotating"); err != nil {
			failure = err
			return
		}
		frag := v.Frag()
		n.recvMu.Lock()
		n.pinned[rbuf] = true
		n.recvMu.Unlock()
		frag.Hops++
		if _, ok := n.stageForward(v, frag, sbuf); !ok {
			failure = fmt.Errorf("stageForward failed")
			return
		}
		//cyclolint:viewsafe the repost-failure error wraps no view bytes; the view is dead once the credit is released
		n.releaseRecv(rbuf)
	})
	if failure != nil {
		t.Fatal(failure)
	}
	if reposted == 0 {
		t.Fatal("receive credit never returned")
	}
	if allocs != 0 {
		t.Fatalf("steady-state forward path allocates %.1f times per fragment, want 0", allocs)
	}
	got, err := relation.Decode(sbuf.Bytes(), "rotating")
	if err != nil {
		t.Fatalf("staged frame does not decode: %v", err)
	}
	if !got.Rel.Equal(frags[0].Rel) {
		t.Fatal("staged frame content differs from source fragment")
	}
}
