package ring

import (
	"strconv"
	"strings"
	"testing"

	"cyclojoin/internal/metrics"
)

// scrape renders the default registry in Prometheus text format and
// parses it back into name{labels} → value, failing the test on any
// malformed line — this is the same page cmd/roundabout serves at
// /metrics.
func scrape(t *testing.T) map[string]int64 {
	t.Helper()
	var b strings.Builder
	if err := metrics.Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		key := line[:i]
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate series %q in exposition", key)
		}
		out[key] = v
	}
	return out
}

// TestMetricsIncreaseAcrossRevolution runs a TCP-linked ring twice and
// checks that the /metrics exposition parses and that the hot-path
// counters are monotonically nondecreasing, with frame, byte and retire
// counters strictly increasing across each revolution.
func TestMetricsIncreaseAcrossRevolution(t *testing.T) {
	const nodes = 3
	r, _ := newRecorderRing(t, nodes, Config{BufferBytes: 1 << 16}, TCPLinks())
	frags := buildFrags(t, nodes, 300)

	before := scrape(t)
	for rev := 0; rev < 2; rev++ {
		if err := r.Run(perNode(frags)); err != nil {
			t.Fatal(err)
		}
		after := scrape(t)
		// Counters never move backwards.
		for key, v := range before {
			if strings.Contains(key, "_depth") {
				continue // gauges may legitimately fall back to zero
			}
			if after[key] < v {
				t.Errorf("revolution %d: %s went backwards: %d → %d", rev, key, v, after[key])
			}
		}
		// One revolution moves every fragment over every TCP link and
		// retires it somewhere: frames, bytes and retires must grow.
		strictly := []string{
			`tcplink_frames_total{dir="tx"}`,
			`tcplink_frames_total{dir="rx"}`,
			`tcplink_bytes_total{dir="tx"}`,
			`tcplink_completions_total`,
		}
		for i := 0; i < nodes; i++ {
			n := strconv.Itoa(i)
			strictly = append(strictly,
				`ring_bytes_in_total{node="`+n+`"}`,
				`ring_bytes_out_total{node="`+n+`"}`,
				`ring_fragments_processed_total{node="`+n+`"}`,
				`ring_fragments_retired_total{node="`+n+`"}`,
			)
		}
		for _, key := range strictly {
			if after[key] <= before[key] {
				t.Errorf("revolution %d: %s did not increase: %d → %d", rev, key, before[key], after[key])
			}
		}
		before = after
	}
}
