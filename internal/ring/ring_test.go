package ring

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cyclojoin/internal/relation"
	"cyclojoin/internal/testutil"
	"cyclojoin/internal/workload"
)

// recorder is a Processor that records which fragments it saw.
type recorder struct {
	mu    sync.Mutex
	seen  map[int]int // fragment index → times processed
	delay time.Duration
}

func newRecorder() *recorder { return &recorder{seen: map[int]int{}} }

func (r *recorder) Process(frag *relation.Fragment) error {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen[frag.Index]++
	return nil
}

func (r *recorder) counts() map[int]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make(map[int]int, len(r.seen))
	for k, v := range r.seen {
		cp[k] = v
	}
	return cp
}

// buildFrags partitions a fresh relation into one fragment per node.
func buildFrags(t *testing.T, nodes, tuples int) []*relation.Fragment {
	t.Helper()
	rel := workload.Sequential("R", tuples, 4)
	frags, err := relation.Partition(rel, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return frags
}

func perNode(frags []*relation.Fragment) [][]*relation.Fragment {
	out := make([][]*relation.Fragment, len(frags))
	for i, f := range frags {
		out[i] = []*relation.Fragment{f}
	}
	return out
}

func newRecorderRing(t *testing.T, nodes int, cfg Config, links LinkFactory) (*Ring, []*recorder) {
	t.Helper()
	cfg.Nodes = nodes
	recs := make([]*recorder, nodes)
	procs := make([]Processor, nodes)
	for i := range recs {
		recs[i] = newRecorder()
		procs[i] = recs[i]
	}
	r, err := New(cfg, links, procs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = r.Close()
	})
	return r, recs
}

// TestOneRevolutionExactlyOnce is the core Data Roundabout invariant: after
// one Run, every node has processed every fragment exactly once (§IV-B:
// "After one revolution of R, all hosts have seen the full relation").
func TestOneRevolutionExactlyOnce(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 6} {
		t.Run(fmt.Sprintf("%dnodes", nodes), func(t *testing.T) {
			testutil.CheckNoLeaks(t)
			r, recs := newRecorderRing(t, nodes, Config{}, nil)
			frags := buildFrags(t, nodes, 600)
			if err := r.Run(perNode(frags)); err != nil {
				t.Fatal(err)
			}
			for n, rec := range recs {
				got := rec.counts()
				if len(got) != nodes {
					t.Errorf("node %d saw %d distinct fragments, want %d", n, len(got), nodes)
				}
				for idx, times := range got {
					if times != 1 {
						t.Errorf("node %d processed fragment %d %d times", n, idx, times)
					}
				}
			}
		})
	}
}

func TestMultipleFragmentsPerNode(t *testing.T) {
	const nodes, chunks = 3, 4
	r, recs := newRecorderRing(t, nodes, Config{BufferSlots: 2}, nil)
	rel := workload.Sequential("R", 240, 4)
	frags, err := relation.Partition(rel, nodes*chunks)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([][]*relation.Fragment, nodes)
	for i, f := range frags {
		assign[i%nodes] = append(assign[i%nodes], f)
	}
	if err := r.Run(assign); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		got := rec.counts()
		if len(got) != nodes*chunks {
			t.Errorf("node %d saw %d fragments, want %d", n, len(got), nodes*chunks)
		}
	}
}

// TestRunTwice: a ring is reusable across joins (ternary joins, setup
// reuse).
func TestRunTwice(t *testing.T) {
	testutil.CheckNoLeaks(t)
	r, recs := newRecorderRing(t, 3, Config{}, nil)
	frags := buildFrags(t, 3, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		for idx, times := range rec.counts() {
			if times != 2 {
				t.Errorf("node %d fragment %d processed %d times, want 2", n, idx, times)
			}
		}
	}
}

func TestTCPLinksRing(t *testing.T) {
	testutil.CheckNoLeaks(t)
	r, recs := newRecorderRing(t, 3, Config{}, TCPLinks())
	frags := buildFrags(t, 3, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		if len(rec.counts()) != 3 {
			t.Errorf("node %d saw %d fragments", n, len(rec.counts()))
		}
	}
}

// TestSlowNodeBackpressure: one slow node must not lose or duplicate
// fragments; the ring buffers absorb the imbalance (§V-D).
func TestSlowNodeBackpressure(t *testing.T) {
	const nodes = 4
	recs := make([]*recorder, nodes)
	procs := make([]Processor, nodes)
	for i := range recs {
		recs[i] = newRecorder()
		if i == 1 {
			recs[i].delay = 3 * time.Millisecond
		}
		procs[i] = recs[i]
	}
	r, err := New(Config{Nodes: nodes, BufferSlots: 2}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = r.Close()
	}()
	rel := workload.Sequential("R", 400, 4)
	frags, err := relation.Partition(rel, nodes*3)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([][]*relation.Fragment, nodes)
	for i, f := range frags {
		assign[i%nodes] = append(assign[i%nodes], f)
	}
	if err := r.Run(assign); err != nil {
		t.Fatal(err)
	}
	for n, rec := range recs {
		got := rec.counts()
		if len(got) != len(frags) {
			t.Errorf("node %d saw %d fragments, want %d", n, len(got), len(frags))
		}
		for idx, times := range got {
			if times != 1 {
				t.Errorf("node %d fragment %d seen %d times", n, idx, times)
			}
		}
	}
}

func TestProcessorErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	procs := []Processor{
		ProcessorFunc(func(f *relation.Fragment) error { return nil }),
		ProcessorFunc(func(f *relation.Fragment) error { return boom }),
	}
	r, err := New(Config{Nodes: 2}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = r.Close()
	}()
	frags := buildFrags(t, 2, 100)
	err = r.Run(perNode(frags))
	if err == nil {
		t.Fatal("Run with failing processor: want error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error chain lost: %v", err)
	}
}

func TestOversizedFragmentFailsCleanly(t *testing.T) {
	procs := []Processor{
		ProcessorFunc(func(f *relation.Fragment) error { return nil }),
		ProcessorFunc(func(f *relation.Fragment) error { return nil }),
	}
	r, err := New(Config{Nodes: 2, BufferBytes: 64}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = r.Close()
	}()
	frags := buildFrags(t, 2, 1000) // far larger than 64-byte buffers
	if err := r.Run(perNode(frags)); err == nil {
		t.Fatal("oversized fragment: want error")
	}
}

func TestStatsAccounting(t *testing.T) {
	r, _ := newRecorderRing(t, 3, Config{}, nil)
	frags := buildFrags(t, 3, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	stats := r.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d nodes", len(stats))
	}
	totalRetired := 0
	for i, st := range stats {
		if st.Processed != 3 {
			t.Errorf("node %d processed %d, want 3", i, st.Processed)
		}
		if st.BytesIn == 0 || st.BytesOut == 0 {
			t.Errorf("node %d has no traffic: in=%d out=%d", i, st.BytesIn, st.BytesOut)
		}
		if st.RegisteredBytes == 0 {
			t.Errorf("node %d registered no memory", i)
		}
		totalRetired += st.Retired
	}
	if totalRetired != 3 {
		t.Errorf("total retired = %d, want 3", totalRetired)
	}
}

func TestReplaceNode(t *testing.T) {
	const nodes = 3
	r, recs := newRecorderRing(t, nodes, Config{}, nil)
	frags := buildFrags(t, nodes, 300)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	// Node 1 "fails"; a fresh machine takes over its position.
	replacement := newRecorder()
	if err := r.ReplaceNode(1, replacement); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	if got := replacement.counts(); len(got) != nodes {
		t.Errorf("replacement saw %d fragments, want %d", len(got), nodes)
	}
	// The untouched nodes saw both runs.
	for _, n := range []int{0, 2} {
		for idx, times := range recs[n].counts() {
			if times != 2 {
				t.Errorf("node %d fragment %d seen %d times, want 2", n, idx, times)
			}
		}
	}
}

func TestReplaceNodeSingleNodeRing(t *testing.T) {
	r, _ := newRecorderRing(t, 1, Config{}, nil)
	frags := buildFrags(t, 1, 50)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	replacement := newRecorder()
	if err := r.ReplaceNode(0, replacement); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatal(err)
	}
	if len(replacement.counts()) != 1 {
		t.Error("replacement did not process")
	}
}

func TestReplaceNodeOutOfRange(t *testing.T) {
	r, _ := newRecorderRing(t, 2, Config{}, nil)
	if err := r.ReplaceNode(5, newRecorder()); err == nil {
		t.Error("want error for out-of-range node")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}, nil, nil); err == nil {
		t.Error("zero nodes: want error")
	}
	if _, err := New(Config{Nodes: 2}, nil, []Processor{newRecorder()}); err == nil {
		t.Error("processor count mismatch: want error")
	}
}

func TestRunValidation(t *testing.T) {
	r, _ := newRecorderRing(t, 2, Config{}, nil)
	if err := r.Run(make([][]*relation.Fragment, 3)); err == nil {
		t.Error("wrong perNode length: want error")
	}
	bad := &relation.Fragment{} // nil Rel
	if err := r.Run([][]*relation.Fragment{{bad}, nil}); err == nil {
		t.Error("invalid fragment: want error")
	}
}

func TestCloseIdempotent(t *testing.T) {
	r, _ := newRecorderRing(t, 2, Config{}, nil)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStallWatchdog: a hung join entity turns into a diagnostic error
// instead of a wedged Run.
func TestStallWatchdog(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	procs := []Processor{
		ProcessorFunc(func(f *relation.Fragment) error { return nil }),
		ProcessorFunc(func(f *relation.Fragment) error { <-hang; return nil }),
	}
	r, err := New(Config{Nodes: 2, StallTimeout: 200 * time.Millisecond}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	frags := buildFrags(t, 2, 100)
	err = r.Run(perNode(frags))
	if err == nil {
		t.Fatal("Run with hung processor: want stall error")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Errorf("error = %v, want stall diagnostic", err)
	}
	if !strings.Contains(err.Error(), "node 0 processed") {
		t.Errorf("error lacks per-node progress: %v", err)
	}
}

// TestStallWatchdogQuietWhenHealthy: the watchdog must not fire on a
// healthy but slow run.
func TestStallWatchdogQuietWhenHealthy(t *testing.T) {
	recs := make([]*recorder, 3)
	procs := make([]Processor, 3)
	for i := range recs {
		recs[i] = newRecorder()
		recs[i].delay = 10 * time.Millisecond
		procs[i] = recs[i]
	}
	r, err := New(Config{Nodes: 3, StallTimeout: 2 * time.Second}, nil, procs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = r.Close()
	}()
	frags := buildFrags(t, 3, 90)
	if err := r.Run(perNode(frags)); err != nil {
		t.Fatalf("healthy slow run tripped the watchdog: %v", err)
	}
}
