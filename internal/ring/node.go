package ring

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ringq"
	"cyclojoin/internal/trace"
)

// durationBounds covers 1 µs … ~4 s in powers of four — the span between
// a memlink hop and a badly stalled join entity.
var durationBounds = metrics.ExponentialBounds(1<<10, 4, 12)

// stageBounds covers 64 ns … ~1 s in powers of four — the span of the
// per-fragment staging work (a 4-byte header patch plus one memmove on the
// fast path, a full encode on the first hop).
var stageBounds = metrics.ExponentialBounds(1<<6, 4, 12)

// spinPops bounds how long a pipeline entity re-polls its queues (yielding
// between attempts) before arming its Waiter and parking. The hand-off
// between entities on a loaded ring is far shorter than a park/unpark
// round trip, so a short spin keeps the hot path free of scheduler
// activity; an idle entity still parks after ~spinPops yields.
const spinPops = 64

// reapBatch is how many completions a reaper moves out of a completion
// queue per wakeup: one blocking receive, then a bulk PollCQ drain. One
// wakeup then amortizes across up to reapBatch frames.
const reapBatch = 64

// txBatch is how many staged frames the transmitter coalesces into a
// single batched post — one doorbell (one writev on tcplink, one queue
// round trip on memlink) for everything that accumulated in sendQ while
// the previous post was in flight.
const txBatch = 16

// timerSample decimates the sub-microsecond hot-path timers (view bind,
// forward staging): reading the clock twice around a ~100 ns operation
// costs more than the operation, so only every timerSample-th one is
// timed. Power of two; the histograms keep their shape, at 1/16 the
// clock traffic.
const timerSample = 16

// nodeMetrics are one ring position's hot-path instruments, labeled by
// node id. Lookup is idempotent, so a replaced or re-created node keeps
// accumulating into the same series.
type nodeMetrics struct {
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter
	processed *metrics.Counter
	retired   *metrics.Counter
	procDepth *metrics.Gauge
	waitNs    *metrics.Histogram
	processNs *metrics.Histogram

	// Zero-copy hot-path accounting: every received frame should be a
	// view bind (no decode allocation), and every non-first hop a frame
	// copy (no re-encode). views+forwards vs encodes is the allocation
	// win made visible.
	views        *metrics.Counter
	forwards     *metrics.Counter
	encodes      *metrics.Counter
	materializes *metrics.Counter
	bindNs       *metrics.Histogram
	forwardNs    *metrics.Histogram
	encodeNs     *metrics.Histogram

	// hopNs is the fragment's full residence on this node's join entity
	// (Process start to staged), the distribution internal/health windows
	// into live p50/p99 per node.
	hopNs *metrics.Histogram
}

func newNodeMetrics(id int) nodeMetrics {
	r := metrics.Default()
	node := strconv.Itoa(id)
	return nodeMetrics{
		bytesIn:      r.Counter("ring_bytes_in_total", "encoded wire bytes received per ring node", "node", node),
		bytesOut:     r.Counter("ring_bytes_out_total", "encoded wire bytes transmitted per ring node", "node", node),
		processed:    r.Counter("ring_fragments_processed_total", "fragments handled by the join entity", "node", node),
		retired:      r.Counter("ring_fragments_retired_total", "fragments that completed their revolution here", "node", node),
		procDepth:    r.Gauge("ring_procq_depth", "fragments queued for the join entity", "node", node),
		waitNs:       r.Histogram("ring_wait_ns", "join-entity starvation (sync) time per fragment", durationBounds, "node", node),
		processNs:    r.Histogram("ring_process_ns", "join-entity processing time per fragment", durationBounds, "node", node),
		views:        r.Counter("ring_views_total", "received frames bound as allocation-free views of registered memory", "node", node),
		forwards:     r.Counter("ring_forwards_total", "fragments forwarded by wire-frame copy and hops patch, no decode or re-encode", "node", node),
		encodes:      r.Counter("ring_encodes_total", "fragments fully serialized into a send buffer (first hop of locally injected fragments)", "node", node),
		materializes: r.Counter("ring_materializes_total", "fragments copied out of registered memory because no send buffer was free (congestion fallback)", "node", node),
		bindNs:       r.Histogram("ring_view_bind_ns", "time to bind a received frame as a view", stageBounds, "node", node),
		forwardNs:    r.Histogram("ring_forward_ns", "time to stage a forwarded frame (copy + hops patch)", stageBounds, "node", node),
		encodeNs:     r.Histogram("ring_encode_ns", "time to fully encode a fragment into a send buffer", stageBounds, "node", node),
		hopNs:        r.Histogram("ring_hop_ns", "fragment residence on the join entity, Process start to staged", durationBounds, "node", node),
	}
}

// inflight carries one fragment from the receiver to the join entity
// together with the registered receive buffer whose bytes it aliases. The
// buffer's receive credit is withheld until the join entity is done with
// the frame — immediately after Process the frame is staged into a send
// buffer (or, if none is free, copied out of registered memory), the view
// retired, and the credit returned. A view is therefore never invalidated
// while the join entity can still read it, and a node that falls behind
// stops crediting its upstream neighbor exactly as before; crucially, the
// credit never waits on downstream transmit progress, which would close a
// circular wait around the ring.
type inflight struct {
	// frag is what the join entity sees. For a wire arrival it aliases
	// view's storage; for a locally injected fragment it owns its data.
	frag *relation.Fragment
	// view is non-nil for wire arrivals: the frame decoded in place.
	view *relation.View
	// buf is the registered receive buffer holding the frame; nil for
	// locally injected fragments.
	buf *rdma.Buffer
}

// outbound is one fully staged send buffer queued for the transmitter:
// wire bytes placed, length set. Staging happens entirely in the join
// loop, never in the transmitter — the transmitter's waits (send credits,
// posted completions) depend on downstream progress, and a buffer
// acquisition there could close a resource cycle around the ring (or
// starve behind an already-staged buffer in its own queue).
type outbound struct {
	// index and hops snapshot the fragment metadata for stats/tracing —
	// the originating view may be rebound by the time the send posts.
	index, hops int
	staged      *rdma.Buffer
	sz          int
}

// hotStats holds the per-node counters bumped on the hot path. Plain
// atomics, one bump per field: deliver, procLoop and the transmitters never
// take a mutex for bookkeeping, and snapshot() assembles a NodeStats from a
// set of independently-consistent loads.
type hotStats struct {
	processed, retired atomic.Int64
	bytesIn, bytesOut  atomic.Int64
	// waitNs/processNs accumulate the paper's sync/join time in
	// nanoseconds.
	waitNs, processNs atomic.Int64
	// stageNs accumulates post-Process staging time (forward copy /
	// encode / retirement bookkeeping) — with processNs it is the node's
	// "busy" time in the attribution model's sense.
	stageNs atomic.Int64
	// stallNs accumulates send-side backpressure: waiting for a free send
	// buffer, and in write mode for a remote credit. A node whose
	// downstream neighbor lags shows it here first.
	stallNs         atomic.Int64
	registeredBytes atomic.Int64
}

// node is one Data Roundabout host: receiver + join entity + transmitter
// over a statically registered buffer pool.
//
// The inter-entity queues are lock-free rings (internal/ringq), not
// channels: the uncontended hand-off is two atomics with no shared cache
// line, and blocking is pushed off the hot path into per-edge Waiters.
// Each SPSC edge has exactly one producer and one consumer goroutine;
// entity restarts (node replacement, link recovery) are sequenced by the
// stop/WaitGroup machinery, so each generation is a valid single
// producer.
type node struct {
	id  int
	cfg Config
	// proc is the join entity.
	proc Processor
	dev  *rdma.Device
	tr   trace.Tracer
	// trOn gates the Event call sites: with the Nop tracer the hot paths
	// skip both the time.Now() and the interface call entirely.
	trOn bool

	in, out rdma.QueuePair

	// procQ feeds the join entity wire arrivals; its capacity is the
	// ring-buffer depth (rounded up), so a slow node absorbs that much
	// slack before stalling upstream. Producer: receiver. Consumer: join
	// loop.
	procQ *ringq.SPSC[inflight]
	// injectQ feeds the join entity locally injected fragments. It is a
	// separate edge because Run's injector goroutine is concurrent with
	// the receiver, and each SPSC edge admits one producer.
	injectQ *ringq.SPSC[inflight]
	// sendQ feeds the transmitter. It holds every staged buffer the pool
	// can produce: an outbound exists only while it owns one of the
	// slots+2 send buffers, so at this capacity the join loop's push can
	// never block. That non-blocking push is load-bearing for liveness in
	// write mode, where the transmitter holds its dequeued frame
	// through an explicit credit wait: a full sendQ would block the
	// join loop before it processes (and re-credits) the next pinned
	// receive buffer, and with every node in that state the ring is a
	// circular credit wait — a store-and-forward deadlock.
	sendQ *ringq.SPSC[outbound]
	// requeueQ carries retained frames re-routed by link recovery to the
	// restarted transmitter, which drains it before sendQ. A separate
	// edge because the producer is Run's control goroutine, not the join
	// loop.
	requeueQ *ringq.SPSC[outbound]
	// freeSend holds the registered send buffers not currently in flight.
	// MPMC: the transmitter's reaper fills it on the hot path, the join
	// loop's failure paths return credits too, and recovery's drain pass
	// is a third producer.
	freeSend *ringq.MPMC[*rdma.Buffer]
	// sendPool is the send pool size — the invariant value of
	// freeSend.Len() when the pipeline is idle (the rings round their
	// capacity up, so Cap no longer states it).
	sendPool int

	// joinWake parks the join loop when procQ and injectQ are empty;
	// txWake parks the transmitter when sendQ and requeueQ are empty;
	// poolWake parks the join loop's blocking free-buffer wait.
	// procSpace/injectSpace/sendSpace park the respective producers when
	// an edge is full.
	joinWake    *ringq.Waiter
	txWake      *ringq.Waiter
	poolWake    *ringq.Waiter
	procSpace   *ringq.Waiter
	injectSpace *ringq.Waiter
	sendSpace   *ringq.Waiter

	// creditBuf batches receive-credit returns: the join loop defers each
	// released buffer here and flushes them with one batched post — one
	// doorbell per drain instead of one per frame. Join loop only; see
	// releaseRecvDeferred and flushCredits. creditLen is the fill level.
	creditBuf []*rdma.Buffer
	creditLen int

	// recvBufs is the registered receive pool. Each buffer is either
	// posted on the inbound queue pair, pinned under a frame the pipeline
	// still needs, or parked awaiting the next receiver start.
	recvBufs []*rdma.Buffer
	// views holds one reusable decode view per receive buffer: a buffer
	// carries at most one frame at a time, so its view is rebound in
	// place on every arrival — no per-fragment allocation. The map is
	// populated in start() before any entity goroutine launches and is
	// read-only afterwards.
	//
	//cyclolint:sharesafe filled before the entity goroutines start, read-only afterwards
	views map[*rdma.Buffer]*relation.View

	// recvMu guards the receive-credit lifecycle: which buffers are
	// pinned by in-flight frames and how a released buffer returns to the
	// transport. The receiver start/stop path (node replacement) swaps
	// repost out underneath running pipeline goroutines.
	recvMu sync.Mutex
	// pinned marks receive buffers whose frames are still referenced by
	// the pipeline; startRecv must not post them.
	pinned map[*rdma.Buffer]bool
	// repost returns a released buffer's credit to the transport: PostRecv
	// in send/recv mode, an upstream credit message in write mode. Nil
	// while the receiver is stopped; released buffers are then parked
	// (unpinned) for the next start.
	repost func(*rdma.Buffer) error
	// repostBatch returns several credits with a single batched post; nil
	// when the transport mode offers no batch path (flushCredits then
	// falls back to repost per buffer).
	repostBatch func([]*rdma.Buffer) error
	// repostQP is the endpoint repost targets, kept so a repost failure
	// can be attributed to the right link instance for recovery.
	repostQP rdma.QueuePair

	// inflightMu guards inflightSend: the staged frames handed to the
	// transmitter whose delivery the transport has not yet confirmed.
	// Link recovery re-routes exactly these (takeRetained, recovery.go).
	inflightMu   sync.Mutex
	inflightSend map[*rdma.Buffer]outbound

	retired chan<- retirement
	errc    chan<- error

	quit     chan struct{}
	quitOnce sync.Once
	procWG   sync.WaitGroup

	// Receiver and transmitter machinery restart independently during
	// node replacement, so each has its own stop channel and wait group.
	recvStop chan struct{}
	recvWG   sync.WaitGroup
	// recvDead is closed (per receiver generation) when the receive loop
	// observes a terminal transport event — an error completion or the
	// completion queue closing underneath it. Link recovery waits on it
	// before closing a buffered-wire endpoint (recovery.go): the sender's
	// teardown guarantees an eventual EOF, and every frame the wire still
	// held is consumed and delivered before that EOF surfaces here.
	recvDead chan struct{}
	sendStop chan struct{}
	sendWG   sync.WaitGroup

	stats hotStats

	// bindTick/stageTick drive the timerSample decimation. Single-writer:
	// bindTick belongs to the receiver goroutine, stageTick to the join
	// loop. A node runs either the read-mode or the write-mode receive
	// pump, never both, so the two launch sites shareguard sees are
	// mutually exclusive.
	//
	//cyclolint:sharesafe single writer: the one receive pump this node runs (read- or write-mode)
	bindTick, stageTick uint

	m nodeMetrics

	// Flight-recorder shards, one per entity track (receiver, join entity,
	// transmitter). Inert no-op shards when recording is disabled.
	frecv, fjoin, fsend *trace.Shard
	// sendPend holds the open PhaseSend span for each posted send buffer;
	// the reaper closes it when the completion arrives, so the span covers
	// post→completion rather than just the post call.
	pendMu   sync.Mutex
	sendPend map[*rdma.Buffer]trace.Pending
}

func newNode(id int, cfg Config, proc Processor, retired chan<- retirement, errc chan<- error) *node {
	slots := cfg.slots()
	fl := cfg.flightRecorder()
	tr := cfg.tracer()
	_, isNop := tr.(trace.Nop)
	return &node{
		id:           id,
		cfg:          cfg,
		proc:         proc,
		tr:           tr,
		trOn:         !isNop,
		dev:          rdma.OpenDevice(fmt.Sprintf("rnic-%d", id)),
		procQ:        ringq.NewSPSC[inflight](slots),
		injectQ:      ringq.NewSPSC[inflight](slots),
		sendQ:        ringq.NewSPSC[outbound](slots + 2),
		requeueQ:     ringq.NewSPSC[outbound](slots + 2),
		freeSend:     ringq.NewMPMC[*rdma.Buffer](slots + 2),
		joinWake:     ringq.NewWaiter(),
		txWake:       ringq.NewWaiter(),
		poolWake:     ringq.NewWaiter(),
		procSpace:    ringq.NewWaiter(),
		injectSpace:  ringq.NewWaiter(),
		sendSpace:    ringq.NewWaiter(),
		creditBuf:    make([]*rdma.Buffer, slots),
		views:        make(map[*rdma.Buffer]*relation.View, slots),
		pinned:       make(map[*rdma.Buffer]bool, slots),
		retired:      retired,
		errc:         errc,
		quit:         make(chan struct{}),
		m:            newNodeMetrics(id),
		frecv:        fl.Shard(id, "recv"),
		fjoin:        fl.Shard(id, "join"),
		fsend:        fl.Shard(id, "send"),
		sendPend:     make(map[*rdma.Buffer]trace.Pending),
		inflightSend: make(map[*rdma.Buffer]outbound, slots+2),
	}
}

// labelEntity tags the calling goroutine with pprof labels (cyclo_node,
// cyclo_entity) so an on-demand CPU profile — internal/health captures one
// when it flags a straggler — attributes samples to a ring position and
// pipeline entity. Cold path: once per entity-goroutine start.
func (n *node) labelEntity(entity string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("cyclo_node", strconv.Itoa(n.id), "cyclo_entity", entity)))
}

// start registers the buffer pools (once, up front — §III-C) and launches
// the three entities.
func (n *node) start() error {
	if len(n.recvBufs) == 0 {
		recv, err := n.dev.RegisterPool(n.cfg.slots(), n.cfg.bufBytes())
		if err != nil {
			return fmt.Errorf("ring: node %d: register receive pool: %w", n.id, err)
		}
		n.recvBufs = recv
		for _, b := range recv {
			n.views[b] = new(relation.View)
		}
		// The send pool covers every pipeline stage that can hold a
		// staged buffer concurrently: the join loop staging one fragment,
		// the send queue, and the transmitter's fragment in flight.
		// Staging moved into the join loop (so the receive credit is
		// freed before any transmit-side wait); without the extra two
		// buffers a minimal slots=1 ring would lose the pipeline slack
		// the pre-zero-copy design got from queuing heap fragments, and
		// could wedge under full backpressure.
		send, err := n.dev.RegisterPool(n.cfg.slots()+2, n.cfg.bufBytes())
		if err != nil {
			return fmt.Errorf("ring: node %d: register send pool: %w", n.id, err)
		}
		n.sendPool = len(send)
		for _, b := range send {
			n.freeSend.TryPush(b)
		}
		n.stats.registeredBytes.Store(n.dev.Stats().BytesPinned)
	}
	// The three entities below share custody of the pooled views planted
	// in n.views: each send of a view down the pipeline carries the
	// buffer credit with it, which is the ring's sanctioned handoff.
	n.procWG.Add(1)
	go func() {
		defer n.procWG.Done()
		n.labelEntity("join")
		//cyclolint:viewsafe pooled views travel the pipeline with their buffer credit
		n.procLoop()
	}()
	//cyclolint:viewsafe pooled views travel the pipeline with their buffer credit
	if err := n.beginRecv(n.in); err != nil {
		return err
	}
	//cyclolint:viewsafe pooled views travel the pipeline with their buffer credit
	return n.beginSend(n.out)
}

// beginRecv starts the receiver in the configured transport mode.
func (n *node) beginRecv(qp rdma.QueuePair) error {
	if n.cfg.OneSidedWrites {
		return n.startRecvWrites(qp)
	}
	return n.startRecv(qp)
}

// beginSend starts the transmitter in the configured transport mode.
func (n *node) beginSend(qp rdma.QueuePair) error {
	if n.cfg.OneSidedWrites {
		return n.startSendWrites(qp)
	}
	n.startSend(qp)
	return nil
}

// ---- receiver ----

func (n *node) startRecv(qp rdma.QueuePair) error {
	n.in = qp
	n.recvStop = make(chan struct{})
	// Install the repost path and collect the postable buffers under one
	// lock: buffers pinned by frames still in the pipeline (a replacement
	// can restart the receiver while the join entity holds views) must
	// not be posted — their release will repost them through the new qp.
	n.recvMu.Lock()
	n.repost = qp.PostRecv
	n.repostBatch = func(bufs []*rdma.Buffer) error { return rdma.PostRecvBatch(qp, bufs) }
	n.repostQP = qp
	post := make([]*rdma.Buffer, 0, len(n.recvBufs))
	for _, b := range n.recvBufs {
		if !n.pinned[b] {
			post = append(post, b)
		}
	}
	n.recvMu.Unlock()
	if err := rdma.PostRecvBatch(qp, post); err != nil {
		return fmt.Errorf("ring: node %d: post receive: %w", n.id, err)
	}
	stop := n.recvStop
	dead := make(chan struct{})
	n.recvDead = dead
	n.recvWG.Add(1)
	go func() {
		defer n.recvWG.Done()
		n.labelEntity("recv")
		n.recvLoop(qp, stop, dead)
	}()
	return nil
}

// stopRecv quiesces the receiver and closes the inbound queue pair. The
// receive buffer pool is retained for a later startRecv; buffers released
// while stopped are parked until then.
func (n *node) stopRecv() {
	if n.recvStop == nil {
		return
	}
	n.recvMu.Lock()
	n.repost = nil
	n.repostBatch = nil
	n.recvMu.Unlock()
	close(n.recvStop)
	if n.in != nil {
		_ = n.in.Close()
	}
	n.recvWG.Wait()
	n.recvStop = nil
}

// releaseRecv returns a receive buffer's credit to the transport once the
// pipeline is done with the frame it holds. With the receiver stopped
// (node replacement in progress) the buffer is parked unpinned; the next
// startRecv posts it.
// releaseRecv returns buf's receive credit to the transport.
//
//cyclolint:hotpath
func (n *node) releaseRecv(buf *rdma.Buffer) {
	if buf == nil {
		return // locally injected fragment, no wire buffer
	}
	n.recvMu.Lock()
	delete(n.pinned, buf)
	repost := n.repost
	qp := n.repostQP
	n.recvMu.Unlock()
	if repost == nil {
		return
	}
	if err := repost(buf); err != nil {
		// A receiver restart between the load above and this call closes
		// the old endpoint; the buffer is already unpinned, so the new
		// receiver posts it. Anything else is a real transport fault.
		if errors.Is(err, rdma.ErrClosed) {
			return
		}
		//cyclolint:coldpath transport fault: recovery or abort follows
		n.failLink(nil, false, qp, fmt.Errorf("ring: node %d: repost receive: %w", n.id, err))
	}
}

// releaseRecvDeferred queues buf's credit for the next batched flush
// instead of reposting immediately — one doorbell per drain instead of
// one per frame. Join loop only. The eager-release liveness rule still
// holds: every point where the join loop can block calls flushCredits
// first, so a deferred credit never waits on downstream progress.
//
//cyclolint:hotpath
func (n *node) releaseRecvDeferred(buf *rdma.Buffer) {
	if buf == nil {
		return // locally injected fragment, no wire buffer
	}
	n.creditBuf[n.creditLen] = buf
	n.creditLen++
	if n.creditLen == len(n.creditBuf) {
		n.flushCredits()
	}
}

// flushCredits returns every deferred receive credit with one batched
// post. It MUST run before the join loop blocks on anything — input, a
// free send buffer, sendQ space, or the retired channel — so a parked
// join entity never sits on credits its upstream neighbor is starving
// for. With the receiver stopped the buffers are parked unpinned, exactly
// like releaseRecv.
//
//cyclolint:hotpath
func (n *node) flushCredits() {
	if n.creditLen == 0 {
		return
	}
	bufs := n.creditBuf[:n.creditLen]
	n.recvMu.Lock()
	for _, b := range bufs {
		delete(n.pinned, b)
	}
	repostBatch := n.repostBatch
	repost := n.repost
	qp := n.repostQP
	n.recvMu.Unlock()
	var err error
	switch {
	case repostBatch != nil:
		err = repostBatch(bufs)
	case repost != nil:
		for _, b := range bufs {
			if err = repost(b); err != nil {
				break
			}
		}
	}
	for i := range bufs {
		bufs[i] = nil
	}
	n.creditLen = 0
	if err != nil && !errors.Is(err, rdma.ErrClosed) {
		//cyclolint:coldpath transport fault: recovery or abort follows
		n.failLink(nil, false, qp, fmt.Errorf("ring: node %d: repost receive: %w", n.id, err))
	}
}

func (n *node) recvLoop(qp rdma.QueuePair, stop chan struct{}, dead chan struct{}) {
	var batch [reapBatch]rdma.Completion
	for {
		var c rdma.Completion
		var ok bool
		// Fast path: on a busy ring the next completion is usually already
		// queued — take it with one non-blocking receive instead of arming
		// the multi-way select (which locks every channel involved).
		select {
		case c, ok = <-qp.Completions():
		default:
			select {
			case <-stop:
				n.drainRecv(qp)
				return
			case <-n.quit:
				n.drainRecv(qp)
				return
			case c, ok = <-qp.Completions():
			}
		}
		if !ok {
			close(dead)
			return
		}
		// Bulk reap: one blocking receive, then drain whatever else the
		// transport already completed — one receiver wakeup per burst.
		batch[0] = c
		m := 1 + rdma.PollCQ(qp, batch[1:])
		for i := 0; i < m; i++ {
			c := batch[i]
			if c.Err != nil {
				n.failLink(stop, false, qp, fmt.Errorf("ring: node %d: receive: %w", n.id, c.Err))
				// Signal the terminal event BEFORE the drain: drainRecv
				// blocks until recovery closes the endpoint, and recovery
				// may be waiting on this signal to know the wire is dry.
				close(dead)
				n.deliverTail(batch[i+1 : m])
				n.drainRecv(qp)
				return
			}
			if c.Op != rdma.OpRecv {
				continue
			}
			n.deliver(c.Buf, c.Buf.Bytes())
		}
	}
}

// deliverTail applies drainRecv's delivery rule to completions already
// moved out of the completion queue when an error entry cut a reaped
// batch short: frames that landed before the fault must still reach the
// pipeline.
func (n *node) deliverTail(tail []rdma.Completion) {
	for _, c := range tail {
		if c.Err != nil || c.Op != rdma.OpRecv {
			continue
		}
		n.deliver(c.Buf, c.Buf.Bytes())
	}
}

// drainRecv consumes the inbound completion queue to channel close,
// delivering every frame the transport already placed. Frames that
// arrived before a fault (or a deliberate endpoint stop) must reach the
// pipeline — dropping them here would lose them for good, since the
// upstream sender has already been told they were delivered. The queue
// pair is closed by the same stop/recovery path that lands here, so the
// loop is bounded.
func (n *node) drainRecv(qp rdma.QueuePair) {
	for c := range qp.Completions() {
		if c.Err != nil || c.Op != rdma.OpRecv {
			// Flushed (undelivered) buffers are parked by the transport
			// handing them back; the next receiver start reposts them.
			continue
		}
		n.deliver(c.Buf, c.Buf.Bytes())
	}
}

// deliver binds a received frame in place as a view and hands it to the
// join entity. The receive credit stays withheld until the pipeline
// releases the buffer — after the frame is staged into a send buffer, or
// at retirement — so a full procQ still translates into ring backpressure,
// now without a decode-materialize cycle on the way in. Returns false when
// the node is quitting or the frame is fatally malformed.
//
// A receiver stop (node replacement, link recovery) deliberately does NOT
// abandon the handoff: the frame was delivered and acknowledged at the
// transport level, so it must survive the receiver restart — the join
// entity keeps running throughout and drains procQ.
//
//cyclolint:hotpath
func (n *node) deliver(buf *rdma.Buffer, frame []byte) bool {
	rspan := n.frecv.Begin(trace.PhaseReceive)
	v := n.views[buf]
	n.bindTick++
	var bindStart time.Time
	if n.bindTick&(timerSample-1) == 0 {
		bindStart = time.Now()
	}
	if err := v.Bind(frame, "rotating"); err != nil {
		//cyclolint:coldpath malformed frame: the node is about to stop
		n.report(fmt.Errorf("ring: node %d: decode: %w", n.id, err))
		// The receive still happened; record its span before bailing so
		// the trace shows the malformed delivery instead of a gap.
		n.frecv.End(rspan)
		return false
	}
	if !bindStart.IsZero() {
		n.m.bindNs.Observe(time.Since(bindStart).Nanoseconds())
	}
	n.m.views.Inc()
	frag := v.Frag()
	rspan.Frag, rspan.Hop, rspan.Arg = int32(frag.Index), int32(frag.Hops), int64(len(frame))
	n.recvMu.Lock()
	n.pinned[buf] = true
	n.recvMu.Unlock()
	n.stats.bytesIn.Add(int64(len(frame)))
	n.m.bytesIn.Add(int64(len(frame)))
	if n.trOn {
		n.tr.Record(trace.Event{
			Time: time.Now(), Node: n.id, Kind: trace.FragmentReceived,
			Fragment: frag.Index, Hops: frag.Hops, Bytes: len(frame),
		})
	}
	// The view rides the queue bound to live receive memory, and that is
	// the point: the buffer credit travels with it (buf stays pinned), and
	// the join loop releases the credit only after staging or Materialize.
	//cyclolint:viewsafe credit travels with the view; procLoop releases it after staging or Materialize
	if n.pushInput(n.procQ, n.procSpace, inflight{frag: frag, view: v, buf: buf}) { //cyclolint:role recvLoop and recvLoopWrites are alternative transports; exactly one receive entity runs per node
		n.frecv.End(rspan)
		return true
	}
	// Quitting with the frame undelivered: unpin so a later receiver
	// start reposts the buffer instead of leaking the credit.
	n.recvMu.Lock()
	delete(n.pinned, buf)
	n.recvMu.Unlock()
	n.frecv.End(rspan)
	return false
}

// pushInput enqueues one fragment for the join entity, parking on space
// when the edge is full — that park is the ring's backpressure point.
// Returns false only when the node quits first.
//
//cyclolint:hotpath
func (n *node) pushInput(q *ringq.SPSC[inflight], space *ringq.Waiter, inf inflight) bool {
	if q.TryPush(inf) {
		n.m.procDepth.Inc()
		n.joinWake.Signal()
		return true
	}
	for {
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if q.TryPush(inf) {
				n.m.procDepth.Inc()
				n.joinWake.Signal()
				return true
			}
		}
		space.Prepare()
		if q.TryPush(inf) {
			n.m.procDepth.Inc()
			n.joinWake.Signal()
			return true
		}
		select {
		case <-space.C():
		case <-n.quit:
			return false
		}
	}
}

// ---- join entity ----

// popInput takes the join entity's next fragment, wire arrivals before
// local injections.
//
//cyclolint:hotpath
func (n *node) popInput() (inflight, bool) {
	if inf, ok := n.procQ.TryPop(); ok {
		n.procSpace.Signal()
		return inf, true
	}
	if inf, ok := n.injectQ.TryPop(); ok {
		n.injectSpace.Signal()
		return inf, true
	}
	return inflight{}, false
}

// nextInput blocks for the join entity's next fragment. Deferred credits
// are flushed before any spin or park: idle time must never withhold a
// credit from the upstream neighbor.
func (n *node) nextInput() (inflight, bool) {
	if inf, ok := n.popInput(); ok {
		return inf, true
	}
	n.flushCredits()
	for {
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if inf, ok := n.popInput(); ok {
				return inf, true
			}
		}
		n.joinWake.Prepare()
		if inf, ok := n.popInput(); ok {
			return inf, true
		}
		select {
		case <-n.joinWake.C():
		case <-n.quit:
			return inflight{}, false
		}
	}
}

func (n *node) procLoop() {
	defer n.flushCredits()
	for {
		// The wait/join/stage spans tile this loop back to back, so the
		// join-entity track has no unaccounted gaps: cyclotrace reconciles
		// their sum against the track's wall clock.
		wpd := n.fjoin.Begin(trace.PhaseWait)
		waitStart := time.Now()
		inf, ok := n.nextInput()
		if !ok {
			// Close the wait span on shutdown: the terminal wait interval
			// is part of the join-entity track, not a gap.
			n.fjoin.End(wpd)
			return
		}
		n.m.procDepth.Dec()
		// One clock read serves as both the end of the wait and the start
		// of Process: the bookkeeping between them is a handful of stores.
		procStart := time.Now()
		waited := procStart.Sub(waitStart)

		frag := inf.frag
		wpd.Frag, wpd.Hop = int32(frag.Index), int32(frag.Hops)
		n.fjoin.End(wpd)
		jpd := n.fjoin.Begin(trace.PhaseJoin)
		jpd.Frag, jpd.Hop, jpd.Arg = int32(frag.Index), int32(frag.Hops), int64(frag.Rel.Len())
		if n.trOn {
			n.tr.Record(trace.Event{
				Time: procStart, Node: n.id, Kind: trace.ProcessStart,
				Fragment: frag.Index, Hops: frag.Hops,
			})
		}
		err := n.proc.Process(frag)
		procEnd := time.Now()
		procTime := procEnd.Sub(procStart)
		n.fjoin.End(jpd)
		spd := n.fjoin.Begin(trace.PhaseStage)
		spd.Frag, spd.Hop = int32(frag.Index), int32(frag.Hops)
		if n.trOn {
			n.tr.Record(trace.Event{
				Time: procEnd, Node: n.id, Kind: trace.ProcessEnd,
				Fragment: frag.Index, Hops: frag.Hops,
			})
		}

		// The wait before a fragment that did arrive is "sync" time in
		// the paper's sense: the join entity starving on the transport.
		n.stats.waitNs.Add(waited.Nanoseconds())
		n.stats.processNs.Add(procTime.Nanoseconds())
		n.stats.processed.Add(1)
		n.m.waitNs.Observe(waited.Nanoseconds())
		n.m.processNs.Observe(procTime.Nanoseconds())
		n.m.processed.Inc()

		if err != nil {
			n.report(fmt.Errorf("ring: node %d: process fragment %d: %w", n.id, frag.Index, err))
			n.fjoin.End(spd)
			return
		}

		frag.Hops++
		if frag.Hops >= n.cfg.Nodes {
			// Retirement: only the metadata travels on. The frame's bytes
			// live in registered receive memory whose credit goes straight
			// back to the transport; a consumer that needed the tuples
			// would inf.view.Materialize() before the release — today none
			// does, Run just counts revolutions.
			ret := retirement{index: frag.Index, hops: frag.Hops}
			n.stats.retired.Add(1)
			n.m.retired.Inc()
			n.fjoin.Point(trace.PhaseRetire, int32(ret.index), int32(ret.hops), 0)
			if n.trOn {
				n.tr.Record(trace.Event{
					Time: time.Now(), Node: n.id, Kind: trace.FragmentRetired,
					Fragment: ret.index, Hops: ret.hops,
				})
			}
			n.releaseRecvDeferred(inf.buf)
			select {
			case n.retired <- ret:
			default:
				// Run's drain is briefly behind: flush deferred credits
				// before blocking on it.
				n.flushCredits()
				select {
				case n.retired <- ret:
				case <-n.quit:
					n.fjoin.End(spd)
					return
				}
			}
			n.fjoin.End(spd)
			n.finishHop(procStart, procEnd)
			continue
		}

		// Forwarding. Liveness rule: the receive credit goes back BEFORE
		// this loop blocks on anything send-side. Around the ring, "my
		// credit returns when my send progresses, my send progresses when
		// my neighbor credits me" is a circular wait; eager release after
		// Process breaks it (deferred credits count as released: every
		// blocking point below flushes them first). On the hot path a
		// free send buffer is ready and the frame is staged by one copy
		// plus a 4-byte hops patch — then released. Only when every send
		// buffer is busy does the fragment get copied out of registered
		// memory (releasing the credit) and pay a full encode once a
		// buffer frees up.
		var ob outbound
		if inf.view != nil {
			if buf, ok := n.freeSend.TryPop(); ok {
				// Snapshot the metadata before the release: the credit
				// return lets upstream overwrite the receive buffer, and
				// with it the view this fragment aliases.
				index, hops := frag.Index, frag.Hops
				sz, ok := n.stageForward(inf.view, frag, buf)
				if !ok {
					// The node is stopping, but the pool must stay whole:
					// ReplaceNode restarts entities against these buffers,
					// and a dropped credit would shrink the send pool.
					n.freeSend.TryPush(buf)
					n.fjoin.End(spd)
					return
				}
				n.releaseRecvDeferred(inf.buf)
				ob = outbound{index: index, hops: hops, staged: buf, sz: sz}
			} else {
				heap := inf.view.Materialize()
				n.m.materializes.Inc()
				n.releaseRecvDeferred(inf.buf)
				var ok bool
				if ob, ok = n.encodeOutbound(heap); !ok {
					n.fjoin.End(spd)
					return
				}
			}
		} else {
			var ok bool
			if ob, ok = n.encodeOutbound(inf.frag); !ok {
				n.fjoin.End(spd)
				return
			}
		}
		spd.Arg = int64(ob.sz)
		if !n.pushOutbound(ob) {
			n.fjoin.End(spd)
			return
		}
		n.fjoin.End(spd)
		n.finishHop(procStart, procEnd)
	}
}

// finishHop closes a fragment's hop accounting with a single clock read:
// the interval since procEnd is staging time, the interval since procStart
// is the fragment's full residence on the join entity (the live hop
// histogram internal/health windows into p50/p99). Fragment-scoped — one
// extra time.Now per hop, in line with the loop's other clock reads.
//
//cyclolint:hotpath
func (n *node) finishHop(procStart, procEnd time.Time) {
	end := time.Now()
	n.stats.stageNs.Add(end.Sub(procEnd).Nanoseconds())
	n.m.hopNs.Observe(end.Sub(procStart).Nanoseconds())
}

// popFreeSend blocks for a free send buffer; quit aborts. The wait
// depends on downstream progress, so deferred credits are flushed before
// any spin or park.
func (n *node) popFreeSend() (*rdma.Buffer, bool) {
	if buf, ok := n.freeSend.TryPop(); ok {
		return buf, true
	}
	n.flushCredits()
	// Send-pool exhaustion is downstream backpressure: account the whole
	// slow-path wait as stall time. The fast path above pays no clock read.
	stallStart := time.Now()
	for {
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if buf, ok := n.freeSend.TryPop(); ok {
				n.stats.stallNs.Add(time.Since(stallStart).Nanoseconds())
				return buf, true
			}
		}
		n.poolWake.Prepare()
		if buf, ok := n.freeSend.TryPop(); ok {
			n.stats.stallNs.Add(time.Since(stallStart).Nanoseconds())
			return buf, true
		}
		select {
		case <-n.poolWake.C():
		case <-n.quit:
			return nil, false
		}
	}
}

// pushOutbound hands a staged frame to the transmitter. sendQ is sized
// for every buffer the pool can produce, so the fast path never fails;
// the park path is a safety net and flushes credits before blocking.
//
//cyclolint:hotpath
func (n *node) pushOutbound(ob outbound) bool {
	if n.sendQ.TryPush(ob) {
		n.txWake.Signal()
		return true
	}
	n.flushCredits()
	for {
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if n.sendQ.TryPush(ob) {
				n.txWake.Signal()
				return true
			}
		}
		n.sendSpace.Prepare()
		if n.sendQ.TryPush(ob) {
			n.txWake.Signal()
			return true
		}
		select {
		case <-n.sendSpace.C():
		case <-n.quit:
			return false
		}
	}
}

// encodeOutbound waits for a free send buffer and fully serializes a
// heap-owned fragment (locally injected, or materialized under
// congestion) into it. Called only after any receive credit the fragment
// depended on has been released (or deferred — popFreeSend flushes).
func (n *node) encodeOutbound(frag *relation.Fragment) (outbound, bool) {
	buf, ok := n.popFreeSend()
	if !ok {
		return outbound{}, false
	}
	sz, ok := n.stageEncode(frag, buf)
	if !ok {
		// Return the credit even though the node is stopping: the send
		// pool is registered once and must survive node replacement.
		n.freeSend.TryPush(buf)
		return outbound{}, false
	}
	return outbound{index: frag.Index, hops: frag.Hops, staged: buf, sz: sz}, true
}

// inject hands a locally stored fragment to the join entity, as if it had
// just arrived. It reports false if the node is shutting down.
func (n *node) inject(frag *relation.Fragment) bool {
	return n.pushInput(n.injectQ, n.injectSpace, inflight{frag: frag}) //cyclolint:role Run's inline tryInject precedes the loader goroutine hand-off; the two producers never overlap
}

// tryInject is inject's non-blocking fast path: push or report a full edge,
// never park. Run uses it to inject inline before paying for a goroutine.
func (n *node) tryInject(frag *relation.Fragment) bool {
	if !n.injectQ.TryPush(inflight{frag: frag}) {
		return false
	}
	n.m.procDepth.Inc()
	n.joinWake.Signal()
	return true
}

// ---- transmitter ----

func (n *node) startSend(qp rdma.QueuePair) {
	n.out = qp
	n.sendStop = make(chan struct{})
	stop := n.sendStop
	n.sendWG.Add(2)
	go func() {
		defer n.sendWG.Done()
		n.labelEntity("send")
		n.sendLoop(qp, stop)
	}()
	go func() {
		defer n.sendWG.Done()
		n.labelEntity("send")
		n.sendReaper(qp, stop)
	}()
}

// stopSend quiesces the transmitter and closes the outbound queue pair.
func (n *node) stopSend() {
	if n.sendStop == nil {
		return
	}
	close(n.sendStop)
	if n.out != nil {
		_ = n.out.Close()
	}
	n.sendWG.Wait()
	n.sendStop = nil
}

// stageForward copies a bound frame into the registered send buffer and
// patches the 4-byte hops field in place — the entire per-hop cost of
// forwarding a fragment that arrived off the wire. No decode, no
// re-encode, no allocation.
//
//cyclolint:hotpath
func (n *node) stageForward(v *relation.View, frag *relation.Fragment, buf *rdma.Buffer) (int, bool) {
	frame := v.Frame()
	if len(frame) > buf.Cap() {
		//cyclolint:coldpath misconfiguration fault: the node is about to stop
		n.report(fmt.Errorf("ring: node %d: fragment %d frame is %d B, buffers are %d B; raise Config.BufferBytes",
			n.id, frag.Index, len(frame), buf.Cap()))
		return 0, false
	}
	n.stageTick++
	var stageStart time.Time
	if n.stageTick&(timerSample-1) == 0 {
		stageStart = time.Now()
	}
	dst := buf.Data()[:len(frame)]
	copy(dst, frame)
	if err := relation.SetFrameHops(dst, frag.Hops); err != nil {
		//cyclolint:coldpath corrupt frame fault: the node is about to stop
		n.report(fmt.Errorf("ring: node %d: patch forwarded frame: %w", n.id, err))
		return 0, false
	}
	if err := buf.SetLen(len(frame)); err != nil {
		n.report(err)
		return 0, false
	}
	if !stageStart.IsZero() {
		n.m.forwardNs.Observe(time.Since(stageStart).Nanoseconds())
	}
	n.m.forwards.Inc()
	return len(frame), true
}

// stageEncode fully serializes a heap-owned fragment (locally injected, or
// materialized under congestion) into the registered send buffer.
func (n *node) stageEncode(frag *relation.Fragment, buf *rdma.Buffer) (int, bool) {
	need := relation.EncodedSize(frag)
	if need > buf.Cap() {
		n.report(fmt.Errorf("ring: node %d: fragment %d needs %d B, buffers are %d B; raise Config.BufferBytes",
			n.id, frag.Index, need, buf.Cap()))
		return 0, false
	}
	encodeStart := time.Now()
	sz, err := relation.Encode(frag, buf.Data())
	if err != nil {
		n.report(fmt.Errorf("ring: node %d: encode: %w", n.id, err))
		return 0, false
	}
	if err := buf.SetLen(sz); err != nil {
		n.report(err)
		return 0, false
	}
	n.m.encodeNs.Observe(time.Since(encodeStart).Nanoseconds())
	n.m.encodes.Inc()
	return sz, true
}

// popOutbound takes the transmitter's next frame, re-routed retained
// frames (requeueQ, link recovery) before freshly staged ones.
//
//cyclolint:hotpath
func (n *node) popOutbound() (outbound, bool) {
	if ob, ok := n.requeueQ.TryPop(); ok { //cyclolint:role sendLoop and sendLoopWrites are alternative transports; exactly one transmit entity runs per node
		return ob, true
	}
	if ob, ok := n.sendQ.TryPop(); ok { //cyclolint:role sendLoop and sendLoopWrites are alternative transports; exactly one transmit entity runs per node
		n.sendSpace.Signal()
		return ob, true
	}
	return outbound{}, false
}

// nextOutbound blocks for the transmitter's next frame; stop and quit
// abort.
func (n *node) nextOutbound(stop chan struct{}) (outbound, bool) {
	if ob, ok := n.popOutbound(); ok {
		return ob, true
	}
	for {
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if ob, ok := n.popOutbound(); ok {
				return ob, true
			}
		}
		n.txWake.Prepare()
		if ob, ok := n.popOutbound(); ok {
			return ob, true
		}
		select {
		case <-n.txWake.C():
		case <-stop:
			return outbound{}, false
		case <-n.quit:
			return outbound{}, false
		}
	}
}

func (n *node) sendLoop(qp rdma.QueuePair, stop chan struct{}) {
	// The batch arrays live for the loop's lifetime: the doorbell batch
	// costs no per-frame allocation.
	var batch [txBatch]outbound
	var bufs [txBatch]*rdma.Buffer
	for {
		ob, ok := n.nextOutbound(stop)
		if !ok {
			return
		}
		// Coalesce everything already staged behind it — one batched post
		// (a single doorbell at the transport) for the whole burst.
		batch[0] = ob
		m := 1
		for m < txBatch {
			ob, ok := n.popOutbound()
			if !ok {
				break
			}
			batch[m] = ob
			m++
		}
		total := 0
		for i := 0; i < m; i++ {
			ob := batch[i]
			// Track the frame as undelivered from the moment it leaves
			// the queue: whatever fails from here on — the post below, or
			// the completion later — leaves the entry for recovery to
			// re-route (batched posts are prefix-atomic, so an unposted
			// suffix simply stays tracked with no completion to come).
			n.trackInflight(ob.staged, ob)
			// The send span runs from post to completion (closed by the
			// reaper), covering the transport's whole handling of the
			// frame.
			spd := n.fsend.Begin(trace.PhaseSend)
			spd.Frag, spd.Hop, spd.Arg = int32(ob.index), int32(ob.hops), int64(ob.sz)
			if spd.Active() {
				n.pendMu.Lock()
				n.sendPend[ob.staged] = spd
				n.pendMu.Unlock()
			}
			bufs[i] = ob.staged
			total += ob.sz
		}
		if err := rdma.PostSendBatch(qp, bufs[:m]); err != nil {
			n.failLink(stop, true, qp, fmt.Errorf("ring: node %d: post send: %w", n.id, err))
			return
		}
		n.stats.bytesOut.Add(int64(total))
		n.m.bytesOut.Add(int64(total))
		if n.trOn {
			now := time.Now()
			for i := 0; i < m; i++ {
				n.tr.Record(trace.Event{
					Time: now, Node: n.id, Kind: trace.FragmentSent,
					Fragment: batch[i].index, Hops: batch[i].hops, Bytes: batch[i].sz,
				})
			}
		}
	}
}

// sendReaper returns completed send buffers to the free pool and confirms
// frame deliveries (untracking them from the recovery retention map). It
// reaps in bulk: one blocking receive per burst, then a PollCQ drain.
//
//cyclolint:hotpath
func (n *node) sendReaper(qp rdma.QueuePair, stop chan struct{}) {
	var batch [reapBatch]rdma.Completion
	var lastBurst time.Time // autotuner baseline; zero until the first burst
	for {
		var c rdma.Completion
		var ok bool
		// Fast path mirrors recvLoop: skip the select when a completion is
		// already waiting.
		select {
		case c, ok = <-qp.Completions():
		default:
			select {
			case <-stop:
				n.drainSendCQ(qp)
				return
			case <-n.quit:
				n.drainSendCQ(qp)
				return
			case c, ok = <-qp.Completions():
			}
		}
		if !ok {
			return
		}
		batch[0] = c
		m := 1 + rdma.PollCQ(qp, batch[1:])
		burstBytes := 0
		for i := 0; i < m; i++ {
			c := batch[i]
			if c.Err != nil {
				//cyclolint:coldpath transport fault: recovery or abort follows
				n.failLink(stop, true, qp, fmt.Errorf("ring: node %d: send: %w", n.id, c.Err))
				n.reapSendTail(batch[i+1 : m])
				n.drainSendCQ(qp)
				return
			}
			if c.Op != rdma.OpSend {
				continue
			}
			burstBytes += c.Buf.Len()
			n.endSendSpan(c.Buf)
			n.untrackInflight(c.Buf)
			n.freeSend.TryPush(c.Buf)
			n.poolWake.Signal()
		}
		lastBurst = n.observeBurst(lastBurst, burstBytes)
	}
}

// observeBurst feeds one completion burst to the chunk-size autotuner:
// burst bytes over the time since the previous burst, i.e. the achieved
// through-the-transmitter rate. Returns the new baseline; a no-op (and
// free of clock reads) when no tuner is configured.
//
//cyclolint:hotpath
func (n *node) observeBurst(last time.Time, bytes int) time.Time {
	tuner := n.cfg.Autotune
	if tuner == nil {
		return last
	}
	now := time.Now()
	if !last.IsZero() && bytes > 0 {
		tuner.Observe(bytes, now.Sub(last))
	}
	return now
}

// reapSendTail applies drainSendCQ's confirmation rules to completions
// already moved out of the completion queue when an error entry cut a
// reaped batch short: successes behind the failure are confirmed
// deliveries that must not be re-sent.
func (n *node) reapSendTail(tail []rdma.Completion) {
	for _, c := range tail {
		if c.Err != nil {
			n.endSendSpan(c.Buf)
			continue
		}
		switch c.Op {
		case rdma.OpSend, rdma.OpWrite:
			n.endSendSpan(c.Buf)
			n.untrackInflight(c.Buf)
			n.freeSend.TryPush(c.Buf)
			n.poolWake.Signal()
		}
	}
}

// drainSendCQ consumes the outbound completion queue to channel close.
// This is what makes the recovery snapshot exact: success completions
// queued behind a failure (or still unread when a stop lands) are
// confirmed deliveries whose frames must NOT be re-sent, and error/flush
// completions leave their frames tracked for re-routing. The queue pair
// is closed by the same stop/recovery path that lands here, so the loop
// is bounded; freeSend's push never fails (its capacity covers the pool).
func (n *node) drainSendCQ(qp rdma.QueuePair) {
	for c := range qp.Completions() {
		if c.Err != nil {
			n.endSendSpan(c.Buf)
			continue
		}
		switch c.Op {
		case rdma.OpSend, rdma.OpWrite:
			n.endSendSpan(c.Buf)
			n.untrackInflight(c.Buf)
			n.freeSend.TryPush(c.Buf)
			n.poolWake.Signal()
		}
	}
}

// endSendSpan closes the PhaseSend span opened when buf was posted.
//
//cyclolint:hotpath
func (n *node) endSendSpan(buf *rdma.Buffer) {
	if !n.fsend.Enabled() {
		return
	}
	n.pendMu.Lock()
	spd, ok := n.sendPend[buf]
	if ok {
		delete(n.sendPend, buf)
	}
	n.pendMu.Unlock()
	if ok {
		n.fsend.End(spd)
	}
}

// ---- lifecycle ----

func (n *node) stop() {
	n.quitOnce.Do(func() { close(n.quit) })
	n.stopRecv()
	n.stopSend()
	// A join entity stuck inside Processor.Process cannot be interrupted;
	// bound the wait and abandon it rather than wedging shutdown.
	if !waitTimeout(&n.procWG, 2*time.Second) {
		n.report(fmt.Errorf("ring: node %d: join entity did not stop; abandoned", n.id))
	}
}

// waitTimeout waits on wg up to d. The timer is stopped on the happy path
// instead of lingering until it fires (time.After would strand it for the
// full duration). The watcher goroutine itself cannot be cancelled —
// sync.WaitGroup has no cancellable wait — but it holds no timer and exits
// the moment the group finishes, so an abandoned join entity leaks exactly
// one parked goroutine and nothing else.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}

func (n *node) report(err error) {
	select {
	case <-n.quit:
		return
	default:
	}
	select {
	case n.errc <- err:
	default:
		// Another error is already pending; the first one wins.
	}
}

func (n *node) snapshot() NodeStats {
	return NodeStats{
		Processed:       int(n.stats.processed.Load()),
		Retired:         int(n.stats.retired.Load()),
		BytesIn:         n.stats.bytesIn.Load(),
		BytesOut:        n.stats.bytesOut.Load(),
		ProcessTime:     time.Duration(n.stats.processNs.Load()),
		WaitTime:        time.Duration(n.stats.waitNs.Load()),
		StageTime:       time.Duration(n.stats.stageNs.Load()),
		StallTime:       time.Duration(n.stats.stallNs.Load()),
		RegisteredBytes: n.stats.registeredBytes.Load(),
	}
}
