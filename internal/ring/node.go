package ring

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/trace"
)

// durationBounds covers 1 µs … ~4 s in powers of four — the span between
// a memlink hop and a badly stalled join entity.
var durationBounds = metrics.ExponentialBounds(1<<10, 4, 12)

// nodeMetrics are one ring position's hot-path instruments, labeled by
// node id. Lookup is idempotent, so a replaced or re-created node keeps
// accumulating into the same series.
type nodeMetrics struct {
	bytesIn   *metrics.Counter
	bytesOut  *metrics.Counter
	processed *metrics.Counter
	retired   *metrics.Counter
	procDepth *metrics.Gauge
	waitNs    *metrics.Histogram
	processNs *metrics.Histogram
}

func newNodeMetrics(id int) nodeMetrics {
	r := metrics.Default()
	node := strconv.Itoa(id)
	return nodeMetrics{
		bytesIn:   r.Counter("ring_bytes_in_total", "decoded fragment bytes received per ring node", "node", node),
		bytesOut:  r.Counter("ring_bytes_out_total", "encoded fragment bytes transmitted per ring node", "node", node),
		processed: r.Counter("ring_fragments_processed_total", "fragments handled by the join entity", "node", node),
		retired:   r.Counter("ring_fragments_retired_total", "fragments that completed their revolution here", "node", node),
		procDepth: r.Gauge("ring_procq_depth", "fragments queued for the join entity", "node", node),
		waitNs:    r.Histogram("ring_wait_ns", "join-entity starvation (sync) time per fragment", durationBounds, "node", node),
		processNs: r.Histogram("ring_process_ns", "join-entity processing time per fragment", durationBounds, "node", node),
	}
}

// node is one Data Roundabout host: receiver + join entity + transmitter
// over a statically registered buffer pool.
type node struct {
	id  int
	cfg Config
	// proc is the join entity.
	proc Processor
	dev  *rdma.Device
	tr   trace.Tracer

	in, out rdma.QueuePair

	// procQ feeds the join entity; its capacity is the ring-buffer depth,
	// so a slow node absorbs that much slack before stalling upstream.
	procQ chan *relation.Fragment
	// sendQ feeds the transmitter.
	sendQ chan *relation.Fragment
	// freeSend holds the registered send buffers not currently in flight.
	freeSend chan *rdma.Buffer
	// recvBufs is the registered receive pool; all are posted while the
	// receiver runs.
	recvBufs []*rdma.Buffer

	retired chan<- *relation.Fragment
	errc    chan<- error

	quit     chan struct{}
	quitOnce sync.Once
	procWG   sync.WaitGroup

	// Receiver and transmitter machinery restart independently during
	// node replacement, so each has its own stop channel and wait group.
	recvStop chan struct{}
	recvWG   sync.WaitGroup
	sendStop chan struct{}
	sendWG   sync.WaitGroup

	mu    sync.Mutex
	stats NodeStats

	m nodeMetrics
}

func newNode(id int, cfg Config, proc Processor, retired chan<- *relation.Fragment, errc chan<- error) *node {
	slots := cfg.slots()
	return &node{
		id:       id,
		cfg:      cfg,
		proc:     proc,
		tr:       cfg.tracer(),
		dev:      rdma.OpenDevice(fmt.Sprintf("rnic-%d", id)),
		procQ:    make(chan *relation.Fragment, slots),
		sendQ:    make(chan *relation.Fragment, slots),
		freeSend: make(chan *rdma.Buffer, slots),
		retired:  retired,
		errc:     errc,
		quit:     make(chan struct{}),
		m:        newNodeMetrics(id),
	}
}

// start registers the buffer pools (once, up front — §III-C) and launches
// the three entities.
func (n *node) start() error {
	if len(n.recvBufs) == 0 {
		recv, err := n.dev.RegisterPool(n.cfg.slots(), n.cfg.bufBytes())
		if err != nil {
			return fmt.Errorf("ring: node %d: register receive pool: %w", n.id, err)
		}
		n.recvBufs = recv
		send, err := n.dev.RegisterPool(n.cfg.slots(), n.cfg.bufBytes())
		if err != nil {
			return fmt.Errorf("ring: node %d: register send pool: %w", n.id, err)
		}
		for _, b := range send {
			n.freeSend <- b
		}
		n.mu.Lock()
		n.stats.RegisteredBytes = n.dev.Stats().BytesPinned
		n.mu.Unlock()
	}
	n.procWG.Add(1)
	go func() {
		defer n.procWG.Done()
		n.procLoop()
	}()
	if err := n.beginRecv(n.in); err != nil {
		return err
	}
	return n.beginSend(n.out)
}

// beginRecv starts the receiver in the configured transport mode.
func (n *node) beginRecv(qp rdma.QueuePair) error {
	if n.cfg.OneSidedWrites {
		return n.startRecvWrites(qp)
	}
	return n.startRecv(qp)
}

// beginSend starts the transmitter in the configured transport mode.
func (n *node) beginSend(qp rdma.QueuePair) error {
	if n.cfg.OneSidedWrites {
		return n.startSendWrites(qp)
	}
	n.startSend(qp)
	return nil
}

// ---- receiver ----

func (n *node) startRecv(qp rdma.QueuePair) error {
	n.in = qp
	n.recvStop = make(chan struct{})
	for _, b := range n.recvBufs {
		if err := qp.PostRecv(b); err != nil {
			return fmt.Errorf("ring: node %d: post receive: %w", n.id, err)
		}
	}
	stop := n.recvStop
	n.recvWG.Add(1)
	go func() {
		defer n.recvWG.Done()
		n.recvLoop(qp, stop)
	}()
	return nil
}

// stopRecv quiesces the receiver and closes the inbound queue pair. The
// receive buffer pool is retained for a later startRecv.
func (n *node) stopRecv() {
	if n.recvStop == nil {
		return
	}
	close(n.recvStop)
	if n.in != nil {
		_ = n.in.Close()
	}
	n.recvWG.Wait()
	n.recvStop = nil
}

func (n *node) recvLoop(qp rdma.QueuePair, stop chan struct{}) {
	for {
		var c rdma.Completion
		var ok bool
		select {
		case <-stop:
			return
		case <-n.quit:
			return
		case c, ok = <-qp.Completions():
		}
		if !ok {
			return
		}
		if c.Err != nil {
			n.reportUnlessStopping(stop, fmt.Errorf("ring: node %d: receive: %w", n.id, c.Err))
			return
		}
		if c.Op != rdma.OpRecv {
			continue
		}
		frag, err := relation.Decode(c.Buf.Bytes(), "rotating")
		if err != nil {
			n.report(fmt.Errorf("ring: node %d: decode: %w", n.id, err))
			return
		}
		n.mu.Lock()
		n.stats.BytesIn += int64(c.Buf.Len())
		n.mu.Unlock()
		n.m.bytesIn.Add(int64(c.Buf.Len()))
		n.tr.Record(trace.Event{
			Time: time.Now(), Node: n.id, Kind: trace.FragmentReceived,
			Fragment: frag.Index, Hops: frag.Hops, Bytes: c.Buf.Len(),
		})
		// Hand the fragment to the join entity *before* reposting the
		// buffer: the repost is the receive credit that lets the
		// upstream neighbor keep sending, so a full procQ translates
		// into ring backpressure.
		select {
		case n.procQ <- frag:
			n.m.procDepth.Inc()
		case <-stop:
			return
		case <-n.quit:
			return
		}
		if err := qp.PostRecv(c.Buf); err != nil {
			n.reportUnlessStopping(stop, fmt.Errorf("ring: node %d: repost receive: %w", n.id, err))
			return
		}
	}
}

// ---- join entity ----

func (n *node) procLoop() {
	for {
		waitStart := time.Now()
		var frag *relation.Fragment
		select {
		case <-n.quit:
			return
		case frag = <-n.procQ:
		}
		n.m.procDepth.Dec()
		waited := time.Since(waitStart)

		procStart := time.Now()
		n.tr.Record(trace.Event{
			Time: procStart, Node: n.id, Kind: trace.ProcessStart,
			Fragment: frag.Index, Hops: frag.Hops,
		})
		err := n.proc.Process(frag)
		procTime := time.Since(procStart)
		n.tr.Record(trace.Event{
			Time: time.Now(), Node: n.id, Kind: trace.ProcessEnd,
			Fragment: frag.Index, Hops: frag.Hops,
		})

		n.mu.Lock()
		// The wait before a fragment that did arrive is "sync" time in
		// the paper's sense: the join entity starving on the transport.
		n.stats.WaitTime += waited
		n.stats.ProcessTime += procTime
		n.stats.Processed++
		n.mu.Unlock()
		n.m.waitNs.Observe(waited.Nanoseconds())
		n.m.processNs.Observe(procTime.Nanoseconds())
		n.m.processed.Inc()

		if err != nil {
			n.report(fmt.Errorf("ring: node %d: process fragment %d: %w", n.id, frag.Index, err))
			return
		}

		frag.Hops++
		if frag.Hops >= n.cfg.Nodes {
			n.mu.Lock()
			n.stats.Retired++
			n.mu.Unlock()
			n.m.retired.Inc()
			n.tr.Record(trace.Event{
				Time: time.Now(), Node: n.id, Kind: trace.FragmentRetired,
				Fragment: frag.Index, Hops: frag.Hops,
			})
			select {
			case n.retired <- frag:
			case <-n.quit:
				return
			}
			continue
		}
		select {
		case n.sendQ <- frag:
		case <-n.quit:
			return
		}
	}
}

// inject hands a locally stored fragment to the join entity, as if it had
// just arrived. It reports false if the node is shutting down.
func (n *node) inject(frag *relation.Fragment) bool {
	select {
	case n.procQ <- frag:
		n.m.procDepth.Inc()
		return true
	case <-n.quit:
		return false
	}
}

// ---- transmitter ----

func (n *node) startSend(qp rdma.QueuePair) {
	n.out = qp
	n.sendStop = make(chan struct{})
	stop := n.sendStop
	n.sendWG.Add(2)
	go func() {
		defer n.sendWG.Done()
		n.sendLoop(qp, stop)
	}()
	go func() {
		defer n.sendWG.Done()
		n.sendReaper(qp, stop)
	}()
}

// stopSend quiesces the transmitter and closes the outbound queue pair.
func (n *node) stopSend() {
	if n.sendStop == nil {
		return
	}
	close(n.sendStop)
	if n.out != nil {
		_ = n.out.Close()
	}
	n.sendWG.Wait()
	n.sendStop = nil
}

func (n *node) sendLoop(qp rdma.QueuePair, stop chan struct{}) {
	for {
		var frag *relation.Fragment
		select {
		case <-stop:
			return
		case <-n.quit:
			return
		case frag = <-n.sendQ:
		}
		var buf *rdma.Buffer
		select {
		case <-stop:
			return
		case <-n.quit:
			return
		case buf = <-n.freeSend:
		}
		need := relation.EncodedSize(frag)
		if need > buf.Cap() {
			n.report(fmt.Errorf("ring: node %d: fragment %d needs %d B, buffers are %d B; raise Config.BufferBytes",
				n.id, frag.Index, need, buf.Cap()))
			return
		}
		sz, err := relation.Encode(frag, buf.Data())
		if err != nil {
			n.report(fmt.Errorf("ring: node %d: encode: %w", n.id, err))
			return
		}
		if err := buf.SetLen(sz); err != nil {
			n.report(err)
			return
		}
		// Capture metadata before handing the fragment to the wire: once
		// posted, the revolution can complete and the orchestrator may
		// reuse the fragment object (resetting its hop count).
		fragIndex, fragHops := frag.Index, frag.Hops
		if err := qp.PostSend(buf); err != nil {
			n.reportUnlessStopping(stop, fmt.Errorf("ring: node %d: post send: %w", n.id, err))
			return
		}
		n.mu.Lock()
		n.stats.BytesOut += int64(sz)
		n.mu.Unlock()
		n.m.bytesOut.Add(int64(sz))
		n.tr.Record(trace.Event{
			Time: time.Now(), Node: n.id, Kind: trace.FragmentSent,
			Fragment: fragIndex, Hops: fragHops, Bytes: sz,
		})
	}
}

// sendReaper returns completed send buffers to the free pool.
func (n *node) sendReaper(qp rdma.QueuePair, stop chan struct{}) {
	for {
		var c rdma.Completion
		var ok bool
		select {
		case <-stop:
			return
		case <-n.quit:
			return
		case c, ok = <-qp.Completions():
		}
		if !ok {
			return
		}
		if c.Err != nil {
			n.reportUnlessStopping(stop, fmt.Errorf("ring: node %d: send: %w", n.id, c.Err))
			return
		}
		if c.Op != rdma.OpSend {
			continue
		}
		select {
		case n.freeSend <- c.Buf:
		case <-n.quit:
			return
		}
	}
}

// ---- lifecycle ----

func (n *node) stop() {
	n.quitOnce.Do(func() { close(n.quit) })
	n.stopRecv()
	n.stopSend()
	// A join entity stuck inside Processor.Process cannot be interrupted;
	// bound the wait and abandon it rather than wedging shutdown.
	if !waitTimeout(&n.procWG, 2*time.Second) {
		n.report(fmt.Errorf("ring: node %d: join entity did not stop; abandoned", n.id))
	}
}

// waitTimeout waits on wg up to d; it reports false (and leaks the helper
// goroutine) when the group never finishes.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

func (n *node) report(err error) {
	select {
	case <-n.quit:
		return
	default:
	}
	select {
	case n.errc <- err:
	default:
		// Another error is already pending; the first one wins.
	}
}

// reportUnlessStopping suppresses errors caused by a deliberate local
// receiver/transmitter restart (node replacement closes queue pairs, which
// surfaces as completion errors on the closing side).
func (n *node) reportUnlessStopping(stop chan struct{}, err error) {
	select {
	case <-stop:
		return
	default:
	}
	n.report(err)
}

func (n *node) snapshot() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
