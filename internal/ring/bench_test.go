package ring

import (
	"testing"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/workload"
)

// benchRing measures full revolutions of one fragment per node. Each Run
// performs nodes×nodes Process calls and nodes×(nodes-1) wire hops; the
// per-hop figures reported here (ns/hop, allocs divided by hops) are the
// numbers BENCH_ring.json tracks across PRs.
func benchRing(b *testing.B, cfg Config, tuples int) {
	b.Helper()
	procs := make([]Processor, cfg.Nodes)
	for i := range procs {
		procs[i] = ProcessorFunc(func(frag *relation.Fragment) error {
			// Touch every key, as a join entity would.
			var sum uint64
			for _, k := range frag.Rel.Keys() {
				sum += k
			}
			sink = sum
			return nil
		})
	}
	r, err := New(cfg, nil, procs)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	rel := workload.Sequential("R", tuples, 8)
	frags, err := relation.Partition(rel, cfg.Nodes)
	if err != nil {
		b.Fatal(err)
	}
	pn := perNode(frags)
	// Warm-up revolution so pools and links reach steady state.
	if err := r.Run(pn); err != nil {
		b.Fatal(err)
	}
	hopsPerRun := cfg.Nodes * (cfg.Nodes - 1) // wire hops per Run
	if hopsPerRun == 0 {
		hopsPerRun = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(pn); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hopsPerRun), "ns/hop")
}

// sink defeats dead-code elimination in the benchmark processors.
var sink uint64

func BenchmarkRingHop(b *testing.B) {
	benchRing(b, Config{Nodes: 4, BufferSlots: 4, BufferBytes: 1 << 20}, 8192)
}

func BenchmarkRingHopWrites(b *testing.B) {
	benchRing(b, Config{Nodes: 4, BufferSlots: 4, BufferBytes: 1 << 20, OneSidedWrites: true}, 8192)
}

// BenchmarkForwardStage isolates the per-hop staging work on the zero-copy
// path: bind the received frame as a view, pin, copy it into a send buffer
// with the hops field patched, release the receive credit. On little-endian
// hosts it must not allocate — the benchmark fails otherwise, which is the
// regression guard for the "zero heap allocations per forwarded fragment"
// property.
func BenchmarkForwardStage(b *testing.B) {
	n := newNode(0, Config{Nodes: 2}, nil, nil, make(chan error, 4))
	recv, err := n.dev.RegisterPool(1, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	send, err := n.dev.RegisterPool(1, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	rbuf, sbuf := recv[0], send[0]
	n.recvBufs = recv
	n.views[rbuf] = new(relation.View)
	n.repost = func(buf *rdma.Buffer) error { return nil }

	rel := workload.Sequential("R", 8192, 8)
	frags, err := relation.Partition(rel, 1)
	if err != nil {
		b.Fatal(err)
	}
	sz, err := relation.Encode(frags[0], rbuf.Data())
	if err != nil {
		b.Fatal(err)
	}
	if err := rbuf.SetLen(sz); err != nil {
		b.Fatal(err)
	}

	b.SetBytes(int64(sz))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := n.views[rbuf]
		if err := v.Bind(rbuf.Bytes(), "rotating"); err != nil {
			b.Fatal(err)
		}
		frag := v.Frag()
		n.recvMu.Lock()
		n.pinned[rbuf] = true
		n.recvMu.Unlock()
		frag.Hops++
		if _, ok := n.stageForward(v, frag, sbuf); !ok {
			b.Fatal("stageForward failed")
		}
		//cyclolint:viewsafe the repost-failure error wraps no view bytes; the view is dead once the credit is released
		n.releaseRecv(rbuf)
	}
	b.StopTimer()
	if relation.NativeLittleEndian() {
		allocs := testing.AllocsPerRun(100, func() {
			v := n.views[rbuf]
			if err := v.Bind(rbuf.Bytes(), "rotating"); err != nil {
				panic(err)
			}
			frag := v.Frag()
			n.recvMu.Lock()
			n.pinned[rbuf] = true
			n.recvMu.Unlock()
			frag.Hops++
			if _, ok := n.stageForward(v, frag, sbuf); !ok {
				panic("stageForward failed")
			}
			//cyclolint:viewsafe the repost-failure error wraps no view bytes; the view is dead once the credit is released
			n.releaseRecv(rbuf)
		})
		if allocs != 0 {
			b.Fatalf("forward staging allocates %.1f times per fragment, want 0", allocs)
		}
	}
}
