package testutil

import (
	"testing"
	"time"
)

func TestLeakedSinceSeesNewGoroutine(t *testing.T) {
	baseline := stackIDs()
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-block
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(leakedSince(baseline)) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocked goroutine never showed up in leakedSince")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(block)
	<-done
	for {
		if len(leakedSince(baseline)) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine still reported after exit: %v", leakedSince(baseline))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckNoLeaksCleanRun(t *testing.T) {
	CheckNoLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestIgnoredFiltersTestingFrames(t *testing.T) {
	if !ignored("goroutine 1 [chan receive]:\ntesting.(*T).Run(...)") {
		t.Error("testing frames should be ignored")
	}
	if ignored("goroutine 9 [select]:\ncyclojoin/internal/ring.(*node).procLoop(...)") {
		t.Error("ring goroutines must not be ignored")
	}
}
