// Package testutil holds cross-package test helpers. Its centerpiece is
// the goroutine-leak check: the ring's shutdown contract says every
// goroutine a Ring or link spawns exits when Stop/Close returns, and a
// test that leaks a receiver or send-loop goroutine poisons every later
// test in the binary (shared default metrics registry, stray completions,
// false t.Parallel interactions). Asserting the contract at test end
// catches the leak in the test that caused it.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredStacks matches goroutines that are allowed to outlive a test:
// the testing framework's own machinery and the runtime's helpers.
var ignoredStacks = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.tRunner",
	"testing.runFuzzing",
	"testing.runTests",
	"runtime.goexit0",
	"runtime/pprof",
	"runtime.MemProfile",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"created by runtime",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
}

// CheckNoLeaks registers a cleanup that fails the test if goroutines
// born during the test are still running when it ends. Call it FIRST in
// the test, before spawning anything: the baseline snapshot is taken at
// the call. Shutdown is asynchronous in places (completion fan-out,
// net.Pipe unblocking), so the check polls briefly before declaring a
// leak.
func CheckNoLeaks(t *testing.T) {
	t.Helper()
	baseline := stackIDs()
	t.Cleanup(func() {
		if t.Failed() {
			// The test already failed; a leak report would bury the
			// original failure under shutdown noise.
			return
		}
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(baseline)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) started during the test are still running:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	})
}

// stackIDs snapshots the IDs of all live goroutines.
func stackIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range goroutines() {
		ids[g.id] = true
	}
	return ids
}

// leakedSince returns rendered stacks of interesting goroutines not in
// the baseline.
func leakedSince(baseline map[string]bool) []string {
	var out []string
	for _, g := range goroutines() {
		if baseline[g.id] || ignored(g.stack) {
			continue
		}
		out = append(out, fmt.Sprintf("goroutine %s:\n%s", g.id, indent(g.stack)))
	}
	sort.Strings(out)
	return out
}

type goroutine struct {
	id    string
	stack string
}

// goroutines parses runtime.Stack(all=true) into per-goroutine records.
func goroutines() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, _, ok := strings.Cut(block, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id := strings.TrimPrefix(header, "goroutine ")
		if i := strings.IndexByte(id, ' '); i >= 0 {
			id = id[:i]
		}
		out = append(out, goroutine{id: id, stack: block})
	}
	return out
}

func ignored(stack string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
