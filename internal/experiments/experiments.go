// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment returns both typed rows (asserted by the
// test suite) and a printable table (rendered by cmd/cyclobench and
// recorded in EXPERIMENTS.md).
//
// The experiments run the calibrated cost model (package costmodel) through
// the discrete-event ring simulator (package simnet) at the paper's full
// data scale; correctness of the underlying algorithms and transport is
// established separately by the real executions in the package tests and
// examples. See DESIGN.md §2 for the substitution rationale.
package experiments

import (
	"fmt"
	"math"
	"time"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/simnet"
	"cyclojoin/internal/stats"
)

// Workload constants of the evaluation section.
const (
	// Fig7Tuples is the per-relation cardinality of the fixed-data-set
	// experiments (140 M 12-byte tuples = 1.6 GB per relation, §V-B).
	Fig7Tuples = 140_000_000
	// Fig8TuplesPerNode: the scale-up experiments add one 1.6 GB fragment
	// of each relation per node (3.2 GB per node, §V-C).
	Fig8TuplesPerNode = 140_000_000
	// Fig9Tuples is the skew experiment's per-relation cardinality
	// (36 M 12-byte tuples = 412 MB, §V-D).
	Fig9Tuples = 36_000_000
	// Fig12Tuples is the transport comparison's per-relation cardinality
	// (160 M tuples, §V-G).
	Fig12Tuples = 160_000_000
	// Fig12BytesEachWay is the per-relation data volume of §V-G
	// (2 × 6.7 GB): the volume each host receives (and forwards) during
	// one revolution.
	Fig12BytesEachWay = 6.7e9
	// MaxNodes is the testbed's ring size ("the maximum number of
	// RDMA-equipped machines we currently have available").
	MaxNodes = 6
	// JoinThreads is the per-host join parallelism (all four cores).
	JoinThreads = 4
	// fragmentBytes is the ring-buffer element size used for the
	// simulated revolutions; comfortably above the Fig 5 saturation
	// point.
	fragmentBytes = 16 << 20
)

// Experiment couples an identifier with its harness.
type Experiment struct {
	// ID is the lowercase identifier ("fig7", "table1").
	ID string
	// Title describes the experiment.
	Title string
	// Run executes the harness under the given calibration.
	Run func(cal costmodel.Calibration) (*stats.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3", Title: "Fig 3: CPU overhead of network transports", Run: Fig3Table},
		{ID: "fig5", Title: "Fig 5: RDMA throughput vs transfer-unit size", Run: Fig5Table},
		{ID: "autotune", Title: "Fig 5 live: chunk-size autotuner convergence", Run: AutotuneTable},
		{ID: "fig7", Title: "Fig 7: hash join, fixed 3.2 GB data set, 1-6 nodes", Run: Fig7Table},
		{ID: "fig8", Title: "Fig 8: hash join scale-up, +3.2 GB per node", Run: Fig8Table},
		{ID: "fig9", Title: "Fig 9: join phase under Zipf skew, local vs cyclo-join", Run: Fig9Table},
		{ID: "fig10", Title: "Fig 10: sort-merge join, fixed data set, 1-6 nodes", Run: Fig10Table},
		{ID: "fig11", Title: "Fig 11: sort-merge join scale-up with sync time", Run: Fig11Table},
		{ID: "fig12", Title: "Fig 12: hash join phase, RDMA vs kernel TCP, 1-4 threads", Run: Fig12Table},
		{ID: "table1", Title: "Table I: CPU load during the hash join phase", Run: Table1},
		{ID: "crossover", Title: "§V-E prediction: hash vs sort-merge crossover beyond the testbed", Run: CrossoverTable},
		{ID: "footnote1", Title: "§II-C footnote: distributed memory vs local disk", Run: FootnoteTable},
		{ID: "regcost", Title: "§III-C: registration cost amortization via the static buffer pool", Run: RegCostTable},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ScaleRow is one bar of the Fig 7/8/10/11 family.
type ScaleRow struct {
	// Nodes is the ring size.
	Nodes int
	// DataBytes is the total data volume (both relations).
	DataBytes int64
	// Setup is the setup-phase wall clock (hash build or sort).
	Setup time.Duration
	// Join is the join entities' average compute time — the paper's
	// white "join" bar.
	Join time.Duration
	// Sync is the join entities' average wait for the transport — the
	// paper's light-gray "sync" share (§V-F).
	Sync time.Duration
	// Wall is the simulated join-phase wall clock (≥ Join + Sync; the
	// difference is end-of-revolution drain).
	Wall time.Duration
}

// Total is the experiment's full wall clock: setup plus the revolution.
func (r ScaleRow) Total() time.Duration { return r.Setup + r.Wall }

// revolution is a simulated join phase broken into the paper's components.
type revolution struct {
	join, sync, wall time.Duration
}

// simulateRevolution runs one join-phase revolution through the DES:
// rTuples total rotating tuples, perTupleCore per-tuple single-core cost.
func simulateRevolution(cal costmodel.Calibration, nodes, rTuples int, perTupleCore time.Duration) (revolution, error) {
	perHost := rTuples / nodes
	chunkTuples := fragmentBytes / cal.TupleBytes
	fragsPerHost := (perHost + chunkTuples - 1) / chunkTuples
	if fragsPerHost < 1 {
		fragsPerHost = 1
	}
	tuplesPerFrag := perHost / fragsPerHost
	if tuplesPerFrag < 1 {
		tuplesPerFrag = 1
	}
	work := time.Duration(float64(tuplesPerFrag) * float64(perTupleCore) / JoinThreads)
	res, err := simnet.Run(simnet.Config{
		Hosts:            nodes,
		Slots:            8,
		Bandwidth:        cal.EffectiveBandwidth(),
		TransferOverhead: cal.WRPostOverhead,
		FragsPerHost:     fragsPerHost,
		FragBytes:        func(f int) int { return tuplesPerFrag * cal.TupleBytes },
		Work:             func(f, h int) time.Duration { return work },
		ReturnHome:       true,
	})
	if err != nil {
		return revolution{}, err
	}
	// The "join" bar is the hosts' average compute time; "sync" is the
	// time the join entities measurably starved on the transport.
	var busy time.Duration
	for _, h := range res.Hosts {
		busy += h.Busy
	}
	return revolution{
		join: busy / time.Duration(len(res.Hosts)),
		sync: res.AvgWait(),
		wall: res.Wall,
	}, nil
}

// scaleTable renders the Fig 7/8/10/11 family.
func scaleTable(title string, rows []ScaleRow, note string) *stats.Table {
	t := stats.NewTable(title, "nodes", "data [GB]", "setup [s]", "join [s]", "sync [s]", "total [s]")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			stats.GB(r.DataBytes),
			stats.Secs(r.Setup),
			stats.Secs(r.Join),
			stats.Secs(r.Sync),
			stats.Secs(r.Total()),
		)
	}
	if note != "" {
		t.SetNote(note)
	}
	return t
}

// almostEqual helps the harness self-checks.
func almostEqual(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den <= relTol
}
