package experiments

import (
	"fmt"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/stats"
)

// AutotunePoint is one recentre decision of the closed-loop sweep.
type AutotunePoint struct {
	// Triangle is the 1-based triangle-probe index at which the tuner
	// recentred here.
	Triangle int
	// ChunkBytes is the centre chosen.
	ChunkBytes int
	// Throughput is the model throughput (bytes/s) at that centre.
	Throughput float64
}

// AutotuneResult is the outcome of AutotuneSweep.
type AutotuneResult struct {
	// Trajectory holds the centre after each recentre that moved it,
	// plus the initial centre at triangle 0.
	Trajectory []AutotunePoint
	// Converged is the final centre.
	Converged int
	// ConvergedTput is the model throughput at Converged.
	ConvergedTput float64
	// BestFixed is the best fixed chunk size on the Fig 5 ladder.
	BestFixed int
	// BestFixedTput is the model throughput at BestFixed.
	BestFixedTput float64
}

// autotuneTriangles is the sweep length: triangle probes (4 windows of
// observations each) the driver runs. The climb from 1 B to the knee
// takes one recentre per doubling, so a few dozen triangles converge
// with margin to spare.
const autotuneTriangles = 48

// AutotuneSweep drives ring.Autotuner closed-loop against the calibrated
// Fig 5 curve: every simulated transfer uses the chunk size the tuner
// currently recommends and takes cal.TransferTime, so the tuner observes
// exactly the cal.RDMAThroughput rate for that size. Starting from the
// 1 B end of the ladder (the "dizzy" regime), it must climb to the
// sweet spot — the smallest chunk within upMargin of link saturation —
// live, with no prior knowledge of the curve.
func AutotuneSweep(cal costmodel.Calibration) AutotuneResult {
	tuner := ring.NewAutotuner(1, 1<<30)
	res := AutotuneResult{
		Trajectory: []AutotunePoint{{
			Triangle:   0,
			ChunkBytes: tuner.Best(),
			Throughput: cal.RDMAThroughput(tuner.Best()),
		}},
	}
	// One triangle = 4 probe windows; drive enough observations to close
	// each window regardless of the tuner's internal window length.
	const obsPerTriangle = 4 * 16
	for tri := 1; tri <= autotuneTriangles; tri++ {
		for i := 0; i < obsPerTriangle; i++ {
			s := tuner.ChunkBytes()
			tuner.Observe(s, cal.TransferTime(s))
		}
		if best := tuner.Best(); best != res.Trajectory[len(res.Trajectory)-1].ChunkBytes {
			res.Trajectory = append(res.Trajectory, AutotunePoint{
				Triangle:   tri,
				ChunkBytes: best,
				Throughput: cal.RDMAThroughput(best),
			})
		}
	}
	res.Converged = tuner.Best()
	res.ConvergedTput = cal.RDMAThroughput(res.Converged)
	for _, s := range Fig5ChunkSizes() {
		if t := cal.RDMAThroughput(s); t > res.BestFixedTput {
			res.BestFixed, res.BestFixedTput = s, t
		}
	}
	return res
}

// AutotuneTable renders the sweep as a convergence trajectory plus the
// headline comparison against the best fixed chunk of the Fig 5 ladder.
func AutotuneTable(cal costmodel.Calibration) (*stats.Table, error) {
	res := AutotuneSweep(cal)
	t := stats.NewTable("Fig 5 live: chunk-size autotuner convergence (closed loop)",
		"triangle", "centre", "throughput [Gb/s]", "of best fixed")
	for _, p := range res.Trajectory {
		t.AddRow(fmt.Sprintf("%d", p.Triangle), byteLabel(p.ChunkBytes),
			stats.Gbps(p.Throughput), stats.Pct(p.Throughput/res.BestFixedTput))
	}
	t.SetNote(fmt.Sprintf(
		"converged to %s in %d recentres: %s of the best fixed chunk (%s at %s)",
		byteLabel(res.Converged), len(res.Trajectory)-1,
		stats.Pct(res.ConvergedTput/res.BestFixedTput),
		byteLabel(res.BestFixed), stats.Gbps(res.BestFixedTput)))
	return t, nil
}
