package experiments

import (
	"fmt"
	"time"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/planner"
	"cyclojoin/internal/stats"
)

// CrossoverRow compares the two algorithms' predicted totals at one ring
// size in the Fig 8/11 scale-up (3.2 GB added per node).
type CrossoverRow struct {
	// Nodes is the ring size.
	Nodes int
	// Hash and SortMerge are the planner-predicted total times.
	Hash, SortMerge time.Duration
}

// CrossoverRows sweeps ring sizes through the planner's cost model to
// locate the point where sort-merge overtakes the hash join — the §V-E
// prediction ("configurations of ≈30 nodes upward, i.e., data volumes
// ≳100 GB"). This extends the paper's evaluation: the testbed stopped at
// six machines, so the authors could only extrapolate.
func CrossoverRows(cal costmodel.Calibration) ([]CrossoverRow, int, error) {
	crossing, err := planner.Crossover(cal, Fig8TuplesPerNode, 200)
	if err != nil {
		return nil, 0, err
	}
	sweep := []int{1, 6, 12, 24, 36, 48, crossing, crossing + 12}
	rows := make([]CrossoverRow, 0, len(sweep))
	seen := map[int]bool{}
	for _, nodes := range sweep {
		if nodes < 1 || seen[nodes] {
			continue
		}
		seen[nodes] = true
		w := planner.Workload{
			RTuples: Fig8TuplesPerNode * nodes,
			STuples: Fig8TuplesPerNode * nodes,
			Nodes:   nodes,
		}
		plans, err := planner.Candidates(cal, w)
		if err != nil {
			return nil, 0, err
		}
		row := CrossoverRow{Nodes: nodes}
		for _, p := range plans {
			if !p.RotateR {
				continue
			}
			switch p.Algorithm {
			case planner.Hash:
				row.Hash = p.Total()
			case planner.SortMerge:
				row.SortMerge = p.Total()
			}
		}
		rows = append(rows, row)
	}
	return rows, crossing, nil
}

// CrossoverTable renders the sweep.
func CrossoverTable(cal costmodel.Calibration) (*stats.Table, error) {
	rows, crossing, err := CrossoverRows(cal)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Crossover (§V-E prediction): hash join vs sort-merge join total time, +3.2 GB per node",
		"nodes", "data [GB]", "hash total [s]", "sort-merge total [s]", "winner")
	for _, r := range rows {
		winner := "hash"
		if r.SortMerge < r.Hash {
			winner = "sort-merge"
		}
		t.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			stats.GB(int64(2)*int64(r.Nodes)*Fig8TuplesPerNode*int64(cal.TupleBytes)),
			stats.Secs(r.Hash),
			stats.Secs(r.SortMerge),
			winner,
		)
	}
	t.SetNote(fmt.Sprintf(
		"model crossover at %d nodes; paper expected sort-merge to overpass hash at ≈30 nodes (data ≳100 GB)", crossing))
	return t, nil
}
