package experiments

import (
	"math"
	"strings"
	"testing"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/planner"
)

func cal() costmodel.Calibration { return costmodel.Default() }

func TestAllExperimentsRender(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(cal())
			if err != nil {
				t.Fatal(err)
			}
			if tbl.Rows() == 0 {
				t.Error("empty table")
			}
			var b strings.Builder
			if err := tbl.Render(&b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), tbl.Title()) {
				t.Error("render lost the title")
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil || e.ID != "fig7" {
		t.Fatalf("ByID(fig7) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id: want error")
	}
}

// TestFig7Shape asserts the three claims of §V-B: setup divides by the ring
// size (16.2 s → 2.7 s), the join phase is unaffected by distribution, and
// no network delay is visible.
func TestFig7Shape(t *testing.T) {
	rows, err := Fig7Rows(cal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != MaxNodes {
		t.Fatalf("%d rows", len(rows))
	}
	s1, s6 := rows[0].Setup.Seconds(), rows[5].Setup.Seconds()
	if math.Abs(s1-16.2) > 0.5 {
		t.Errorf("single-host setup = %.1fs, paper 16.2s", s1)
	}
	if ratio := s1 / s6; ratio < 5.5 || ratio > 6.5 {
		t.Errorf("setup speedup over 6 nodes = %.2f, paper: factor 6", ratio)
	}
	base := rows[0].Join.Seconds()
	for _, r := range rows {
		if math.Abs(r.Join.Seconds()-base)/base > 0.25 {
			t.Errorf("join phase at %d nodes = %.2fs; should stay ≈%.2fs", r.Nodes, r.Join.Seconds(), base)
		}
		if r.Sync.Seconds() > 0.15*base {
			t.Errorf("visible sync %.2fs at %d nodes; paper saw none for the hash join", r.Sync.Seconds(), r.Nodes)
		}
	}
	// Distribution must pay off overall.
	if rows[5].Total() >= rows[0].Total() {
		t.Error("6-node total not faster than single host")
	}
}

// TestFig8Shape asserts §V-C: size-independent setup, join phase linear in
// |R| (16.2 s at 19.2 GB).
func TestFig8Shape(t *testing.T) {
	rows, err := Fig8Rows(cal())
	if err != nil {
		t.Fatal(err)
	}
	setupBase := rows[0].Setup.Seconds()
	for _, r := range rows {
		if math.Abs(r.Setup.Seconds()-setupBase)/setupBase > 0.01 {
			t.Errorf("setup at %d nodes = %.2fs, should be constant %.2fs", r.Nodes, r.Setup.Seconds(), setupBase)
		}
	}
	j1, j6 := rows[0].Join.Seconds(), rows[5].Join.Seconds()
	if ratio := j6 / j1; math.Abs(ratio-6) > 0.6 {
		t.Errorf("join phase grew %.2fx over 6x data, want ≈6x (linear)", ratio)
	}
	if math.Abs(j6-16.2) > 1.0 {
		t.Errorf("join phase at 19.2 GB = %.1fs, paper 16.2s", j6)
	}
}

// TestFig9Shape asserts §V-D: no benefit for uniform data, growing benefit
// with skew, ≈5× at z = 0.9, and the advantage bounded by the ring size.
func TestFig9Shape(t *testing.T) {
	rows := Fig9Rows(cal())
	if len(rows) != len(Fig9ZipfFactors()) {
		t.Fatalf("%d rows", len(rows))
	}
	if a := rows[0].Advantage(); a > 1.2 {
		t.Errorf("uniform advantage = %.2f, want ≈1", a)
	}
	prev := 0.0
	for _, r := range rows {
		if a := r.Advantage(); a+1e-9 < prev {
			t.Errorf("advantage not monotone at z=%.2f: %.2f after %.2f", r.Z, a, prev)
		} else {
			prev = a
		}
		if r.Advantage() > float64(MaxNodes)+0.5 {
			t.Errorf("advantage %.2f at z=%.2f exceeds the ring-size bound", r.Advantage(), r.Z)
		}
	}
	last := rows[len(rows)-1]
	if last.Z != 0.90 {
		t.Fatalf("last row z=%.2f", last.Z)
	}
	if a := last.Advantage(); a < 3 || a > 8 {
		t.Errorf("advantage at z=0.9 = %.2f, paper ≈5", a)
	}
	// The local join must degrade by orders of magnitude (log-scale plot).
	if last.Local.Seconds() < 50*rows[0].Local.Seconds() {
		t.Errorf("local join at z=0.9 only %.0fx over uniform", last.Local.Seconds()/rows[0].Local.Seconds())
	}
}

// TestFig10Shape asserts §V-E: sorting dominates small rings; the merge
// phase beats the hash probe; setup amortizes with ring size.
func TestFig10Shape(t *testing.T) {
	smRows, err := Fig10Rows(cal())
	if err != nil {
		t.Fatal(err)
	}
	hashRows, err := Fig7Rows(cal())
	if err != nil {
		t.Fatal(err)
	}
	// Single-host sort-merge is far slower overall than hash join.
	if smRows[0].Total() < 3*hashRows[0].Total() {
		t.Errorf("single-host sort-merge %.1fs not clearly slower than hash %.1fs",
			smRows[0].Total().Seconds(), hashRows[0].Total().Seconds())
	}
	// But its join phase is faster (cache-friendly sequential merge).
	for i := range smRows {
		if smRows[i].Join >= hashRows[i].Join {
			t.Errorf("at %d nodes merge join %.2fs not faster than hash probe %.2fs",
				smRows[i].Nodes, smRows[i].Join.Seconds(), hashRows[i].Join.Seconds())
		}
	}
	// Setup falls monotonically with ring size.
	for i := 1; i < len(smRows); i++ {
		if smRows[i].Setup >= smRows[i-1].Setup {
			t.Errorf("sort setup did not fall from %d to %d nodes", smRows[i-1].Nodes, smRows[i].Nodes)
		}
	}
}

// TestFig11Shape asserts §V-F: the merge join outruns the link, exposing
// sync time — 6.4 s join + ≈2.3 s sync at 19.2 GB, i.e. the revolution is
// pinned to the 1.1 GB/s wire.
func TestFig11Shape(t *testing.T) {
	rows, err := Fig11Rows(cal())
	if err != nil {
		t.Fatal(err)
	}
	six := rows[5]
	if math.Abs(six.Join.Seconds()-6.4) > 0.7 {
		t.Errorf("merge join at 19.2 GB = %.1fs, paper 6.4s", six.Join.Seconds())
	}
	if six.Sync.Seconds() < 1.2 || six.Sync.Seconds() > 3.5 {
		t.Errorf("sync at 19.2 GB = %.1fs, paper 2.3s", six.Sync.Seconds())
	}
	// Sync grows with ring size (more data over the same links).
	for i := 2; i < len(rows); i++ {
		if rows[i].Sync < rows[i-1].Sync {
			t.Errorf("sync fell from %d to %d nodes", rows[i-1].Nodes, rows[i].Nodes)
		}
	}
	// The revolution is wire-bound: wall ≈ |R| / effective bandwidth.
	c := cal()
	wire := float64(MaxNodes*Fig8TuplesPerNode*c.TupleBytes) / c.EffectiveBandwidth()
	if !almostEqual(six.Wall.Seconds(), wire, 0.25) {
		t.Errorf("wall %.1fs vs wire floor %.1fs: revolution should be link-bound", six.Wall.Seconds(), wire)
	}
	// And single-host has no sync at all.
	if rows[0].Sync != 0 {
		t.Errorf("single host sync = %v", rows[0].Sync)
	}
}

// TestFig12Shape asserts §V-G: RDMA wins everywhere; the absolute gap is
// largest with all cores joining; RDMA total time flattens at the link
// floor once threads ≥ 3.
func TestFig12Shape(t *testing.T) {
	rows := Fig12Rows(cal())
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	gap4 := rows[3].TCP.Wall() - rows[3].RDMA.Wall()
	for _, r := range rows {
		if r.TCP.Wall() <= r.RDMA.Wall() {
			t.Errorf("threads=%d: TCP %.1fs not slower than RDMA %.1fs",
				r.Threads, r.TCP.Wall().Seconds(), r.RDMA.Wall().Seconds())
		}
		if gap := r.TCP.Wall() - r.RDMA.Wall(); gap > gap4 {
			t.Errorf("threads=%d gap %.1fs exceeds the 4-thread gap %.1fs", r.Threads, gap.Seconds(), gap4.Seconds())
		}
	}
	// RDMA hits the wire floor: 3 and 4 threads have equal wall clocks.
	if !almostEqual(rows[2].RDMA.Wall().Seconds(), rows[3].RDMA.Wall().Seconds(), 0.02) {
		t.Errorf("RDMA wall at 3 (%.2fs) and 4 (%.2fs) threads should both sit at the link floor",
			rows[2].RDMA.Wall().Seconds(), rows[3].RDMA.Wall().Seconds())
	}
}

// TestTable1Shape asserts the Table I loads within a few points.
func TestTable1Shape(t *testing.T) {
	rows := Fig12Rows(cal())
	wantTCP := []float64{0.31, 0.59, 0.84, 0.86}
	wantRDMA := []float64{0.25, 0.50, 0.76, 1.00}
	for i, r := range rows {
		if math.Abs(r.TCP.CPULoad-wantTCP[i]) > 0.05 {
			t.Errorf("TCP load at %d threads = %.0f%%, paper %.0f%%", r.Threads, r.TCP.CPULoad*100, wantTCP[i]*100)
		}
		if math.Abs(r.RDMA.CPULoad-wantRDMA[i]) > 0.02 {
			t.Errorf("RDMA load at %d threads = %.0f%%, paper %.0f%%", r.Threads, r.RDMA.CPULoad*100, wantRDMA[i]*100)
		}
	}
	// The paper's plateau: TCP stalls below full utilization at 4 threads.
	if rows[3].TCP.CPULoad >= 0.95 {
		t.Error("TCP at 4 threads should plateau below full utilization")
	}
}

func TestAutotuneConvergesWithinTenPercent(t *testing.T) {
	res := AutotuneSweep(cal())
	if res.ConvergedTput < 0.9*res.BestFixedTput {
		t.Fatalf("autotuner converged to %d B at %.3g B/s — below 90%% of the best fixed chunk (%d B at %.3g B/s)",
			res.Converged, res.ConvergedTput, res.BestFixed, res.BestFixedTput)
	}
	if len(res.Trajectory) < 2 {
		t.Fatal("trajectory never moved off the 1 B start")
	}
	if res.Converged >= 1<<30 {
		t.Fatalf("converged to the ladder bound (%d B), not the knee", res.Converged)
	}
}

func TestFig5RowsMonotone(t *testing.T) {
	rows := Fig5Rows(cal())
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput < rows[i-1].Throughput {
			t.Errorf("throughput fell at chunk %d", rows[i].ChunkBytes)
		}
	}
	last := rows[len(rows)-1]
	if last.Throughput/cal().EffectiveBandwidth() < 0.999 {
		t.Error("1 GB chunks must saturate the link")
	}
}

func TestFig3RowsShape(t *testing.T) {
	rows := Fig3Rows()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if !(rows[2].Total() < rows[1].Total() && rows[1].Total() < rows[0].Total()) {
		t.Error("overheads must fall from kernel TCP to TOE to RDMA")
	}
}

func TestByteLabel(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{1, "1B"}, {512, "512B"}, {1 << 10, "1kB"}, {4 << 10, "4kB"},
		{1 << 20, "1MB"}, {1 << 30, "1GB"},
	}
	for _, tt := range tests {
		if got := byteLabel(tt.n); got != tt.want {
			t.Errorf("byteLabel(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

// TestModelConsistency cross-validates the two performance models: the
// planner's closed-form cost predictions must agree with the discrete-event
// simulation that generates the figures, within a modest tolerance (the DES
// adds pipeline warmup/drain the closed form ignores).
func TestModelConsistency(t *testing.T) {
	c := cal()
	for nodes := 1; nodes <= MaxNodes; nodes++ {
		w := planner.Workload{
			RTuples: Fig8TuplesPerNode * nodes,
			STuples: Fig8TuplesPerNode * nodes,
			Nodes:   nodes,
		}
		plans, err := planner.Candidates(c, w)
		if err != nil {
			t.Fatal(err)
		}
		var hashPlan, smPlan planner.Plan
		for _, p := range plans {
			if !p.RotateR {
				continue
			}
			switch p.Algorithm {
			case planner.Hash:
				hashPlan = p
			case planner.SortMerge:
				smPlan = p
			}
		}
		hashRows, err := Fig8Rows(c)
		if err != nil {
			t.Fatal(err)
		}
		smRows, err := Fig11Rows(c)
		if err != nil {
			t.Fatal(err)
		}
		desHash := hashRows[nodes-1].Total().Seconds()
		desSM := smRows[nodes-1].Total().Seconds()
		if !almostEqual(hashPlan.Total().Seconds(), desHash, 0.15) {
			t.Errorf("nodes=%d: hash plan %.1fs vs DES %.1fs", nodes, hashPlan.Total().Seconds(), desHash)
		}
		if !almostEqual(smPlan.Total().Seconds(), desSM, 0.15) {
			t.Errorf("nodes=%d: sort-merge plan %.1fs vs DES %.1fs", nodes, smPlan.Total().Seconds(), desSM)
		}
	}
}

// TestFootnoteShape: the network must beat the disk at every unit size,
// overwhelmingly at small units (latency) and by ≈10× in bandwidth at
// large ones.
func TestFootnoteShape(t *testing.T) {
	rows := FootnoteRows(cal())
	for _, r := range rows {
		if r.Network >= r.Disk {
			t.Errorf("unit %d B: network %v not faster than disk %v", r.Bytes, r.Network, r.Disk)
		}
	}
	small, large := rows[0], rows[len(rows)-1]
	if small.Advantage() < 100 {
		t.Errorf("small-unit advantage %.0fx; ms-vs-µs latency should dominate", small.Advantage())
	}
	if a := large.Advantage(); a < 5 || a > 20 {
		t.Errorf("large-unit advantage %.1fx; bandwidth ratio is ≈10x", a)
	}
}

// TestRegCostShape: on-demand registration cost grows linearly with
// transfers while the static pool stays flat.
func TestRegCostShape(t *testing.T) {
	rows := RegCostRows(cal())
	if len(rows) < 3 {
		t.Fatalf("%d rows", len(rows))
	}
	staticBase := rows[0].Static
	for i, r := range rows {
		if r.Static != staticBase {
			t.Errorf("static cost changed at row %d", i)
		}
		if r.OnDemand <= r.Static && r.Transfers > regCostSlots {
			t.Errorf("%d transfers: on-demand %v not above static %v", r.Transfers, r.OnDemand, r.Static)
		}
	}
	// Linearity: 10x transfers ≈ 10x cost.
	ratio := rows[2].OnDemand.Seconds() / rows[1].OnDemand.Seconds()
	if ratio < 8 || ratio > 12 {
		t.Errorf("on-demand cost scaled %.1fx for 10x transfers", ratio)
	}
}
