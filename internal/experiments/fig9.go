package experiments

import (
	"fmt"
	"time"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/stats"
	"cyclojoin/internal/workload"
)

// Fig9ZipfFactors are the skew sweep points of Fig 9.
func Fig9ZipfFactors() []float64 {
	return []float64{0, 0.30, 0.50, 0.60, 0.70, 0.80, 0.90}
}

// SkewRow is one group of Fig 9's bars: join-phase time on a single host
// versus a six-node cyclo-join ring, for one Zipf factor.
type SkewRow struct {
	// Z is the Zipf factor.
	Z float64
	// Local is the single-host join phase.
	Local time.Duration
	// Cyclo is the six-node cyclo-join join phase.
	Cyclo time.Duration
}

// Advantage is the local/cyclo speedup.
func (r SkewRow) Advantage() float64 {
	if r.Cyclo <= 0 {
		return 0
	}
	return r.Local.Seconds() / r.Cyclo.Seconds()
}

// Fig9Rows reproduces Fig 9: |R| = |S| = 36 M tuples drawn from a Zipf
// distribution with factor z, joined once on a single host and once on a
// six-host ring. Setup time is omitted, as in the paper ("unaffected by the
// data skew").
func Fig9Rows(cal costmodel.Calibration) []SkewRow {
	rows := make([]SkewRow, 0, len(Fig9ZipfFactors()))
	for _, z := range Fig9ZipfFactors() {
		head, ones := workload.CompactZipf(z, Fig9Tuples, Fig9Tuples)
		rows = append(rows, SkewRow{
			Z:     z,
			Local: cal.SkewedProbeTime(head, ones, 1, JoinThreads),
			Cyclo: cal.SkewedProbeTime(head, ones, MaxNodes, JoinThreads),
		})
	}
	return rows
}

// Fig9Table renders Fig 9 (log-scale bars in the paper).
func Fig9Table(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable("Fig 9: hash join phase on Zipf-skewed input (412 MB per relation)",
		"zipf z", "local [s]", "cyclo-join 6 nodes [s]", "advantage")
	for _, r := range Fig9Rows(cal) {
		t.AddRow(
			fmt.Sprintf("%.2f", r.Z),
			stats.Secs(r.Local),
			stats.Secs(r.Cyclo),
			fmt.Sprintf("%.2fx", r.Advantage()),
		)
	}
	t.SetNote("paper: effect noticeable from z=0.6; five-fold cyclo-join advantage at z=0.9")
	return t, nil
}
