package experiments

import (
	"fmt"
	"time"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/stats"
)

// Disk parameters from the paper's footnote 1 (§II-C): "The latest Seagate
// Barracuda drive offers up to 120 MB/s at a latency of a few milliseconds.
// A 10 Gigabit Ethernet, on the other hand, provides about 1200 MB/s with a
// latency in the order of a few microseconds."
const (
	diskBandwidth = 120e6 // bytes/s
	diskLatency   = 5 * time.Millisecond
)

// SubstrateRow compares fetching one data unit from a neighbor's memory
// over the ring versus from a local disk.
type SubstrateRow struct {
	// Bytes is the unit size.
	Bytes int
	// Disk and Network are the delivery times.
	Disk, Network time.Duration
}

// Advantage is the network-over-disk speedup.
func (r SubstrateRow) Advantage() float64 {
	if r.Network <= 0 {
		return 0
	}
	return r.Disk.Seconds() / r.Network.Seconds()
}

// FootnoteRows quantifies §II-C's footnote: why the hot set lives in
// distributed memory behind a 10 GbE ring rather than on local disks (the
// conclusion of the authors' earlier study [12]).
func FootnoteRows(cal costmodel.Calibration) []SubstrateRow {
	sizes := []int{4 << 10, 64 << 10, 1 << 20, 32 << 20, 1600 << 20}
	rows := make([]SubstrateRow, 0, len(sizes))
	for _, n := range sizes {
		disk := diskLatency + time.Duration(float64(n)/diskBandwidth*float64(time.Second))
		rows = append(rows, SubstrateRow{
			Bytes:   n,
			Disk:    disk,
			Network: cal.TransferTime(n),
		})
	}
	return rows
}

// FootnoteTable renders the substrate comparison.
func FootnoteTable(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable("§II-C footnote: fetching data from distributed memory (10 GbE) vs local disk",
		"unit", "disk", "network", "network advantage")
	for _, r := range FootnoteRows(cal) {
		t.AddRow(
			byteLabel(r.Bytes),
			r.Disk.Round(time.Microsecond).String(),
			r.Network.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", r.Advantage()),
		)
	}
	t.SetNote("paper: disk 120 MB/s + ms latency vs network ≈1.2 GB/s + µs latency — keep the hot set in distributed memory [12]")
	return t, nil
}
