package experiments

import (
	"fmt"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/stats"
)

// TransportRow is one thread-count group of Fig 12 / one row of Table I.
type TransportRow struct {
	// Threads is the number of cores computing the join.
	Threads int
	// RDMA and TCP are the modeled join-phase outcomes on each transport.
	RDMA, TCP costmodel.PhaseOutcome
}

// Fig12Rows reproduces Fig 12: the hash join phase of a 2 × 6.7 GB join on
// six nodes, with the Data Roundabout transmitter/receiver running over
// RDMA versus over kernel send/recv, for 1–4 join threads.
func Fig12Rows(cal costmodel.Calibration) []TransportRow {
	rows := make([]TransportRow, 0, cal.Cores)
	for threads := 1; threads <= cal.Cores; threads++ {
		rows = append(rows, TransportRow{
			Threads: threads,
			RDMA:    cal.RDMAJoinPhase(Fig12Tuples, Fig12BytesEachWay, threads),
			TCP:     cal.TCPJoinPhase(Fig12Tuples, Fig12BytesEachWay, threads),
		})
	}
	return rows
}

// Fig12Table renders Fig 12 (join and sync components per transport).
func Fig12Table(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable("Fig 12: hash join phase, RDMA vs software TCP, varying join threads (6 nodes, 2x6.7 GB)",
		"threads", "RDMA join [s]", "RDMA sync [s]", "TCP join [s]", "TCP sync [s]", "TCP/RDMA")
	for _, r := range Fig12Rows(cal) {
		ratio := r.TCP.Wall().Seconds() / r.RDMA.Wall().Seconds()
		t.AddRow(
			fmt.Sprintf("%d", r.Threads),
			stats.Secs(r.RDMA.Compute), stats.Secs(r.RDMA.Sync),
			stats.Secs(r.TCP.Compute), stats.Secs(r.TCP.Sync),
			fmt.Sprintf("%.2fx", ratio),
		)
	}
	t.SetNote("paper: RDMA wins in all configurations; largest gap with all four cores joining")
	return t, nil
}

// Table1 renders Table I: CPU load during the hash join phase (100 % = all
// four cores busy).
func Table1(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable("Table I: CPU load during the join phase of the hash join",
		"threads", "cpu load TCP", "cpu load RDMA")
	for _, r := range Fig12Rows(cal) {
		t.AddRow(fmt.Sprintf("%d", r.Threads), stats.Pct(r.TCP.CPULoad), stats.Pct(r.RDMA.CPULoad))
	}
	t.SetNote("paper: TCP 31/59/84/86 %; RDMA 25/50/76/100 % — TCP plateaus below full utilization")
	return t, nil
}
