package experiments

import (
	"fmt"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/stats"
)

// Fig7Rows reproduces Fig 7: the fixed 3.2 GB data set (2 × 140 M tuples)
// joined with the partitioned hash join on 1–6 nodes. The setup phase —
// hash-table generation over the stationary relation — divides across the
// ring; the join phase is constant (Equation ⋆).
func Fig7Rows(cal costmodel.Calibration) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, MaxNodes)
	dataBytes := int64(2) * Fig7Tuples * int64(cal.TupleBytes)
	for nodes := 1; nodes <= MaxNodes; nodes++ {
		setup := cal.HashSetupTime(Fig7Tuples / nodes)
		rev, err := simulateRevolution(cal, nodes, Fig7Tuples, cal.HashProbePerTupleCore)
		if err != nil {
			return nil, fmt.Errorf("fig7 nodes=%d: %w", nodes, err)
		}
		rows = append(rows, ScaleRow{Nodes: nodes, DataBytes: dataBytes, Setup: setup, Join: rev.join, Sync: rev.sync, Wall: rev.wall})
	}
	return rows, nil
}

// Fig7Table renders Fig 7.
func Fig7Table(cal costmodel.Calibration) (*stats.Table, error) {
	rows, err := Fig7Rows(cal)
	if err != nil {
		return nil, err
	}
	t := scaleTable("Fig 7: partitioned hash join, fixed 3.2 GB data set, increasing ring size", rows,
		"paper: setup 16.2 s → 2.7 s (factor 6); join phase unaffected by distribution; no network cost visible")
	return t, nil
}

// Fig8Rows reproduces Fig 8: scale-up at constant 3.2 GB per node. Setup
// becomes size-independent; the join phase grows with |R|.
func Fig8Rows(cal costmodel.Calibration) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, MaxNodes)
	for nodes := 1; nodes <= MaxNodes; nodes++ {
		rTuples := Fig8TuplesPerNode * nodes
		dataBytes := int64(2) * int64(rTuples) * int64(cal.TupleBytes)
		setup := cal.HashSetupTime(Fig8TuplesPerNode)
		rev, err := simulateRevolution(cal, nodes, rTuples, cal.HashProbePerTupleCore)
		if err != nil {
			return nil, fmt.Errorf("fig8 nodes=%d: %w", nodes, err)
		}
		rows = append(rows, ScaleRow{Nodes: nodes, DataBytes: dataBytes, Setup: setup, Join: rev.join, Sync: rev.sync, Wall: rev.wall})
	}
	return rows, nil
}

// Fig8Table renders Fig 8.
func Fig8Table(cal costmodel.Calibration) (*stats.Table, error) {
	rows, err := Fig8Rows(cal)
	if err != nil {
		return nil, err
	}
	t := scaleTable("Fig 8: partitioned hash join, +3.2 GB per node (large in-memory join)", rows,
		"paper: setup size-independent; join phase scales linearly with |R| (16.2 s at 19.2 GB)")
	return t, nil
}
