package experiments

import (
	"fmt"
	"time"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/stats"
)

// RegCostRow quantifies §III-C's amortization argument: registering
// buffers on demand for every transfer versus registering a static pool
// once and reusing it across the whole join.
type RegCostRow struct {
	// Transfers is how many ring-buffer transfers the pool serves.
	Transfers int
	// OnDemand is the total registration cost when every transfer
	// registers its own buffer.
	OnDemand time.Duration
	// Static is the one-time cost of registering the reused pool.
	Static time.Duration
}

// Overhead is the on-demand cost as a multiple of the static cost.
func (r RegCostRow) Overhead() float64 {
	if r.Static <= 0 {
		return 0
	}
	return r.OnDemand.Seconds() / r.Static.Seconds()
}

// regCostSlots is the ring-buffer pool size the comparison assumes.
const regCostSlots = 4

// RegCostRows sweeps transfer counts through the registration cost model
// ("the cost of registration renders on-demand allocation and registration
// of memory buffers infeasible", §III-C). The buffer size matches the
// harness's ring elements.
func RegCostRows(cal costmodel.Calibration) []RegCostRow {
	regCost := func(buffers int) time.Duration {
		return time.Duration(buffers) * rdma.ModeledRegistrationCost(fragmentBytes)
	}
	static := regCost(regCostSlots)
	rows := make([]RegCostRow, 0, 4)
	for _, transfers := range []int{10, 100, 1_000, 10_000} {
		rows = append(rows, RegCostRow{
			Transfers: transfers,
			OnDemand:  regCost(transfers),
			Static:    static,
		})
	}
	return rows
}

// RegCostTable renders the sweep.
func RegCostTable(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable(
		fmt.Sprintf("§III-C: buffer registration — on-demand per transfer vs a static pool of %d × %s elements",
			regCostSlots, byteLabel(fragmentBytes)),
		"transfers", "on-demand reg. cost", "static pool cost", "overhead")
	for _, r := range RegCostRows(cal) {
		t.AddRow(
			fmt.Sprintf("%d", r.Transfers),
			r.OnDemand.Round(time.Microsecond).String(),
			r.Static.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0fx", r.Overhead()),
		)
	}
	t.SetNote("paper: registration is CPU-intensive [11]; the Data Roundabout registers its ring of buffers once and reuses them")
	return t, nil
}
