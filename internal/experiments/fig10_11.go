package experiments

import (
	"fmt"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/stats"
)

// Fig10Rows reproduces Fig 10: the fixed 3.2 GB data set joined with
// sort-merge join on 1–6 nodes. Sorting is far more expensive than hash
// generation, so small rings pay a heavy setup bill; distribution divides
// the sort problem (and n·log n works in its favor).
func Fig10Rows(cal costmodel.Calibration) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, MaxNodes)
	dataBytes := int64(2) * Fig7Tuples * int64(cal.TupleBytes)
	for nodes := 1; nodes <= MaxNodes; nodes++ {
		// Each host sorts its R_i and S_i fragments concurrently
		// (§IV-C.2), so setup wall clock is one fragment's sort.
		setup := cal.SortSetupTime(Fig7Tuples / nodes)
		rev, err := simulateRevolution(cal, nodes, Fig7Tuples, cal.MergePerTupleCore)
		if err != nil {
			return nil, fmt.Errorf("fig10 nodes=%d: %w", nodes, err)
		}
		rows = append(rows, ScaleRow{Nodes: nodes, DataBytes: dataBytes, Setup: setup, Join: rev.join, Sync: rev.sync, Wall: rev.wall})
	}
	return rows, nil
}

// Fig10Table renders Fig 10.
func Fig10Table(cal costmodel.Calibration) (*stats.Table, error) {
	rows, err := Fig10Rows(cal)
	if err != nil {
		return nil, err
	}
	return scaleTable("Fig 10: sort-merge join, fixed 3.2 GB data set, increasing ring size", rows,
		"paper: high sort cost dominates small rings; merge phase is faster than hash probe"), nil
}

// Fig11Rows reproduces Fig 11: sort-merge scale-up at 3.2 GB per node. The
// merge phase is so fast that it outruns the 10 Gb/s links, exposing the
// light-gray "sync" time: at 19.2 GB the paper measures 6.4 s merge +
// 2.3 s sync = 8.7 s, i.e. 9.6 GB per link at 1.1 GB/s.
func Fig11Rows(cal costmodel.Calibration) ([]ScaleRow, error) {
	rows := make([]ScaleRow, 0, MaxNodes)
	for nodes := 1; nodes <= MaxNodes; nodes++ {
		rTuples := Fig8TuplesPerNode * nodes
		dataBytes := int64(2) * int64(rTuples) * int64(cal.TupleBytes)
		setup := cal.SortSetupTime(Fig8TuplesPerNode)
		rev, err := simulateRevolution(cal, nodes, rTuples, cal.MergePerTupleCore)
		if err != nil {
			return nil, fmt.Errorf("fig11 nodes=%d: %w", nodes, err)
		}
		rows = append(rows, ScaleRow{Nodes: nodes, DataBytes: dataBytes, Setup: setup, Join: rev.join, Sync: rev.sync, Wall: rev.wall})
	}
	return rows, nil
}

// Fig11Table renders Fig 11.
func Fig11Table(cal costmodel.Calibration) (*stats.Table, error) {
	rows, err := Fig11Rows(cal)
	if err != nil {
		return nil, err
	}
	return scaleTable("Fig 11: sort-merge join, +3.2 GB per node — the merge outruns the link", rows,
		"paper at 6 nodes: join 6.4 s + sync 2.3 s = 8.7 s for 9.6 GB/link ≈ 1.1 GB/s (link-bound)"), nil
}
