package experiments

import (
	"strconv"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/stats"
)

// Fig3Rows returns the CPU-overhead decomposition of Fig 3: kernel TCP,
// TCP-offload engine, RDMA.
func Fig3Rows() []costmodel.CPUBreakdown {
	return costmodel.Fig3Breakdown()
}

// Fig3Table renders Fig 3 as overhead percentages relative to the kernel
// TCP total.
func Fig3Table(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable("Fig 3: local CPU overhead of high-speed transfers (relative to kernel TCP)",
		"configuration", "data copying", "context switches", "network stack", "driver", "total")
	for _, b := range Fig3Rows() {
		t.AddRow(b.Label, stats.Pct(b.DataCopying), stats.Pct(b.ContextSwitches),
			stats.Pct(b.NetworkStack), stats.Pct(b.Driver), stats.Pct(b.Total()))
	}
	t.SetNote("paper: data movement ≈50% of cost; TOE helps little; only RDMA removes the overhead")
	return t, nil
}

// Fig5Row is one point of the chunk-size/throughput curve.
type Fig5Row struct {
	// ChunkBytes is the transfer-unit size.
	ChunkBytes int
	// Throughput is the achieved rate in bytes/second.
	Throughput float64
}

// Fig5ChunkSizes are the sweep points (1 B … 1 GB, log scale as in the
// figure).
func Fig5ChunkSizes() []int {
	return []int{1, 16, 256, 1 << 10, 4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30}
}

// Fig5Rows sweeps the RDMA throughput model over the chunk sizes.
func Fig5Rows(cal costmodel.Calibration) []Fig5Row {
	sizes := Fig5ChunkSizes()
	rows := make([]Fig5Row, len(sizes))
	for i, s := range sizes {
		rows[i] = Fig5Row{ChunkBytes: s, Throughput: cal.RDMAThroughput(s)}
	}
	return rows
}

// Fig5Table renders the Fig 5 sweep.
func Fig5Table(cal costmodel.Calibration) (*stats.Table, error) {
	t := stats.NewTable("Fig 5: RDMA throughput vs transfer-unit size (10 GbE)",
		"chunk", "throughput [Gb/s]", "of link")
	for _, r := range Fig5Rows(cal) {
		t.AddRow(byteLabel(r.ChunkBytes), stats.Gbps(r.Throughput),
			stats.Pct(r.Throughput/cal.EffectiveBandwidth()))
	}
	t.SetNote("paper: link saturates for units ≳4 kB; maximum throughput from ≈1 MB")
	return t, nil
}

func byteLabel(n int) string {
	switch {
	case n >= 1<<30:
		return strconv.Itoa(n>>30) + "GB"
	case n >= 1<<20:
		return strconv.Itoa(n>>20) + "MB"
	case n >= 1<<10:
		return strconv.Itoa(n>>10) + "kB"
	default:
		return strconv.Itoa(n) + "B"
	}
}
