// Package dep owns a counter whose writes are mutex-guarded; whether an
// importer's reads honor the guard is decided by the fact-threading path.
package dep

import "sync"

type D struct {
	mu    sync.Mutex
	Count int
}

// Add is never executed inside this package: the access summary rides
// the facts and is attributed at the importing call site.
func (d *D) Add() {
	d.mu.Lock()
	d.Count++
	d.mu.Unlock()
}

// Snapshot reads under the same guard.
func (d *D) Snapshot() int {
	d.mu.Lock()
	n := d.Count
	d.mu.Unlock()
	return n
}
