package sharedep

import "cyclolinttest/sharedep/dep"

// Run launches an unguarded watcher while the entry goroutine keeps
// writing through dep's guarded path: the guarded write crosses the
// package boundary as a fact, the plain read does not share its guard.
func Run(d *dep.D) {
	go watch(d)
	d.Add() // want `\(cyclolinttest/sharedep/dep\.D\)\.Count has a plain write with no common guard across 2 goroutine origins`
	d.Add()
}

// RunGuarded keeps both sides under dep's mutex: clean.
func RunGuarded(d *dep.D) {
	go func() {
		for {
			_ = d.Snapshot()
		}
	}()
	d.Add()
}

func watch(d *dep.D) {
	for {
		_ = d.Count
	}
}
