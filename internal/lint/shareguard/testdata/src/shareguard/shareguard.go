package shareguard

import (
	"sync"
	"sync/atomic"
)

type srv struct {
	mu      sync.Mutex
	guarded int
	bump    int
	racy    int
	mixed   uint64
	cfg     int
	solo    int
	//cyclolint:sharesafe windowed gauge: torn reads acceptable in telemetry
	stat int
	done chan struct{}
}

// Start configures the server, launches the worker, and then keeps
// touching fields from the entry goroutine.
func Start(s *srv) {
	s.cfg = 42 // pre-launch: happens-before the worker
	go s.loop()
	s.racy = 1  // want `\(cyclolinttest/shareguard\.srv\)\.racy has a plain write with no common guard across 2 goroutine origins`
	s.mixed = 0 // want `\(cyclolinttest/shareguard\.srv\)\.mixed has a plain write with no common guard across 2 goroutine origins`
	s.solo = 7  //cyclolint:sharesafe solo is rewritten only during drain, serialized by done
	s.stat = 1
	s.mu.Lock()
	s.guarded++
	s.bumpLocked()
	s.mu.Unlock()
}

func (s *srv) loop() {
	for {
		s.mu.Lock()
		s.guarded++
		s.bumpLocked()
		s.mu.Unlock()
		s.racy++
		atomic.AddUint64(&s.mixed, 1)
		s.solo++ //cyclolint:sharesafe solo is rewritten only during drain, serialized by done
		s.stat++
		if s.cfg == 0 {
			return
		}
		select {
		case <-s.done:
			return
		default:
		}
	}
}

// bumpLocked is only ever called with s.mu held: the calledWith
// intersection guards s.bump on both origins.
func (s *srv) bumpLocked() { s.bump++ }

// fill demonstrates ownership: the chunk is freshly allocated, so its
// field writes are goroutine-local until it is handed off.
type chunk struct {
	n   int
	buf []byte
}

var sink chan *chunk

func Fill() {
	go drain()
	for {
		c := &chunk{buf: make([]byte, 64)}
		c.n = len(c.buf)
		sink <- c
	}
}

func drain() {
	for c := range sink {
		_ = c.n
	}
}
