// Package shareguard is a compositional static data-race detector in the
// RacerD style, built on cyclolint's dataflow IR.
//
// For every field/global memory location a function touches it records a
// guarded access: read or write, the lock-class set held at the access
// (reusing lockorder's class naming and held-stack walk), and whether the
// access is atomic (sync/atomic functions; fields of sync/atomic types
// are internally synchronized and skipped). Accesses are attributed to
// goroutine origins (dataflow.Origins) exactly like spscrole attributes
// queue endpoints — through helpers, `go` launches, and across packages
// via per-function fact summaries. A diagnostic fires when one location
// is reachable from two or more origins with at least one plain
// (non-atomic) write and an empty common guard set between the
// conflicting accesses.
//
// Three happens-before/ownership arguments silence an access without a
// lock:
//
//   - ownership: accesses through a local whose every definition is a
//     fresh value (allocation, call result, literal, channel receive) are
//     goroutine-local until published — the producer filling a chunk it
//     just allocated does not race the consumer that pops it later;
//   - pre-launch: accesses positioned before the function's first
//     (transitive) goroutine launch, in functions reachable only from
//     entry code that has not launched yet, happen-before every origin —
//     the single-assignment-before-`go` configuration pattern;
//   - frozen publication: snapshots read via atomic Load land in owned
//     locals, and the publish itself is an atomic store (frozenpub owns
//     the after-publish mutation check).
//
// Sanctioned exceptions are annotated with the reason, either at the
// access, on the function's doc comment, or on the field declaration
// (which suppresses the location module-wide, riding the facts):
//
//	//cyclolint:sharesafe windowed counter: torn reads acceptable in telemetry
//
// In-package _test.go files are excluded, as in spscrole: test harnesses
// would hang phantom origins on every access they exercise.
package shareguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
	"cyclojoin/internal/lint/lockorder"
)

// ringqPkg's slot memory is disciplined by seqlock-style atomics the
// chaos tier verifies dynamically; every slot write would be a finding.
const ringqPkg = "cyclojoin/internal/ringq"

// Analyzer reports shared locations with a plain write and no common
// guard across goroutine origins.
var Analyzer = &analysis.Analyzer{
	Name:      "shareguard",
	Doc:       "a location reachable from two goroutine origins with a plain write needs a common guard: one lock class, atomic discipline, or a happens-before; annotate //cyclolint:sharesafe for sanctioned ownership",
	Version:   "1",
	UsesFacts: true,
	Run:       run,
}

// noLaunch is the firstLaunch sentinel for functions that never launch.
const noLaunch = token.Pos(1 << 40)

// rawAccess is one access before guard/origin finalization.
type rawAccess struct {
	loc    string
	write  bool
	atomic bool
	held   []string // lock classes held at the site
	extra  []string // guards imported with a pending access
	label  string   // launch-label context; "" = fn's own origins
	fn     *dataflow.Func
	pos    token.Pos
	preGo  bool // positioned before the (exported) function's first launch
}

// attrAccess is one access attributed to a single origin.
type attrAccess struct {
	loc      string
	write    bool
	atomic   bool
	guards   []string
	origin   string
	pre      bool // pre-launch happens-before: cannot participate in a race
	captured bool // executed inside a launched literal, not origin fan-out
	pos      token.Pos
	site     string
}

// callSite is one static call, recorded for the calledWith and pre-launch
// fixpoints.
type callSite struct {
	caller    *dataflow.Func
	calleeKey string
	held      []string
	label     string
	launch    bool
	pos       token.Pos
}

type checker struct {
	pass     *analysis.Pass
	g        *dataflow.Graph
	origins  *dataflow.Origins
	imported map[string]*Summary
	safe     map[string]bool
	raw      []rawAccess
	sites    []callSite
	firstGo  map[string]token.Pos // per function key; noLaunch if none
	cw       map[string][]string  // calledWith: guard classes held at every call site
	preCtx   map[string]bool      // function runs only before any launch
	sums     map[string]*Summary
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == ringqPkg {
		return nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	c := &checker{
		pass:     pass,
		g:        dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, files),
		imported: make(map[string]*Summary),
		safe:     make(map[string]bool),
		firstGo:  make(map[string]token.Pos),
		cw:       make(map[string][]string),
		preCtx:   make(map[string]bool),
		sums:     make(map[string]*Summary),
	}
	for _, imp := range pass.Pkg.Imports() {
		sums, safe := DecodeShareFacts(pass.ImportedFacts(imp.Path()))
		for k, s := range sums {
			c.imported[k] = s
		}
		for _, loc := range safe {
			c.safe[loc] = true
		}
	}
	c.origins = dataflow.NewOrigins(c.g)
	c.scanSafeFields(files)
	for _, fn := range c.g.All() {
		c.sums[fn.Key()] = &Summary{}
		c.firstGo[fn.Key()] = noLaunch
		c.walkFn(fn)
	}
	c.solveFirstLaunch()
	c.solvePreCtx()
	c.solveCalledWith()
	attributed := c.attribute()
	c.pass.Export(EncodeShareFacts(c.sums, c.safe))
	c.report(attributed)
	return nil
}

// scanSafeFields collects field declarations carrying a sharesafe
// directive: the location is sanctioned module-wide.
func (c *checker) scanSafeFields(files []*ast.File) {
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !c.pass.HasDirective(file, field, "sharesafe") {
						continue
					}
					for _, name := range field.Names {
						c.safe["("+c.g.Pkg.Path()+"."+ts.Name.Name+")."+name.Name] = true
					}
				}
			}
		}
	}
}

// ---- the held-stack walk: accesses, lock classes, call sites ----

type fnState struct {
	fn       *dataflow.Func
	params   []*types.Var
	owned    map[types.Object]bool
	suppress bool              // function-level sharesafe directive
	skip     map[ast.Node]bool // nodes already emitted as atomic accesses
	// skipPop marks release calls on an early-exit branch (an if-body
	// that ends in return/break/continue): the guard-clause idiom
	//
	//	mu.Lock()
	//	if busy { mu.Unlock(); return }
	//	busy = true
	//
	// must not unlock the fallthrough path of the linear walk.
	skipPop map[*ast.CallExpr]bool
}

type heldLock struct{ class string }

func (c *checker) walkFn(fn *dataflow.Func) {
	st := &fnState{
		fn:       fn,
		params:   dataflow.ParamObjects(fn),
		owned:    c.ownedLocals(fn),
		suppress: analysis.FuncHasDirective(fn.Decl, "sharesafe"),
		skip:     make(map[ast.Node]bool),
		skipPop:  c.branchReleases(fn),
	}
	c.walk(st, fn.Decl.Body, "", nil)
}

// branchReleases collects release calls sitting inside an if-body that
// ends in a terminating statement. The linear walk skips popping those:
// they only fire on the early-exit path, and the code after the if still
// holds the lock.
func (c *checker) branchReleases(fn *dataflow.Func) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Decl.Body, func(x ast.Node) bool {
		ifs, ok := x.(*ast.IfStmt)
		if !ok || !terminates(ifs.Body) {
			return true
		}
		ast.Inspect(ifs.Body, func(y ast.Node) bool {
			if call, ok := y.(*ast.CallExpr); ok {
				if _, kind := lockorder.LockCall(c.pass.TypesInfo, call); kind == lockorder.KindRelease {
					out[call] = true
				}
			}
			return true
		})
		return true
	})
	return out
}

// terminates reports whether a block's last statement leaves the
// enclosing sequence: return, break/continue/goto, or a panic call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walk traverses n in source order. label == "" means code runs under
// fn's own origin set; a launch label pins execution to that site. held
// is the lockorder-style held stack, reset inside launched literals.
func (c *checker) walk(st *fnState, n ast.Node, label string, held []heldLock) {
	if n == nil {
		return
	}
	fn := st.fn
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			if pos := x.Pos(); pos < c.firstGo[fn.Key()] && label == "" {
				c.firstGo[fn.Key()] = pos
			}
			l := c.origins.GoLabel(x)
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				for _, a := range x.Call.Args {
					c.walk(st, a, label, held)
				}
				c.walk(st, lit.Body, l, nil)
				return false
			}
			c.callAt(st, x.Call, l, nil, true)
			for _, a := range x.Call.Args {
				c.walk(st, a, label, held)
			}
			if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
				c.walk(st, sel.X, label, held)
			}
			return false
		case *ast.FuncLit:
			// A non-launched literal (callback, closure): it may run on any
			// goroutine with no locks guaranteed held.
			c.walk(st, x.Body, label, nil)
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to the end of the walk;
			// deferred accesses themselves are out of scope, as in lockorder.
			return false
		case *ast.CallExpr:
			if cls, kind := lockorder.LockCall(c.pass.TypesInfo, x); kind != 0 {
				switch kind {
				case lockorder.KindAcquire:
					held = append(held, heldLock{class: cls})
				case lockorder.KindRelease:
					if st.skipPop[x] {
						break // early-exit branch: the fallthrough keeps the lock
					}
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].class == cls {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if base, write, ok := c.atomicOp(x); ok {
				core := peelToCore(base)
				st.skip[core] = true
				c.emit(st, core, write, true, label, held)
				return true
			}
			c.callAt(st, x, label, held, false)
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				c.emit(st, lhs, true, false, label, held)
			}
			return true
		case *ast.IncDecStmt:
			c.emit(st, x.X, true, false, label, held)
			return true
		case *ast.SelectorExpr:
			if !st.skip[x] {
				c.emit(st, x, false, false, label, held)
			}
			return true
		case *ast.Ident:
			if !st.skip[x] {
				c.emit(st, x, false, false, label, held)
			}
			return true
		}
		return true
	})
}

// callAt records a static call site (for the calledWith and pre-launch
// fixpoints) and folds an imported callee's pending accesses into this
// site's context.
func (c *checker) callAt(st *fnState, call *ast.CallExpr, label string, held []heldLock, launch bool) {
	callee := c.g.StaticCallee(call)
	if callee == nil {
		return
	}
	key := dataflow.FuncKey(callee)
	c.sites = append(c.sites, callSite{
		caller:    st.fn,
		calleeKey: key,
		held:      classesOf(held),
		label:     label,
		launch:    launch,
		pos:       call.Pos(),
	})
	sum := c.imported[key]
	if sum == nil {
		return
	}
	for _, p := range sum.Pending {
		if c.safe[p.Loc] {
			continue
		}
		c.raw = append(c.raw, rawAccess{
			loc:    p.Loc,
			write:  p.Write,
			atomic: p.Atomic,
			held:   classesOf(held),
			extra:  p.Guards,
			label:  label,
			fn:     st.fn,
			pos:    call.Pos(),
			preGo:  p.PreGo,
		})
	}
}

// emit records one access to a trackable, non-owned, non-suppressed
// location.
func (c *checker) emit(st *fnState, e ast.Expr, write, atomic bool, label string, held []heldLock) {
	core := peelToCore(e)
	t := c.g.Info.TypeOf(core)
	if t != nil {
		if isSyncPrimitive(t) {
			return
		}
		if _, isChan := t.Underlying().(*types.Chan); isChan && !write {
			return
		}
	}
	if obj := rootObject(c.g, core); obj != nil && st.owned[obj] {
		return
	}
	if st.suppress {
		return
	}
	if file := c.pass.File(e.Pos()); file != nil && c.pass.HasDirective(file, e, "sharesafe") {
		return
	}
	loc, _ := dataflow.ResourceIdent(c.g, st.params, core)
	if loc == "" || c.safe[loc] {
		return
	}
	c.raw = append(c.raw, rawAccess{
		loc:    loc,
		write:  write,
		atomic: atomic,
		held:   classesOf(held),
		label:  label,
		fn:     st.fn,
		pos:    e.Pos(),
		preGo:  true,
	})
}

// peelToCore unwraps parens, derefs, indexing and address-of down to the
// selector/identifier that names the accessed storage.
func peelToCore(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return e
			}
			e = x.X
		default:
			return e
		}
	}
}

// rootObject resolves the base variable an access chain hangs off:
// x in x.f[i].g. Nil when the chain roots at a call or literal.
func rootObject(g *dataflow.Graph, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			return g.Info.Uses[x]
		default:
			return nil
		}
	}
}

func classesOf(held []heldLock) []string {
	if len(held) == 0 {
		return nil
	}
	set := make(map[string]bool, len(held))
	for _, h := range held {
		set[h.class] = true
	}
	out := make([]string, 0, len(set))
	for cls := range set {
		out = append(out, cls)
	}
	sort.Strings(out)
	return out
}

// ---- atomic access classification ----

var atomicWriteMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true, "And": true, "Or": true,
}

// atomicOp recognizes a sync/atomic package-function call on a plain
// location (&x.f), returning the location expression and writeness.
// Method calls on sync/atomic types are not returned here: those fields
// are internally synchronized and skipped as locations entirely.
func (c *checker) atomicOp(call *ast.CallExpr) (ast.Expr, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false, false
	}
	obj, ok := c.g.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, false, false
	}
	if _, isSel := c.g.Info.Selections[sel]; isSel {
		return nil, false, false // a method on an atomic type, not atomic.F
	}
	name := sel.Sel.Name
	switch {
	case strings.HasPrefix(name, "Load"):
		return call.Args[0], false, true
	case strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Add"),
		strings.HasPrefix(name, "Swap"), strings.HasPrefix(name, "CompareAndSwap"),
		strings.HasPrefix(name, "And"), strings.HasPrefix(name, "Or"):
		return call.Args[0], true, true
	}
	return nil, false, false
}

// isSyncPrimitive reports whether t is internally synchronized storage:
// sync and sync/atomic types, and ringq's Waiter eventcount.
func isSyncPrimitive(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	case ringqPkg:
		return obj.Name() == "Waiter"
	}
	return false
}

// ---- ownership: fresh locals are goroutine-local ----

// ownedLocals computes the function's owned locals: every definition is a
// fresh value (allocation, composite literal, call result, channel
// receive, scalar expression) or another owned local. An assignment from
// a parameter, global, or field bans the local — it aliases shared state.
func (c *checker) ownedLocals(fn *dataflow.Func) map[types.Object]bool {
	params := make(map[types.Object]bool)
	for _, p := range dataflow.ParamObjects(fn) {
		params[p] = true
	}
	type def struct {
		dep   types.Object
		fresh bool
	}
	defs := make(map[types.Object][]def)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.g.Info.Defs[id]
		if obj == nil {
			obj = c.g.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || params[v] || dataflow.GlobalVar(v) {
			return
		}
		dep, fresh := c.rhsClass(rhs, params)
		defs[v] = append(defs[v], def{dep: dep, fresh: fresh})
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					record(x.Lhs[i], x.Rhs[i])
				}
			} else if len(x.Rhs) == 1 {
				for _, lhs := range x.Lhs {
					record(lhs, x.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if len(x.Values) == 0 {
					record(name, nil) // zero value: fresh
				} else if i < len(x.Values) {
					record(name, x.Values[i])
				} else if len(x.Values) == 1 {
					record(name, x.Values[0])
				}
			}
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				if x.Key != nil {
					record(x.Key, x.X)
				}
				if x.Value != nil {
					record(x.Value, x.X)
				}
			}
		}
		return true
	})
	owned := make(map[types.Object]bool, len(defs))
	for v := range defs {
		owned[v] = true
	}
	for changed := true; changed; {
		changed = false
		for v, ds := range defs {
			if !owned[v] {
				continue
			}
			for _, d := range ds {
				if d.fresh || (d.dep != nil && owned[d.dep]) {
					continue
				}
				owned[v] = false
				changed = true
				break
			}
		}
	}
	return owned
}

// rhsClass classifies a definition's right-hand side: fresh (a value no
// other goroutine can reach yet), dependent on another local, or aliasing
// shared state (neither).
func (c *checker) rhsClass(e ast.Expr, params map[types.Object]bool) (types.Object, bool) {
	if e == nil {
		return nil, true // zero value
	}
	e = ast.Unparen(e)
	if t := c.g.Info.TypeOf(e); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			// The channel value itself is shared plumbing, but holding it
			// does not alias element storage.
			return nil, true
		}
	}
	switch x := e.(type) {
	case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit, *ast.BinaryExpr:
		return nil, true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return nil, true // ownership transfers with the element
		}
		return c.rhsClass(x.X, params)
	case *ast.StarExpr:
		return c.rhsClass(x.X, params)
	case *ast.IndexExpr:
		return c.rhsClass(x.X, params)
	case *ast.SliceExpr:
		return c.rhsClass(x.X, params)
	case *ast.TypeAssertExpr:
		return c.rhsClass(x.X, params)
	case *ast.Ident:
		obj := c.g.Info.Uses[x]
		switch o := obj.(type) {
		case *types.Const, *types.Nil:
			return nil, true
		case *types.Var:
			if !o.IsField() && !params[o] && !dataflow.GlobalVar(o) {
				return o, false
			}
		}
		return nil, false
	}
	return nil, false
}

// ---- fixpoints: first launch, pre-launch context, calledWith ----

// solveFirstLaunch propagates launch positions up the call graph: a call
// to a function that (transitively) launches a goroutine is itself a
// launch point for pre-launch purposes.
func (c *checker) solveFirstLaunch() {
	for changed := true; changed; {
		changed = false
		for _, s := range c.sites {
			if c.firstGo[s.calleeKey] == noLaunch || !inPackage(c, s.calleeKey) {
				continue
			}
			ck := s.caller.Key()
			if s.pos < c.firstGo[ck] {
				c.firstGo[ck] = s.pos
				changed = true
			}
		}
	}
}

func inPackage(c *checker, key string) bool {
	_, ok := c.sums[key]
	return ok
}

// solvePreCtx marks functions that only ever run before any goroutine
// launch: entry-only origins, every in-package call site positioned
// before its caller's first launch, callers themselves pre-launch.
func (c *checker) solvePreCtx() {
	entryOnly := func(fn *dataflow.Func) bool {
		o := c.origins.Of(fn)
		return len(o) == 1 && o[0] == dataflow.EntryOrigin
	}
	for _, fn := range c.g.All() {
		c.preCtx[fn.Key()] = entryOnly(fn)
	}
	for changed := true; changed; {
		changed = false
		for _, s := range c.sites {
			if !c.preCtx[s.calleeKey] || !inPackage(c, s.calleeKey) {
				continue
			}
			if s.launch || s.label != "" || !c.preCtx[s.caller.Key()] || s.pos >= c.firstGo[s.caller.Key()] {
				c.preCtx[s.calleeKey] = false
				changed = true
			}
		}
	}
}

// solveCalledWith computes, per function, the guard classes held at every
// in-package call site (the intersection): an access in a helper called
// only under a lock is guarded by that lock.
func (c *checker) solveCalledWith() {
	bySite := make(map[string][]callSite)
	for _, s := range c.sites {
		if inPackage(c, s.calleeKey) {
			bySite[s.calleeKey] = append(bySite[s.calleeKey], s)
		}
	}
	top := []string{"\x00top"}
	for key := range c.sums {
		if len(bySite[key]) == 0 {
			c.cw[key] = nil
		} else {
			c.cw[key] = top
		}
	}
	isTop := func(s []string) bool { return len(s) == 1 && s[0] == top[0] }
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for key, sites := range bySite {
			cur := c.cw[key]
			var next []string
			first := true
			for _, s := range sites {
				var contrib []string
				if s.launch {
					contrib = nil // a new goroutine starts with nothing held
				} else {
					contrib = append(contrib, s.held...)
					if s.label == "" {
						callerCW := c.cw[s.caller.Key()]
						if isTop(callerCW) {
							contrib = top // unresolved: intersect-identity
						} else {
							contrib = append(contrib, callerCW...)
						}
					}
				}
				if isTop(contrib) {
					continue
				}
				if first {
					next = dedupSorted(contrib)
					first = false
				} else {
					next = intersect(next, dedupSorted(contrib))
				}
			}
			if first {
				next = top // all sites unresolved this round
			}
			if !sameStrings(cur, next) {
				c.cw[key] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for key, v := range c.cw {
		if isTop(v) {
			c.cw[key] = nil // unreachable recursion cluster: assume unguarded
		}
	}
}

func dedupSorted(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	out := append([]string(nil), s...)
	sort.Strings(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

func intersect(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	var out []string
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- attribution ----

// attribute finalizes every raw access: guards gain the calledWith set,
// pre-launch happens-before is resolved, and the access fans out to the
// goroutine origins of its context. Accesses of functions with no
// in-package execution evidence also land in the exported summaries.
func (c *checker) attribute() []attrAccess {
	var out []attrAccess
	for _, r := range c.raw {
		fnKey := r.fn.Key()
		guards := append(append([]string(nil), r.held...), r.extra...)
		if r.label == "" {
			guards = append(guards, c.cw[fnKey]...)
		}
		guards = dedupSorted(guards)
		preHere := r.label == "" && c.preCtx[fnKey] && r.pos < c.firstGo[fnKey]
		pre := r.preGo && preHere
		site := c.g.PosString(r.pos)
		ctx := []string{r.label}
		if r.label == "" {
			ctx = c.origins.Of(r.fn)
		}
		if !c.origins.HasEvidence(r.fn) && len(ctx) == 1 && ctx[0] == dataflow.EntryOrigin {
			c.sums[fnKey].Pending = append(c.sums[fnKey].Pending, Access{
				Loc:    r.loc,
				Write:  r.write,
				Atomic: r.atomic,
				Guards: guards,
				Site:   site,
				PreGo:  r.preGo && r.pos < c.firstGo[fnKey],
			})
		}
		for _, origin := range ctx {
			out = append(out, attrAccess{
				loc:      r.loc,
				write:    r.write,
				atomic:   r.atomic,
				guards:   guards,
				origin:   origin,
				pre:      pre,
				captured: r.label != "",
				pos:      r.pos,
				site:     site,
			})
		}
	}
	return out
}

// ---- reporting ----

func (c *checker) report(accesses []attrAccess) {
	byLoc := make(map[string][]attrAccess)
	var locs []string
	for _, a := range accesses {
		if a.pre {
			continue
		}
		if _, ok := byLoc[a.loc]; !ok {
			locs = append(locs, a.loc)
		}
		byLoc[a.loc] = append(byLoc[a.loc], a)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		as := byLoc[loc]
		// A local is per-invocation storage: it only becomes shared when a
		// launched literal captures it, so at least one side of a conflict
		// must execute inside a launch — multi-origin fan-out of the
		// declaring function alone duplicates the same invocation-local
		// access, it does not share the variable.
		local := strings.HasPrefix(loc, "local ")
		// Conflict: a plain write and an access from a different origin with
		// no guard class in common.
		conflict := make(map[int]bool)
		for i, w := range as {
			if !w.write || w.atomic {
				continue
			}
			for j, b := range as {
				if b.origin == w.origin {
					continue
				}
				if local && !w.captured && !b.captured {
					continue
				}
				if len(intersect(w.guards, b.guards)) > 0 {
					continue
				}
				conflict[i] = true
				conflict[j] = true
			}
		}
		if len(conflict) == 0 {
			continue
		}
		byOrigin := make(map[string]attrAccess)
		first := token.Pos(noLaunch)
		for i := range as {
			if !conflict[i] {
				continue
			}
			a := as[i]
			if prev, ok := byOrigin[a.origin]; !ok || a.pos < prev.pos {
				byOrigin[a.origin] = a
			}
			if a.pos < first {
				first = a.pos
			}
		}
		origins := make([]string, 0, len(byOrigin))
		for o := range byOrigin {
			origins = append(origins, o)
		}
		sort.Strings(origins)
		parts := make([]string, len(origins))
		for i, o := range origins {
			a := byOrigin[o]
			kind := "read"
			if a.write {
				kind = "write"
			}
			if a.atomic {
				kind = "atomic " + kind
			}
			parts[i] = o + " (" + kind + " at " + a.site + ")"
		}
		c.pass.Reportf(first,
			"%s has a plain write with no common guard across %d goroutine origins: %s; no shared lock class, consistent atomic use, or happens-before protects it — serialize the accesses or annotate //cyclolint:sharesafe with the ownership argument",
			loc, len(origins), strings.Join(parts, ", "))
	}
}
