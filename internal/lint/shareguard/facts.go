package shareguard

import (
	"encoding/json"
	"sort"
)

// Access is one guarded memory access a function performs, identified by
// the location's field/global identity. Accesses of functions with no
// in-package execution evidence ride the facts to whichever package
// supplies the real goroutine context.
type Access struct {
	// Loc is the location identity, e.g. "(cyclojoin/internal/ring.node).epoch".
	Loc string `json:"loc"`
	// Write marks a store (plain or atomic); otherwise the access is a read.
	Write bool `json:"write,omitempty"`
	// Atomic marks sync/atomic-mediated accesses.
	Atomic bool `json:"atomic,omitempty"`
	// Guards is the sorted lock-class set held at the access (lockorder
	// naming), including classes the function is always called with.
	Guards []string `json:"guards,omitempty"`
	// Site is the access position, "file.go:12".
	Site string `json:"site"`
	// PreGo marks accesses positioned before the function's first
	// (transitive) goroutine launch: at the importing call site they
	// inherit the site's pre-launch happens-before, if any.
	PreGo bool `json:"preGo,omitempty"`
}

// Summary is one function's guarded-access effect, exported as facts.
type Summary struct {
	// Key is the function's dataflow.FuncKey.
	Key string `json:"key,omitempty"`
	// Pending holds accesses awaiting origin attribution: the function has
	// no caller in its home package, so the importing call site supplies
	// the goroutine origin and any additionally held locks.
	Pending []Access `json:"pending,omitempty"`
}

// shareFacts is the serialized fact blob.
type shareFacts struct {
	Funcs []*Summary `json:"funcs,omitempty"`
	// Safe lists locations annotated //cyclolint:sharesafe at their field
	// declaration, merged transitively so importers skip them too.
	Safe []string `json:"safe,omitempty"`
}

// EncodeShareFacts serializes the non-empty summaries and the safe-location
// set deterministically.
func EncodeShareFacts(sums map[string]*Summary, safe map[string]bool) []byte {
	keys := make([]string, 0, len(sums))
	for k, s := range sums {
		if s == nil || len(s.Pending) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := &shareFacts{}
	for _, k := range keys {
		s := sums[k]
		s.Key = k
		f.Funcs = append(f.Funcs, s)
	}
	for loc := range safe {
		f.Safe = append(f.Safe, loc)
	}
	sort.Strings(f.Safe)
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeShareFacts parses a fact blob, tolerating nil/garbage.
func DecodeShareFacts(data []byte) (map[string]*Summary, []string) {
	out := make(map[string]*Summary)
	if len(data) == 0 {
		return out, nil
	}
	var f shareFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out, nil
	}
	for _, s := range f.Funcs {
		if s != nil && s.Key != "" {
			out[s.Key] = s
		}
	}
	return out, f.Safe
}
