package shareguard_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/shareguard"
)

func TestShareguard(t *testing.T) {
	linttest.Run(t, shareguard.Analyzer, "shareguard")
}

// TestShareguardFacts exercises the fact-threading path: the guarded
// write lives in a dependency package, the unguarded read in the
// importer, and the conflict is only visible once the dependency's
// pending access summary crosses the package boundary.
func TestShareguardFacts(t *testing.T) {
	linttest.Run(t, shareguard.Analyzer, "sharedep/dep", "sharedep")
}
