// Test surface for the hotpathalloc analyzer: each allocating construct
// inside an annotated function, the amortized-append and coldpath
// escapes, and an unannotated control.
package hotpathalloc

import (
	"fmt"
	"slices"
	"time"
)

type sink struct {
	buf []byte
	n   int
}

var out any

// plain is unannotated: allocation is unconstrained here.
func plain() []int {
	return make([]int, 8)
}

// hot shows the sanctioned steady-state shapes: counters, in-place
// writes, and append amortized by a same-function x = x[:0] reset.
//
//cyclolint:hotpath
func hot(s *sink, b []byte) {
	s.n++
	s.buf = s.buf[:0]
	s.buf = append(s.buf, b...)
}

//cyclolint:hotpath
func alloc() []int {
	return make([]int, 8) // want `make allocates`
}

//cyclolint:hotpath
func grow(dst []int, v int) []int {
	return append(dst, v) // want `append may grow`
}

// preallocated shows appends amortized by a same-function 3-arg make:
// the setup allocation is justified, the steady-state appends are free.
//
//cyclolint:hotpath
func preallocated(vs []int) []int {
	//cyclolint:coldpath one-time setup; sized for the whole batch
	acc := make([]int, 0, len(vs))
	for _, v := range vs {
		acc = append(acc, v)
	}
	return acc
}

// grown shows appends amortized by slices.Grow.
//
//cyclolint:hotpath
func grown(dst []int, vs []int) []int {
	dst = slices.Grow(dst, len(vs))
	for _, v := range vs {
		dst = append(dst, v)
	}
	return dst
}

// twoArgMake gets no capacity credit: make([]T, n) has no headroom, so
// the append still reallocates.
//
//cyclolint:hotpath
func twoArgMake(v int) []int {
	//cyclolint:coldpath setup
	acc := make([]int, 1)
	return append(acc, v) // want `append may grow`
}

//cyclolint:hotpath
func format(err error) {
	fmt.Println(err) // want `fmt\.Println allocates`
}

//cyclolint:hotpath
func coldFormat(err error) {
	if err != nil {
		//cyclolint:coldpath error branch, the caller is about to stop
		fmt.Println(err)
	}
}

//cyclolint:hotpath
func timer() <-chan time.Time {
	return time.After(time.Second) // want `time\.After allocates`
}

//cyclolint:hotpath
func box(v int) {
	out = v // want `boxing int`
}

//cyclolint:hotpath
func noBoxPointer(p *sink) {
	out = p
}

//cyclolint:hotpath
func closure() func() int {
	return func() int { return 1 } // want `closure literal`
}

//cyclolint:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation`
}

//cyclolint:hotpath
func constConcatOK() string {
	return "a" + "b"
}

//cyclolint:hotpath
func convert(b []byte) string {
	return string(b) // want `conversion copies`
}

//cyclolint:hotpath
func unconvert(s string) []byte {
	return []byte(s) // want `conversion copies`
}

//cyclolint:hotpath
func spawn() {
	go plain() // want `go statement`
}

//cyclolint:hotpath
func sliceLit() []int {
	return []int{1, 2} // want `slice literal`
}

//cyclolint:hotpath
func mapLit() map[int]int {
	return map[int]int{} // want `map literal`
}

//cyclolint:hotpath
func ptrLit() *sink {
	return &sink{} // want `&composite literal`
}

//cyclolint:hotpath
func valueStructOK(n int) sink {
	return sink{n: n}
}

//cyclolint:hotpath
func variadic(vs ...int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

//cyclolint:hotpath
func callVariadic() int {
	return variadic(1, 2, 3) // want `variadic function allocates`
}

//cyclolint:hotpath
func spreadOK(vs []int) int {
	return variadic(vs...)
}
