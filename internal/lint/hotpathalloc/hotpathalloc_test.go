package hotpathalloc_test

import (
	"testing"

	"cyclojoin/internal/lint/hotpathalloc"
	"cyclojoin/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, hotpathalloc.Analyzer, "hotpathalloc")
}
