// Package hotpathalloc enforces the zero-allocation contract on
// annotated hot-path functions.
//
// The repo's performance story rests on a handful of functions running
// allocation-free in steady state: the ring's receive/stage/forward
// path, the transports' post and completion paths, and the metrics/trace
// event emitters (whose sub-10ns budgets the benchmark guards prove).
// Benchmarks only catch regressions on the paths they exercise; this
// analyzer catches them at compile time on every path of a function
// annotated
//
//	//cyclolint:hotpath
//
// in its doc comment. Inside such a function the analyzer flags the
// allocating constructs: make/new, heap-bound composite literals
// (slice/map literals and &T{}), closures, go statements, fmt.*,
// time.After, non-constant string concatenation, string↔[]byte
// conversions, appends that are not amortized by an `x = x[:0]` reset in
// the same function, boxing a non-pointer value into an interface, and
// calls to variadic functions (the argument slice allocates).
//
// Error and slow branches inside a hot function are excluded by
// annotating the statement:
//
//	//cyclolint:coldpath <why this branch is off the hot path>
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"cyclojoin/internal/lint/analysis"
)

// Analyzer flags allocating constructs in //cyclolint:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions annotated //cyclolint:hotpath must not contain allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncHasDirective(fn, "hotpath") {
				continue
			}
			c := &checker{pass: pass, file: file, fn: fn, resets: findResets(pass, fn.Body)}
			c.stmts(fn.Body.List)
		}
	}
	return nil
}

// findResets collects the rendered form of every lvalue the function
// gives amortized capacity, making a later append(x, ...) allocation-free
// in steady state:
//
//   - x = x[:0] — the idiomatic reuse reset;
//   - x := make([]T, len, cap) — an explicit capacity preallocation (the
//     make itself is still reported; a setup statement carries its own
//     //cyclolint:coldpath justification);
//   - x = slices.Grow(x, n) — a guaranteed-capacity reslice.
func findResets(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	resets := make(map[string]bool)
	record := func(lhs, rhs ast.Expr) {
		switch x := ast.Unparen(rhs).(type) {
		case *ast.SliceExpr:
			if x.High == nil || x.Low != nil {
				return
			}
			lit, ok := x.High.(*ast.BasicLit)
			if !ok || lit.Value != "0" {
				return
			}
			if types.ExprString(lhs) == types.ExprString(x.X) {
				resets[types.ExprString(x.X)] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" && len(x.Args) == 3 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					resets[types.ExprString(lhs)] = true
				}
				return
			}
			if pkg, name := calleePkgFunc(pass, x); pkg == "slices" && name == "Grow" &&
				len(x.Args) == 2 && types.ExprString(x.Args[0]) == types.ExprString(lhs) {
				resets[types.ExprString(lhs)] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch as := n.(type) {
		case *ast.AssignStmt:
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					record(as.Lhs[i], as.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(as.Names) == len(as.Values) {
				for i := range as.Names {
					record(as.Names[i], as.Values[i])
				}
			}
		}
		return true
	})
	return resets
}

type checker struct {
	pass   *analysis.Pass
	file   *ast.File
	fn     *ast.FuncDecl
	resets map[string]bool
}

// stmts walks a statement list, skipping //cyclolint:coldpath subtrees.
func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	if s == nil || c.pass.HasDirective(c.file, s, "coldpath") {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		c.stmts(st.List)
	case *ast.IfStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Body)
		c.stmt(st.Else)
	case *ast.ForStmt:
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Post)
		c.stmt(st.Body)
	case *ast.RangeStmt:
		c.expr(st.X)
		c.stmt(st.Body)
	case *ast.SwitchStmt:
		c.stmt(st.Init)
		c.expr(st.Tag)
		c.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(st.Init)
		c.stmt(st.Assign)
		c.stmt(st.Body)
	case *ast.SelectStmt:
		c.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			c.expr(e)
		}
		c.stmts(st.Body)
	case *ast.CommClause:
		c.stmt(st.Comm)
		c.stmts(st.Body)
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	case *ast.ExprStmt:
		c.expr(st.X)
	case *ast.SendStmt:
		c.expr(st.Chan)
		c.expr(st.Value)
		c.boxing(st.Value, chanElem(c.pass, st.Chan))
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.ReturnStmt:
		c.ret(st)
	case *ast.DeclStmt:
		c.declStmt(st)
	case *ast.GoStmt:
		c.pass.Reportf(st.Pos(), "hot path: go statement allocates a goroutine; spawn at wiring time or annotate //cyclolint:coldpath")
	case *ast.DeferStmt:
		// Open-coded defers are allocation-free; check the call itself.
		c.expr(st.Call)
	case *ast.IncDecStmt:
		c.expr(st.X)
	}
}

func (c *checker) declStmt(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			c.expr(v)
			if len(vs.Names) == len(vs.Values) {
				if t, ok := c.pass.TypesInfo.Defs[vs.Names[i]]; ok && t != nil {
					c.boxingType(v, t.Type())
				}
			}
		}
	}
}

func (c *checker) assign(as *ast.AssignStmt) {
	for _, r := range as.Rhs {
		c.expr(r)
	}
	for _, l := range as.Lhs {
		c.expr(l)
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if tv, ok := c.pass.TypesInfo.Types[as.Lhs[i]]; ok && tv.Type != nil {
			c.boxingType(as.Rhs[i], tv.Type)
		}
		// String += concatenation allocates like +.
		if as.Tok.String() == "+=" && isString(c.pass, as.Lhs[i]) {
			c.pass.Reportf(as.Pos(), "hot path: string concatenation allocates")
		}
	}
}

func (c *checker) ret(rs *ast.ReturnStmt) {
	for _, r := range rs.Results {
		c.expr(r)
	}
	sig, ok := c.pass.TypesInfo.Defs[c.fn.Name].(*types.Func)
	if !ok || len(rs.Results) != sig.Type().(*types.Signature).Results().Len() {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	for i, r := range rs.Results {
		c.boxingType(r, results.At(i).Type())
	}
}

// expr recursively checks one expression subtree.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		c.call(x)
	case *ast.FuncLit:
		c.pass.Reportf(x.Pos(), "hot path: closure literal may allocate (captured variables escape); hoist it to wiring time or annotate //cyclolint:coldpath")
	case *ast.CompositeLit:
		c.composite(x)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			if _, ok := x.X.(*ast.CompositeLit); ok {
				c.pass.Reportf(x.Pos(), "hot path: &composite literal escapes to the heap; preallocate at wiring time or annotate //cyclolint:coldpath")
				return
			}
		}
		c.expr(x.X)
	case *ast.BinaryExpr:
		c.expr(x.X)
		c.expr(x.Y)
		if x.Op.String() == "+" && isString(c.pass, x) && !isConstant(c.pass, x) {
			c.pass.Reportf(x.Pos(), "hot path: string concatenation allocates")
		}
	case *ast.ParenExpr:
		c.expr(x.X)
	case *ast.StarExpr:
		c.expr(x.X)
	case *ast.SelectorExpr:
		c.expr(x.X)
	case *ast.IndexExpr:
		c.expr(x.X)
		c.expr(x.Index)
	case *ast.SliceExpr:
		c.expr(x.X)
		c.expr(x.Low)
		c.expr(x.High)
		c.expr(x.Max)
	case *ast.TypeAssertExpr:
		c.expr(x.X)
	case *ast.KeyValueExpr:
		c.expr(x.Key)
		c.expr(x.Value)
	}
}

func (c *checker) composite(lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		c.expr(elt)
	}
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "hot path: slice literal allocates; preallocate at wiring time or annotate //cyclolint:coldpath")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "hot path: map literal allocates; preallocate at wiring time or annotate //cyclolint:coldpath")
	}
}

func (c *checker) call(call *ast.CallExpr) {
	c.expr(call.Fun)
	for _, a := range call.Args {
		c.expr(a)
	}
	tv := c.pass.TypesInfo.Types[call.Fun]
	switch {
	case tv.IsType():
		c.conversion(call, tv.Type)
		return
	case tv.IsBuiltin():
		c.builtin(call)
		return
	}
	if pkg, name := calleePkgFunc(c.pass, call); pkg != "" {
		if pkg == "fmt" {
			c.pass.Reportf(call.Pos(), "hot path: fmt.%s allocates (formatting and boxing); annotate //cyclolint:coldpath if this is an error branch", name)
			return
		}
		if pkg == "time" && name == "After" {
			c.pass.Reportf(call.Pos(), "hot path: time.After allocates a timer that lingers until it fires; use a reusable time.Timer")
			return
		}
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	c.callBoxing(call, sig)
}

// callBoxing flags concrete non-pointer values passed to interface
// parameters, and variadic calls (the ...args slice allocates).
func (c *checker) callBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(n - 1).Type() // arg is already a slice
			} else {
				pt = params.At(n - 1).Type().(*types.Slice).Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxingType(arg, pt)
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= n {
		c.pass.Reportf(call.Pos(), "hot path: call to variadic function allocates the argument slice; use a fixed-arity helper or annotate //cyclolint:coldpath")
	}
}

func (c *checker) builtin(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	switch id.Name {
	case "make":
		c.pass.Reportf(call.Pos(), "hot path: make allocates; preallocate at wiring time or annotate //cyclolint:coldpath")
	case "new":
		c.pass.Reportf(call.Pos(), "hot path: new allocates; preallocate at wiring time or annotate //cyclolint:coldpath")
	case "append":
		if len(call.Args) > 0 && c.resets[types.ExprString(call.Args[0])] {
			return // amortized by an x = x[:0] reset in this function
		}
		c.pass.Reportf(call.Pos(), "hot path: append may grow the backing array; reset the slice with x = x[:0] in this function, preallocate, or annotate //cyclolint:coldpath")
	}
}

func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if isConstant(c.pass, arg) {
		return
	}
	from := c.pass.TypesInfo.Types[arg].Type
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isStringType(toU) && isByteOrRuneSlice(fromU) {
		c.pass.Reportf(call.Pos(), "hot path: string(...) conversion copies and allocates")
	}
	if isByteOrRuneSlice(toU) && isStringType(fromU) {
		c.pass.Reportf(call.Pos(), "hot path: []byte/[]rune(string) conversion copies and allocates")
	}
	// A conversion to an interface type boxes like an assignment.
	c.boxingType(arg, to)
}

// boxing flags arg if assigning it to a target of type pt would box a
// concrete non-pointer value into an interface.
func (c *checker) boxing(arg ast.Expr, pt types.Type) {
	c.boxingType(arg, pt)
}

func (c *checker) boxingType(arg ast.Expr, pt types.Type) {
	if pt == nil {
		return
	}
	if _, ok := pt.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if at == types.Typ[types.UntypedNil] {
		return
	}
	if _, ok := at.Underlying().(*types.Interface); ok {
		return
	}
	// Word-sized reference kinds fit the interface data word directly.
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	if tv.Value != nil {
		// Constants convert at compile time into read-only data.
		return
	}
	c.pass.Reportf(arg.Pos(), "hot path: boxing %s into an interface allocates; pass a pointer, avoid the interface, or annotate //cyclolint:coldpath", at)
}

// ---- small type helpers ----

func chanElem(pass *analysis.Pass, ch ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[ch]
	if !ok || tv.Type == nil {
		return nil
	}
	c, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return c.Elem()
}

func calleePkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type.Underlying())
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
