// Package metricname keeps the Prometheus surface greppable and
// consistently unit-suffixed.
//
// Every instrument this repo exposes is registered through
// metrics.Registry.Counter/Gauge/Histogram. The exposition surface is
// only as auditable as those registration sites: a computed name cannot
// be grepped for, and a name without a unit suffix cannot be read off a
// dashboard without opening the source. The analyzer therefore requires
// the name argument to be a snake_case string literal whose final token
// names the unit or level appropriate to the instrument kind:
//
//	Counter   → _total (including _bytes_total)
//	Gauge     → _depth | _bytes | _ns | _state | _permille
//	Histogram → _ns | _seconds | _bytes | _depth
//
// The gauge list covers the live-health surface: _ns for point-in-time
// latency readings (windowed percentiles), _state for small enums
// (verdict kinds), _permille for ratio shares scaled to integers.
package metricname

import (
	"go/ast"
	"regexp"
	"strconv"

	"cyclojoin/internal/lint/analysis"
)

// metricsPkg is the registry the convention applies to.
const metricsPkg = "cyclojoin/internal/metrics"

// snakeCase is the overall shape: lowercase tokens joined by single
// underscores, no leading digit.
var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// suffixes maps registry method → allowed final name tokens.
var suffixes = map[string][]string{
	"Counter":   {"total"},
	"Gauge":     {"depth", "bytes", "ns", "state", "permille"},
	"Histogram": {"ns", "seconds", "bytes", "depth"},
}

// suffixRe precompiles the per-method suffix checks.
var suffixRe = map[string]*regexp.Regexp{
	"Counter":   regexp.MustCompile(`_total$`),
	"Gauge":     regexp.MustCompile(`_(depth|bytes|ns|state|permille)$`),
	"Histogram": regexp.MustCompile(`_(ns|seconds|bytes|depth)$`),
}

// Analyzer enforces the metric naming convention at registration sites.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "metric registration names must be snake_case string literals with a unit suffix per instrument kind",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// The registry's own package defines the methods; its registration
	// calls in examples/tests are out of scope for the convention.
	if pass.Pkg.Path() == metricsPkg {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for method := range suffixes {
				if pass.IsMethodOn(call, metricsPkg, "Registry", method) {
					checkCall(pass, call, method)
					break
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, method string) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to Registry.%s must be a string literal so the exposition surface stays greppable", method)
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !snakeCase.MatchString(name) {
		pass.Reportf(lit.Pos(), "metric name %q is not snake_case", name)
		return
	}
	if !suffixRe[method].MatchString(name) {
		pass.Reportf(lit.Pos(), "%s name %q must end in %s", method, name, suffixList(method))
	}
}

func suffixList(method string) string {
	out := ""
	for i, s := range suffixes[method] {
		if i > 0 {
			out += " or "
		}
		out += "_" + s
	}
	return out
}
