package metricname_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/metricname"
)

func TestMetricName(t *testing.T) {
	linttest.Run(t, metricname.Analyzer, "metricname")
}
