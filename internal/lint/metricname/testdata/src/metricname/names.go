// Test surface for the metricname analyzer: the suffix convention per
// instrument kind, snake_case shape, and the literal-name requirement.
package metricname

import "cyclojoin/internal/metrics"

var reg = metrics.NewRegistry()

var (
	counterOK      = reg.Counter("frames_total", "frames moved")
	counterBytesOK = reg.Counter("rx_bytes_total", "bytes received")
	counterCase    = reg.Counter("FramesTotal", "frames moved")  // want `not snake_case`
	counterSuffix  = reg.Counter("frames_count", "frames moved") // want `must end in _total`

	gaugeDepthOK    = reg.Gauge("send_queue_depth", "queued sends")
	gaugeBytesOK    = reg.Gauge("resident_bytes", "resident memory")
	gaugeNsOK       = reg.Gauge("hop_p99_ns", "windowed hop p99")
	gaugeStateOK    = reg.Gauge("verdict_state", "health verdict enum")
	gaugePermilleOK = reg.Gauge("busy_share_permille", "busy share of wall clock")
	gaugeSuffix     = reg.Gauge("send_queue_size", "queued sends") // want `must end in _depth or _bytes or _ns or _state or _permille`

	histNsOK     = reg.Histogram("bind_ns", "bind latency", []int64{1, 10, 100})
	histBytesOK  = reg.Histogram("frame_bytes", "frame sizes", []int64{64, 512, 4096})
	histSuffix   = reg.Histogram("bind_time", "bind latency", []int64{1, 10, 100})   // want `must end in`
	histBadShape = reg.Histogram("bind__ns", "double underscore", []int64{1, 2, 10}) // want `not snake_case`
)

func dynamicName(name string) *metrics.Counter {
	return reg.Counter(name, "computed names defeat grep") // want `string literal`
}
