package waitcycle_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/waitcycle"
)

func TestWaitcycle(t *testing.T) {
	linttest.Run(t, waitcycle.Analyzer, "waitcycle")
}

// TestWaitcycleFacts exercises the fact-threading path: the worker's
// blocking protocol lives in a dependency package with no local caller,
// and the cycle is only visible once its pending ops fold in at the
// importer's launch site.
func TestWaitcycleFacts(t *testing.T) {
	linttest.Run(t, waitcycle.Analyzer, "waitdep/dep", "waitdep")
}
