package waitcycle

import (
	"encoding/json"
	"sort"
)

// Op is one blocking or releasing operation a function performs, in the
// dataflow blocking-edge vocabulary (dataflow.Mode*). Ops are ordered by
// Ord within their function; Group ties together the arms of one select
// statement and Loop names the innermost enclosing for-loop, both of
// which the deadlock check needs to decide reachability.
type Op struct {
	// Res is the resource identity ("(pkg.T).ch", "pkg.wg"); empty for
	// param-indexed ops.
	Res string `json:"res,omitempty"`
	// Param is the combined receiver-first parameter index the op targets,
	// or -1 when Res names the resource directly.
	Param int `json:"param"`
	// Mode is the blocking-edge kind (send, recv, close, park, signal,
	// wait, done).
	Mode string `json:"mode"`
	// Ord is the op's source-order index within its function.
	Ord int `json:"ord"`
	// Group is the select-statement group id ("" = standalone op).
	Group string `json:"group,omitempty"`
	// Loop is the innermost enclosing for-loop id ("" = none).
	Loop string `json:"loop,omitempty"`
	// NB marks an op that can release a peer but never parks itself: a
	// select arm with a default, or an op suppressed by //cyclolint:waitsafe.
	NB bool `json:"nb,omitempty"`
	// Site is the op's position, "file.go:12".
	Site string `json:"site"`
}

// Summary is one function's blocking-edge effect, exported as facts.
type Summary struct {
	// Key is the function's dataflow.FuncKey.
	Key string `json:"key,omitempty"`
	// ParamOps lists ops on the function's own parameters, folded into
	// callers at the call site (transitively, like spscrole's push/pop
	// summaries).
	ParamOps []Op `json:"paramOps,omitempty"`
	// Pending holds resource-named ops awaiting attribution: the function
	// has no caller in its home package, so the importing call site
	// supplies the goroutine origin and sequence position.
	Pending []Op `json:"pending,omitempty"`
}

// waitFacts is the serialized fact blob.
type waitFacts struct {
	Funcs []*Summary `json:"funcs"`
}

// EncodeWaitFacts serializes the non-empty summaries deterministically.
func EncodeWaitFacts(sums map[string]*Summary) []byte {
	keys := make([]string, 0, len(sums))
	for k, s := range sums {
		if s == nil || (len(s.ParamOps) == 0 && len(s.Pending) == 0) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := &waitFacts{}
	for _, k := range keys {
		s := sums[k]
		s.Key = k
		f.Funcs = append(f.Funcs, s)
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeWaitFacts parses a fact blob, tolerating nil/garbage.
func DecodeWaitFacts(data []byte) map[string]*Summary {
	out := make(map[string]*Summary)
	if len(data) == 0 {
		return out
	}
	var f waitFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out
	}
	for _, s := range f.Funcs {
		if s != nil && s.Key != "" {
			out[s.Key] = s
		}
	}
	return out
}
