package waitcycle

import (
	"sync"

	"cyclojoin/internal/ringq"
)

// ---- a true two-channel deadlock: both origins send first ----

type dl struct {
	a chan int
	b chan int
}

func Deadlock(d *dl) {
	go d.fwd()
	go d.rev()
}

func (d *dl) fwd() {
	d.a <- 1 // want `static wait cycle: go waitcycle\.go:\d+ blocked at send of \(cyclolinttest/waitcycle\.dl\)\.a`
	<-d.b
}

func (d *dl) rev() {
	d.b <- 2
	<-d.a
}

// ---- the same shape correctly ordered: clean ----

type ok2 struct {
	c chan int
	d chan int
}

func Pipeline(p *ok2) {
	go p.produce()
	go p.consume()
}

func (p *ok2) produce() {
	p.c <- 1
	<-p.d
}

func (p *ok2) consume() {
	<-p.c
	p.d <- 2
}

// ---- the deadlock hidden behind a helper: param ops fold at the site ----

type ho struct {
	a chan int
	b chan int
}

func Handoff(h *ho) {
	go h.left()
	go h.right()
}

func (h *ho) left() {
	push(h.a) // want `static wait cycle: go waitcycle\.go:\d+ blocked at send of \(cyclolinttest/waitcycle\.ho\)\.a`
	<-h.b
}

func (h *ho) right() {
	push(h.b)
	<-h.a
}

func push(ch chan int) { ch <- 1 }

// ---- the eventcount park/signal ring: clean via the shared-loop rule ----

type rq struct {
	notEmpty ringq.Waiter
	notFull  ringq.Waiter
}

func Ring(r *rq) {
	go r.produce()
	go r.consume()
}

func (r *rq) produce() {
	for {
		<-r.notFull.C()
		r.notEmpty.Signal()
	}
}

func (r *rq) consume() {
	for {
		<-r.notEmpty.C()
		r.notFull.Signal()
	}
}

// ---- a select with a default arm never parks: clean ----

type nb struct {
	a chan int
	b chan int
}

func Polling(s *nb) {
	go s.one()
	go s.two()
}

func (s *nb) one() {
	select {
	case s.a <- 1:
	default:
	}
	<-s.b
}

func (s *nb) two() {
	select {
	case s.b <- 2:
	default:
	}
	<-s.a
}

// ---- a WaitGroup ordered against a channel hand-off ----

type wgp struct {
	wg sync.WaitGroup
	ch chan int
}

func Waitdead(w *wgp) {
	go w.worker()
	go w.closer()
}

func (w *wgp) worker() {
	w.ch <- 1 // want `static wait cycle: go waitcycle\.go:\d+ blocked at send of \(cyclolinttest/waitcycle\.wgp\)\.ch`
	w.wg.Done()
}

func (w *wgp) closer() {
	w.wg.Wait()
	<-w.ch
}

// ---- the sanctioned deadlock shape: waitsafe silences the pair ----

type sup struct {
	a chan int
	b chan int
}

func Suppressed(s *sup) {
	go s.fwd()
	go s.rev()
}

func (s *sup) fwd() {
	s.a <- 1 //cyclolint:waitsafe recovery drains a before b, ordered by the epoch barrier
	<-s.b
}

func (s *sup) rev() {
	s.b <- 2
	<-s.a
}
