package waitdep

import "cyclolinttest/waitdep/dep"

// Launch starts the dependency worker and a mirror that runs the same
// protocol in the same order: the worker's pending send/recv fold in at
// the go statement and deadlock against the mirror.
func Launch(w *dep.W) {
	go w.Run() // want `static wait cycle: go waitdep\.go:\d+ blocked at send of \(cyclolinttest/waitdep/dep\.W\)\.A`
	go mirror(w)
}

func mirror(w *dep.W) {
	w.B <- 2
	<-w.A
}

// LaunchOrdered pairs the worker with a complementary drain: clean.
func LaunchOrdered(v *dep.V) {
	go v.Run()
	go drain(v)
}

func drain(v *dep.V) {
	<-v.A
	v.B <- 2
}
