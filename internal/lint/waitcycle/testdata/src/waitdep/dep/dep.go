package dep

// W is a worker whose blocking protocol is only attributable at the
// importing launch site: Run has no caller in this package, so its ops
// cross the package boundary as pending facts.
type W struct {
	A chan int
	B chan int
}

func (w *W) Run() {
	w.A <- 1
	<-w.B
}

// V is the same worker shape for the correctly-ordered importer.
type V struct {
	A chan int
	B chan int
}

func (v *V) Run() {
	v.A <- 1
	<-v.B
}
