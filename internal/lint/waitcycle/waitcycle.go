// Package waitcycle reports static wait-for cycles between goroutine
// origins, built on the dataflow IR's blocking-edge extension.
//
// Every function's blocking and releasing operations — channel sends,
// receives and closes, ringq.Waiter parks and signals, WaitGroup waits
// and dones — are collected in source order and attributed to goroutine
// origins exactly like spscrole attributes queue endpoints: through
// helpers via param-op summaries folded at the call site, through `go`
// launches, and across packages via per-function pending facts. A
// diagnostic fires when two origins each block on an operation whose
// every release lies past the other origin's block: origin A parks at a
// point only B can release, while B parks at a point only A can release.
//
// The reachability rules are deliberately optimistic — the analyzer
// only claims a cycle when the release structure is visible and ordered
// against it:
//
//   - a release in a third origin, a different call frame, or a select
//     arm always counts as reachable;
//   - a release sharing a for-loop with the peer's blocking point counts
//     as reachable (the eventcount park/signal ring pattern interleaves
//     across iterations);
//   - a release ordered before the peer's blocking point in the same
//     frame counts as reachable — it may have banked the wakeup — except
//     a channel rendezvous in the blocked op's own origin, which cannot
//     satisfy a send/recv that had not started yet;
//   - an operation on an untrackable resource (a timeout channel, an
//     interface-typed queue) makes its whole select progressable, and a
//     blocked op with no visible release at all is assumed released
//     elsewhere.
//
// Sanctioned blocking points are annotated with the progress argument,
// at the operation, on the select statement, or on the function's doc
// comment:
//
//	//cyclolint:waitsafe the peer drains acks before data in recovery
//
// In-package _test.go files are excluded, as in spscrole and shareguard.
package waitcycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// ringqPkg's own park/signal plumbing implements the waiters the rest of
// the tree blocks on; analyzing it against itself is circular.
const ringqPkg = "cyclojoin/internal/ringq"

// Analyzer reports pairs of goroutine origins statically ordered into a
// mutual wait.
var Analyzer = &analysis.Analyzer{
	Name:      "waitcycle",
	Doc:       "two goroutine origins that each block on an operation released only past the other's block form a static wait cycle; reorder the hand-off, buffer the channel, or annotate //cyclolint:waitsafe with the progress argument",
	Version:   "1",
	UsesFacts: true,
	Run:       run,
}

// rawOp is one blocking-edge operation before origin attribution.
type rawOp struct {
	res        string // resource identity; "" for param-indexed ops
	param      int    // receiver-first param index when res == ""
	mode       string
	label      string // launch-label context; "" = fn's own origins
	fn         *dataflow.Func
	pos        token.Pos
	sub        int    // fold order among ops sharing one call position
	group      string // select group id ("" = standalone)
	loop       string // innermost for-loop id ("" = none)
	site       string
	nonBlock   bool // cannot park: select-with-default arm or untracked escape
	suppressed bool // //cyclolint:waitsafe: releaser only
}

// attrOp is one operation attributed to a single origin.
type attrOp struct {
	res        string
	mode       string
	origin     string
	frame      string // function key + launch label: sequential execution unit
	seq        int64  // (pos, sub) packed; orders ops within a frame
	group      string
	loop       string
	pos        token.Pos
	site       string
	nonBlock   bool
	suppressed bool
}

// callSite is one static call, recorded for param-op folding and pending
// attribution.
type callSite struct {
	fn         *dataflow.Func
	call       *ast.CallExpr
	key        string
	label      string // launch label for go sites, else the walking context
	launch     bool
	pos        token.Pos // attribution position (frame end for deferred calls)
	loop       string
	site       string
	suppressed bool
}

// loopRange is one for/range statement's source extent.
type loopRange struct {
	pos, end token.Pos
	id       string
}

type checker struct {
	pass     *analysis.Pass
	g        *dataflow.Graph
	origins  *dataflow.Origins
	imported map[string]*Summary
	raw      []rawOp
	rawParam map[string][]rawOp // param-indexed ops per function key
	sites    []callSite
	byCaller map[string][]callSite
	loops    map[*dataflow.Func][]loopRange
	sums     map[string]*Summary
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == ringqPkg {
		return nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	c := &checker{
		pass:     pass,
		g:        dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, files),
		imported: make(map[string]*Summary),
		rawParam: make(map[string][]rawOp),
		byCaller: make(map[string][]callSite),
		loops:    make(map[*dataflow.Func][]loopRange),
		sums:     make(map[string]*Summary),
	}
	for _, imp := range pass.Pkg.Imports() {
		for k, s := range DecodeWaitFacts(pass.ImportedFacts(imp.Path())) {
			c.imported[k] = s
		}
	}
	c.origins = dataflow.NewOrigins(c.g)
	for _, fn := range c.g.All() {
		c.sums[fn.Key()] = &Summary{}
		c.collectLoops(fn)
		c.walkFn(fn)
	}
	for _, s := range c.sites {
		c.byCaller[s.fn.Key()] = append(c.byCaller[s.fn.Key()], s)
	}
	c.solveParams()
	c.foldSites()
	attributed := c.attribute()
	c.pass.Export(EncodeWaitFacts(c.sums))
	c.check(attributed)
	return nil
}

// collectLoops records every for/range statement's extent, so ops can be
// assigned their innermost enclosing loop by position.
func (c *checker) collectLoops(fn *dataflow.Func) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			c.loops[fn] = append(c.loops[fn], loopRange{
				pos: n.Pos(), end: n.End(), id: "loop@" + c.g.PosString(n.Pos()),
			})
		}
		return true
	})
}

// loopAt returns the innermost loop id containing pos ("" if none).
func (c *checker) loopAt(fn *dataflow.Func, pos token.Pos) string {
	best := ""
	span := token.Pos(1 << 60)
	for _, l := range c.loops[fn] {
		if l.pos <= pos && pos < l.end && l.end-l.pos < span {
			best, span = l.id, l.end-l.pos
		}
	}
	return best
}

// ---- the attribution walk ----

type fnState struct {
	fn       *dataflow.Func
	params   []*types.Var
	suppress bool // function-level waitsafe directive
}

func (c *checker) walkFn(fn *dataflow.Func) {
	st := &fnState{
		fn:       fn,
		params:   dataflow.ParamObjects(fn),
		suppress: analysis.FuncHasDirective(fn.Decl, "waitsafe"),
	}
	c.walk(st, fn.Decl.Body, "", fn.Decl.Body.End())
}

// walk traverses n in source order. label == "" means code runs under
// fn's own origin set; a launch label pins execution to that site. end is
// the enclosing frame's close, where deferred operations take effect.
func (c *checker) walk(st *fnState, n ast.Node, label string, end token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			l := c.origins.GoLabel(x)
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				for _, a := range x.Call.Args {
					c.walk(st, a, label, end)
				}
				c.walk(st, lit.Body, l, lit.Body.End())
				return false
			}
			c.site(st, x.Call, l, true, x.Pos())
			for _, a := range x.Call.Args {
				c.walk(st, a, label, end)
			}
			if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
				c.walk(st, sel.X, label, end)
			}
			return false
		case *ast.FuncLit:
			// A non-launched literal (callback, closure): approximate it as
			// running in the enclosing context, with its own frame end.
			c.walk(st, x.Body, label, x.Body.End())
			return false
		case *ast.DeferStmt:
			c.deferred(st, x.Call, label, end)
			for _, a := range x.Call.Args {
				c.walk(st, a, label, end)
			}
			return false
		case *ast.SelectStmt:
			c.selectStmt(st, x, label, end)
			return false
		case *ast.SendStmt:
			c.emit(st, dataflow.ModeSend, x.Chan, x, label, x.Pos(), 0, "", false)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.recvOp(st, x, x, label, "", false)
			}
			return true
		case *ast.RangeStmt:
			if t := c.g.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					c.emit(st, dataflow.ModeRecv, x.X, x, label, x.X.Pos(), 0, "", false)
				}
			}
			return true
		case *ast.CallExpr:
			c.callOp(st, x, label, x.Pos())
			return true
		}
		return true
	})
}

// recvOp classifies a `<-x` expression as a Waiter park or a channel
// receive.
func (c *checker) recvOp(st *fnState, x *ast.UnaryExpr, at ast.Node, label, group string, nonBlock bool) {
	if w, ok := dataflow.WaiterPark(c.g, x); ok {
		c.emit(st, dataflow.ModePark, w, at, label, x.Pos(), 0, group, nonBlock)
		return
	}
	c.emit(st, dataflow.ModeRecv, x.X, at, label, x.Pos(), 0, group, nonBlock)
}

// callOp classifies a call: a channel close, a Waiter/WaitGroup method,
// or a static call site to fold summaries at.
func (c *checker) callOp(st *fnState, call *ast.CallExpr, label string, pos token.Pos) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, builtin := c.g.Info.Uses[id].(*types.Builtin); builtin && len(call.Args) == 1 {
			c.emit(st, dataflow.ModeClose, call.Args[0], call, label, pos, 0, "", false)
			return
		}
	}
	if e, mode, ok := dataflow.SyncCall(c.g, call); ok {
		c.emit(st, mode, e, call, label, pos, 0, "", false)
		return
	}
	c.site(st, call, label, false, pos)
}

// deferred processes a deferred call's operations at the frame's end:
// the op orders after everything else the frame does.
func (c *checker) deferred(st *fnState, call *ast.CallExpr, label string, end token.Pos) {
	c.callOp(st, call, label, end)
}

// selectStmt attributes each comm clause as one group: the select
// progresses if any arm can. A default arm, or an arm on an untrackable
// resource (a timeout channel, a call result), makes the whole group
// non-blocking.
func (c *checker) selectStmt(st *fnState, x *ast.SelectStmt, label string, end token.Pos) {
	group := "sel@" + c.g.PosString(x.Pos())
	escape := false
	for _, cl := range x.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			escape = true // default arm
			continue
		}
		if ch := commChan(cc.Comm); ch != nil {
			if u, ok := ch.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				ch = u.X
			}
			if _, isPark := dataflow.WaiterC(c.g, ch); !isPark {
				if loc, idx := dataflow.ResourceIdent(c.g, st.params, ch); loc == "" && idx < 0 {
					escape = true
				}
			}
		}
	}
	sup := c.hasWaitsafe(x)
	for _, cl := range x.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			if ok {
				for _, s := range cc.Body {
					c.walk(st, s, label, end)
				}
			}
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			c.emitSel(st, dataflow.ModeSend, comm.Chan, comm, label, comm.Pos(), group, escape, sup)
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				c.selRecv(st, u, comm, label, group, escape, sup)
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					c.selRecv(st, u, comm, label, group, escape, sup)
				}
			}
		}
		for _, s := range cc.Body {
			c.walk(st, s, label, end)
		}
	}
}

// commChan extracts the channel expression of a comm clause, nil when it
// has none.
func commChan(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return s.Chan
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u
			}
		}
	}
	return nil
}

func (c *checker) selRecv(st *fnState, u *ast.UnaryExpr, at ast.Node, label, group string, nonBlock, sup bool) {
	if w, ok := dataflow.WaiterPark(c.g, u); ok {
		c.emitSel(st, dataflow.ModePark, w, at, label, u.Pos(), group, nonBlock, sup)
		return
	}
	c.emitSel(st, dataflow.ModeRecv, u.X, at, label, u.Pos(), group, nonBlock, sup)
}

func (c *checker) emitSel(st *fnState, mode string, res ast.Expr, at ast.Node, label string, pos token.Pos, group string, nonBlock, sup bool) {
	c.emitOp(st, mode, res, at, label, pos, 0, group, nonBlock, sup)
}

func (c *checker) emit(st *fnState, mode string, res ast.Expr, at ast.Node, label string, pos token.Pos, sub int, group string, nonBlock bool) {
	c.emitOp(st, mode, res, at, label, pos, sub, group, nonBlock, false)
}

// emitOp resolves the operation's resource identity and records it as a
// raw op (named) or a param op (receiver-first index).
func (c *checker) emitOp(st *fnState, mode string, res ast.Expr, at ast.Node, label string, pos token.Pos, sub int, group string, nonBlock, sup bool) {
	suppressed := sup || st.suppress || c.hasWaitsafe(at)
	loc, idx := dataflow.ResourceIdent(c.g, st.params, res)
	op := rawOp{
		res:        loc,
		param:      idx,
		mode:       mode,
		label:      label,
		fn:         st.fn,
		pos:        pos,
		sub:        sub,
		group:      group,
		loop:       c.loopAt(st.fn, pos),
		site:       c.g.PosString(pos),
		nonBlock:   nonBlock,
		suppressed: suppressed,
	}
	if idx >= 0 {
		// An op on the function's own parameter: it belongs to the caller's
		// summary. Ops inside launched literals are not foldable (they run
		// on a goroutine the caller's sequence does not order).
		if label == "" {
			key := st.fn.Key()
			c.rawParam[key] = append(c.rawParam[key], op)
		}
		return
	}
	if loc == "" {
		return
	}
	c.raw = append(c.raw, op)
}

// site records a static call for summary folding.
func (c *checker) site(st *fnState, call *ast.CallExpr, label string, launch bool, pos token.Pos) {
	callee := c.g.StaticCallee(call)
	if callee == nil {
		return
	}
	c.sites = append(c.sites, callSite{
		fn:         st.fn,
		call:       call,
		key:        dataflow.FuncKey(callee),
		label:      label,
		launch:     launch,
		pos:        pos,
		loop:       c.loopAt(st.fn, pos),
		site:       c.g.PosString(pos),
		suppressed: st.suppress || c.hasWaitsafe(call),
	})
}

func (c *checker) hasWaitsafe(n ast.Node) bool {
	file := c.pass.File(n.Pos())
	return file != nil && c.pass.HasDirective(file, n, "waitsafe")
}

// ---- param-op summaries (phase A fixpoint) ----

// solveParams computes each function's ParamOps: its direct operations
// on parameters plus callee param ops whose argument resolves to one of
// its own parameters, to a fixpoint.
func (c *checker) solveParams() {
	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range c.g.All() {
			key := fn.Key()
			params := dataflow.ParamObjects(fn)
			raws := append([]rawOp(nil), c.rawParam[key]...)
			for _, s := range c.byCaller[key] {
				if s.launch || s.label != "" {
					continue
				}
				sum := c.summaryFor(s.key)
				if sum == nil || len(sum.ParamOps) == 0 {
					continue
				}
				args := dataflow.CallArgs(c.g, s.call)
				for _, po := range sum.ParamOps {
					if po.Param < 0 || po.Param >= len(args) {
						continue
					}
					j, ok := dataflow.ParamIndex(c.g, args[po.Param], params)
					if !ok {
						continue
					}
					raws = append(raws, rawOp{
						param:      j,
						mode:       po.Mode,
						pos:        s.pos,
						sub:        po.Ord,
						group:      composeGroup(s.site, po.Group),
						loop:       composeLoop(s.loop, s.site, po.Loop),
						site:       s.site,
						nonBlock:   po.NB,
						suppressed: s.suppressed,
					})
				}
			}
			ops := toOps(raws)
			if !opsEqual(c.sums[key].ParamOps, ops) {
				c.sums[key].ParamOps = ops
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (c *checker) summaryFor(key string) *Summary {
	if s, ok := c.sums[key]; ok {
		return s
	}
	return c.imported[key]
}

// composeGroup scopes a callee's select-group id by the call site.
func composeGroup(site, g string) string {
	if g == "" {
		return ""
	}
	return site + "/" + g
}

// composeLoop scopes a callee's loop id by the call site, falling back
// to the site's own innermost loop.
func composeLoop(siteLoop, site, l string) string {
	if l == "" {
		return siteLoop
	}
	return site + "/" + l
}

// toOps sorts raw ops by source position and converts them to summary
// form with dense Ord indices.
func toOps(raws []rawOp) []Op {
	sort.SliceStable(raws, func(i, j int) bool {
		if raws[i].pos != raws[j].pos {
			return raws[i].pos < raws[j].pos
		}
		return raws[i].sub < raws[j].sub
	})
	var out []Op
	for i, r := range raws {
		out = append(out, Op{
			Res:   r.res,
			Param: r.param,
			Mode:  r.mode,
			Ord:   i,
			Group: r.group,
			Loop:  r.loop,
			NB:    r.nonBlock || r.suppressed,
			Site:  r.site,
		})
	}
	return out
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- summary folding at call sites (phase B) ----

// foldSites expands callee summaries into the caller's frame: param ops
// whose argument names a concrete resource, and — for imported
// evidence-less functions — pending ops awaiting an origin.
func (c *checker) foldSites() {
	for _, s := range c.sites {
		sum, inPkg := c.sums[s.key], true
		if sum == nil {
			sum, inPkg = c.imported[s.key], false
		}
		if sum == nil {
			continue
		}
		args := dataflow.CallArgs(c.g, s.call)
		params := dataflow.ParamObjects(s.fn)
		for _, po := range sum.ParamOps {
			if po.Param < 0 || po.Param >= len(args) {
				continue
			}
			loc, _ := dataflow.ResourceIdent(c.g, params, args[po.Param])
			if loc == "" {
				continue // caller-param chains live in phase A; the rest is untrackable
			}
			c.raw = append(c.raw, rawOp{
				res:        loc,
				param:      -1,
				mode:       po.Mode,
				label:      s.label,
				fn:         s.fn,
				pos:        s.pos,
				sub:        po.Ord,
				group:      composeGroup(s.site, po.Group),
				loop:       composeLoop(s.loop, s.site, po.Loop),
				site:       s.site,
				nonBlock:   po.NB,
				suppressed: s.suppressed,
			})
		}
		if inPkg {
			continue // in-package named ops are attributed at their own decl
		}
		for _, po := range sum.Pending {
			if po.Res == "" {
				continue
			}
			c.raw = append(c.raw, rawOp{
				res:        po.Res,
				param:      -1,
				mode:       po.Mode,
				label:      s.label,
				fn:         s.fn,
				pos:        s.pos,
				sub:        po.Ord,
				group:      composeGroup(s.site, po.Group),
				loop:       composeLoop(s.loop, s.site, po.Loop),
				site:       s.site,
				nonBlock:   po.NB,
				suppressed: s.suppressed,
			})
		}
	}
}

// ---- attribution ----

// seqOf packs an op's position and fold order into one comparable
// sequence value.
func seqOf(pos token.Pos, sub int) int64 {
	if sub > 0xfff {
		sub = 0xfff
	}
	return int64(pos)<<12 | int64(sub)
}

// attribute fans each raw op out to the goroutine origins of its
// context, and exports the ops of evidence-less entry functions as
// pending facts for the importing call site to attribute.
func (c *checker) attribute() []*attrOp {
	// Pending Ord: source order among the function's own-context ops.
	type fnOp struct {
		idx int
		seq int64
	}
	perFn := make(map[string][]fnOp)
	for i, r := range c.raw {
		if r.label == "" {
			k := r.fn.Key()
			perFn[k] = append(perFn[k], fnOp{idx: i, seq: seqOf(r.pos, r.sub)})
		}
	}
	pendingOrd := make(map[int]int)
	for _, ops := range perFn {
		sort.Slice(ops, func(i, j int) bool { return ops[i].seq < ops[j].seq })
		for ord, o := range ops {
			pendingOrd[o.idx] = ord
		}
	}
	var out []*attrOp
	for i, r := range c.raw {
		fnKey := r.fn.Key()
		ctx := []string{r.label}
		if r.label == "" {
			ctx = c.origins.Of(r.fn)
		}
		if r.label == "" && !c.origins.HasEvidence(r.fn) &&
			len(ctx) == 1 && ctx[0] == dataflow.EntryOrigin {
			c.sums[fnKey].Pending = append(c.sums[fnKey].Pending, Op{
				Res:   r.res,
				Param: -1,
				Mode:  r.mode,
				Ord:   pendingOrd[i],
				Group: r.group,
				Loop:  r.loop,
				NB:    r.nonBlock || r.suppressed,
				Site:  r.site,
			})
		}
		frame := fnKey + "\x00" + r.label
		for _, origin := range ctx {
			out = append(out, &attrOp{
				res:        r.res,
				mode:       r.mode,
				origin:     origin,
				frame:      frame,
				seq:        seqOf(r.pos, r.sub),
				group:      r.group,
				loop:       r.loop,
				pos:        r.pos,
				site:       r.site,
				nonBlock:   r.nonBlock,
				suppressed: r.suppressed,
			})
		}
	}
	return out
}

// ---- the wait-cycle check ----

// blockGroup is one point where an origin may park: a standalone
// blocking op, or the arms of one select.
type blockGroup struct {
	origin, frame string
	seq           int64
	loop          string
	ops           []*attrOp
	member        map[*attrOp]bool
	nonBlock      bool
	suppressed    bool
}

func (c *checker) check(attributed []*attrOp) {
	byRes := make(map[string][]*attrOp)
	for _, a := range attributed {
		byRes[a.res] = append(byRes[a.res], a)
	}
	groups := c.blockGroups(attributed)
	type finding struct {
		pos token.Pos
		key string
		msg string
	}
	var findings []finding
	seen := make(map[string]bool)
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			a, b := groups[i], groups[j]
			if a.origin == b.origin || a.suppressed || b.suppressed {
				continue
			}
			if !c.stuck(a, b, byRes) || !c.stuck(b, a, byRes) {
				continue
			}
			ra, rb := a.ops[0], b.ops[0]
			if rb.pos < ra.pos {
				ra, rb = rb, ra
				a, b = b, a
			}
			key := ra.site + "|" + rb.site
			if seen[key] {
				continue
			}
			seen[key] = true
			findings = append(findings, finding{
				pos: ra.pos,
				key: key,
				msg: "static wait cycle: " + a.origin + " blocked at " + ra.mode + " of " + ra.res +
					" (" + ra.site + ") and " + b.origin + " blocked at " + rb.mode + " of " + rb.res +
					" (" + rb.site + ") can each be released only past the other's block — reorder the hand-off, buffer the channel, or annotate //cyclolint:waitsafe with the progress argument",
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].key < findings[j].key
	})
	for _, f := range findings {
		c.pass.Reportf(f.pos, "%s", f.msg)
	}
}

// blockGroups collects the blocking candidates: grouped select arms and
// standalone parks, excluding the entry origin (external callers park at
// their own risk; origins here are launch sites this package created).
func (c *checker) blockGroups(attributed []*attrOp) []*blockGroup {
	byKey := make(map[string]*blockGroup)
	var order []string
	for _, a := range attributed {
		if !dataflow.BlockingMode(a.mode) || a.origin == dataflow.EntryOrigin {
			continue
		}
		gid := a.group
		if gid == "" {
			gid = "op@" + a.site + "#" + a.mode
		}
		key := a.frame + "\x00" + a.origin + "\x00" + gid
		g, ok := byKey[key]
		if !ok {
			g = &blockGroup{origin: a.origin, frame: a.frame, member: make(map[*attrOp]bool)}
			byKey[key] = g
			order = append(order, key)
		}
		g.ops = append(g.ops, a)
		g.member[a] = true
		g.nonBlock = g.nonBlock || a.nonBlock
		g.suppressed = g.suppressed || a.suppressed
	}
	var out []*blockGroup
	for _, key := range order {
		g := byKey[key]
		if g.nonBlock {
			continue
		}
		sort.Slice(g.ops, func(i, j int) bool { return g.ops[i].seq < g.ops[j].seq })
		g.seq = g.ops[0].seq
		g.loop = g.ops[0].loop
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].frame != out[j].frame {
			return out[i].frame < out[j].frame
		}
		if out[i].origin != out[j].origin {
			return out[i].origin < out[j].origin
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// stuck reports whether group a cannot progress while group b is
// blocked: every arm of a has at least one visible releaser and all of
// them are unreachable.
func (c *checker) stuck(a, b *blockGroup, byRes map[string][]*attrOp) bool {
	for _, op := range a.ops {
		usable, released := 0, false
		for _, r := range byRes[op.res] {
			if r == op || a.member[r] {
				continue // a select cannot release itself
			}
			if !dataflow.Releases(op.mode, r.mode) {
				continue
			}
			usable++
			if b.member[r] || c.reachable(op, r, a, b) {
				released = true
				break
			}
		}
		if usable == 0 || released {
			return false
		}
	}
	return true
}

// reachable reports whether releaser r can execute while groups a and b
// are blocked (op is the blocked operation of a under test).
func (c *checker) reachable(op, r *attrOp, a, b *blockGroup) bool {
	pivot := b
	if r.origin == a.origin {
		pivot = a
	} else if r.origin != b.origin {
		return true // a third origin is not ordered against either block
	}
	if r.frame != pivot.frame {
		return true // another frame of the same origin: ordering unknown
	}
	if r.loop != "" && r.loop == pivot.loop {
		return true // shared loop: iterations interleave with the block
	}
	if r.seq > pivot.seq {
		return false // strictly behind the blocking point
	}
	// Ordered before the blocking point: the wakeup may be banked (a
	// close is sticky, a Signal or Done persists) — except a channel
	// rendezvous in the blocked op's own origin, which cannot satisfy a
	// send/recv that had not started yet.
	if pivot == a && r.mode != dataflow.ModeClose &&
		(op.mode == dataflow.ModeSend || op.mode == dataflow.ModeRecv) {
		return false
	}
	return true
}
