// Package lint assembles cyclolint's analyzer suite. Each analyzer
// enforces one repo invariant that tests cannot economically cover:
//
//	viewescape   — relation.View aliases must not outlive the buffer credit
//	bufown       — registered-buffer credits released on every path
//	creditflow   — ring send credits from the free pool returned on every path
//	lockorder    — one global lock-acquisition order, no cycles
//	hotpathalloc — //cyclolint:hotpath functions stay allocation-free
//	spanpair     — trace Begin/End pairing on every return path
//	spscrole     — each SPSC ring keeps a single producer and consumer goroutine
//	frozenpub    — atomically published objects are frozen after the Store
//	shareguard   — shared locations with a plain write need a common guard
//	waitcycle    — no static wait-for cycles between goroutine origins
//	unsafeonly   — unsafe confined to build-tagged endian files
//	metricname   — metric names are greppable, unit-suffixed literals
//
// Drivers (cmd/cyclolint standalone and vettool modes, linttest) consume
// Analyzers(); the suite order is stable for deterministic output.
package lint

import (
	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/bufown"
	"cyclojoin/internal/lint/creditflow"
	"cyclojoin/internal/lint/frozenpub"
	"cyclojoin/internal/lint/hotpathalloc"
	"cyclojoin/internal/lint/lockorder"
	"cyclojoin/internal/lint/metricname"
	"cyclojoin/internal/lint/shareguard"
	"cyclojoin/internal/lint/spanpair"
	"cyclojoin/internal/lint/spscrole"
	"cyclojoin/internal/lint/unsafeonly"
	"cyclojoin/internal/lint/viewescape"
	"cyclojoin/internal/lint/waitcycle"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		viewescape.Analyzer,
		bufown.Analyzer,
		creditflow.Analyzer,
		lockorder.Analyzer,
		hotpathalloc.Analyzer,
		spanpair.Analyzer,
		spscrole.Analyzer,
		frozenpub.Analyzer,
		shareguard.Analyzer,
		waitcycle.Analyzer,
		unsafeonly.Analyzer,
		metricname.Analyzer,
	}
}
