package bufown_test

import (
	"testing"

	"cyclojoin/internal/lint/bufown"
	"cyclojoin/internal/lint/linttest"
)

func TestBufOwn(t *testing.T) {
	linttest.Run(t, bufown.Analyzer, "bufown")
}

func TestBufOwnCrossPackage(t *testing.T) {
	linttest.Run(t, bufown.Analyzer, "bufdep/dep", "bufdep/use")
}

func TestBufOwnFix(t *testing.T) {
	linttest.RunFix(t, bufown.Analyzer, "bufown")
}
