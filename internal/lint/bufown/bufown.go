// Package bufown verifies the lifecycle of registered RDMA buffers:
// acquire → (write) → post → completion → release.
//
// A *rdma.Buffer is pinned, pooled memory. The pools are registered once
// (§III-C of the paper's design: registration is the expensive part), so
// every buffer taken from a free list — `buf := <-n.freeSend` — carries a
// credit that must go somewhere: back on the free list, to the transport
// via PostSend/PostRecv/PostWrite, or to another owner (stored, returned,
// or passed to a function that releases it — tracked via cross-package
// effect facts). A return path that simply drops the local leaks the
// credit; the pool shrinks silently and a restarted node wedges under
// backpressure slots short. These leaks hide in exactly the paths tests
// rarely drive: shutdown selects and encode-failure bailouts.
//
// The analyzer simulates each function path-sensitively, like spanpair:
// tracked buffers are Held/Posted/Released per control-flow path, merges
// keep the leakiest state, and deferred releases count for every return
// after them. It reports:
//
//   - a buffer still Held at a return or at a loop's back edge (with a
//     suggested fix reinserting the free-list send when the acquire came
//     from a channel);
//   - a double release (two sends of the same credit corrupt the pool's
//     accounting — the second send duplicates the credit);
//   - a double post without an intervening completion;
//   - access to a posted buffer (SetLen/Data/Bytes) — the transport owns
//     the memory until its completion is reaped.
//
// Custody handoffs the analyzer cannot see locally are the owner's
// contract: storing the buffer in a struct, returning it, or passing it
// to a function with no known release effect all end tracking for that
// path. Deliberate exceptions are annotated at the statement:
//
//	//cyclolint:bufsafe <justification>
package bufown

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// rdmaPkg declares Buffer, Device and the queue-pair interfaces; the
// implementation itself is exempt.
const rdmaPkg = "cyclojoin/internal/rdma"

// Analyzer flags registered-buffer lifecycle violations.
var Analyzer = &analysis.Analyzer{
	Name:      "bufown",
	Doc:       "a registered *rdma.Buffer credit must be released (free list, post, or handoff) on every path; posted buffers are untouchable until completion",
	Version:   "1",
	UsesFacts: true,
	Run:       run,
}

// postMethods transfer custody to the transport until a completion.
var postMethods = map[string]bool{
	"PostRecv": true, "PostSend": true, "PostWrite": true, "PostWriteImm": true,
}

// accessMethods touch buffer memory and are invalid while posted.
var accessMethods = map[string]bool{
	"SetLen": true, "Data": true, "Bytes": true,
}

func run(pass *analysis.Pass) error {
	g := dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, pass.Files)
	effects := make(map[string]*Effect)
	for _, imp := range pass.Pkg.Imports() {
		for k, e := range DecodeBufFacts(pass.ImportedFacts(imp.Path())) {
			effects[k] = e
		}
	}
	if pass.Pkg.Path() != rdmaPkg {
		solveEffects(pass, g, effects)
	}
	pass.Export(EncodeBufFacts(effects))
	if pass.Pkg.Path() == rdmaPkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.FuncHasDirective(fn, "bufsafe") {
				continue
			}
			checkFunc(pass, g, effects, file, fn)
		}
	}
	return nil
}

// isBufferPtr reports whether t is *rdma.Buffer.
func isBufferPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return analysis.IsNamed(ptr.Elem(), rdmaPkg, "Buffer")
}

// isBufferChan reports whether t is a channel of *rdma.Buffer.
func isBufferChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	return ok && isBufferPtr(ch.Elem())
}

// isCompletionChan reports whether t is a channel of rdma.Completion —
// the queue a transport delivers ownership back on.
func isCompletionChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	return ok && analysis.IsNamed(ch.Elem(), rdmaPkg, "Completion")
}

// ---- effect inference (flow-insensitive, with alias closure) ----

// solveEffects computes each local function's Effect to a fixpoint and
// merges them into effects (which already holds the imports' tables).
func solveEffects(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect) {
	fns := g.All()
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range fns {
			e := inferEffect(pass, g, effects, fn)
			old := effects[fn.Key()]
			if !effectsEqual(old, e) {
				effects[fn.Key()] = e
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func effectsEqual(a, b *Effect) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return intsEqual(a.ParamRelease, b.ParamRelease) &&
		intsEqual(a.ParamBorrowed, b.ParamBorrowed) &&
		intsEqual(a.AcquiresResult, b.AcquiresResult)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// combinedParams lists receiver-first parameter objects of fn.
func combinedParams(fn *dataflow.Func) []*types.Var {
	sig := fn.Obj.Type().(*types.Signature)
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// inferEffect derives fn's custody effect: which buffer parameters it
// releases (directly, by posting, or via a callee with a known release
// effect — through simple local aliases), and which results carry a
// freshly acquired buffer.
func inferEffect(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect, fn *dataflow.Func) *Effect {
	e := &Effect{Key: fn.Key()}
	if fn.Decl.Body == nil {
		return e
	}
	params := combinedParams(fn)

	// aliasRoot maps a local object to the parameter index (or acquired
	// marker) it aliases via plain `a := p` assignments.
	objOf := func(id *ast.Ident) types.Object {
		if o := pass.TypesInfo.Defs[id]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[id]
	}
	paramIdx := make(map[types.Object]int)
	for i, p := range params {
		if isBufferPtr(p.Type()) {
			paramIdx[p] = i
		}
	}
	acquired := make(map[types.Object]bool)
	// Two passes: first grow the alias sets, then classify uses.
	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				lobj := objOf(id)
				if lobj == nil || !isBufferPtr(lobj.Type()) {
					continue
				}
				if i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) {
					if rid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
						if robj := objOf(rid); robj != nil {
							if idx, ok := paramIdx[robj]; ok {
								paramIdx[lobj] = idx
							}
							if acquired[robj] {
								acquired[lobj] = true
							}
						}
						continue
					}
				}
				// Acquire through := <-ch / Register / effect-call.
				rhs := as.Rhs[0]
				if len(as.Lhs) == len(as.Rhs) {
					rhs = as.Rhs[i]
				}
				if kind, _ := acquireKind(pass, g, effects, rhs, i); kind != acquireNone {
					acquired[lobj] = true
				}
			}
			return true
		})
	}

	released := make(map[int]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if !isBufferChan(pass.TypesInfo.TypeOf(x.Chan)) {
				return true
			}
			if id, ok := ast.Unparen(x.Value).(*ast.Ident); ok {
				if idx, ok := paramIdx[objOf(id)]; ok {
					released[idx] = true
				}
			}
		case *ast.CallExpr:
			for ai, arg := range callArgs(pass, x) {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				idx, ok := paramIdx[objOf(id)]
				if !ok {
					continue
				}
				if isPostCall(pass, x) && ai > 0 && isBufferPtr(pass.TypesInfo.TypeOf(arg)) {
					released[idx] = true
					continue
				}
				if ce := calleeEffect(g, effects, x); ce != nil {
					for _, r := range ce.ParamRelease {
						if r == ai {
							released[idx] = true
						}
					}
				}
			}
		}
		return true
	})
	for idx := range released {
		e.ParamRelease = append(e.ParamRelease, idx)
	}
	sort.Ints(e.ParamRelease)

	// ParamBorrowed: buffer parameters whose every use keeps custody with
	// the caller — comparisons, methods on the buffer itself, rebinding to
	// another buffer local, or passing to a callee that itself only
	// borrows. Any other use (return, store, capture, unknown callee)
	// escapes, and a release supersedes a borrow.
	parent := buildParents(fn.Decl.Body)
	escaped := make(map[int]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		idx, ok := paramIdx[objOf(id)]
		if !ok {
			return true
		}
		if !borrowUseSafe(pass, g, effects, parent, id, objOf) {
			escaped[idx] = true
		}
		return true
	})
	for i, p := range params {
		if !isBufferPtr(p.Type()) || released[i] || escaped[i] {
			continue
		}
		e.ParamBorrowed = append(e.ParamBorrowed, i)
	}
	sort.Ints(e.ParamBorrowed)

	// AcquiresResult: a return whose expression is an acquire form or an
	// acquired local.
	fresh := make(map[int]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested functions own their own effects
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for j, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if acquired[objOf(id)] {
					fresh[j] = true
				}
				continue
			}
			if kind, _ := acquireKind(pass, g, effects, res, j); kind != acquireNone {
				fresh[j] = true
			}
		}
		return true
	})
	for j := range fresh {
		e.AcquiresResult = append(e.AcquiresResult, j)
	}
	sort.Ints(e.AcquiresResult)
	return e
}

// buildParents maps every node in root to its syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parent := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

// borrowUseSafe reports whether this use of a buffer-parameter ident keeps
// custody with the caller.
func borrowUseSafe(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect,
	parent map[ast.Node]ast.Node, id *ast.Ident, objOf func(*ast.Ident) types.Object) bool {
	var n ast.Node = id
	p := parent[n]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			n = pe
			p = parent[pe]
			continue
		}
		break
	}
	switch x := p.(type) {
	case *ast.AssignStmt:
		for i, lhs := range x.Lhs {
			if lhs == n {
				return true // rebinding the name itself
			}
			if i < len(x.Rhs) && x.Rhs[i] == n && len(x.Lhs) == len(x.Rhs) {
				if lid, ok := lhs.(*ast.Ident); ok {
					if lid.Name == "_" {
						return true // discarded
					}
					if lo := objOf(lid); lo != nil && isBufferPtr(lo.Type()) {
						return true // local alias, tracked by the closure pass
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		// On a buffer chan this is a release (already counted); on anything
		// else the receiver keeps it.
		return x.Value == n && isBufferChan(pass.TypesInfo.TypeOf(x.Chan))
	case *ast.BinaryExpr:
		return true // comparisons don't move custody
	case *ast.SelectorExpr:
		if x.X != n {
			return false
		}
		// p.Method(...) — a method call on the buffer itself only touches
		// its memory; a method value or field access escapes.
		call, ok := parent[x].(*ast.CallExpr)
		if !ok || call.Fun != ast.Node(x) {
			return false
		}
		_, isMethod := pass.TypesInfo.Selections[x]
		return isMethod
	case *ast.CallExpr:
		if x.Fun == n {
			return false
		}
		for ai, arg := range callArgs(pass, x) {
			if arg != n {
				continue
			}
			if isPostCall(pass, x) && ai > 0 && isBufferPtr(pass.TypesInfo.TypeOf(arg)) {
				return true // a post is a release, already counted
			}
			if ce := calleeEffect(g, effects, x); ce != nil {
				return releasesParam(ce, ai) || borrowsParam(ce, ai)
			}
			return false
		}
		return false
	default:
		return false
	}
}

// callArgs returns the call's combined argument list in the same
// receiver-first indexing Effect uses: methods get their receiver at
// slot 0, plain functions start at 0 with their declared arguments.
func callArgs(pass *analysis.Pass, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// isPostCall reports PostRecv/PostSend/PostWrite/PostWriteImm calls on
// any receiver, as long as some argument is a *rdma.Buffer — this covers
// both the rdma interfaces and concrete transports.
func isPostCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !postMethods[sel.Sel.Name] {
		return false
	}
	if _, ok := pass.TypesInfo.Selections[sel]; !ok {
		return false
	}
	for _, a := range call.Args {
		if isBufferPtr(pass.TypesInfo.TypeOf(a)) {
			return true
		}
	}
	return false
}

// calleeEffect resolves the custody effect governing a call, if known.
func calleeEffect(g *dataflow.Graph, effects map[string]*Effect, call *ast.CallExpr) *Effect {
	fn := g.StaticCallee(call)
	if fn == nil {
		return nil
	}
	return effects[fn.FullName()]
}

type acquire int

const (
	acquireNone acquire = iota
	acquireChan         // <-ch: releasing means sending back on ch
	acquireCall         // Register / effect callee: no known home channel
)

// acquireKind classifies an acquire expression feeding result/LHS slot i
// and, for channel receives, returns the channel expression.
func acquireKind(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect, e ast.Expr, i int) (acquire, ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.ARROW && isBufferChan(pass.TypesInfo.TypeOf(x.X)) {
			return acquireChan, x.X
		}
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Register" {
			if selection, ok := pass.TypesInfo.Selections[sel]; ok &&
				analysis.IsNamed(selection.Recv(), rdmaPkg, "Device") && i == 0 {
				return acquireCall, nil
			}
		}
		if ce := calleeEffect(g, effects, x); ce != nil {
			for _, j := range ce.AcquiresResult {
				if j == i {
					return acquireCall, nil
				}
			}
		}
	}
	return acquireNone, nil
}

// ---- path-sensitive typestate walk ----

type status int

const (
	untracked status = iota
	released
	posted
	held // highest wins on merge: a leak on any path is a leak
)

type bufState struct {
	s status
	// pos is where the state was last set (the release for released, the
	// post for posted), cited in double-release/use-after-post reports.
	pos token.Pos
}

type state map[types.Object]bufState

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s state) merge(other state) {
	for k, v := range other {
		if v.s > s[k].s {
			s[k] = v
		}
	}
}

// tracked is one acquire site.
type tracked struct {
	obj      types.Object
	acquire  token.Pos
	kind     acquire
	chanExpr ast.Expr // the free list, when kind == acquireChan
}

type checker struct {
	pass    *analysis.Pass
	g       *dataflow.Graph
	effects map[string]*Effect
	file    *ast.File
	fn      *ast.FuncDecl

	bufs map[types.Object]*tracked
	// errFor pairs the error result of a `buf, err := acquire()` with its
	// buffer: on the error path the acquire failed and nothing is held.
	errFor   map[types.Object]types.Object
	hasGoto  bool
	reported map[posKey]bool
}

type posKey struct {
	obj types.Object
	pos token.Pos
}

func checkFunc(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect, file *ast.File, fn *ast.FuncDecl) {
	c := &checker{
		pass:     pass,
		g:        g,
		effects:  effects,
		file:     file,
		fn:       fn,
		bufs:     make(map[types.Object]*tracked),
		errFor:   make(map[types.Object]types.Object),
		reported: make(map[posKey]bool),
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			c.hasGoto = true
		}
		return true
	})
	if c.hasGoto {
		return
	}
	st := make(state)
	terminated := c.stmt(fn.Body, st)
	if !terminated {
		c.reportHeld(st, fn.Body.End(), fn.Body)
	}
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Uses[id]
}

// trackedIdent resolves e to a tracked buffer object, if it is one.
func (c *checker) trackedIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.objOf(id)
	if obj == nil || c.bufs[obj] == nil {
		return nil
	}
	return obj
}

func (c *checker) exempt(at ast.Node) bool {
	return c.pass.HasDirective(c.file, at, "bufsafe")
}

func (c *checker) report(obj types.Object, at token.Pos, node ast.Node, format string, args ...any) {
	key := posKey{obj, at}
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	if node != nil && c.exempt(node) {
		return
	}
	c.pass.Reportf(at, format, args...)
}

func (c *checker) reportHeld(st state, at token.Pos, node ast.Node) {
	for obj, v := range st {
		if v.s != held {
			continue
		}
		tr := c.bufs[obj]
		key := posKey{obj, at}
		if c.reported[key] {
			continue
		}
		c.reported[key] = true
		if node != nil && c.exempt(node) {
			continue
		}
		d := analysis.Diagnostic{
			Pos: at,
			Message: "registered buffer " + obj.Name() + " (acquired at " +
				c.pass.Fset.Position(tr.acquire).String() + ") is still held on this return path; release its credit before returning, or annotate //cyclolint:bufsafe with the custody argument",
		}
		if tr.kind == acquireChan && tr.chanExpr != nil {
			if fix := c.releaseFix(tr, obj, at); fix != nil {
				d.Fixes = append(d.Fixes, *fix)
			}
		}
		c.pass.Report(d)
	}
}

// releaseFix builds the `freeList <- buf` insertion in front of the
// leaking return, matching the return's indentation.
func (c *checker) releaseFix(tr *tracked, obj types.Object, at token.Pos) *analysis.SuggestedFix {
	var chanSrc bytes.Buffer
	if err := printer.Fprint(&chanSrc, c.pass.Fset, tr.chanExpr); err != nil {
		return nil
	}
	pos := c.pass.Fset.Position(at)
	indent := strings.Repeat("\t", pos.Column-1)
	return &analysis.SuggestedFix{
		Message: "send " + obj.Name() + " back on its free list",
		Edits: []analysis.TextEdit{{
			Pos:     at,
			End:     at,
			NewText: chanSrc.String() + " <- " + obj.Name() + "\n" + indent,
		}},
	}
}

// ---- statement simulation ----

// stmt simulates s along the fall-through path; true means control cannot
// fall past it.
func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch x := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return c.stmtList(x.List, st)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if c.terminatesCall(call) {
				c.scanExpr(x.X, st, x)
				return true
			}
		}
		c.scanExpr(x.X, st, x)
		return false
	case *ast.AssignStmt:
		c.assign(x, st)
		return false
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.valueSpec(vs, st, x)
				}
			}
		}
		return false
	case *ast.SendStmt:
		c.send(x, st)
		return false
	case *ast.DeferStmt:
		// A deferred release covers every return after it; modeling it as
		// immediate is sound for leak checking (same as spanpair's End).
		c.deferredCall(x.Call, st, x)
		return false
	case *ast.GoStmt:
		c.scanExpr(x.Call, st, x)
		return false
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			if obj := c.trackedIdent(res); obj != nil {
				// Returning the buffer transfers the credit to the caller.
				st[obj] = bufState{s: untracked, pos: x.Pos()}
				continue
			}
			c.scanExpr(res, st, x)
		}
		c.reportHeld(st, x.Pos(), x)
		return true
	case *ast.IfStmt:
		c.stmt(x.Init, st)
		c.scanExpr(x.Cond, st, x)
		thenSt := st.clone()
		elseSt := st.clone()
		if bufObj, eq := c.errCheck(x.Cond); bufObj != nil {
			if eq {
				// err == nil: the acquire failed on the else path.
				elseSt[bufObj] = bufState{s: untracked, pos: x.Cond.Pos()}
			} else {
				// err != nil: the acquire failed on the then path.
				thenSt[bufObj] = bufState{s: untracked, pos: x.Cond.Pos()}
			}
		}
		thenTerm := c.stmt(x.Body, thenSt)
		elseTerm := false
		if x.Else != nil {
			elseTerm = c.stmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			copyInto(st, elseSt)
		case elseTerm:
			copyInto(st, thenSt)
		default:
			copyInto(st, thenSt)
			st.merge(elseSt)
		}
		return false
	case *ast.ForStmt:
		c.stmt(x.Init, st)
		c.scanExpr(x.Cond, st, x)
		c.loopBody(x.Body, st)
		return x.Cond == nil && !hasBreak(x.Body)
	case *ast.RangeStmt:
		if isCompletionChan(c.pass.TypesInfo.TypeOf(x.X)) {
			c.reapCompletions(st, x.X.Pos())
		}
		c.scanExpr(x.X, st, x)
		c.loopBody(x.Body, st)
		return false
	case *ast.SwitchStmt:
		c.stmt(x.Init, st)
		c.scanExpr(x.Tag, st, x)
		return c.clauses(x.Body, st, hasDefault(x.Body))
	case *ast.TypeSwitchStmt:
		c.stmt(x.Init, st)
		return c.clauses(x.Body, st, hasDefault(x.Body))
	case *ast.SelectStmt:
		return c.clauses(x.Body, st, true)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, st)
	case *ast.BranchStmt:
		return true
	case *ast.IncDecStmt, *ast.EmptyStmt:
		return false
	default:
		return false
	}
}

func (c *checker) stmtList(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) loopBody(body *ast.BlockStmt, st state) {
	bodySt := st.clone()
	terminated := c.stmt(body, bodySt)
	if !terminated {
		for obj, v := range bodySt {
			if v.s != held || st[obj].s == held {
				continue // only buffers acquired by this iteration
			}
			tr := c.bufs[obj]
			if tr == nil || tr.acquire < body.Pos() || body.End() <= tr.acquire {
				continue
			}
			c.report(obj, tr.acquire, nil,
				"registered buffer %s is still held at the loop's back edge; release its credit before the iteration ends, or annotate //cyclolint:bufsafe",
				obj.Name())
			// One report per acquire site; don't cascade to the exits.
			bodySt[obj] = bufState{s: untracked, pos: v.pos}
		}
	}
	st.merge(bodySt)
}

func (c *checker) clauses(body *ast.BlockStmt, st state, exhaustive bool) bool {
	pre := st.clone()
	allTerm := true
	first := true
	for _, cl := range body.List {
		clSt := pre.clone()
		var term bool
		switch cc := cl.(type) {
		case *ast.CaseClause:
			term = c.stmtList(cc.Body, clSt)
		case *ast.CommClause:
			if cc.Comm != nil {
				c.stmt(cc.Comm, clSt)
			}
			term = c.stmtList(cc.Body, clSt)
		default:
			continue
		}
		if term {
			continue
		}
		allTerm = false
		if first {
			copyInto(st, clSt)
			first = false
		} else {
			st.merge(clSt)
		}
	}
	if !exhaustive {
		if first {
			copyInto(st, pre)
		} else {
			st.merge(pre)
		}
		return false
	}
	return allTerm
}

// assign handles acquires (LHS becomes held) and alias/escape on the RHS.
func (c *checker) assign(x *ast.AssignStmt, st state) {
	// Parallel assignment: classify each RHS slot against its LHS.
	for i, lhs := range x.Lhs {
		var rhs ast.Expr
		ri := i
		if len(x.Lhs) == len(x.Rhs) {
			rhs = x.Rhs[i]
			ri = 0 // each RHS is its own single-result expression
		} else if len(x.Rhs) == 1 {
			rhs = x.Rhs[0]
			// multi-value: slot i of the single call/receive
		} else {
			continue
		}
		id, isIdent := lhs.(*ast.Ident)
		if isIdent && id.Name != "_" {
			obj := c.objOf(id)
			if obj != nil && isBufferPtr(obj.Type()) {
				if kind, ch := acquireKind(c.pass, c.g, c.effects, rhs, ri); kind != acquireNone {
					c.bufs[obj] = &tracked{obj: obj, acquire: rhs.Pos(), kind: kind, chanExpr: ch}
					st[obj] = bufState{s: held, pos: rhs.Pos()}
					if len(x.Lhs) != len(x.Rhs) {
						// buf, err := acquire(): remember the pairing so the
						// err != nil path is known to hold nothing.
						for _, other := range x.Lhs {
							oid, ok := other.(*ast.Ident)
							if !ok || oid == id {
								continue
							}
							if oobj := c.objOf(oid); oobj != nil && isErrorType(oobj.Type()) {
								c.errFor[oobj] = obj
							}
						}
					}
					if len(x.Rhs) == 1 {
						// The single RHS is consumed by this acquire.
						c.scanCallArgsOnly(rhs, st, x)
						return
					}
					continue
				}
				// Reassignment from a non-acquire: tracking ends.
				if prev, ok := st[obj]; ok && prev.s == held {
					// Overwriting a held credit drops it.
					c.report(obj, x.Pos(), x,
						"registered buffer %s (acquired at %s) is overwritten while its credit is still held",
						obj.Name(), c.pass.Fset.Position(c.bufs[obj].acquire))
				}
				st[obj] = bufState{s: untracked, pos: x.Pos()}
			}
		}
		if rhs != nil {
			if obj := c.trackedIdent(rhs); obj != nil {
				if isIdent && id.Name == "_" {
					continue // `_ = buf` discards the value; custody is unchanged
				}
				// Aliasing the buffer into another name (or storing it):
				// custody follows the new owner; stop tracking here.
				st[obj] = bufState{s: untracked, pos: x.Pos()}
				continue
			}
			c.scanExpr(rhs, st, x)
		}
	}
	// Non-ident LHS (field stores, index stores) may embed tracked idents
	// on the left too (rare); treat them as escapes.
	for _, lhs := range x.Lhs {
		if _, ok := lhs.(*ast.Ident); ok {
			continue
		}
		c.scanExpr(lhs, st, x)
	}
}

func (c *checker) valueSpec(vs *ast.ValueSpec, st state, at ast.Stmt) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			continue
		}
		obj := c.objOf(name)
		if obj != nil && isBufferPtr(obj.Type()) {
			if kind, ch := acquireKind(c.pass, c.g, c.effects, vs.Values[i], 0); kind != acquireNone {
				c.bufs[obj] = &tracked{obj: obj, acquire: vs.Values[i].Pos(), kind: kind, chanExpr: ch}
				st[obj] = bufState{s: held, pos: vs.Values[i].Pos()}
				continue
			}
		}
		c.scanExpr(vs.Values[i], st, at)
	}
}

// reapCompletions models receiving from a completion queue: the
// transport hands custody of completed buffers back to the application,
// so every posted buffer leaves the analyzer's sight — which buffer a
// given completion covers is not statically knowable.
func (c *checker) reapCompletions(st state, at token.Pos) {
	for obj, v := range st {
		if v.s == posted {
			st[obj] = bufState{s: untracked, pos: at}
			// Path merges keep the leakiest state, which would resurrect
			// `posted` when the reap sits in a loop body; once a completion
			// is reaped anywhere, stop tracking the buffer outright.
			delete(c.bufs, obj)
		}
	}
}

// send handles `ch <- buf`: a release when ch is a buffer free list.
func (c *checker) send(x *ast.SendStmt, st state) {
	obj := c.trackedIdent(x.Value)
	if obj == nil || !isBufferChan(c.pass.TypesInfo.TypeOf(x.Chan)) {
		if obj != nil {
			// Sent on a non-buffer channel (inside a struct, etc.): the
			// receiver owns it now.
			st[obj] = bufState{s: untracked, pos: x.Pos()}
			return
		}
		c.scanExpr(x.Value, st, x)
		return
	}
	if prev, ok := st[obj]; ok && prev.s == released {
		c.report(obj, x.Pos(), x,
			"registered buffer %s is released twice on this path (previous release at %s); the duplicate credit corrupts the pool",
			obj.Name(), c.pass.Fset.Position(prev.pos))
	}
	st[obj] = bufState{s: released, pos: x.Pos()}
}

// deferredCall applies a deferred statement's custody effects immediately.
func (c *checker) deferredCall(call *ast.CallExpr, st state, at ast.Stmt) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if snd, ok := n.(*ast.SendStmt); ok {
				c.send(snd, st)
			}
			return true
		})
		return
	}
	c.scanExpr(call, st, at)
}

// scanCallArgsOnly scans an acquire call's arguments without treating the
// call itself as an escape of anything.
func (c *checker) scanCallArgsOnly(e ast.Expr, st state, at ast.Stmt) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		for _, a := range call.Args {
			c.scanExpr(a, st, at)
		}
	}
}

// scanExpr classifies every use of a tracked buffer inside e: posts,
// releasing callees, memory access while posted, and everything else as a
// custody handoff that ends tracking on this path.
func (c *checker) scanExpr(e ast.Expr, st state, at ast.Stmt) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := c.trackedIdent(x); obj != nil {
			st[obj] = bufState{s: untracked, pos: x.Pos()}
		}
	case *ast.CallExpr:
		c.call(x, st, at)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &buf escapes.
			if obj := c.trackedIdent(x.X); obj != nil {
				st[obj] = bufState{s: untracked, pos: x.Pos()}
				return
			}
		}
		if x.Op == token.ARROW && isCompletionChan(c.pass.TypesInfo.TypeOf(x.X)) {
			c.reapCompletions(st, x.Pos())
		}
		c.scanExpr(x.X, st, at)
	case *ast.BinaryExpr:
		// Comparisons (buf == nil) don't move custody.
		if obj := c.trackedIdent(x.X); obj == nil {
			c.scanExpr(x.X, st, at)
		}
		if obj := c.trackedIdent(x.Y); obj == nil {
			c.scanExpr(x.Y, st, at)
		}
	case *ast.ParenExpr:
		c.scanExpr(x.X, st, at)
	case *ast.StarExpr:
		c.scanExpr(x.X, st, at)
	case *ast.SelectorExpr:
		// buf.Method as a method value, or buf.field: handled at call
		// sites; a bare selector on a tracked buffer is an escape.
		if obj := c.trackedIdent(x.X); obj != nil {
			st[obj] = bufState{s: untracked, pos: x.Pos()}
			return
		}
		c.scanExpr(x.X, st, at)
	case *ast.IndexExpr:
		c.scanExpr(x.X, st, at)
		c.scanExpr(x.Index, st, at)
	case *ast.SliceExpr:
		c.scanExpr(x.X, st, at)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if obj := c.trackedIdent(v); obj != nil {
				// Stored in a struct/slice/map: the container owns it.
				st[obj] = bufState{s: untracked, pos: v.Pos()}
				continue
			}
			c.scanExpr(v, st, at)
		}
	case *ast.TypeAssertExpr:
		c.scanExpr(x.X, st, at)
	case *ast.FuncLit:
		// The closure may release later; custody analysis stops here for
		// any buffer it captures.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.trackedIdent(id); obj != nil {
					st[obj] = bufState{s: untracked, pos: id.Pos()}
				}
			}
			return true
		})
	}
}

// call applies one call's custody semantics.
func (c *checker) call(call *ast.CallExpr, st state, at ast.Stmt) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked (or go'd) literal: its captures escape.
		c.scanExpr(fl, st, at)
	}
	// Memory access on a posted buffer: buf.SetLen / buf.Data / buf.Bytes.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := c.trackedIdent(sel.X); obj != nil {
			if _, isMethod := c.pass.TypesInfo.Selections[sel]; isMethod {
				if prev, ok := st[obj]; ok && prev.s == posted && accessMethods[sel.Sel.Name] {
					c.report(obj, call.Pos(), at,
						"registered buffer %s is accessed (%s) after being posted at %s; the transport owns its memory until the completion is reaped",
						obj.Name(), sel.Sel.Name, c.pass.Fset.Position(prev.pos))
				}
				for _, a := range call.Args {
					c.scanExpr(a, st, at)
				}
				return
			}
		}
	}
	post := isPostCall(c.pass, call)
	ce := calleeEffect(c.g, c.effects, call)
	for ai, arg := range callArgs(c.pass, call) {
		obj := c.trackedIdent(arg)
		if obj == nil {
			c.scanExpr(arg, st, at)
			continue
		}
		switch {
		case post && ai > 0:
			if prev, ok := st[obj]; ok && prev.s == posted {
				c.report(obj, call.Pos(), at,
					"registered buffer %s is posted twice without an intervening completion (previous post at %s)",
					obj.Name(), c.pass.Fset.Position(prev.pos))
			}
			st[obj] = bufState{s: posted, pos: call.Pos()}
		case ce != nil && releasesParam(ce, ai):
			if prev, ok := st[obj]; ok && prev.s == released {
				c.report(obj, call.Pos(), at,
					"registered buffer %s is released twice on this path (previous release at %s); the duplicate credit corrupts the pool",
					obj.Name(), c.pass.Fset.Position(prev.pos))
			}
			st[obj] = bufState{s: released, pos: call.Pos()}
		case ce != nil && borrowsParam(ce, ai):
			// The callee only writes into the buffer; custody stays here.
		default:
			// Unknown custody: the callee (or container) owns it now.
			st[obj] = bufState{s: untracked, pos: call.Pos()}
		}
	}
}

func releasesParam(e *Effect, i int) bool {
	for _, r := range e.ParamRelease {
		if r == i {
			return true
		}
	}
	return false
}

func borrowsParam(e *Effect, i int) bool {
	for _, r := range e.ParamBorrowed {
		if r == i {
			return true
		}
	}
	return false
}

// errCheck recognizes `err ==/!= nil` over an error paired with an
// acquire; eq reports the == form.
func (c *checker) errCheck(cond ast.Expr) (types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	errSide, nilSide := be.X, be.Y
	if isNilIdent(c.pass, errSide) {
		errSide, nilSide = nilSide, errSide
	}
	if !isNilIdent(c.pass, nilSide) {
		return nil, false
	}
	id, ok := ast.Unparen(errSide).(*ast.Ident)
	if !ok {
		return nil, false
	}
	buf := c.errFor[c.objOf(id)]
	if buf == nil {
		return nil, false
	}
	return buf, be.Op == token.EQL
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func (c *checker) terminatesCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok {
				path := pn.Imported().Path()
				name := sel.Sel.Name
				if path == "os" && name == "Exit" {
					return true
				}
				if path == "log" && strings.HasPrefix(name, "Fatal") {
					return true
				}
			}
		}
	}
	return false
}

func copyInto(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if n != ast.Node(body) {
				ast.Inspect(n, func(m ast.Node) bool {
					if b, ok := m.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
						found = true
					}
					return true
				})
				return false
			}
		}
		return true
	})
	return found
}
