package bufown

import (
	"encoding/json"
	"sort"
)

// Effect is one function's buffer-custody behavior in combined parameter
// indexing (receiver first when present). It crosses package boundaries
// as a serialized fact, so a helper that releases or acquires on the
// caller's behalf is understood from any importing package.
type Effect struct {
	// Key is the function's FullName.
	Key string `json:"key"`
	// ParamRelease lists the parameters whose buffer the callee releases
	// (sends back on a free list or posts to the transport).
	ParamRelease []int `json:"param_release,omitempty"`
	// ParamBorrowed lists buffer parameters the callee only borrows: it
	// neither releases nor keeps them, so custody stays with the caller
	// across the call (e.g. a helper that stages bytes into the buffer).
	ParamBorrowed []int `json:"param_borrowed,omitempty"`
	// AcquiresResult lists result indices carrying a buffer the callee
	// acquired (received from a free list or registered) — the caller
	// takes over the credit.
	AcquiresResult []int `json:"acquires_result,omitempty"`
}

func (e *Effect) empty() bool {
	return len(e.ParamRelease) == 0 && len(e.ParamBorrowed) == 0 && len(e.AcquiresResult) == 0
}

// BufFacts is the per-package fact blob.
type BufFacts struct {
	Effects []*Effect `json:"effects"`
}

// EncodeBufFacts serializes an effect table in deterministic order.
func EncodeBufFacts(effects map[string]*Effect) []byte {
	keys := make([]string, 0, len(effects))
	for k, e := range effects {
		if e != nil && !e.empty() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	f := &BufFacts{}
	for _, k := range keys {
		f.Effects = append(f.Effects, effects[k])
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeBufFacts parses a fact blob, tolerating nil/garbage.
func DecodeBufFacts(data []byte) map[string]*Effect {
	out := make(map[string]*Effect)
	if len(data) == 0 {
		return out
	}
	var f BufFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out
	}
	for _, e := range f.Effects {
		if e != nil && e.Key != "" {
			out[e.Key] = e
		}
	}
	return out
}
