package dep

import "cyclojoin/internal/rdma"

// Take pulls a buffer off the free list; the caller owns the credit.
func Take(free chan *rdma.Buffer) *rdma.Buffer {
	return <-free
}

// Recycle returns b's credit to its free list on the caller's behalf.
func Recycle(free chan *rdma.Buffer, b *rdma.Buffer) {
	free <- b
}

// Fill stages data into b but leaves custody with the caller.
func Fill(b *rdma.Buffer, payload []byte) int {
	n := copy(b.Data(), payload)
	return n
}
