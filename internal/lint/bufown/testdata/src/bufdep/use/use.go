package use

import (
	"cyclojoin/internal/rdma"

	"cyclolinttest/bufdep/dep"
)

// leakAcrossCall acquires through dep.Take but drops the credit on the
// early-exit path; the acquire and the leak are only visible through the
// callee's exported effect.
func leakAcrossCall(free chan *rdma.Buffer, bad bool) {
	buf := dep.Take(free)
	if bad {
		return // want `registered buffer buf .* is still held on this return path`
	}
	dep.Recycle(free, buf)
}

// releasedByHelper is clean: dep.Recycle releases on our behalf.
func releasedByHelper(free chan *rdma.Buffer) {
	buf := dep.Take(free)
	dep.Recycle(free, buf)
}

// borrowedThenReleased is clean: dep.Fill only borrows the buffer, so the
// credit is still ours to release afterwards.
func borrowedThenReleased(free chan *rdma.Buffer, payload []byte) int {
	buf := dep.Take(free)
	n := dep.Fill(buf, payload)
	free <- buf
	return n
}

// borrowedThenLeaked shows a borrow does not launder the credit.
func borrowedThenLeaked(free chan *rdma.Buffer, payload []byte, bad bool) {
	buf := dep.Take(free)
	dep.Fill(buf, payload)
	if bad {
		return // want `registered buffer buf .* is still held on this return path`
	}
	free <- buf
}
