package bufown

import (
	"errors"

	"cyclojoin/internal/rdma"
)

var errStopping = errors.New("stopping")

// leakOnError drops the credit on the early-exit path.
func leakOnError(free chan *rdma.Buffer, bad bool) error {
	buf := <-free
	if bad {
		return errStopping // want `registered buffer buf .* is still held on this return path`
	}
	free <- buf
	return nil
}

// okPost hands the credit to the transport.
func okPost(free chan *rdma.Buffer, qp rdma.QueuePair) error {
	buf := <-free
	return qp.PostSend(buf)
}

// okReturn transfers the credit to the caller.
func okReturn(free chan *rdma.Buffer) *rdma.Buffer {
	buf := <-free
	return buf
}

// okDefer releases on every return via the deferred send.
func okDefer(free chan *rdma.Buffer, bad bool) error {
	buf := <-free
	defer func() { free <- buf }()
	if bad {
		return errStopping
	}
	return nil
}

// useAfterPost touches memory the transport owns.
func useAfterPost(free chan *rdma.Buffer, qp rdma.QueuePair) {
	buf := <-free
	if err := qp.PostSend(buf); err != nil {
		return
	}
	_ = buf.Bytes() // want `registered buffer buf is accessed \(Bytes\) after being posted`
}

// okReaped touches the buffer only after its completion is reaped, when
// the transport has handed custody back.
func okReaped(free chan *rdma.Buffer, qp rdma.QueuePair, cq chan rdma.Completion) []byte {
	buf := <-free
	if err := qp.PostSend(buf); err != nil {
		return nil
	}
	<-cq
	return buf.Bytes()
}

// doubleRelease puts the same credit back twice on one path.
func doubleRelease(free chan *rdma.Buffer, bad bool) {
	buf := <-free
	free <- buf
	if bad {
		free <- buf // want `registered buffer buf is released twice on this path`
	}
}

// doublePost reposts without reaping a completion.
func doublePost(free chan *rdma.Buffer, qp rdma.QueuePair) {
	buf := <-free
	qp.PostRecv(buf)
	qp.PostRecv(buf) // want `registered buffer buf is posted twice without an intervening completion`
}

// selectLeak loses the credit on the stop path of a select.
func selectLeak(free chan *rdma.Buffer, quit chan struct{}, stop bool) {
	select {
	case buf := <-free:
		if stop {
			return // want `registered buffer buf .* is still held on this return path`
		}
		free <- buf
	case <-quit:
	}
}

// loopLeak drops one credit per iteration.
func loopLeak(free chan *rdma.Buffer, work []int) {
	for range work {
		buf := <-free // want `registered buffer buf is still held at the loop's back edge`
		if len(work) > 3 {
			free <- buf
		}
	}
}

// registerLeak loses a freshly registered buffer on the error path.
func registerLeak(dev *rdma.Device, bad bool) (*rdma.Buffer, error) {
	buf, err := dev.Register(4096)
	if err != nil {
		return nil, err
	}
	if bad {
		return nil, errStopping // want `registered buffer buf .* is still held on this return path`
	}
	return buf, nil
}

// parkInStruct hands the credit to the returned container.
type stash struct{ b *rdma.Buffer }

func parkInStruct(free chan *rdma.Buffer) *stash {
	buf := <-free
	return &stash{b: buf}
}

// sanctioned documents a deliberate park with a directive.
func sanctioned(free chan *rdma.Buffer, bad bool) error {
	buf := <-free
	if bad {
		//cyclolint:bufsafe the reaper drains credits parked during shutdown
		return errStopping
	}
	free <- buf
	return nil
}
