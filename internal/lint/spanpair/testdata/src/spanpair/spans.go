// Test surface for the spanpair analyzer: leak-free pairings (straight
// line, both branches, defer), leaks on early returns and shutdown
// selects, the loop back-edge case, and escapes that transfer closing
// responsibility elsewhere.
package spanpair

import "cyclojoin/internal/trace"

func work() int  { return 1 }
func cond() bool { return false }

func straightLine(sh *trace.Shard) {
	pd := sh.Begin(trace.PhaseJoin)
	work()
	sh.End(pd)
}

func deferred(sh *trace.Shard) {
	pd := sh.Begin(trace.PhaseJoin)
	defer sh.End(pd)
	if cond() {
		return
	}
	work()
}

func bothBranchesClosed(sh *trace.Shard) bool {
	pd := sh.Begin(trace.PhaseJoin)
	if cond() {
		sh.End(pd)
		return false
	}
	sh.End(pd)
	return true
}

func leakOnError(sh *trace.Shard) bool {
	pd := sh.Begin(trace.PhaseJoin)
	if cond() {
		return false // want `still open on this return path`
	}
	sh.End(pd)
	return true
}

func leakInSelect(sh *trace.Shard, quit chan struct{}, q chan int) {
	pd := sh.Begin(trace.PhaseWait)
	select {
	case <-quit:
		return // want `still open on this return path`
	case <-q:
	}
	sh.End(pd)
}

func selectClosed(sh *trace.Shard, quit chan struct{}, q chan int) {
	pd := sh.Begin(trace.PhaseWait)
	select {
	case <-quit:
		sh.End(pd)
		return
	case <-q:
	}
	sh.End(pd)
}

func loopBackEdge(sh *trace.Shard, n int) {
	var pd trace.Pending
	for i := 0; i < n; i++ {
		pd = sh.Begin(trace.PhaseJoin) // want `back edge`
		work()
	}
	sh.End(pd)
}

func loopClosedEachIteration(sh *trace.Shard, n int) {
	for i := 0; i < n; i++ {
		pd := sh.Begin(trace.PhaseJoin)
		work()
		sh.End(pd)
	}
}

// The pending moves into a correlation structure: the reaper that pulls
// it back out owns the End. Out of scope for an intra-function check.
type pendMap struct {
	pend map[int]trace.Pending
}

func escapesToMap(sh *trace.Shard, m *pendMap, key int) {
	pd := sh.Begin(trace.PhaseSend)
	m.pend[key] = pd
}

func escapesToHelper(sh *trace.Shard) {
	pd := sh.Begin(trace.PhaseSend)
	stash(pd)
}

func stash(pd trace.Pending) { _ = pd }

// Setting correlation fields and probing Active are plain uses, not
// escapes: the span is still tracked and this leak is still reported.
func fieldUseStillTracked(sh *trace.Shard, frag int32) bool {
	pd := sh.Begin(trace.PhaseStage)
	pd.Frag = frag
	if !pd.Active() {
		work()
	}
	if cond() {
		return false // want `still open on this return path`
	}
	sh.End(pd)
	return true
}

// The completion goroutine owns the End: Begin on the submit path, End
// in the spawned reaper. Previously a false positive.
func endInSpawnedGoroutine(sh *trace.Shard, done chan struct{}) {
	pd := sh.Begin(trace.PhaseSend)
	go func() {
		<-done
		sh.End(pd)
	}()
}

func goEndDirect(sh *trace.Shard) {
	pd := sh.Begin(trace.PhaseJoin)
	go sh.End(pd)
}

// A go'd same-package helper that Ends its parameter takes over the
// obligation.
func endViaGoHelper(sh *trace.Shard) {
	pd := sh.Begin(trace.PhaseWait)
	go finish(sh, pd)
}

func finish(sh *trace.Shard, pd trace.Pending) {
	sh.End(pd)
}

// Spawning an unrelated goroutine transfers nothing; the leak is still
// reported.
func goroutineNoEndStillLeaks(sh *trace.Shard, q chan int) bool {
	pd := sh.Begin(trace.PhaseSend)
	go func() {
		q <- 1
	}()
	if cond() {
		return false // want `still open on this return path`
	}
	sh.End(pd)
	return true
}

func panicExempt(sh *trace.Shard) {
	pd := sh.Begin(trace.PhaseJoin)
	if cond() {
		panic("invariant broken")
	}
	sh.End(pd)
}
