// Package spanpair verifies that every trace span opened with
// trace.Shard.Begin is closed with End on every return path.
//
// The flight recorder's spans are manually paired: Begin hands back a
// Pending by value and End stamps and records it. A return path that
// forgets End silently truncates the trace — the span never appears, and
// cyclotrace's residency analysis undercounts the phase. These leaks hide
// in exactly the paths tests rarely drive: shutdown selects, bind errors,
// full-queue bailouts.
//
// The analyzer tracks locals of the form
//
//	pd := shard.Begin(...)
//
// and simulates the function body path-sensitively: each tracked span is
// NotYet/Open/Closed per control-flow path, branches merge
// open-if-any-path-open, `defer shard.End(pd)` closes the span for every
// return after it, and panic/os.Exit paths are exempt. A span still Open
// at a return is reported at that return; a loop whose body Begins a span
// that is still Open at the back edge is reported at the Begin.
//
// Spans whose Pending escapes the function — stored in a struct field or
// map (the ring's send-reaper pattern), passed to a helper other than
// End — are skipped: cross-function pairing is the owner's contract, not
// this analyzer's.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"cyclojoin/internal/lint/analysis"
)

// tracePkg declares Shard and Pending.
const tracePkg = "cyclojoin/internal/trace"

// Analyzer flags trace spans left open on a return path.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "every trace.Shard.Begin must reach a matching End on all return paths (defer-aware)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == tracePkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

type status int

const (
	notYet status = iota
	closed
	open // highest wins on merge
)

// span is one tracked Begin site.
type span struct {
	obj   types.Object
	begin token.Pos
}

type checker struct {
	pass    *analysis.Pass
	spans   map[types.Object]*span
	hasGoto bool
	// reported dedups diagnostics per (object, position).
	reported map[posKey]bool
	// decls lazily maps package-level function objects to their
	// declarations, for resolving go'd helper bodies.
	decls map[types.Object]*ast.FuncDecl
}

type posKey struct {
	obj types.Object
	pos token.Pos
}

// state maps tracked span objects to their status along one path.
type state map[types.Object]status

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge folds other into s: open beats closed beats notYet, because a
// span open on any fall-through path can leak at a later return.
func (s state) merge(other state) {
	for k, v := range other {
		if v > s[k] {
			s[k] = v
		}
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{
		pass:     pass,
		spans:    make(map[types.Object]*span),
		reported: make(map[posKey]bool),
	}
	c.collect(fn.Body)
	if len(c.spans) == 0 || c.hasGoto {
		return
	}
	c.pruneEscapes(fn.Body)
	if len(c.spans) == 0 {
		return
	}
	st := make(state)
	terminated := c.stmt(fn.Body, st)
	if !terminated {
		// Falling off the end of the body is an implicit return.
		c.reportOpen(st, fn.Body.End())
	}
}

// collect finds `pd := shard.Begin(...)` locals and notes goto usage.
func (c *checker) collect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.GOTO {
				c.hasGoto = true
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
				return true
			}
			call, ok := x.Rhs[0].(*ast.CallExpr)
			if !ok || !c.isBegin(call) {
				return true
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				c.spans[obj] = &span{obj: obj, begin: call.Pos()}
			}
		}
		return true
	})
}

// pruneEscapes drops spans whose Pending leaves the function's hands:
// any use other than being the End argument, a reassignment target, or
// the base of a field access (pd.Frag = …, pd.Active()) means another
// owner is responsible for closing it.
func (c *checker) pruneEscapes(body *ast.BlockStmt) {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[id]
		}
		if obj == nil || c.spans[obj] == nil {
			return true
		}
		if !c.useAllowed(id, parents[id]) && !c.goHandoff(id, parents) {
			delete(c.spans, obj)
		}
		return true
	})
}

func (c *checker) useAllowed(id *ast.Ident, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.ValueSpec:
		return true // var pd trace.Pending declaration
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == ast.Expr(id) {
				return true // definition or reassignment target
			}
		}
		// Appearing on the RHS aliases the pending elsewhere.
		return false
	case *ast.SelectorExpr:
		// pd.Frag = …, pd.Active(): field/method access on the pending.
		return p.X == ast.Expr(id)
	case *ast.CallExpr:
		if !c.isEnd(p) {
			return false
		}
		for _, a := range p.Args {
			if a == ast.Expr(id) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return false // &pd escapes
	default:
		return false
	}
}

// goHandoff reports whether id's use is `go helper(.., pd, ..)` where
// the same-package helper Ends that parameter: the spawned goroutine
// takes over the closing obligation (the ring's completion-reaper
// pattern), so the use is a transfer, not an escape.
func (c *checker) goHandoff(id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	call, ok := parents[id].(*ast.CallExpr)
	if !ok {
		return false
	}
	g, ok := parents[call].(*ast.GoStmt)
	if !ok || g.Call != call {
		return false
	}
	for i, a := range call.Args {
		if ast.Unparen(a) == ast.Expr(id) {
			return c.calleeEndsParam(call, i)
		}
	}
	return false
}

// calleeEndsParam resolves the static same-package callee of call and
// reports whether its body calls End on the parameter at index i.
func (c *checker) calleeEndsParam(call *ast.CallExpr, i int) bool {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg {
		return false
	}
	if c.decls == nil {
		c.decls = make(map[types.Object]*ast.FuncDecl)
		for _, file := range c.pass.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if o := c.pass.TypesInfo.Defs[fd.Name]; o != nil {
						c.decls[o] = fd
					}
				}
			}
		}
	}
	decl := c.decls[fn.Origin()]
	if decl == nil || decl.Body == nil {
		return false
	}
	var params []*ast.Ident
	for _, field := range decl.Type.Params.List {
		params = append(params, field.Names...)
	}
	if i >= len(params) {
		return false
	}
	target := c.pass.TypesInfo.Defs[params[i]]
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		ce, ok := n.(*ast.CallExpr)
		if !ok || !c.isEnd(ce) {
			return true
		}
		for _, a := range ce.Args {
			if aid, ok := ast.Unparen(a).(*ast.Ident); ok && c.pass.TypesInfo.Uses[aid] == target {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *checker) isBegin(call *ast.CallExpr) bool {
	return c.pass.IsMethodOn(call, tracePkg, "Shard", "Begin")
}

func (c *checker) isEnd(call *ast.CallExpr) bool {
	return c.pass.IsMethodOn(call, tracePkg, "Shard", "End")
}

// endedObj returns the tracked object a statement's End call closes.
func (c *checker) endedObj(call *ast.CallExpr) types.Object {
	if !c.isEnd(call) {
		return nil
	}
	for _, a := range call.Args {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj != nil && c.spans[obj] != nil {
			return obj
		}
	}
	return nil
}

// terminatesCall reports calls that never return control.
func (c *checker) terminatesCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok {
				path := pn.Imported().Path()
				name := sel.Sel.Name
				if path == "os" && name == "Exit" {
					return true
				}
				if path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Panic" || name == "Panicf" || name == "Panicln") {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) reportOpen(st state, at token.Pos) {
	for obj, v := range st {
		if v != open {
			continue
		}
		key := posKey{obj, at}
		if c.reported[key] {
			continue
		}
		c.reported[key] = true
		c.pass.Reportf(at,
			"trace span %s (Begin at %s) is still open on this return path; call End before returning or defer it",
			obj.Name(), c.pass.Fset.Position(c.spans[obj].begin))
	}
}

// stmt simulates s, mutating st along the fall-through path. It returns
// true when control cannot fall past s (return/panic/terminating loop on
// every path).
func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch x := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return c.stmtList(x.List, st)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if obj := c.endedObj(call); obj != nil {
				st[obj] = closed
				return false
			}
			if c.terminatesCall(call) {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if call, ok := x.Rhs[0].(*ast.CallExpr); ok && c.isBegin(call) {
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					obj := c.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = c.pass.TypesInfo.Uses[id]
					}
					if obj != nil && c.spans[obj] != nil {
						st[obj] = open
					}
				}
			}
		}
		return false
	case *ast.DeferStmt:
		if obj := c.endedObj(x.Call); obj != nil {
			// A deferred End closes the span for every path from here on;
			// modeling it as an immediate close is sound for leak checking.
			st[obj] = closed
		}
		return false
	case *ast.ReturnStmt:
		c.reportOpen(st, x.Pos())
		return true
	case *ast.IfStmt:
		c.stmt(x.Init, st)
		thenSt := st.clone()
		thenTerm := c.stmt(x.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = c.stmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			copyInto(st, elseSt)
		case elseTerm:
			copyInto(st, thenSt)
		default:
			copyInto(st, thenSt)
			st.merge(elseSt)
		}
		return false
	case *ast.ForStmt:
		c.stmt(x.Init, st)
		c.loopBody(x.Body, st)
		// `for { ... }` with no break never falls through.
		return x.Cond == nil && !hasBreak(x.Body)
	case *ast.RangeStmt:
		c.loopBody(x.Body, st)
		return false
	case *ast.SwitchStmt:
		c.stmt(x.Init, st)
		return c.clauses(x.Body, st, hasDefault(x.Body))
	case *ast.TypeSwitchStmt:
		c.stmt(x.Init, st)
		return c.clauses(x.Body, st, hasDefault(x.Body))
	case *ast.SelectStmt:
		// Select always takes exactly one of its clauses.
		return c.clauses(x.Body, st, true)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, st)
	case *ast.BranchStmt:
		// break/continue leave the enclosing loop's walk; the path ends
		// here as far as fall-through reporting is concerned.
		return true
	case *ast.GoStmt:
		c.goStmt(x, st)
		return false
	case *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		return false
	default:
		return false
	}
}

// goStmt transfers span obligations into a spawned goroutine. A span
// Ended anywhere in the go'd body — `go sh.End(pd)`, an End inside the
// go'd function literal, or a same-package helper that Ends its
// parameter — is closed on the spawning path: the new goroutine owns
// the End from here, which is how the send reaper pairs Begin on the
// submit path with End on the completion path.
func (c *checker) goStmt(g *ast.GoStmt, st state) {
	if obj := c.endedObj(g.Call); obj != nil {
		st[obj] = closed
		return
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := c.endedObj(call); obj != nil {
					st[obj] = closed
				}
			}
			return true
		})
		return
	}
	for i, a := range g.Call.Args {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil || c.spans[obj] == nil {
			continue
		}
		if c.calleeEndsParam(g.Call, i) {
			st[obj] = closed
		}
	}
}

func (c *checker) stmtList(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

// loopBody simulates one iteration and reports spans Begun inside the
// body that are still open at the back edge — the next iteration's Begin
// would orphan them. After the loop, state conservatively merges the
// body's effects with the zero-iteration path.
func (c *checker) loopBody(body *ast.BlockStmt, st state) {
	bodySt := st.clone()
	terminated := c.stmt(body, bodySt)
	if !terminated {
		for obj, v := range bodySt {
			if v != open || st[obj] == open {
				continue // only spans opened by this iteration
			}
			if sp := c.spans[obj]; sp != nil && body.Pos() <= sp.begin && sp.begin < body.End() {
				key := posKey{obj, sp.begin}
				if !c.reported[key] {
					c.reported[key] = true
					c.pass.Reportf(sp.begin,
						"trace span %s is still open at the loop's back edge; the next iteration's Begin orphans it — End it before the iteration ends",
						obj.Name())
				}
			}
		}
	}
	st.merge(bodySt)
}

// clauses simulates a switch/select body: each case runs from a copy of
// the incoming state; fall-through states merge. exhaustive indicates
// one clause always runs (select, or switch with default).
func (c *checker) clauses(body *ast.BlockStmt, st state, exhaustive bool) bool {
	pre := st.clone()
	allTerm := true
	first := true
	for _, cl := range body.List {
		clSt := pre.clone()
		var term bool
		switch cc := cl.(type) {
		case *ast.CaseClause:
			term = c.stmtList(cc.Body, clSt)
		case *ast.CommClause:
			if cc.Comm != nil {
				c.stmt(cc.Comm, clSt)
			}
			term = c.stmtList(cc.Body, clSt)
		default:
			continue
		}
		if term {
			continue
		}
		allTerm = false
		if first {
			copyInto(st, clSt)
			first = false
		} else {
			st.merge(clSt)
		}
	}
	if !exhaustive {
		// The no-match path carries the incoming state through.
		if first {
			copyInto(st, pre)
		} else {
			st.merge(pre)
		}
		return false
	}
	if allTerm {
		return true
	}
	return false
}

func copyInto(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// hasBreak reports whether body contains a break that targets the
// enclosing loop (i.e. not one swallowed by a nested for/switch/select).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if n != ast.Node(body) {
				// Unlabeled breaks inside bind to the inner statement; a
				// labeled break out of the outer loop is rare enough that
				// treating it as found keeps us conservative.
				ast.Inspect(n, func(m ast.Node) bool {
					if b, ok := m.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
						found = true
					}
					return true
				})
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}
