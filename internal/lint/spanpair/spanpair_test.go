package spanpair_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/spanpair"
)

func TestSpanPair(t *testing.T) {
	linttest.Run(t, spanpair.Analyzer, "spanpair")
}
