package spscrole

import (
	"encoding/json"
	"sort"
)

// FieldOp is one queue operation a function performs, identified by the
// queue's field/global identity rather than an origin: it rides the
// facts to whichever package supplies the real execution context.
type FieldOp struct {
	// Field is the queue identity, e.g. "(cyclojoin/internal/ring.node).procQ".
	Field string `json:"field"`
	// Kind is "push" or "pop".
	Kind string `json:"kind"`
	// Site is the operation's position, "file.go:12".
	Site string `json:"site"`
}

// Summary is one function's SPSC-role effect, exported as facts.
type Summary struct {
	// Key is the function's dataflow.FuncKey.
	Key string `json:"key,omitempty"`
	// ParamPush lists combined receiver-first parameter indices the
	// function transitively pushes to.
	ParamPush []int `json:"paramPush,omitempty"`
	// ParamPop lists parameter indices the function transitively pops
	// from.
	ParamPop []int `json:"paramPop,omitempty"`
	// Pending holds field ops awaiting attribution: the function has no
	// caller in its home package, so the importing call site supplies the
	// goroutine origin.
	Pending []FieldOp `json:"pending,omitempty"`
}

// roleFacts is the serialized fact blob.
type roleFacts struct {
	Funcs []*Summary `json:"funcs"`
}

// EncodeRoleFacts serializes the non-empty summaries deterministically.
func EncodeRoleFacts(sums map[string]*Summary) []byte {
	keys := make([]string, 0, len(sums))
	for k, s := range sums {
		if s == nil || (len(s.ParamPush) == 0 && len(s.ParamPop) == 0 && len(s.Pending) == 0) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := &roleFacts{}
	for _, k := range keys {
		s := sums[k]
		s.Key = k
		f.Funcs = append(f.Funcs, s)
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeRoleFacts parses a fact blob, tolerating nil/garbage.
func DecodeRoleFacts(data []byte) map[string]*Summary {
	out := make(map[string]*Summary)
	if len(data) == 0 {
		return out
	}
	var f roleFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out
	}
	for _, s := range f.Funcs {
		if s != nil && s.Key != "" {
			out[s.Key] = s
		}
	}
	return out
}
