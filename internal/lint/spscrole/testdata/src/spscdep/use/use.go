package use

import "cyclolinttest/spscdep/dep"

func Run(q *dep.Q) {
	go feed(q)
	go drain(q)
	go q.Put(9) // want `SPSC \(cyclolinttest/spscdep/dep\.Q\)\.ch push has 2 producer origins`
}

func feed(q *dep.Q) { q.Put(1) }

func drain(q *dep.Q) {
	for {
		if _, ok := q.Get(); !ok {
			return
		}
	}
}
