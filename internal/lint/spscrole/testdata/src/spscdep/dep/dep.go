// Package dep wraps an SPSC ring; its methods have no callers here, so
// their queue ops ride the facts as pending and are attributed in the
// importing package, where the goroutine structure is visible.
package dep

import "cyclojoin/internal/ringq"

type Q struct {
	ch *ringq.SPSC[int]
}

func New() *Q { return &Q{ch: ringq.NewSPSC[int](8)} }

func (q *Q) Put(v int) { q.ch.TryPush(v) }

func (q *Q) Get() (int, bool) { return q.ch.TryPop() }
