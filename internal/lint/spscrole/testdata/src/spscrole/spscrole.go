package spscrole

import "cyclojoin/internal/ringq"

type node struct {
	in   *ringq.SPSC[int]
	dual *ringq.SPSC[int]
	out  *ringq.SPSC[int]
	gq   *ringq.SPSC[string]
	ok   *ringq.SPSC[int]
	mix  *ringq.SPSC[int]
}

// Clean: one producer origin, one consumer origin.
func (n *node) startClean() {
	go n.produce()
	go n.consume()
}

func (n *node) produce() { n.in.TryPush(1) }

func (n *node) consume() { _, _ = n.in.TryPop() }

// Two goroutines pushing the same queue directly.
func (n *node) startDual() {
	go n.pushA()
	go n.pushB()
}

func (n *node) pushA() { n.dual.TryPush(1) } // want `SPSC \(cyclolinttest/spscrole\.node\)\.dual push has 2 producer origins`

func (n *node) pushB() { n.dual.TryPush(2) }

// The push happens inside a helper that takes the queue as a parameter:
// the op is attributed at the call sites, under each literal's origin.
func pushVia(q *ringq.SPSC[int], v int) { q.TryPush(v) }

func (n *node) startVia() {
	go func() {
		pushVia(n.out, 1) // want `SPSC \(cyclolinttest/spscrole\.node\)\.out push has 2 producer origins`
	}()
	go func() {
		pushVia(n.out, 2)
	}()
}

// Generic helper: both the implicit and the explicit instantiation must
// resolve to the same generic declaration's summary.
func fill[T any](q *ringq.SPSC[T], v T) { q.TryPush(v) }

func (n *node) startGeneric() {
	go func() {
		fill(n.gq, "a") // want `SPSC \(cyclolinttest/spscrole\.node\)\.gq push has 2 producer origins`
	}()
	go func() {
		fill[string](n.gq, "b")
	}()
}

// Sanctioned hand-off: the annotated site is excused, leaving a single
// unexcused producer origin.
func (n *node) startSanctioned() {
	go n.reapOK()
	go n.flushOK()
}

func (n *node) reapOK() { n.ok.TryPush(1) }

func (n *node) flushOK() {
	//cyclolint:role flush runs only after the reaper goroutine has exited
	n.ok.TryPush(2)
}

// An exported entry point pushing the queue an internal goroutine also
// pushes: the caller's goroutine is a second producer.
func (n *node) Inject(v int) { n.mix.TryPush(v) } // want `SPSC \(cyclolinttest/spscrole\.node\)\.mix push has 2 producer origins`

func (n *node) startMix() { go n.mixLoop() }

func (n *node) mixLoop() { n.mix.TryPush(3) }
