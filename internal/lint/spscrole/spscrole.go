// Package spscrole enforces the single-producer/single-consumer role
// contract on ringq.SPSC queues, using goroutine-origin analysis.
//
// A ringq.SPSC ring is wait-free precisely because exactly one goroutine
// advances the head and exactly one advances the tail. The type system
// cannot say which goroutine that is, so the discipline lives in code
// review — until a refactor quietly adds a second pusher and the ring
// corrupts under load. spscrole makes the discipline checkable: every
// `go` statement is a labeled origin ("go node.go:396"), origins
// propagate through the static call graph (dataflow.Origins), and every
// push (TryPush/Push) or pop (TryPop/Pop) endpoint is attributed to the
// origin set of the function executing it — through helpers that take
// the queue as a parameter, and across packages via per-function fact
// summaries. A queue field with two distinct push origins (or two pop
// origins) is a diagnostic.
//
// Two origins of the same endpoint are not always a bug: mutually
// exclusive transport modes may each own a loop, or a drain path may
// run after the producer goroutine has provably exited. Those sanctioned
// hand-offs are annotated at the operation (or on the function's doc
// comment) with the reason:
//
//	//cyclolint:role send loop and write-mode send loop are mutually exclusive per ring
//
// In-package _test.go files are excluded from the analysis: the role
// contract describes the production goroutine topology, and test
// harnesses launching entry points from ad-hoc goroutines would
// otherwise hang phantom origins on every endpoint they exercise.
package spscrole

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// ringqPkg declares SPSC; its own implementation is exempt.
const ringqPkg = "cyclojoin/internal/ringq"

// Analyzer flags SPSC queues with more than one producer or consumer
// goroutine origin.
var Analyzer = &analysis.Analyzer{
	Name:      "spscrole",
	Doc:       "a ringq.SPSC endpoint (push or pop) must be reachable from a single goroutine origin; annotate //cyclolint:role for sanctioned hand-offs",
	Version:   "1",
	UsesFacts: true,
	Run:       run,
}

const (
	opPush = "push"
	opPop  = "pop"
)

// attrOp is one push/pop operation attributed to an origin.
type attrOp struct {
	field  string // queue identity
	kind   string // opPush or opPop
	origin string // goroutine-origin label
	pos    token.Pos
	site   string // rendered pos, for messages and facts
}

type checker struct {
	pass     *analysis.Pass
	g        *dataflow.Graph
	origins  *dataflow.Origins
	imported map[string]*Summary
	sums     map[string]*Summary // by FuncKey, this package
	ops      []attrOp
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == ringqPkg {
		// The ring's own methods are the intrinsics; analyzing their
		// bodies would attribute head/tail stores to phantom origins.
		return nil
	}
	// The role contract is a property of the production goroutine
	// topology: test harnesses launch entry points from ad-hoc
	// goroutines (and drive queues directly), which would hang phantom
	// origins on every endpoint they reach. In-package _test.go files
	// are therefore excluded from the graph — launch sites, operations
	// and call edges alike.
	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	c := &checker{
		pass:     pass,
		g:        dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, files),
		imported: make(map[string]*Summary),
		sums:     make(map[string]*Summary),
	}
	for _, imp := range pass.Pkg.Imports() {
		for k, s := range DecodeRoleFacts(pass.ImportedFacts(imp.Path())) {
			c.imported[k] = s
		}
	}
	c.origins = dataflow.NewOrigins(c.g)
	c.solveParams()
	c.attribute()
	pass.Export(EncodeRoleFacts(c.sums))
	c.report()
	return nil
}

// ---- phase A: per-function param effects (fixpoint) ----

// solveParams computes, for every function in the package, which of its
// parameters (receiver-first indexing) it transitively pushes to or pops
// from.
func (c *checker) solveParams() {
	for _, fn := range c.g.All() {
		c.sums[fn.Key()] = &Summary{Key: fn.Key()}
	}
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range c.g.All() {
			if c.paramPass(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (c *checker) paramPass(fn *dataflow.Func) bool {
	sum := c.sums[fn.Key()]
	params := paramObjects(fn)
	changed := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		eff := c.callEffect(call)
		if eff == nil {
			return true
		}
		args := callArgs(c.g, call)
		for _, i := range eff.ParamPush {
			if i < len(args) {
				if j, ok := paramIndex(c.g, args[i], params); ok && addIndex(&sum.ParamPush, j) {
					changed = true
				}
			}
		}
		for _, i := range eff.ParamPop {
			if i < len(args) {
				if j, ok := paramIndex(c.g, args[i], params); ok && addIndex(&sum.ParamPop, j) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// callEffect resolves what a call does to its arguments: the SPSC
// intrinsics push/pop their receiver (index 0); other static callees
// contribute their computed (or imported) summaries.
func (c *checker) callEffect(call *ast.CallExpr) *Summary {
	if kind, ok := c.intrinsic(call); ok {
		if kind == opPush {
			return &Summary{ParamPush: []int{0}}
		}
		return &Summary{ParamPop: []int{0}}
	}
	callee := c.g.StaticCallee(call)
	if callee == nil {
		return nil
	}
	key := dataflow.FuncKey(callee)
	if s, ok := c.sums[key]; ok {
		return s
	}
	return c.imported[key]
}

// intrinsic recognizes a direct SPSC push/pop method call.
func (c *checker) intrinsic(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var kind string
	switch sel.Sel.Name {
	case "TryPush", "Push":
		kind = opPush
	case "TryPop", "Pop":
		kind = opPop
	default:
		return "", false
	}
	selection, ok := c.g.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	if !dataflow.IsNamedType(selection.Recv(), ringqPkg, "SPSC") {
		return "", false
	}
	return kind, true
}

// ---- phase B: attribution ----

// attribute walks every function once, attributing each field-identified
// operation to the goroutine origins of the code performing it, and
// collecting pending ops for functions with no in-package callers.
func (c *checker) attribute() {
	for _, fn := range c.g.All() {
		if analysis.FuncHasDirective(fn.Decl, "role") {
			continue
		}
		var pending []FieldOp
		c.walkOps(fn, fn.Decl.Body, "", &pending)
		if !c.origins.HasEvidence(fn) && len(pending) > 0 {
			// No caller in this package: the real execution context is in
			// an importing package, which attributes these through facts.
			c.sums[fn.Key()].Pending = pending
		}
	}
}

// walkOps traverses n. label == "" means code runs under fn's own origin
// set; a non-empty label pins execution to that launch site (inside a
// go'd func literal or a `go f(...)` statement).
func (c *checker) walkOps(fn *dataflow.Func, n ast.Node, label string, pending *[]FieldOp) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			l := c.origins.GoLabel(x)
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				c.walkOps(fn, lit.Body, l, pending)
				for _, a := range x.Call.Args {
					c.walkOps(fn, a, label, pending)
				}
				return false
			}
			// `go f(args)`: f's own ops are attributed at f's declaration
			// (the launch adds l to f's origins); param-ops on the args
			// execute inside the launched goroutine.
			c.opsAt(fn, x.Call, []string{l}, pending)
			for _, a := range x.Call.Args {
				c.walkOps(fn, a, label, pending)
			}
			return false
		case *ast.CallExpr:
			ctx := []string{label}
			if label == "" {
				ctx = c.origins.Of(fn)
			}
			c.opsAt(fn, x, ctx, pending)
			return true
		}
		return true
	})
}

// opsAt attributes the field-identified push/pop effects of one call
// under the given origin context.
func (c *checker) opsAt(fn *dataflow.Func, call *ast.CallExpr, ctx []string, pending *[]FieldOp) {
	eff := c.callEffect(call)
	var calleePending []FieldOp
	if callee := c.g.StaticCallee(call); callee != nil {
		if s := c.imported[dataflow.FuncKey(callee)]; s != nil {
			calleePending = s.Pending
		}
	}
	if eff == nil && len(calleePending) == 0 {
		return
	}
	if c.excused(call) {
		return
	}
	site := c.g.PosString(call.Pos())
	emit := func(field, kind string) {
		if field == "" {
			return
		}
		if !c.origins.HasEvidence(fn) && len(ctx) == 1 && ctx[0] == dataflow.EntryOrigin {
			*pending = append(*pending, FieldOp{Field: field, Kind: kind, Site: site})
		}
		for _, origin := range ctx {
			c.ops = append(c.ops, attrOp{field: field, kind: kind, origin: origin, pos: call.Pos(), site: site})
		}
	}
	if eff != nil {
		args := callArgs(c.g, call)
		for _, i := range eff.ParamPush {
			if i < len(args) {
				emit(c.fieldIdent(fn, args[i]), opPush)
			}
		}
		for _, i := range eff.ParamPop {
			if i < len(args) {
				emit(c.fieldIdent(fn, args[i]), opPop)
			}
		}
	}
	// An imported callee with no execution evidence in its home package:
	// this call site is where its queue ops meet a real origin.
	for _, p := range calleePending {
		if !c.origins.HasEvidence(fn) && len(ctx) == 1 && ctx[0] == dataflow.EntryOrigin {
			*pending = append(*pending, p)
		}
		for _, origin := range ctx {
			c.ops = append(c.ops, attrOp{field: p.Field, kind: p.Kind, origin: origin, pos: call.Pos(), site: site})
		}
	}
}

// excused reports whether the op site carries a //cyclolint:role
// directive (on the line or the line above).
func (c *checker) excused(call *ast.CallExpr) bool {
	file := c.pass.File(call.Pos())
	return file != nil && c.pass.HasDirective(file, call, "role")
}

// fieldIdent names the queue a receiver/argument expression denotes, at
// the granularity origins are meaningful for: struct fields by declared
// type ("(pkg.T).q"), package-level vars ("pkg.q"), locals by definition
// site. Parameters return "" here — phase A already lifted them into the
// caller's summary, so attributing them at this site would double-count.
func (c *checker) fieldIdent(fn *dataflow.Func, e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := c.g.Info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			// Qualified identifier pkg.Var.
			if v, ok := c.g.Info.Uses[x.Sel].(*types.Var); ok && globalVar(v) {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		recv := sel.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return ""
		}
		if orig := named.Origin(); orig != nil {
			named = orig
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		return "(" + obj.Pkg().Path() + "." + obj.Name() + ")." + x.Sel.Name
	case *ast.Ident:
		v, ok := c.g.Info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if globalVar(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
		for _, p := range paramObjects(fn) {
			if p == v {
				return "" // phase A's job
			}
		}
		return "local " + v.Name() + "@" + c.g.PosString(v.Pos())
	}
	return ""
}

// ---- reporting ----

// endpoint groups the attributed ops of one (queue, kind) pair.
type endpoint struct {
	field, kind string
	// byOrigin maps origin label → positionally first op.
	byOrigin map[string]attrOp
	firstPos token.Pos
}

func (c *checker) report() {
	eps := make(map[string]*endpoint)
	var keys []string
	for _, op := range c.ops {
		k := op.field + "\x00" + op.kind
		ep := eps[k]
		if ep == nil {
			ep = &endpoint{field: op.field, kind: op.kind, byOrigin: make(map[string]attrOp), firstPos: op.pos}
			eps[k] = ep
			keys = append(keys, k)
		}
		if prev, ok := ep.byOrigin[op.origin]; !ok || op.pos < prev.pos {
			ep.byOrigin[op.origin] = op
		}
		if op.pos < ep.firstPos {
			ep.firstPos = op.pos
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ep := eps[k]
		if len(ep.byOrigin) < 2 {
			continue
		}
		origins := make([]string, 0, len(ep.byOrigin))
		for o := range ep.byOrigin {
			origins = append(origins, o)
		}
		sort.Strings(origins)
		parts := make([]string, len(origins))
		for i, o := range origins {
			parts[i] = o + " (at " + ep.byOrigin[o].site + ")"
		}
		role := "producer"
		if ep.kind == opPop {
			role = "consumer"
		}
		c.pass.Reportf(ep.firstPos,
			"SPSC %s %s has %d %s origins: %s; the ring is wait-free only with a single %s — annotate //cyclolint:role with the hand-off argument",
			ep.field, ep.kind, len(origins), role, strings.Join(parts, ", "), role)
	}
}

// ---- shared helpers ----

// paramObjects returns fn's parameter objects, receiver first.
func paramObjects(fn *dataflow.Func) []*types.Var {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// callArgs returns the call's argument expressions receiver-first, to
// match the combined parameter indexing of summaries.
func callArgs(g *dataflow.Graph, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := g.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	if out == nil {
		// Plain function: no receiver slot; summaries for plain functions
		// still index from 0, aligned with Args alone — pad nothing.
		// Methods called as expressions (T.M(recv, …)) pass the receiver
		// as Args[0] already.
		return call.Args
	}
	return append(out, call.Args...)
}

// paramIndex resolves e to one of params, returning its index.
func paramIndex(g *dataflow.Graph, e ast.Expr, params []*types.Var) (int, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := g.Info.Uses[id]
	for i, p := range params {
		if p == obj {
			return i, true
		}
	}
	return 0, false
}

// globalVar reports whether v is a package-level variable.
func globalVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// addIndex inserts i into the sorted set s, reporting growth.
func addIndex(s *[]int, i int) bool {
	for _, x := range *s {
		if x == i {
			return false
		}
	}
	*s = append(*s, i)
	sort.Ints(*s)
	return true
}
