package spscrole_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/spscrole"
)

func TestSPSCRole(t *testing.T) {
	linttest.Run(t, spscrole.Analyzer, "spscrole")
}

// TestSPSCRoleCrossPackage proves pending ops cross the package
// boundary: dep's queue methods have no callers at home, so the
// importing package's goroutines supply the producer origins.
func TestSPSCRoleCrossPackage(t *testing.T) {
	linttest.Run(t, spscrole.Analyzer, "spscdep/dep", "spscdep/use")
}
