// Package linttest is cyclolint's golden-test harness, a small analog of
// golang.org/x/tools/go/analysis/analysistest. A test package lives
// under the analyzer's testdata/src/<pkg> directory and marks expected
// diagnostics with trailing comments:
//
//	h.v = v // want `stored in a struct field`
//
// Each `want` carries one or more Go-quoted regular expressions; every
// expectation must be matched by a diagnostic on that line and every
// diagnostic must match an expectation, or the test fails.
//
// Test packages type-check against the real module: imports of
// cyclojoin/... (and the stdlib) resolve through the same export-data
// importer the drivers use, so testdata can exercise analyzers against
// the genuine relation.View, trace.Shard and metrics.Registry types.
package linttest

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/load"
)

// Run analyzes each testdata/src/<pkg> directory (relative to the
// calling test's working directory) as one package and checks its `want`
// expectations against a.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	exports := moduleExports(t)
	for _, pkg := range pkgs {
		runPackage(t, a, exports, pkg)
	}
}

// moduleExports indexes export data for every module package and its
// (stdlib) dependencies, shared across the test's packages.
func moduleExports(t *testing.T) map[string]string {
	t.Helper()
	root := moduleRoot(t)
	exports, _, err := load.GoList(root, "./...")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return exports
}

// moduleRoot locates the enclosing module's directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("linttest: go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(string(out))
}

func runPackage(t *testing.T, a *analysis.Analyzer, exports map[string]string, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkg))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := load.Importer(fset, nil, exports)
	loaded, err := load.CheckFiles(fset, imp, "cyclolinttest/"+pkg, filenames)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     loaded.Files,
		Pkg:       loaded.Types,
		TypesInfo: loaded.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s on %s: %v", a.Name, pkg, err)
	}
	checkExpectations(t, fset, loaded, pkg, diags)
}

// expectation is one `want` regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// parseWants extracts the `want` expectations from a package's comments.
func parseWants(t *testing.T, fset *token.FileSet, loaded *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range loaded.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: %s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a want payload: a sequence of Go-quoted strings
// (interpreted or backquoted).
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		q, rest, err := scanQuoted(s)
		if err != nil {
			t.Fatalf("linttest: %s: malformed want clause %q: %v", pos, s, err)
		}
		out = append(out, q)
		s = strings.TrimSpace(rest)
	}
	return out
}

// scanQuoted consumes one leading Go string literal from s.
func scanQuoted(s string) (value, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquote")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				v, err := strconv.Unquote(s[:i+1])
				return v, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quote")
	default:
		return "", "", fmt.Errorf("expected quoted pattern")
	}
}

func checkExpectations(t *testing.T, fset *token.FileSet, loaded *load.Package, pkg string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, loaded)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	if t.Failed() {
		t.Logf("package %s: %d diagnostics, %d expectations", pkg, len(diags), len(wants))
	}
}
