// Package linttest is cyclolint's golden-test harness, a small analog of
// golang.org/x/tools/go/analysis/analysistest. A test package lives
// under the analyzer's testdata/src/<pkg> directory and marks expected
// diagnostics with trailing comments:
//
//	h.v = v // want `stored in a struct field`
//
// Each `want` carries one or more Go-quoted regular expressions; every
// expectation must be matched by a diagnostic on that line and every
// diagnostic must match an expectation, or the test fails.
//
// Test packages type-check against the real module: imports of
// cyclojoin/... (and the stdlib) resolve through the same export-data
// importer the drivers use, so testdata can exercise analyzers against
// the genuine relation.View, trace.Shard and metrics.Registry types.
//
// Two interprocedural features mirror the real drivers:
//
//   - Multi-package fixtures: a testdata package may import another one
//     as "cyclolinttest/<pkg>"; the import resolves to the sibling
//     testdata/src/<pkg> directory, type-checked from source. Run
//     analyzes its packages in the listed order and threads analyzer
//     facts between them, so list dependencies first and summaries cross
//     the package boundary exactly as vetx facts do in go vet mode.
//   - Suggested-fix goldens: RunFix applies every reported fix and
//     compares each rewritten file byte-exactly against its
//     <name>.go.golden sibling.
package linttest

import (
	"bytes"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/load"
)

// testPathPrefix is the synthetic import-path namespace for testdata
// packages.
const testPathPrefix = "cyclolinttest/"

// Run analyzes each testdata/src/<pkg> directory (relative to the
// calling test's working directory) as one package, in the listed order
// with facts threaded between packages, and checks `want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	h := newHarness(t)
	for _, pkg := range pkgs {
		diags := h.analyze(t, a, pkg)
		checkExpectations(t, h.fset, h.loaded[testPathPrefix+pkg], pkg, diags)
	}
}

// RunFix analyzes each package, applies every suggested fix, and
// compares each rewritten file byte-exactly against <file>.golden. Files
// without fixes must have no golden.
func RunFix(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	h := newHarness(t)
	for _, pkg := range pkgs {
		diags := h.analyze(t, a, pkg)
		loaded := h.loaded[testPathPrefix+pkg]

		src := make(map[string][]byte)
		for _, f := range loaded.Files {
			name := h.fset.Position(f.FileStart).Filename
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			src[name] = data
		}
		fixed, err := analysis.ApplyFixes(h.fset, diags, src)
		if err != nil {
			t.Fatalf("linttest: applying %s fixes to %s: %v", a.Name, pkg, err)
		}
		for name, after := range fixed {
			golden := name + ".golden"
			changed := !bytes.Equal(after, src[name])
			want, err := os.ReadFile(golden)
			if os.IsNotExist(err) {
				if changed {
					t.Errorf("linttest: %s: fixes change the file but %s does not exist; got:\n%s", name, golden, after)
				}
				continue
			}
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			if !bytes.Equal(after, want) {
				t.Errorf("linttest: %s: fixed output differs from %s\n--- got ---\n%s\n--- want ---\n%s", name, golden, after, want)
			}
		}
	}
}

// harness shares one FileSet, importer, and fact store across the
// packages of a Run, so cross-package imports and facts line up.
type harness struct {
	fset    *token.FileSet
	base    types.Importer
	loaded  map[string]*load.Package // by full import path
	facts   map[string][]byte        // by full import path
	srcRoot string
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	fset := token.NewFileSet()
	h := &harness{
		fset:    fset,
		loaded:  make(map[string]*load.Package),
		facts:   make(map[string][]byte),
		srcRoot: filepath.Join("testdata", "src"),
	}
	h.base = load.Importer(fset, nil, moduleExports(t))
	return h
}

// Import resolves testdata-internal imports from source and everything
// else through the module's export data. This makes harness a
// types.Importer usable for chained testdata packages.
func (h *harness) Import(path string) (*types.Package, error) {
	if !strings.HasPrefix(path, testPathPrefix) {
		return h.base.Import(path)
	}
	p, err := h.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

func (h *harness) load(path string) (*load.Package, error) {
	if p, ok := h.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(h.srcRoot, filepath.FromSlash(strings.TrimPrefix(path, testPathPrefix)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("linttest: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	p, err := load.CheckFiles(h.fset, h, path, filenames)
	if err != nil {
		return nil, err
	}
	h.loaded[path] = p
	return p, nil
}

// analyze runs a over one testdata package with the shared fact store.
func (h *harness) analyze(t *testing.T, a *analysis.Analyzer, pkg string) []analysis.Diagnostic {
	t.Helper()
	path := testPathPrefix + pkg
	loaded, err := h.load(path)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      h.fset,
		Files:     loaded.Files,
		Pkg:       loaded.Types,
		TypesInfo: loaded.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFacts: func(p string) []byte { return h.facts[p] },
		ExportFacts: func(data []byte) {
			h.facts[path] = data
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s on %s: %v", a.Name, pkg, err)
	}
	return diags
}

// moduleExports indexes export data for every module package and its
// (stdlib) dependencies, shared across the test's packages.
func moduleExports(t *testing.T) map[string]string {
	t.Helper()
	root := moduleRoot(t)
	exports, _, err := load.GoList(root, "./...")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return exports
}

// moduleRoot locates the enclosing module's directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("linttest: go list -m: %v\n%s", err, stderr.String())
	}
	return strings.TrimSpace(string(out))
}

// expectation is one `want` regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// parseWants extracts the `want` expectations from a package's comments.
func parseWants(t *testing.T, fset *token.FileSet, loaded *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range loaded.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: %s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a want payload: a sequence of Go-quoted strings
// (interpreted or backquoted).
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		q, rest, err := scanQuoted(s)
		if err != nil {
			t.Fatalf("linttest: %s: malformed want clause %q: %v", pos, s, err)
		}
		out = append(out, q)
		s = strings.TrimSpace(rest)
	}
	return out
}

// scanQuoted consumes one leading Go string literal from s.
func scanQuoted(s string) (value, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated backquote")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				v, err := strconv.Unquote(s[:i+1])
				return v, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quote")
	default:
		return "", "", fmt.Errorf("expected quoted pattern")
	}
}

func checkExpectations(t *testing.T, fset *token.FileSet, loaded *load.Package, pkg string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, loaded)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	if t.Failed() {
		t.Logf("package %s: %d diagnostics, %d expectations", pkg, len(diags), len(wants))
	}
}
