package creditflow

import (
	"encoding/json"
	"sort"
)

// Effect is one function's send-credit custody behavior in combined
// parameter indexing (receiver first when present). It crosses package
// boundaries as a serialized fact, so a helper that reposts or acquires
// credits on the caller's behalf is understood from any importing
// package.
type Effect struct {
	// Key is the function's FuncKey.
	Key string `json:"key"`
	// ParamRelease lists the parameters whose credit the callee returns
	// (pushes back onto a credit pool, posts to the transport, or hands
	// to a releasing callee).
	ParamRelease []int `json:"param_release,omitempty"`
	// ParamBorrowed lists credit-carrying parameters the callee only
	// borrows: custody stays with the caller across the call.
	ParamBorrowed []int `json:"param_borrowed,omitempty"`
	// AcquiresResult lists result indices carrying a credit the callee
	// acquired from a pool — the caller takes over returning it.
	AcquiresResult []int `json:"acquires_result,omitempty"`
}

func (e *Effect) empty() bool {
	return len(e.ParamRelease) == 0 && len(e.ParamBorrowed) == 0 && len(e.AcquiresResult) == 0
}

// CreditFacts is the per-package fact blob.
type CreditFacts struct {
	Effects []*Effect `json:"effects"`
}

// EncodeCreditFacts serializes an effect table in deterministic order.
func EncodeCreditFacts(effects map[string]*Effect) []byte {
	keys := make([]string, 0, len(effects))
	for k, e := range effects {
		if e != nil && !e.empty() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	f := &CreditFacts{}
	for _, k := range keys {
		f.Effects = append(f.Effects, effects[k])
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeCreditFacts parses a fact blob, tolerating nil/garbage.
func DecodeCreditFacts(data []byte) map[string]*Effect {
	out := make(map[string]*Effect)
	if len(data) == 0 {
		return out
	}
	var f CreditFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out
	}
	for _, e := range f.Effects {
		if e != nil && e.Key != "" {
			out[e.Key] = e
		}
	}
	return out
}
