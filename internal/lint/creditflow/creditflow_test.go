package creditflow_test

import (
	"testing"

	"cyclojoin/internal/lint/creditflow"
	"cyclojoin/internal/lint/linttest"
)

func TestCreditFlow(t *testing.T) {
	linttest.Run(t, creditflow.Analyzer, "creditflow")
}

// TestCreditFlowCrossPackage threads dep's Acquire/Release effects into
// the importing package's pass.
func TestCreditFlowCrossPackage(t *testing.T) {
	linttest.Run(t, creditflow.Analyzer, "creditdep/dep", "creditdep/use")
}

// TestCreditFlowFix applies the suggested TryPush reinsertion and
// compares against credits.go.golden byte-exactly.
func TestCreditFlowFix(t *testing.T) {
	linttest.RunFix(t, creditflow.Analyzer, "creditflow")
}
