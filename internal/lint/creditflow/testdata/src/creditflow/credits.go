package creditflow

import (
	"errors"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/ringq"
)

var errStopping = errors.New("stopping")

type node struct {
	freeSend *ringq.MPMC[*rdma.Buffer]
	qp       rdma.QueuePair
	handoff  chan *rdma.Buffer
}

// leakOnError drops the credit on the early-exit path; the suggested fix
// reinserts the push (see credits.go.golden).
func (n *node) leakOnError(bad bool) error {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return nil
	}
	if bad {
		return errStopping // want `send credit buf .* is not returned on this path`
	}
	n.freeSend.TryPush(buf)
	return nil
}

// okPaired holds nothing on the failed-pop path.
func (n *node) okPaired() {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return
	}
	n.freeSend.TryPush(buf)
}

// okPost hands the credit to the transport; the completion reaper owns
// the repost.
func (n *node) okPost() error {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return errStopping
	}
	return n.qp.PostSend(buf)
}

// doublePush returns the same credit twice.
func (n *node) doublePush() {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return
	}
	n.freeSend.TryPush(buf)
	n.freeSend.TryPush(buf) // want `send credit buf is returned twice on this path`
}

// okHandoff transfers the obligation over a channel.
func (n *node) okHandoff() {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return
	}
	n.handoff <- buf
}

// okBatch stages credits into a scratch slice; the container owns them.
func (n *node) okBatch(batch []*rdma.Buffer) []*rdma.Buffer {
	for i := 0; i < 4; i++ {
		buf, ok := n.freeSend.TryPop()
		if !ok {
			break
		}
		batch = append(batch, buf)
	}
	return batch
}

// repost is a releasing helper: the effect crosses to its callers.
func repost(pool *ringq.MPMC[*rdma.Buffer], buf *rdma.Buffer) {
	pool.TryPush(buf)
}

func (n *node) okViaHelper() {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return
	}
	repost(n.freeSend, buf)
}

// leakInSelect drops the credit on the recovery path.
func (n *node) leakInSelect(stop chan struct{}) {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return
	}
	select {
	case <-stop:
		return // want `send credit buf .* is not returned on this path`
	default:
		n.freeSend.TryPush(buf)
	}
}

// backEdgeLeak re-pops every iteration without returning the previous
// credit.
func (n *node) backEdgeLeak(rounds int) {
	for i := 0; i < rounds; i++ {
		buf, ok := n.freeSend.TryPop() // want `send credit buf is still held at the loop's back edge`
		if !ok {
			return
		}
		_ = buf.Len()
	}
}

// sanctioned documents a deliberate exception at the statement.
func (n *node) sanctioned(bad bool) error {
	buf, ok := n.freeSend.TryPop()
	if !ok {
		return nil
	}
	if bad {
		//cyclolint:creditsafe the recovery path reconciles credits on restart
		return errStopping
	}
	n.freeSend.TryPush(buf)
	return nil
}
