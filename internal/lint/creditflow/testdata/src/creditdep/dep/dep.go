// Package dep wraps the send-credit pool; its Acquire/Release effects
// cross to importers as facts.
package dep

import (
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/ringq"
)

type Pool struct {
	free *ringq.MPMC[*rdma.Buffer]
}

func (p *Pool) Acquire() (*rdma.Buffer, bool) {
	return p.free.TryPop()
}

func (p *Pool) Release(b *rdma.Buffer) {
	p.free.TryPush(b)
}
