package use

import "cyclolinttest/creditdep/dep"

func leak(p *dep.Pool, bad bool) {
	b, ok := p.Acquire()
	if !ok {
		return
	}
	if bad {
		return // want `send credit b .* is not returned on this path`
	}
	p.Release(b)
}

func clean(p *dep.Pool) {
	b, ok := p.Acquire()
	if !ok {
		return
	}
	p.Release(b)
}
