// Package creditflow verifies conservation of ring send-credit tokens.
//
// The ring's flow control is a closed credit economy: a node may only
// post a send once it holds a free send buffer, and the pool of those
// buffers — ringq.MPMC[*rdma.Buffer] — IS the credit ledger. Every
// TryPop from a credit pool mints an obligation: on every path the
// token must go back (TryPush to a pool), to the transport (PostSend /
// PostRecv / PostWrite — the completion reaper reposts it), or to
// another owner via an explicit handoff. A path that drops the local
// leaks a credit; the pool shrinks silently and the ring wedges under
// backpressure exactly one slot at a time — the classic failure of the
// recovery and flush paths that tests rarely drive. Pushing the same
// token twice is worse: the pool hands the buffer to two senders.
//
// The analyzer simulates each function path-sensitively (like bufown):
// tokens are Held/Released per path, merges keep the leakiest state,
// `buf, ok := pool.TryPop()` pairs the bool so failed-acquire branches
// hold nothing, and custody effects of callees cross package boundaries
// as facts. Leaks at a return get a mechanical suggested fix reinserting
// the TryPush when the pool expression is visible at the acquire.
//
// Deliberate exceptions are annotated at the statement:
//
//	//cyclolint:creditsafe <justification>
package creditflow

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// ringqPkg declares the MPMC pool type; rdmaPkg declares Buffer.
const (
	ringqPkg = "cyclojoin/internal/ringq"
	rdmaPkg  = "cyclojoin/internal/rdma"
)

// Analyzer flags send-credit tokens that leak or double-release.
var Analyzer = &analysis.Analyzer{
	Name:      "creditflow",
	Doc:       "a send credit popped from a ringq.MPMC[*rdma.Buffer] pool must be returned (TryPush, post, or handoff) on every path, exactly once",
	Version:   "1",
	UsesFacts: true,
	Run:       run,
}

// postMethods transfer the credit to the transport.
var postMethods = map[string]bool{
	"PostRecv": true, "PostSend": true, "PostWrite": true, "PostWriteImm": true,
}

func run(pass *analysis.Pass) error {
	g := dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, pass.Files)
	effects := make(map[string]*Effect)
	for _, imp := range pass.Pkg.Imports() {
		for k, e := range DecodeCreditFacts(pass.ImportedFacts(imp.Path())) {
			effects[k] = e
		}
	}
	solveEffects(pass, g, effects)
	pass.Export(EncodeCreditFacts(effects))
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.FuncHasDirective(fn, "creditsafe") {
				continue
			}
			checkFunc(pass, g, effects, file, fn)
		}
	}
	return nil
}

// isBufferPtr reports whether t is *rdma.Buffer.
func isBufferPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return analysis.IsNamed(ptr.Elem(), rdmaPkg, "Buffer")
}

// isBufferChan reports whether t is a channel of *rdma.Buffer (a credit
// handoff lane between goroutines).
func isBufferChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ok && isBufferPtr(ch.Elem())
}

// isCreditPool reports whether t is ringq.MPMC[*rdma.Buffer] (possibly
// behind a pointer) — the send-credit ledger type.
func isCreditPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "MPMC" || obj.Pkg() == nil || obj.Pkg().Path() != ringqPkg {
		return false
	}
	args := named.TypeArgs()
	return args != nil && args.Len() == 1 && isBufferPtr(args.At(0))
}

// poolPop returns the pool expression of a `pool.TryPop()` credit
// acquire, or nil.
func poolPop(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "TryPop" {
		return nil
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal || !isCreditPool(selection.Recv()) {
		return nil
	}
	return sel.X
}

// poolPush returns the pushed argument of a `pool.TryPush(x)` credit
// release, or nil.
func poolPush(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "TryPush" || len(call.Args) != 1 {
		return nil
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal || !isCreditPool(selection.Recv()) {
		return nil
	}
	return call.Args[0]
}

// isPostCall reports PostRecv/PostSend/PostWrite/PostWriteImm with a
// buffer argument: the transport takes the credit.
func isPostCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !postMethods[sel.Sel.Name] {
		return false
	}
	if _, ok := pass.TypesInfo.Selections[sel]; !ok {
		return false
	}
	for _, a := range call.Args {
		if isBufferPtr(pass.TypesInfo.TypeOf(a)) {
			return true
		}
	}
	return false
}

// ---- effect inference (flow-insensitive, with alias closure) ----

func solveEffects(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect) {
	fns := g.All()
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range fns {
			e := inferEffect(pass, g, effects, fn)
			old := effects[fn.Key()]
			if !effectsEqual(old, e) {
				effects[fn.Key()] = e
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func effectsEqual(a, b *Effect) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return intsEqual(a.ParamRelease, b.ParamRelease) &&
		intsEqual(a.ParamBorrowed, b.ParamBorrowed) &&
		intsEqual(a.AcquiresResult, b.AcquiresResult)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func combinedParams(fn *dataflow.Func) []*types.Var {
	sig := fn.Obj.Type().(*types.Signature)
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// inferEffect derives fn's credit effect: which buffer parameters it
// returns to a pool (directly or via a releasing callee, through simple
// local aliases), and which results carry a freshly popped credit.
func inferEffect(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect, fn *dataflow.Func) *Effect {
	e := &Effect{Key: fn.Key()}
	if fn.Decl.Body == nil {
		return e
	}
	params := combinedParams(fn)

	objOf := func(id *ast.Ident) types.Object {
		if o := pass.TypesInfo.Defs[id]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[id]
	}
	paramIdx := make(map[types.Object]int)
	for i, p := range params {
		if isBufferPtr(p.Type()) {
			paramIdx[p] = i
		}
	}
	acquired := make(map[types.Object]bool)
	for round := 0; round < 2; round++ {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				lobj := objOf(id)
				if lobj == nil || !isBufferPtr(lobj.Type()) {
					continue
				}
				if i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) {
					if rid, ok := ast.Unparen(as.Rhs[i]).(*ast.Ident); ok {
						if robj := objOf(rid); robj != nil {
							if idx, ok := paramIdx[robj]; ok {
								paramIdx[lobj] = idx
							}
							if acquired[robj] {
								acquired[lobj] = true
							}
						}
						continue
					}
				}
				rhs := as.Rhs[0]
				if len(as.Lhs) == len(as.Rhs) {
					rhs = as.Rhs[i]
				}
				if kind, _ := acquireKind(pass, g, effects, rhs, i); kind != acquireNone {
					acquired[lobj] = true
				}
			}
			return true
		})
	}

	released := make(map[int]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if !isBufferChan(pass.TypesInfo.TypeOf(x.Chan)) {
				return true
			}
			if id, ok := ast.Unparen(x.Value).(*ast.Ident); ok {
				if idx, ok := paramIdx[objOf(id)]; ok {
					released[idx] = true
				}
			}
		case *ast.CallExpr:
			if arg := poolPush(pass, x); arg != nil {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if idx, ok := paramIdx[objOf(id)]; ok {
						released[idx] = true
					}
				}
				return true
			}
			for ai, arg := range callArgs(pass, x) {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				idx, ok := paramIdx[objOf(id)]
				if !ok {
					continue
				}
				if isPostCall(pass, x) && ai > 0 && isBufferPtr(pass.TypesInfo.TypeOf(arg)) {
					released[idx] = true
					continue
				}
				if ce := calleeEffect(g, effects, x); ce != nil {
					for _, r := range ce.ParamRelease {
						if r == ai {
							released[idx] = true
						}
					}
				}
			}
		}
		return true
	})
	for idx := range released {
		e.ParamRelease = append(e.ParamRelease, idx)
	}
	sort.Ints(e.ParamRelease)

	// ParamBorrowed: every use keeps custody with the caller.
	parent := buildParents(fn.Decl.Body)
	escaped := make(map[int]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		idx, ok := paramIdx[objOf(id)]
		if !ok {
			return true
		}
		if !borrowUseSafe(pass, g, effects, parent, id, objOf) {
			escaped[idx] = true
		}
		return true
	})
	for i, p := range params {
		if !isBufferPtr(p.Type()) || released[i] || escaped[i] {
			continue
		}
		e.ParamBorrowed = append(e.ParamBorrowed, i)
	}
	sort.Ints(e.ParamBorrowed)

	fresh := make(map[int]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for j, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if acquired[objOf(id)] {
					fresh[j] = true
				}
				continue
			}
			if kind, _ := acquireKind(pass, g, effects, res, j); kind != acquireNone {
				fresh[j] = true
			}
		}
		return true
	})
	for j := range fresh {
		e.AcquiresResult = append(e.AcquiresResult, j)
	}
	sort.Ints(e.AcquiresResult)
	return e
}

func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parent := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

func borrowUseSafe(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect,
	parent map[ast.Node]ast.Node, id *ast.Ident, objOf func(*ast.Ident) types.Object) bool {
	var n ast.Node = id
	p := parent[n]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			n = pe
			p = parent[pe]
			continue
		}
		break
	}
	switch x := p.(type) {
	case *ast.AssignStmt:
		for i, lhs := range x.Lhs {
			if lhs == n {
				return true
			}
			if i < len(x.Rhs) && x.Rhs[i] == n && len(x.Lhs) == len(x.Rhs) {
				if lid, ok := lhs.(*ast.Ident); ok {
					if lid.Name == "_" {
						return true
					}
					if lo := objOf(lid); lo != nil && isBufferPtr(lo.Type()) {
						return true
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		return x.Value == n && isBufferChan(pass.TypesInfo.TypeOf(x.Chan))
	case *ast.BinaryExpr:
		return true
	case *ast.SelectorExpr:
		if x.X != n {
			return false
		}
		call, ok := parent[x].(*ast.CallExpr)
		if !ok || call.Fun != ast.Node(x) {
			return false
		}
		_, isMethod := pass.TypesInfo.Selections[x]
		return isMethod
	case *ast.CallExpr:
		if x.Fun == n {
			return false
		}
		if arg := poolPush(pass, x); arg != nil && ast.Unparen(arg) == n {
			return true // a release, already counted
		}
		for ai, arg := range callArgs(pass, x) {
			if arg != n {
				continue
			}
			if isPostCall(pass, x) && ai > 0 && isBufferPtr(pass.TypesInfo.TypeOf(arg)) {
				return true
			}
			if ce := calleeEffect(g, effects, x); ce != nil {
				return releasesParam(ce, ai) || borrowsParam(ce, ai)
			}
			return false
		}
		return false
	default:
		return false
	}
}

func callArgs(pass *analysis.Pass, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

func calleeEffect(g *dataflow.Graph, effects map[string]*Effect, call *ast.CallExpr) *Effect {
	fn := g.StaticCallee(call)
	if fn == nil {
		return nil
	}
	return effects[dataflow.FuncKey(fn)]
}

type acquire int

const (
	acquireNone acquire = iota
	acquirePool         // pool.TryPop(): the home pool is visible
	acquireCall         // effect callee: no visible home pool
)

// acquireKind classifies an acquire expression feeding result slot i
// and, for direct pool pops, returns the pool expression.
func acquireKind(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect, e ast.Expr, i int) (acquire, ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return acquireNone, nil
	}
	if pool := poolPop(pass, call); pool != nil && i == 0 {
		return acquirePool, pool
	}
	if ce := calleeEffect(g, effects, call); ce != nil {
		for _, j := range ce.AcquiresResult {
			if j == i {
				return acquireCall, nil
			}
		}
	}
	return acquireNone, nil
}

// ---- path-sensitive typestate walk ----

type status int

const (
	untracked status = iota
	releasedS
	held // highest wins on merge: a leak on any path is a leak
)

type credState struct {
	s   status
	pos token.Pos
}

type state map[types.Object]credState

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s state) merge(other state) {
	for k, v := range other {
		if v.s > s[k].s {
			s[k] = v
		}
	}
}

type tracked struct {
	obj      types.Object
	acquire  token.Pos
	kind     acquire
	poolExpr ast.Expr // the home pool, when kind == acquirePool
}

type checker struct {
	pass    *analysis.Pass
	g       *dataflow.Graph
	effects map[string]*Effect
	file    *ast.File
	fn      *ast.FuncDecl

	bufs map[types.Object]*tracked
	// okFor pairs the bool of `buf, ok := pool.TryPop()` with its buffer:
	// on the !ok path the pop failed and nothing is held.
	okFor    map[types.Object]types.Object
	hasGoto  bool
	reported map[posKey]bool
}

type posKey struct {
	obj types.Object
	pos token.Pos
}

func checkFunc(pass *analysis.Pass, g *dataflow.Graph, effects map[string]*Effect, file *ast.File, fn *ast.FuncDecl) {
	c := &checker{
		pass:     pass,
		g:        g,
		effects:  effects,
		file:     file,
		fn:       fn,
		bufs:     make(map[types.Object]*tracked),
		okFor:    make(map[types.Object]types.Object),
		reported: make(map[posKey]bool),
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			c.hasGoto = true
		}
		return true
	})
	if c.hasGoto {
		return
	}
	st := make(state)
	terminated := c.stmt(fn.Body, st)
	if !terminated {
		c.reportHeld(st, fn.Body.End(), fn.Body)
	}
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *checker) trackedIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.objOf(id)
	if obj == nil || c.bufs[obj] == nil {
		return nil
	}
	return obj
}

func (c *checker) exempt(at ast.Node) bool {
	return c.pass.HasDirective(c.file, at, "creditsafe")
}

func (c *checker) report(obj types.Object, at token.Pos, node ast.Node, format string, args ...any) {
	key := posKey{obj, at}
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	if node != nil && c.exempt(node) {
		return
	}
	c.pass.Reportf(at, format, args...)
}

func (c *checker) reportHeld(st state, at token.Pos, node ast.Node) {
	for obj, v := range st {
		if v.s != held {
			continue
		}
		tr := c.bufs[obj]
		key := posKey{obj, at}
		if c.reported[key] {
			continue
		}
		c.reported[key] = true
		if node != nil && c.exempt(node) {
			continue
		}
		d := analysis.Diagnostic{
			Pos: at,
			Message: "send credit " + obj.Name() + " (popped at " +
				c.pass.Fset.Position(tr.acquire).String() + ") is not returned on this path; push it back to its pool before returning, or annotate //cyclolint:creditsafe with the custody argument",
		}
		if tr.kind == acquirePool && tr.poolExpr != nil {
			if fix := c.releaseFix(tr, obj, at); fix != nil {
				d.Fixes = append(d.Fixes, *fix)
			}
		}
		c.pass.Report(d)
	}
}

// releaseFix builds the `pool.TryPush(buf)` insertion in front of the
// leaking return, matching the return's indentation.
func (c *checker) releaseFix(tr *tracked, obj types.Object, at token.Pos) *analysis.SuggestedFix {
	var poolSrc bytes.Buffer
	if err := printer.Fprint(&poolSrc, c.pass.Fset, tr.poolExpr); err != nil {
		return nil
	}
	pos := c.pass.Fset.Position(at)
	indent := strings.Repeat("\t", pos.Column-1)
	return &analysis.SuggestedFix{
		Message: "return the credit " + obj.Name() + " to its pool",
		Edits: []analysis.TextEdit{{
			Pos:     at,
			End:     at,
			NewText: poolSrc.String() + ".TryPush(" + obj.Name() + ")\n" + indent,
		}},
	}
}

// ---- statement simulation ----

func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch x := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return c.stmtList(x.List, st)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if c.terminatesCall(call) {
				c.scanExpr(x.X, st, x)
				return true
			}
		}
		c.scanExpr(x.X, st, x)
		return false
	case *ast.AssignStmt:
		c.assign(x, st)
		return false
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							c.scanExpr(vs.Values[i], st, x)
						}
						_ = name
					}
				}
			}
		}
		return false
	case *ast.SendStmt:
		c.send(x, st)
		return false
	case *ast.DeferStmt:
		c.deferredCall(x.Call, st, x)
		return false
	case *ast.GoStmt:
		c.scanExpr(x.Call, st, x)
		return false
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			if obj := c.trackedIdent(res); obj != nil {
				// Returning the token transfers the obligation upward.
				st[obj] = credState{s: untracked, pos: x.Pos()}
				continue
			}
			c.scanExpr(res, st, x)
		}
		c.reportHeld(st, x.Pos(), x)
		return true
	case *ast.IfStmt:
		c.stmt(x.Init, st)
		c.scanExpr(x.Cond, st, x)
		thenSt := st.clone()
		elseSt := st.clone()
		if bufObj, thenHolds := c.okCheck(x.Cond); bufObj != nil {
			if thenHolds {
				// if ok: the pop failed on the else path.
				elseSt[bufObj] = credState{s: untracked, pos: x.Cond.Pos()}
			} else {
				// if !ok: the pop failed on the then path.
				thenSt[bufObj] = credState{s: untracked, pos: x.Cond.Pos()}
			}
		}
		thenTerm := c.stmt(x.Body, thenSt)
		elseTerm := false
		if x.Else != nil {
			elseTerm = c.stmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			copyInto(st, elseSt)
		case elseTerm:
			copyInto(st, thenSt)
		default:
			copyInto(st, thenSt)
			st.merge(elseSt)
		}
		return false
	case *ast.ForStmt:
		c.stmt(x.Init, st)
		c.scanExpr(x.Cond, st, x)
		c.loopBody(x.Body, st)
		return x.Cond == nil && !hasBreak(x.Body)
	case *ast.RangeStmt:
		c.scanExpr(x.X, st, x)
		c.loopBody(x.Body, st)
		return false
	case *ast.SwitchStmt:
		c.stmt(x.Init, st)
		c.scanExpr(x.Tag, st, x)
		return c.clauses(x.Body, st, hasDefault(x.Body))
	case *ast.TypeSwitchStmt:
		c.stmt(x.Init, st)
		return c.clauses(x.Body, st, hasDefault(x.Body))
	case *ast.SelectStmt:
		return c.clauses(x.Body, st, true)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, st)
	case *ast.BranchStmt:
		return true
	case *ast.IncDecStmt, *ast.EmptyStmt:
		return false
	default:
		return false
	}
}

func (c *checker) stmtList(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) loopBody(body *ast.BlockStmt, st state) {
	bodySt := st.clone()
	terminated := c.stmt(body, bodySt)
	if !terminated {
		for obj, v := range bodySt {
			if v.s != held || st[obj].s == held {
				continue
			}
			tr := c.bufs[obj]
			if tr == nil || tr.acquire < body.Pos() || body.End() <= tr.acquire {
				continue
			}
			c.report(obj, tr.acquire, nil,
				"send credit %s is still held at the loop's back edge; return it before the iteration ends, or annotate //cyclolint:creditsafe",
				obj.Name())
			bodySt[obj] = credState{s: untracked, pos: v.pos}
		}
	}
	st.merge(bodySt)
}

func (c *checker) clauses(body *ast.BlockStmt, st state, exhaustive bool) bool {
	pre := st.clone()
	allTerm := true
	first := true
	for _, cl := range body.List {
		clSt := pre.clone()
		var term bool
		switch cc := cl.(type) {
		case *ast.CaseClause:
			term = c.stmtList(cc.Body, clSt)
		case *ast.CommClause:
			if cc.Comm != nil {
				c.stmt(cc.Comm, clSt)
			}
			term = c.stmtList(cc.Body, clSt)
		default:
			continue
		}
		if term {
			continue
		}
		allTerm = false
		if first {
			copyInto(st, clSt)
			first = false
		} else {
			st.merge(clSt)
		}
	}
	if !exhaustive {
		if first {
			copyInto(st, pre)
		} else {
			st.merge(pre)
		}
		return false
	}
	return allTerm
}

// assign handles acquires (LHS becomes held) and alias/escape on the RHS.
func (c *checker) assign(x *ast.AssignStmt, st state) {
	for i, lhs := range x.Lhs {
		var rhs ast.Expr
		ri := i
		if len(x.Lhs) == len(x.Rhs) {
			rhs = x.Rhs[i]
			ri = 0
		} else if len(x.Rhs) == 1 {
			rhs = x.Rhs[0]
		} else {
			continue
		}
		id, isIdent := lhs.(*ast.Ident)
		if isIdent && id.Name != "_" {
			obj := c.objOf(id)
			if obj != nil && isBufferPtr(obj.Type()) {
				if kind, pool := acquireKind(c.pass, c.g, c.effects, rhs, ri); kind != acquireNone {
					c.bufs[obj] = &tracked{obj: obj, acquire: rhs.Pos(), kind: kind, poolExpr: pool}
					st[obj] = credState{s: held, pos: rhs.Pos()}
					if len(x.Lhs) != len(x.Rhs) {
						// buf, ok := pool.TryPop(): pair the bool so the
						// failed-pop path is known to hold nothing.
						for _, other := range x.Lhs {
							oid, ok := other.(*ast.Ident)
							if !ok || oid == id {
								continue
							}
							if oobj := c.objOf(oid); oobj != nil && isBoolType(oobj.Type()) {
								c.okFor[oobj] = obj
							}
						}
					}
					if len(x.Rhs) == 1 {
						c.scanCallArgsOnly(rhs, st, x)
						return
					}
					continue
				}
				if prev, ok := st[obj]; ok && prev.s == held {
					c.report(obj, x.Pos(), x,
						"send credit %s (popped at %s) is overwritten while still held",
						obj.Name(), c.pass.Fset.Position(c.bufs[obj].acquire))
				}
				st[obj] = credState{s: untracked, pos: x.Pos()}
			}
		}
		if rhs != nil {
			if obj := c.trackedIdent(rhs); obj != nil {
				if isIdent && id.Name == "_" {
					continue
				}
				st[obj] = credState{s: untracked, pos: x.Pos()}
				continue
			}
			c.scanExpr(rhs, st, x)
		}
	}
	for _, lhs := range x.Lhs {
		if _, ok := lhs.(*ast.Ident); ok {
			continue
		}
		c.scanExpr(lhs, st, x)
	}
}

// send handles `ch <- buf`: a credit handoff to the receiving goroutine.
func (c *checker) send(x *ast.SendStmt, st state) {
	obj := c.trackedIdent(x.Value)
	if obj == nil {
		c.scanExpr(x.Value, st, x)
		return
	}
	st[obj] = credState{s: untracked, pos: x.Pos()}
}

func (c *checker) deferredCall(call *ast.CallExpr, st state, at ast.Stmt) {
	// A deferred release covers every return after it; immediate is sound
	// for leak checking.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if arg := poolPush(c.pass, inner); arg != nil {
					if obj := c.trackedIdent(arg); obj != nil {
						c.release(obj, inner.Pos(), at, st)
					}
				}
			}
			return true
		})
		return
	}
	c.scanExpr(call, st, at)
}

func (c *checker) scanCallArgsOnly(e ast.Expr, st state, at ast.Stmt) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		for _, a := range call.Args {
			c.scanExpr(a, st, at)
		}
	}
}

// release moves obj to released, reporting the duplicate-credit case.
func (c *checker) release(obj types.Object, at token.Pos, node ast.Node, st state) {
	if prev, ok := st[obj]; ok && prev.s == releasedS {
		c.report(obj, at, node,
			"send credit %s is returned twice on this path (previous return at %s); the duplicate credit hands the buffer to two senders",
			obj.Name(), c.pass.Fset.Position(prev.pos))
	}
	st[obj] = credState{s: releasedS, pos: at}
}

// scanExpr classifies every use of a tracked credit inside e.
func (c *checker) scanExpr(e ast.Expr, st state, at ast.Stmt) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := c.trackedIdent(x); obj != nil {
			st[obj] = credState{s: untracked, pos: x.Pos()}
		}
	case *ast.CallExpr:
		c.call(x, st, at)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if obj := c.trackedIdent(x.X); obj != nil {
				st[obj] = credState{s: untracked, pos: x.Pos()}
				return
			}
		}
		c.scanExpr(x.X, st, at)
	case *ast.BinaryExpr:
		if obj := c.trackedIdent(x.X); obj == nil {
			c.scanExpr(x.X, st, at)
		}
		if obj := c.trackedIdent(x.Y); obj == nil {
			c.scanExpr(x.Y, st, at)
		}
	case *ast.ParenExpr:
		c.scanExpr(x.X, st, at)
	case *ast.StarExpr:
		c.scanExpr(x.X, st, at)
	case *ast.SelectorExpr:
		if obj := c.trackedIdent(x.X); obj != nil {
			st[obj] = credState{s: untracked, pos: x.Pos()}
			return
		}
		c.scanExpr(x.X, st, at)
	case *ast.IndexExpr:
		c.scanExpr(x.X, st, at)
		c.scanExpr(x.Index, st, at)
	case *ast.SliceExpr:
		c.scanExpr(x.X, st, at)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if obj := c.trackedIdent(v); obj != nil {
				st[obj] = credState{s: untracked, pos: v.Pos()}
				continue
			}
			c.scanExpr(v, st, at)
		}
	case *ast.TypeAssertExpr:
		c.scanExpr(x.X, st, at)
	case *ast.FuncLit:
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.trackedIdent(id); obj != nil {
					st[obj] = credState{s: untracked, pos: id.Pos()}
				}
			}
			return true
		})
	}
}

// call applies one call's credit semantics.
func (c *checker) call(call *ast.CallExpr, st state, at ast.Stmt) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		c.scanExpr(fl, st, at)
	}
	if arg := poolPush(c.pass, call); arg != nil {
		if obj := c.trackedIdent(arg); obj != nil {
			c.release(obj, call.Pos(), at, st)
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := c.trackedIdent(sel.X); obj != nil {
			if _, isMethod := c.pass.TypesInfo.Selections[sel]; isMethod {
				// Methods on the buffer itself only touch its memory.
				for _, a := range call.Args {
					c.scanExpr(a, st, at)
				}
				return
			}
		}
	}
	post := isPostCall(c.pass, call)
	ce := calleeEffect(c.g, c.effects, call)
	for ai, arg := range callArgs(c.pass, call) {
		obj := c.trackedIdent(arg)
		if obj == nil {
			c.scanExpr(arg, st, at)
			continue
		}
		switch {
		case post && ai > 0:
			// The transport holds the credit until completion; the reaper
			// owns the repost.
			st[obj] = credState{s: untracked, pos: call.Pos()}
		case ce != nil && releasesParam(ce, ai):
			c.release(obj, call.Pos(), at, st)
		case ce != nil && borrowsParam(ce, ai):
			// Custody stays here.
		default:
			st[obj] = credState{s: untracked, pos: call.Pos()}
		}
	}
}

func releasesParam(e *Effect, i int) bool {
	for _, r := range e.ParamRelease {
		if r == i {
			return true
		}
	}
	return false
}

func borrowsParam(e *Effect, i int) bool {
	for _, r := range e.ParamBorrowed {
		if r == i {
			return true
		}
	}
	return false
}

// okCheck recognizes `if ok` / `if !ok` over a bool paired with a pop;
// thenHolds reports whether the token is held on the then path.
func (c *checker) okCheck(cond ast.Expr) (types.Object, bool) {
	neg := false
	e := ast.Unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		neg = true
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	buf := c.okFor[c.objOf(id)]
	if buf == nil {
		return nil, false
	}
	return buf, !neg
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func (c *checker) terminatesCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok {
				path := pn.Imported().Path()
				name := sel.Sel.Name
				if path == "os" && name == "Exit" {
					return true
				}
				if path == "log" && strings.HasPrefix(name, "Fatal") {
					return true
				}
			}
		}
	}
	return false
}

func copyInto(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BranchStmt:
			if x.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if n != ast.Node(body) {
				ast.Inspect(n, func(m ast.Node) bool {
					if b, ok := m.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
						found = true
					}
					return true
				})
				return false
			}
		}
		return true
	})
	return found
}
