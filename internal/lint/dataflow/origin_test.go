package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

const originSrc = `package q

type node struct{ stop chan struct{} }

func (n *node) start() {
	go n.recvLoop()
	go func() {
		n.sendLoop()
	}()
}

func (n *node) recvLoop() { n.deliver() }

func (n *node) sendLoop() { n.drain() }

func (n *node) deliver() {}

func (n *node) drain() { n.deliver() }

func (n *node) helper() { n.deliver() }

func orphan() {}

func asValue() {}

var hook = asValue

func generic[T any](v T) {}

func useGeneric() { go generic[int](1) }

func (n *node) flush() {}

func (n *node) launchValue() {
	f := n.flush
	go f()
}
`

func buildOriginGraph(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "q.go", originSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("q", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return NewGraph(fset, pkg, info, []*ast.File{file})
}

func TestOrigins(t *testing.T) {
	g := buildOriginGraph(t)
	o := NewOrigins(g)

	get := func(name string) *Func {
		for _, fn := range g.All() {
			if fn.Obj.Name() == name {
				return fn
			}
		}
		t.Fatalf("no func %s", name)
		return nil
	}
	of := func(name string) []string { return o.Of(get(name)) }

	// start has no callers: it runs at entry.
	if got := of("start"); !reflect.DeepEqual(got, []string{EntryOrigin}) {
		t.Errorf("start: got %v", got)
	}
	// recvLoop is launched by `go n.recvLoop()` — a single go label.
	recv := of("recvLoop")
	if len(recv) != 1 || !strings.HasPrefix(recv[0], "go q.go:") {
		t.Errorf("recvLoop: got %v", recv)
	}
	// sendLoop is called inside a go'd func literal: same treatment.
	send := of("sendLoop")
	if len(send) != 1 || !strings.HasPrefix(send[0], "go q.go:") {
		t.Errorf("sendLoop: got %v", send)
	}
	if recv[0] == send[0] {
		t.Errorf("recvLoop and sendLoop must have distinct labels: %v", recv)
	}
	// deliver is reached from both goroutines AND from helper (an
	// entry-rooted function): all three origins propagate.
	deliver := of("deliver")
	want := map[string]bool{recv[0]: true, send[0]: true, EntryOrigin: true}
	if len(deliver) != len(want) {
		t.Errorf("deliver: got %v, want origins %v", deliver, want)
	}
	for _, l := range deliver {
		if !want[l] {
			t.Errorf("deliver: unexpected origin %q in %v", l, deliver)
		}
	}
	// drain inherits sendLoop's launch label only.
	if got := of("drain"); !reflect.DeepEqual(got, send) {
		t.Errorf("drain: got %v, want %v", got, send)
	}
	// orphan is an uncalled root — entry, and no execution evidence.
	if got := of("orphan"); !reflect.DeepEqual(got, []string{EntryOrigin}) {
		t.Errorf("orphan: got %v", got)
	}
	if o.HasEvidence(get("orphan")) {
		t.Error("orphan: must have no execution evidence")
	}
	if !o.HasEvidence(get("deliver")) {
		t.Error("deliver: must have execution evidence")
	}
	// asValue is referenced as a value: execution context unknown → entry.
	if got := of("asValue"); !reflect.DeepEqual(got, []string{EntryOrigin}) {
		t.Errorf("asValue: got %v", got)
	}
	// generic launched with explicit instantiation resolves to its origin.
	gen := of("generic")
	if len(gen) != 1 || !strings.HasPrefix(gen[0], "go q.go:") {
		t.Errorf("generic: got %v", gen)
	}
	// flush is launched through a method value (f := n.flush; go f()):
	// the go statement's callee is not statically resolvable, so flush
	// falls back to entry with no execution evidence — the conservative
	// answer that keeps shareguard's prelaunch rule from firing on it.
	if got := of("flush"); !reflect.DeepEqual(got, []string{EntryOrigin}) {
		t.Errorf("flush: got %v, want [%s]", got, EntryOrigin)
	}
	if o.HasEvidence(get("flush")) {
		t.Error("flush: a method-value launch must not count as execution evidence")
	}

	// Fact round-trip.
	facts := DecodeOriginFacts(o.Facts())
	if got := facts[get("deliver").Key()]; !reflect.DeepEqual(got, deliver) {
		t.Errorf("facts[deliver]: got %v, want %v", got, deliver)
	}
	if DecodeOriginFacts(nil) == nil || DecodeOriginFacts([]byte("junk")) == nil {
		t.Error("DecodeOriginFacts must tolerate nil/garbage")
	}
}
