package dataflow

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"sort"
)

// Goroutine-origin analysis: every `go` statement is a labeled origin,
// and each function gets the set of origins that can execute it. The
// model is static — an origin is a launch *site* ("go node.go:396"), not
// a dynamic goroutine — which matches the ringq SPSC contract exactly:
// "single producer" means one producer launch site (or a succession of
// goroutines from the same site ordered by other synchronization), so
// two distinct sites reaching the same endpoint is the protocol smell.
//
// Within one package the propagation is a fixpoint over two edge kinds:
//
//   - a plain static call F → C (including calls inside non-go'd func
//     literals, and deferred calls) propagates origins(F) into origins(C);
//   - `go C(...)` at position p, or a static call to C inside a func
//     literal launched at p, contributes the label "go <file:line of p>".
//
// Functions with no in-package callers or launch sites are roots and get
// the distinguished "entry" origin: they run in whatever goroutine the
// external caller (main, a test, an importing package) happens to be on.
// A function referenced as a value (method value, assigned to a field)
// also gets "entry", since its execution context is no longer visible.
//
// Cross-package propagation is one-directional by construction: a
// bottom-up pass cannot add origins to an already-analyzed dependency.
// Analyzers bridge the gap with per-function fact summaries (spscrole's
// pending ops) attributed at the importing call site instead.

// EntryOrigin is the label for functions executable from outside the
// package's visible goroutine structure.
const EntryOrigin = "entry"

// Origins holds the per-function origin sets of one package.
type Origins struct {
	g *Graph
	// byFunc maps each declared function to its sorted origin labels.
	byFunc map[*Func][]string
	// evidence marks functions with at least one in-package caller or
	// launch site: their origin set reflects observed execution, not just
	// the root default.
	evidence map[*Func]bool
}

// NewOrigins computes the package's goroutine-origin sets.
func NewOrigins(g *Graph) *Origins {
	o := &Origins{
		g:        g,
		byFunc:   make(map[*Func][]string),
		evidence: make(map[*Func]bool),
	}
	o.solve()
	return o
}

// Of returns fn's sorted origin labels ({"entry"} for roots).
func (o *Origins) Of(fn *Func) []string { return o.byFunc[fn] }

// HasEvidence reports whether fn's origins stem from observed in-package
// calls or launches rather than the root default. spscrole uses this to
// decide whether a root's protocol ops are attributable here or must ride
// the facts to the real caller's package.
func (o *Origins) HasEvidence(fn *Func) bool { return o.evidence[fn] }

// GoLabel renders the origin label for a `go` statement.
func (o *Origins) GoLabel(g *ast.GoStmt) string {
	return "go " + o.g.PosString(g.Pos())
}

// originEdges is the per-package call/launch structure the fixpoint runs
// over.
type originEdges struct {
	// calls maps callee → callers (plain same-goroutine calls).
	calls map[*Func][]*Func
	// launched maps callee → launch labels.
	launched map[*Func][]string
	// valueRef marks functions referenced outside call position.
	valueRef map[*Func]bool
}

func (o *Origins) solve() {
	e := o.collect()
	// Seed: launch labels, entry for roots and value-referenced functions.
	sets := make(map[*Func]map[string]bool)
	for _, fn := range o.g.All() {
		set := make(map[string]bool)
		for _, l := range e.launched[fn] {
			set[l] = true
		}
		if len(e.calls[fn]) > 0 || len(e.launched[fn]) > 0 {
			o.evidence[fn] = true
		}
		if !o.evidence[fn] || e.valueRef[fn] {
			set[EntryOrigin] = true
		}
		sets[fn] = set
	}
	// Fixpoint: origins flow from callers into callees over plain calls.
	for changed := true; changed; {
		changed = false
		for _, fn := range o.g.All() {
			set := sets[fn]
			for _, caller := range e.calls[fn] {
				for l := range sets[caller] {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}
	for fn, set := range sets {
		labels := make([]string, 0, len(set))
		for l := range set {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		o.byFunc[fn] = labels
	}
}

// funcOf resolves a called/referenced expression to a declared function
// of this package, normalizing generic instantiations to their origin.
func (o *Origins) funcOf(obj types.Object) *Func {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	return o.g.Funcs[fn]
}

// collect walks every function body once, classifying each static call as
// a plain edge (same goroutine) or a launch (inside a go statement or a
// go'd func literal), and noting value references.
func (o *Origins) collect() *originEdges {
	e := &originEdges{
		calls:    make(map[*Func][]*Func),
		launched: make(map[*Func][]string),
		valueRef: make(map[*Func]bool),
	}
	for _, fn := range o.g.All() {
		o.walk(fn, fn.Decl.Body, "", e)
	}
	return e
}

// walk traverses n attributing static calls: label == "" means the code
// runs on fn's own goroutine(s); otherwise it runs on the goroutine
// launched at label.
func (o *Origins) walk(fn *Func, n ast.Node, label string, e *originEdges) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			l := "go " + o.g.PosString(x.Pos())
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				// Arguments evaluate on the launching goroutine.
				for _, a := range x.Call.Args {
					o.walk(fn, a, label, e)
				}
				o.walk(fn, lit.Body, l, e)
				return false
			}
			if callee := o.staticTarget(x.Call); callee != nil {
				e.launched[callee] = append(e.launched[callee], l)
			}
			for _, a := range x.Call.Args {
				o.walk(fn, a, label, e)
			}
			// The callee expression itself (e.g. a method receiver) also
			// evaluates on the launching goroutine.
			if sel, ok := ast.Unparen(x.Call.Fun).(*ast.SelectorExpr); ok {
				o.walk(fn, sel.X, label, e)
			}
			return false
		case *ast.CallExpr:
			if callee := o.staticTarget(x); callee != nil {
				if label == "" {
					e.calls[callee] = append(e.calls[callee], fn)
				} else {
					e.launched[callee] = append(e.launched[callee], label)
				}
			}
			return true
		case *ast.Ident:
			// A function name used outside call position: its execution
			// context escapes the analysis.
			if target := o.funcOf(o.g.Info.Uses[x]); target != nil {
				if !o.isCallFun(x) {
					e.valueRef[target] = true
				}
			}
			return true
		}
		return true
	})
}

// staticTarget resolves a call to a function declared in this package.
func (o *Origins) staticTarget(call *ast.CallExpr) *Func {
	callee := o.g.StaticCallee(call)
	if callee == nil {
		return nil
	}
	return o.funcOf(callee)
}

// isCallFun reports whether id appears as the function operand of some
// call expression (lazily indexing the whole package on first use).
func (o *Origins) isCallFun(id *ast.Ident) bool {
	if o.g.callFuns == nil {
		o.g.callFuns = make(map[*ast.Ident]bool)
		for _, fn := range o.g.All() {
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := ast.Unparen(call.Fun)
				switch x := f.(type) {
				case *ast.IndexExpr:
					f = ast.Unparen(x.X)
				case *ast.IndexListExpr:
					f = ast.Unparen(x.X)
				}
				switch x := f.(type) {
				case *ast.Ident:
					o.g.callFuns[x] = true
				case *ast.SelectorExpr:
					o.g.callFuns[x.Sel] = true
				}
				return true
			})
		}
	}
	return o.g.callFuns[id]
}

// ---- fact serialization ----

// FuncOrigins is one function's origin set, as exported in facts.
type FuncOrigins struct {
	// Key is the function's FuncKey.
	Key string `json:"key"`
	// Origins is the sorted origin label set.
	Origins []string `json:"origins"`
}

// OriginFacts is the per-package origin fact blob.
type OriginFacts struct {
	Funcs []FuncOrigins `json:"funcs"`
}

// Facts serializes the package's origin sets in deterministic order.
func (o *Origins) Facts() []byte {
	f := &OriginFacts{}
	for _, fn := range o.g.All() {
		f.Funcs = append(f.Funcs, FuncOrigins{Key: fn.Key(), Origins: o.byFunc[fn]})
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeOriginFacts parses an origin fact blob, tolerating nil/garbage.
func DecodeOriginFacts(data []byte) map[string][]string {
	out := make(map[string][]string)
	if len(data) == 0 {
		return out
	}
	var f OriginFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out
	}
	for _, fo := range f.Funcs {
		if fo.Key != "" {
			out[fo.Key] = fo.Origins
		}
	}
	return out
}
