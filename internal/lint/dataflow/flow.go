package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Node is one value in a function's def-use graph: a named variable
// (param, local, or package-level), a field slot of one, a call result,
// a composite literal, or the distinguished escape sink.
type Node struct {
	// Obj is non-nil for named values.
	Obj types.Object
	// Type is the node's value type (nil for the escape sink).
	Type types.Type
	// IsEscape marks the sink: flow into this node left the function's
	// custody (global store, channel send, goroutine handoff).
	IsEscape bool
	// NoSource marks nodes that must never be intrinsic taint sources
	// even when their type matches: field slots only carry taint that
	// flowed in, they don't birth it.
	NoSource bool
	// Out is the node's base out-edge list.
	Out []*FlowEdge

	id int
}

// Edge kinds drive the two-level taint propagation in Reach. A value is
// either the tracked alias itself (direct taint) or merely a container
// holding one (contained taint). Containers escaping is still an escape,
// but reading a different field out of a container must not taint.
const (
	// EdgeNormal propagates taint at its current level.
	EdgeNormal = iota
	// EdgeContain ((x,f) slot → x) demotes direct taint to contained:
	// x keeps the tracked value alive but is not itself the alias.
	EdgeContain
	// EdgeFieldRead (x → (x,f) slot) propagates only direct taint: a
	// field of a view-alias aliases too, but a field of a mere container
	// is clean — the planted value lives in its own slot node.
	EdgeFieldRead
)

// FlowEdge is one flow step, annotated for reporting: where it happens
// and what it means in prose.
type FlowEdge struct {
	From, To *Node
	// Kind is EdgeNormal, EdgeContain, or EdgeFieldRead.
	Kind int
	// Pos is where this flow step occurs.
	Pos token.Pos
	// What describes the step ("sent on a channel", "assigned", ...).
	What string
	// Stmt is the enclosing statement, for directive lookups.
	Stmt ast.Node
}

// CallSite is one function/method call whose interprocedural effect the
// summary engine resolves later. Args uses combined indexing: the
// receiver (when the call is a method call) is index 0, declared
// arguments follow — matching how summaries index callee parameters.
type CallSite struct {
	Call *ast.CallExpr
	// Stmt is the enclosing statement.
	Stmt ast.Node
	// Args holds the receiver (if any) then each argument's node; nil
	// entries are untracked (scalar) values.
	Args []*Node
	// Results holds one node per call result; nil entries untracked.
	Results []*Node
	// Static is the statically resolved callee, when there is one.
	Static *types.Func
	// Iface is the interface method for dynamic calls, when known.
	Iface *types.Func
}

// Flow is the def-use graph of one function body.
type Flow struct {
	Fn    *Func
	Graph *Graph
	// Escape is the sink node.
	Escape *Node
	// Params holds combined receiver+parameter nodes (nil = untracked).
	Params []*Node
	// Returns holds one node per declared result.
	Returns []*Node
	// Calls lists every unresolved call site in source order.
	Calls []*CallSite
	// Edges is the base edge list in creation order.
	Edges []*FlowEdge
	// Nodes lists all nodes in creation order.
	Nodes []*Node

	objNodes   map[types.Object]*Node
	fieldNodes map[fieldKey]*Node
	curStmt    ast.Node
}

// fieldKey identifies one level of field sensitivity: the slot x.f of a
// local or parameter x. Deeper selections (x.f.g) collapse into the
// first slot. Without this split, planting a tracked value in one field
// of a struct would taint every value later read out of any of its
// fields — fatal on method receivers.
type fieldKey struct {
	base types.Object
	name string
}

// FlowOf builds the def-use graph for fn.
func (g *Graph) FlowOf(fn *Func) *Flow {
	f := &Flow{Fn: fn, Graph: g,
		objNodes:   make(map[types.Object]*Node),
		fieldNodes: make(map[fieldKey]*Node),
	}
	f.Escape = f.newNode(nil, nil)
	f.Escape.IsEscape = true

	sig := fn.Obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		f.Params = append(f.Params, f.objParam(recv))
	}
	for i := 0; i < sig.Params().Len(); i++ {
		f.Params = append(f.Params, f.objParam(sig.Params().At(i)))
	}
	for i := 0; i < sig.Results().Len(); i++ {
		var n *Node
		if t := sig.Results().At(i).Type(); CanAlias(t) {
			n = f.newNode(nil, t)
		}
		f.Returns = append(f.Returns, n)
	}
	// Named results feed their return slots so naked returns and
	// assignments to result vars flow correctly.
	if res := fn.Decl.Type.Results; res != nil {
		i := 0
		for _, field := range res.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := g.Info.Defs[name]; obj != nil && f.Returns[i] != nil {
					if n := f.objNode(obj); n != nil {
						f.edge(n, f.Returns[i], name.Pos(), "returned", fn.Decl)
					}
				}
				i++
			}
		}
	}
	f.walkStmt(fn.Decl.Body)
	return f
}

func (f *Flow) newNode(obj types.Object, t types.Type) *Node {
	n := &Node{Obj: obj, Type: t, id: len(f.Nodes)}
	f.Nodes = append(f.Nodes, n)
	return n
}

// objParam returns the node for a (receiver) parameter, or nil when the
// parameter's type cannot carry an alias.
func (f *Flow) objParam(v *types.Var) *Node {
	if !CanAlias(v.Type()) {
		return nil
	}
	return f.objNode(v)
}

func (f *Flow) objNode(obj types.Object) *Node {
	if obj == nil || !CanAlias(obj.Type()) {
		return nil
	}
	if n, ok := f.objNodes[obj]; ok {
		return n
	}
	n := f.newNode(obj, obj.Type())
	f.objNodes[obj] = n
	return n
}

// ObjNode returns the existing node for obj, or nil.
func (f *Flow) ObjNode(obj types.Object) *Node { return f.objNodes[obj] }

// fieldNode returns the slot node for base.name. Taint in a slot keeps
// its container alive (slot → container edge), but taint in the
// container does not leak back out through its other slots.
func (f *Flow) fieldNode(base *types.Var, name string, t types.Type) *Node {
	key := fieldKey{base: base, name: name}
	if n, ok := f.fieldNodes[key]; ok {
		return n
	}
	n := f.newNode(nil, t)
	n.NoSource = true
	f.fieldNodes[key] = n
	if parent := f.objNode(base); parent != nil {
		f.kindEdge(n, parent, EdgeContain, token.NoPos, "kept alive by "+base.Name(), nil)
		f.kindEdge(parent, n, EdgeFieldRead, token.NoPos, "field "+name+" of "+base.Name(), nil)
	}
	return n
}

// objOf resolves an identifier's object (use or def).
func (f *Flow) objOf(id *ast.Ident) types.Object {
	if obj := f.Graph.Info.Uses[id]; obj != nil {
		return obj
	}
	return f.Graph.Info.Defs[id]
}

// selBase resolves a field selection with one level of sensitivity: a
// read of x.f (x a local or parameter) lands on the (x, f) slot node;
// anything else falls back to the base expression's node.
func (f *Flow) selBase(x *ast.SelectorExpr) *Node {
	if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
		if v, ok := f.objOf(id).(*types.Var); ok && !isPkgLevel(v) {
			return f.fieldNode(v, x.Sel.Name, f.Graph.Info.TypeOf(x))
		}
	}
	return f.expr(x.X)
}

func (f *Flow) edge(from, to *Node, pos token.Pos, what string, stmt ast.Node) {
	f.kindEdge(from, to, EdgeNormal, pos, what, stmt)
}

func (f *Flow) kindEdge(from, to *Node, kind int, pos token.Pos, what string, stmt ast.Node) {
	if from == nil || to == nil || from == to {
		return
	}
	e := &FlowEdge{From: from, To: to, Kind: kind, Pos: pos, What: what, Stmt: stmt}
	from.Out = append(from.Out, e)
	f.Edges = append(f.Edges, e)
}

// isPkgLevel reports whether obj is a package-level variable (of any
// package): stores into it leave function custody.
func isPkgLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

func (f *Flow) tracked(e ast.Expr) bool {
	t := f.Graph.Info.TypeOf(e)
	return t != nil && CanAlias(t)
}

// ---- statements ----

func (f *Flow) walkStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	prev := f.curStmt
	f.curStmt = s
	defer func() { f.curStmt = prev }()

	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			f.walkStmt(t)
		}
	case *ast.IfStmt:
		f.walkStmt(s.Init)
		f.expr(s.Cond)
		f.walkStmt(s.Body)
		f.walkStmt(s.Else)
	case *ast.ForStmt:
		f.walkStmt(s.Init)
		f.expr(s.Cond)
		f.walkStmt(s.Post)
		f.walkStmt(s.Body)
	case *ast.RangeStmt:
		x := f.expr(s.X)
		for _, kv := range []ast.Expr{s.Key, s.Value} {
			if kv == nil {
				continue
			}
			if id, ok := kv.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			f.assignTo(kv, x, kv.Pos(), "bound by range")
		}
		f.walkStmt(s.Body)
	case *ast.SwitchStmt:
		f.walkStmt(s.Init)
		f.expr(s.Tag)
		f.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		f.walkStmt(s.Init)
		var xExpr ast.Expr
		switch a := s.Assign.(type) {
		case *ast.ExprStmt:
			xExpr = a.X.(*ast.TypeAssertExpr).X
		case *ast.AssignStmt:
			xExpr = a.Rhs[0].(*ast.TypeAssertExpr).X
		}
		x := f.expr(xExpr)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if obj := f.Graph.Info.Implicits[cc]; obj != nil && x != nil {
				if n := f.objNode(obj); n != nil {
					f.edge(x, n, cc.Pos(), "type-switched", s)
				}
			}
			for _, t := range cc.Body {
				f.walkStmt(t)
			}
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			f.expr(e)
		}
		for _, t := range s.Body {
			f.walkStmt(t)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			f.walkStmt(cc.Comm)
			for _, t := range cc.Body {
				f.walkStmt(t)
			}
		}
	case *ast.AssignStmt:
		f.assign(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			f.declSpec(vs)
		}
	case *ast.ExprStmt:
		f.expr(s.X)
	case *ast.SendStmt:
		v := f.expr(s.Value)
		ch := f.expr(s.Chan)
		if v != nil {
			f.edge(v, f.Escape, s.Arrow, "sent on a channel", s)
			if ch != nil {
				f.edge(v, ch, s.Arrow, "sent into a channel value", s)
			}
		}
	case *ast.ReturnStmt:
		f.returnStmt(s)
	case *ast.GoStmt:
		f.goCall(s.Call, s)
	case *ast.DeferStmt:
		f.callResults(s.Call)
	case *ast.LabeledStmt:
		f.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		f.expr(s.X)
	}
}

func (f *Flow) declSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			rs := f.callResults(call)
			for i, name := range vs.Names {
				var r *Node
				if i < len(rs) {
					r = rs[i]
				}
				f.assignTo(name, r, name.Pos(), "assigned")
			}
			return
		}
	}
	for i, name := range vs.Names {
		var r *Node
		if i < len(vs.Values) {
			r = f.expr(vs.Values[i])
		}
		f.assignTo(name, r, name.Pos(), "assigned")
	}
}

func (f *Flow) assign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple: call, map read, type assert, or channel receive.
		var results []*Node
		switch r := ast.Unparen(s.Rhs[0]).(type) {
		case *ast.CallExpr:
			results = f.callResults(r)
		default:
			// v, ok := m[k] / x.(T) / <-ch: value aliases the container.
			results = []*Node{f.expr(s.Rhs[0])}
		}
		for i, lhs := range s.Lhs {
			var r *Node
			if i < len(results) {
				r = results[i]
			}
			f.assignTo(lhs, r, s.TokPos, "assigned")
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		r := f.expr(s.Rhs[i])
		f.assignTo(lhs, r, s.TokPos, "assigned")
	}
}

// assignTo routes a value into an lvalue: a local gets a direct edge, a
// package-level variable is an escape, and a store through a
// selector/index/pointer flows into the rooted base object
// (field-insensitively).
func (f *Flow) assignTo(lhs ast.Expr, rhs *Node, pos token.Pos, what string) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := f.Graph.Info.Defs[id]
		if obj == nil {
			obj = f.Graph.Info.Uses[id]
		}
		if obj == nil || rhs == nil {
			return
		}
		if isPkgLevel(obj) {
			f.edge(rhs, f.Escape, pos, "stored in package-level variable "+obj.Name(), f.curStmt)
			return
		}
		if n := f.objNode(obj); n != nil {
			f.edge(rhs, n, pos, what, f.curStmt)
		}
		return
	}
	root, desc := f.storeRoot(lhs)
	if rhs == nil || root == nil {
		return
	}
	f.edge(rhs, root, pos, desc, f.curStmt)
}

// storeRoot resolves the base object a store through lhs lands in. A
// package-level root returns the escape sink.
func (f *Flow) storeRoot(lhs ast.Expr) (*Node, string) {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			// Qualified identifier pkg.Var?
			if obj := f.qualifiedVar(x); obj != nil {
				return f.Escape, "stored in package-level variable " + obj.Name()
			}
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if v, ok := f.objOf(id).(*types.Var); ok {
					if isPkgLevel(v) {
						return f.Escape, "stored through package-level variable " + v.Name()
					}
					return f.fieldNode(v, x.Sel.Name, f.Graph.Info.TypeOf(x)),
						"stored into field " + x.Sel.Name + " of " + v.Name()
				}
			}
			lhs = x.X
		case *ast.IndexExpr:
			f.expr(x.Index)
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.Ident:
			obj := f.Graph.Info.Uses[x]
			if obj == nil {
				obj = f.Graph.Info.Defs[x]
			}
			if obj == nil {
				return nil, ""
			}
			if isPkgLevel(obj) {
				return f.Escape, "stored through package-level variable " + obj.Name()
			}
			return f.objNode(obj), "stored into " + obj.Name()
		default:
			return f.expr(lhs), "stored through an expression"
		}
	}
}

// qualifiedVar returns the package-level variable a pkg.Name selector
// denotes, or nil when sel is a field/method selection.
func (f *Flow) qualifiedVar(sel *ast.SelectorExpr) types.Object {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isPkg := f.Graph.Info.Uses[id].(*types.PkgName); !isPkg {
		return nil
	}
	// Return an untyped nil when Sel is not a variable (func, const,
	// type): a typed nil would compare non-nil at call sites.
	obj, ok := f.Graph.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return nil
	}
	return obj
}

func (f *Flow) returnStmt(s *ast.ReturnStmt) {
	if len(s.Results) == 1 && len(f.Returns) > 1 {
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			rs := f.callResults(call)
			for i, r := range rs {
				if i < len(f.Returns) && r != nil && f.Returns[i] != nil {
					f.edge(r, f.Returns[i], s.Pos(), "returned", s)
				}
			}
			return
		}
	}
	for i, res := range s.Results {
		n := f.expr(res)
		if i < len(f.Returns) && n != nil && f.Returns[i] != nil {
			f.edge(n, f.Returns[i], s.Pos(), "returned", s)
		}
	}
}

// goCall handles `go f(args)`: handing a tracked value to a goroutine
// extends its lifetime beyond the frame, which is an escape — except for
// a direct func-literal call, whose body we walk with args bound to
// parameters.
func (f *Flow) goCall(call *ast.CallExpr, stmt ast.Stmt) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		f.funcLitCall(lit, call)
		return
	}
	f.callResults(call)
	// The call site just registered carries the evaluated arg nodes.
	if len(f.Calls) > 0 {
		if last := f.Calls[len(f.Calls)-1]; last.Call == call {
			for _, a := range last.Args {
				if a != nil {
					f.edge(a, f.Escape, call.Lparen, "passed to a goroutine", stmt)
				}
			}
		}
	}
}

// funcLitCall walks a directly invoked func literal, binding argument
// flow into the literal's parameters.
func (f *Flow) funcLitCall(lit *ast.FuncLit, call *ast.CallExpr) {
	var params []types.Object
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				params = append(params, f.Graph.Info.Defs[name])
			}
		}
	}
	for i, arg := range call.Args {
		a := f.expr(arg)
		if a == nil || i >= len(params) || params[i] == nil {
			continue
		}
		if p := f.objNode(params[i]); p != nil {
			f.edge(a, p, arg.Pos(), "passed to a func literal", f.curStmt)
		}
	}
	f.walkStmt(lit.Body)
}

// ---- expressions ----

// expr evaluates e for flow purposes: registers nested calls and returns
// the node carrying e's value, or nil when e cannot carry an alias.
func (f *Flow) expr(e ast.Expr) *Node {
	if e == nil {
		return nil
	}
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := f.Graph.Info.Uses[x]
		if obj == nil {
			obj = f.Graph.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		return f.objNode(v)
	case *ast.SelectorExpr:
		if obj := f.qualifiedVar(x); obj != nil {
			// Reading a package-level variable: its node carries taint if
			// the variable's type is a source type.
			return f.objNode(obj)
		}
		base := f.selBase(x)
		if !f.tracked(x) {
			return nil
		}
		return base
	case *ast.IndexExpr:
		f.expr(x.Index)
		base := f.expr(x.X)
		if !f.tracked(x) {
			return nil
		}
		return base
	case *ast.SliceExpr:
		f.expr(x.Low)
		f.expr(x.High)
		f.expr(x.Max)
		return f.expr(x.X)
	case *ast.StarExpr:
		base := f.expr(x.X)
		if !f.tracked(x) {
			return nil
		}
		return base
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return f.expr(x.X)
		case token.ARROW:
			base := f.expr(x.X)
			if !f.tracked(x) {
				return nil
			}
			return base
		default:
			f.expr(x.X)
			return nil
		}
	case *ast.CallExpr:
		rs := f.callResults(x)
		if len(rs) > 0 {
			return rs[0]
		}
		return nil
	case *ast.CompositeLit:
		return f.composite(x)
	case *ast.FuncLit:
		f.walkStmt(x.Body)
		return nil
	case *ast.TypeAssertExpr:
		base := f.expr(x.X)
		if x.Type == nil || !f.tracked(x) {
			return base
		}
		return base
	case *ast.BinaryExpr:
		f.expr(x.X)
		f.expr(x.Y)
		return nil
	}
	return nil
}

func (f *Flow) composite(lit *ast.CompositeLit) *Node {
	t := f.Graph.Info.TypeOf(lit)
	var comp *Node
	if t != nil && CanAlias(t) {
		comp = f.newNode(nil, t)
	}
	for _, elt := range lit.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			f.expr(kv.Key)
			v = kv.Value
		}
		n := f.expr(v)
		if n != nil && comp != nil {
			f.edge(n, comp, v.Pos(), "placed in a composite literal", f.curStmt)
		}
	}
	return comp
}

// callResults evaluates a call and returns one node per result.
// Conversions pass their operand through; builtins get precise
// alias-aware handling; real calls become CallSites whose
// interprocedural edges the summary engine adds.
func (f *Flow) callResults(call *ast.CallExpr) []*Node {
	// Conversion T(x): aliasing passes through ([]byte(s), etc).
	if tv, ok := f.Graph.Info.Types[call.Fun]; ok && tv.IsType() {
		n := f.expr(call.Args[0])
		if !f.tracked(call) {
			return []*Node{nil}
		}
		return []*Node{n}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := f.Graph.Info.Uses[id].(*types.Builtin); ok {
			return f.builtin(b.Name(), call)
		}
	}
	// Direct func-literal call.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		f.funcLitCall(lit, call)
		return nil
	}

	cs := &CallSite{Call: call, Stmt: f.curStmt}
	cs.Static = f.Graph.StaticCallee(call)
	cs.Iface = f.Graph.InterfaceMethod(call)
	// Receiver, when the call is a method call, is combined arg 0.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := f.Graph.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			cs.Args = append(cs.Args, f.expr(sel.X))
		}
	}
	for _, a := range call.Args {
		cs.Args = append(cs.Args, f.expr(a))
	}
	if t := f.Graph.Info.TypeOf(call); t != nil {
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				var n *Node
				if CanAlias(tup.At(i).Type()) {
					n = f.newNode(nil, tup.At(i).Type())
				}
				cs.Results = append(cs.Results, n)
			}
		} else if CanAlias(t) {
			cs.Results = append(cs.Results, f.newNode(nil, t))
		} else {
			cs.Results = append(cs.Results, nil)
		}
	}
	f.Calls = append(f.Calls, cs)
	return cs.Results
}

func (f *Flow) builtin(name string, call *ast.CallExpr) []*Node {
	switch name {
	case "append":
		dst := f.expr(call.Args[0])
		var res *Node
		if f.tracked(call) {
			res = f.newNode(nil, f.Graph.Info.TypeOf(call))
		}
		if dst != nil && res != nil {
			f.edge(dst, res, call.Lparen, "appended onto", f.curStmt)
		}
		// Appending copies elements: only pointer-like elements alias.
		elemAliases := false
		if t, ok := f.Graph.Info.TypeOf(call).Underlying().(*types.Slice); ok {
			elemAliases = CanAlias(t.Elem())
		}
		for _, a := range call.Args[1:] {
			n := f.expr(a)
			if n != nil && res != nil && elemAliases {
				f.edge(n, res, a.Pos(), "appended into a slice", f.curStmt)
			}
		}
		return []*Node{res}
	case "copy":
		dst := f.expr(call.Args[0])
		src := f.expr(call.Args[1])
		// copy moves element values; only pointer-like elements alias.
		if t, ok := f.Graph.Info.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok && CanAlias(t.Elem()) {
			if src != nil && dst != nil {
				f.edge(src, dst, call.Lparen, "copied into", f.curStmt)
			}
		}
		return []*Node{nil}
	case "make", "new":
		for _, a := range call.Args[1:] {
			f.expr(a)
		}
		if f.tracked(call) {
			return []*Node{f.newNode(nil, f.Graph.Info.TypeOf(call))}
		}
		return []*Node{nil}
	case "panic":
		if n := f.expr(call.Args[0]); n != nil {
			f.edge(n, f.Escape, call.Lparen, "passed to panic", f.curStmt)
		}
		return nil
	default:
		// len, cap, delete, close, clear, min, max, print, println, recover.
		for _, a := range call.Args {
			f.expr(a)
		}
		return []*Node{nil}
	}
}

// ---- reachability ----

// Taint levels returned by Reach.
const (
	// TaintContained: the node holds a tracked value in one of its slots.
	TaintContained = 1
	// TaintDirect: the node IS (an alias of) the tracked value.
	TaintDirect = 2
)

// Reach computes each node's taint level from srcs over the base edges
// plus extra (per-from-node) interprocedural edges. Direct taint crosses
// every edge; contained taint stops at field reads.
func (f *Flow) Reach(srcs []*Node, extra map[*Node][]*FlowEdge) map[*Node]int {
	level := make(map[*Node]int)
	var stack []*Node
	push := func(n *Node, l int) {
		if n == nil || l <= level[n] {
			return
		}
		level[n] = l
		stack = append(stack, n)
	}
	for _, s := range srcs {
		push(s, TaintDirect)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		l := level[n]
		step := func(e *FlowEdge) {
			switch e.Kind {
			case EdgeContain:
				push(e.To, TaintContained)
			case EdgeFieldRead:
				if l == TaintDirect {
					push(e.To, TaintDirect)
				}
			default:
				push(e.To, l)
			}
		}
		for _, e := range n.Out {
			step(e)
		}
		for _, e := range extra[n] {
			step(e)
		}
	}
	return level
}
