// Package dataflow is cyclolint's compact def-use dataflow IR: the
// machinery that lets analyzers follow values across function boundaries
// instead of stopping at the first call.
//
// It deliberately stays far smaller than go/ssa. Three pieces:
//
//   - Graph (this file): the package's function index and call-graph
//     primitives — static callee resolution, and candidate resolution for
//     dynamic interface-method calls by method name plus receiver-less
//     signature.
//   - Flow (flow.go): a per-function, flow-insensitive def-use graph.
//     Every named value (param, local, global) and every call result is a
//     node; every assignment, store, send, return or composite literal is
//     an edge annotated with its source position and a human-readable
//     description of the flow step. "SSA-lite": one node per variable
//     rather than per definition — taint only grows along edges, which is
//     exactly the monotone shape escape analyses need, and it keeps the
//     IR small enough to rebuild per fixpoint round.
//   - Escape (escape.go): the bottom-up interprocedural summary engine
//     built on Flow, with JSON fact serialization so summaries cross
//     package boundaries through the driver's fact store (the vetx file,
//     in go vet mode).
//
// Analyzers with bespoke state machines (bufown's buffer typestate,
// lockorder's lock-set walk) use Graph and the fact plumbing directly and
// keep their own per-function walkers.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Func is one declared function or method with a body.
type Func struct {
	// Obj is the type-checker's object for the declaration.
	Obj *types.Func
	// Decl is the source declaration (Body non-nil).
	Decl *ast.FuncDecl
	// File is the file containing Decl.
	File *ast.File
}

// Key returns the stable cross-package identity of the function,
// e.g. "(*cyclojoin/internal/ring.node).deliver".
func (f *Func) Key() string { return FuncKey(f.Obj) }

// FuncKey renders fn's stable cross-package identity. Instantiated
// generic functions and methods normalize to their generic origin
// declaration — (*ringq.SPSC[ring.inflight]).TryPush keys as
// (*ringq.SPSC[T]).TryPush — so call sites of an instantiation find the
// summary computed for the declared (generic) body.
func FuncKey(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// Graph indexes one type-checked package's functions for interprocedural
// analysis.
type Graph struct {
	// Fset maps positions for the package's files.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *types.Package
	// Info holds the type-checker's facts.
	Info *types.Info
	// Funcs maps each declared function object to its declaration.
	Funcs map[*types.Func]*Func

	ordered []*Func
	// callFuns lazily indexes identifiers in call-operand position
	// (Origins uses it to detect functions referenced as values).
	callFuns map[*ast.Ident]bool
}

// NewGraph indexes files (all from pkg) by walking their declarations.
func NewGraph(fset *token.FileSet, pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	g := &Graph{Fset: fset, Pkg: pkg, Info: info, Funcs: make(map[*types.Func]*Func)}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fn := &Func{Obj: obj, Decl: fd, File: file}
			g.Funcs[obj] = fn
			g.ordered = append(g.ordered, fn)
		}
	}
	sort.Slice(g.ordered, func(i, j int) bool { return g.ordered[i].Key() < g.ordered[j].Key() })
	return g
}

// All returns the package's functions in deterministic (key) order.
func (g *Graph) All() []*Func { return g.ordered }

// StaticCallee resolves a call to the *types.Func it statically invokes:
// a plain function, a method on a concrete receiver, or a method value.
// Explicitly instantiated generic calls (F[T](…)) resolve to the generic
// function; use FuncKey on the result for summary lookups. It returns nil
// for dynamic calls (interface methods, function values) and for builtins
// and conversions.
func (g *Graph) StaticCallee(call *ast.CallExpr) *types.Func {
	fn := ast.Unparen(call.Fun)
	// Strip an explicit instantiation F[T] / F[T1, T2]: index syntax on an
	// expression that names a function can only be a generic instantiation.
	switch ix := fn.(type) {
	case *ast.IndexExpr:
		if inner := ast.Unparen(ix.X); g.namesFunc(inner) {
			fn = inner
		}
	case *ast.IndexListExpr:
		fn = ast.Unparen(ix.X)
	}
	switch fun := fn.(type) {
	case *ast.Ident:
		if fn, ok := g.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := g.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			// A method on an interface receiver dispatches dynamically.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Qualified identifier pkg.F.
		if fn, ok := g.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namesFunc reports whether e is an identifier or selector resolving to a
// function object (the operand of a generic instantiation).
func (g *Graph) namesFunc(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		_, ok := g.Info.Uses[x].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := g.Info.Uses[x.Sel].(*types.Func)
		return ok
	}
	return false
}

// InterfaceMethod returns the interface method a dynamic call dispatches
// through, or nil when the call is not an interface-method call.
func (g *Graph) InterfaceMethod(call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := g.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	if !types.IsInterface(selection.Recv()) {
		return nil
	}
	fn, _ := selection.Obj().(*types.Func)
	return fn
}

// SigKey renders a method's identity for interface dispatch matching:
// the method name plus its receiver-less parameter and result types,
// fully package-qualified. Two methods with equal SigKeys are treated as
// possible targets of the same interface call.
func SigKey(name string, sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	s := name + "("
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			s += ","
		}
		s += types.TypeString(sig.Params().At(i).Type(), qual)
	}
	s += ")("
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			s += ","
		}
		s += types.TypeString(sig.Results().At(i).Type(), qual)
	}
	if sig.Variadic() {
		s += ")variadic"
	} else {
		s += ")"
	}
	return s
}

// FuncSigKey is SigKey for a function object.
func FuncSigKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name() + "(?)"
	}
	return SigKey(fn.Name(), sig)
}

// CanAlias reports whether a value of type t can carry a reference into
// tracked storage: pointers, slices, maps, channels, interfaces,
// functions, unsafe pointers, and aggregates containing any of those.
// Scalars (ints, floats, bools) and strings cannot, which is what keeps
// field-insensitive flow from poisoning every integer read off a tracked
// struct.
func CanAlias(t types.Type) bool {
	return canAlias(t, make(map[types.Type]bool))
}

func canAlias(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if canAlias(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return canAlias(u.Elem(), seen)
	default:
		// Pointer, slice, map, chan, interface, signature, tuple.
		return true
	}
}

// IsNamedType reports whether t is the named type pkgPath.name, possibly
// behind a pointer.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// PosString renders a position for embedding in summary descriptions:
// "file.go:12" with the directory stripped, stable across machines.
func (g *Graph) PosString(pos token.Pos) string {
	p := g.Fset.Position(pos)
	name := p.Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' || name[i] == '\\' {
			name = name[i+1:]
			break
		}
	}
	return name + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
