package dataflow

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Summary is the interprocedural escape behavior of one function, in
// combined parameter indexing (receiver first when present). It is what
// crosses package boundaries as a serialized fact.
type Summary struct {
	// Key is the function's FullName.
	Key string `json:"key"`
	// Sig is the receiver-less SigKey for concrete methods, used to match
	// interface-method call sites; empty for plain functions.
	Sig string `json:"sig,omitempty"`
	// ParamEscape describes, per parameter, where a value passed in
	// ultimately escapes ("" absent = it doesn't).
	ParamEscape map[int]string `json:"param_escape,omitempty"`
	// ParamFlow lists, per parameter, the result indices its value can
	// flow to.
	ParamFlow map[int][]int `json:"param_flow,omitempty"`
	// ParamStore lists, per parameter, the other parameters whose
	// referents it can be stored into.
	ParamStore map[int][]int `json:"param_store,omitempty"`
	// FreshResult lists result indices that carry a tracked value born
	// inside the callee (so callers must treat them as sources).
	FreshResult []int `json:"fresh_result,omitempty"`
}

func (s *Summary) empty() bool {
	return len(s.ParamEscape) == 0 && len(s.ParamFlow) == 0 &&
		len(s.ParamStore) == 0 && len(s.FreshResult) == 0
}

// EscapeFacts is the per-package fact blob: every function's summary in
// deterministic order.
type EscapeFacts struct {
	Summaries []*Summary `json:"summaries"`
}

// EncodeEscapeFacts serializes a summary table.
func EncodeEscapeFacts(sums map[string]*Summary) []byte {
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f := &EscapeFacts{}
	for _, k := range keys {
		f.Summaries = append(f.Summaries, sums[k])
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeEscapeFacts parses a fact blob into a key→summary table,
// tolerating nil/garbage (returns an empty table).
func DecodeEscapeFacts(data []byte) map[string]*Summary {
	out := make(map[string]*Summary)
	if len(data) == 0 {
		return out
	}
	var f EscapeFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return out
	}
	for _, s := range f.Summaries {
		if s != nil && s.Key != "" {
			out[s.Key] = s
		}
	}
	return out
}

// EscapeConfig parameterizes the engine for one analyzer.
type EscapeConfig struct {
	// Source reports whether a value of type t is intrinsically tracked
	// (a fresh taint source), e.g. relation.View.
	Source func(t types.Type) bool
	// Launders reports calls whose results are clean copies regardless of
	// arguments (e.g. View.Materialize). No flow crosses such a call.
	Launders func(g *Graph, cs *CallSite) bool
}

// Finding is one escape of a tracked value.
type Finding struct {
	// Pos is where the escape happens.
	Pos token.Pos
	// What describes the escape, including the callee chain for escapes
	// that happen inside called functions.
	What string
	// Stmt is the enclosing statement, for directive lookups.
	Stmt ast.Node
}

// Escape runs the bottom-up interprocedural escape analysis for one
// package, given the already-computed summaries of its imports.
type Escape struct {
	g        *Graph
	cfg      EscapeConfig
	imported map[string]*Summary

	flows     map[*Func]*Flow
	local     map[string]*Summary
	methodIdx map[string][]*Summary
}

// NewEscape prepares an engine. imported maps function keys (from any
// imported package's facts) to their summaries.
func NewEscape(g *Graph, cfg EscapeConfig, imported map[string]*Summary) *Escape {
	if imported == nil {
		imported = make(map[string]*Summary)
	}
	return &Escape{
		g:        g,
		cfg:      cfg,
		imported: imported,
		flows:    make(map[*Func]*Flow),
		local:    make(map[string]*Summary),
	}
}

// Solve computes the package's function summaries to a fixpoint.
func (e *Escape) Solve() {
	for _, fn := range e.g.All() {
		e.flows[fn] = e.g.FlowOf(fn)
		e.local[fn.Key()] = &Summary{Key: fn.Key(), Sig: methodSig(fn.Obj)}
	}
	const maxRounds = 12
	for round := 0; round < maxRounds; round++ {
		e.rebuildMethodIndex()
		changed := false
		for _, fn := range e.g.All() {
			s := e.computeSummary(fn)
			if !summariesEqual(s, e.local[fn.Key()]) {
				e.local[fn.Key()] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	e.rebuildMethodIndex()
}

// Summaries returns the package's computed summary table.
func (e *Escape) Summaries() map[string]*Summary { return e.local }

// Facts serializes the computed summaries for downstream packages.
func (e *Escape) Facts() []byte { return EncodeEscapeFacts(e.local) }

func methodSig(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return SigKey(fn.Name(), sig)
}

func (e *Escape) rebuildMethodIndex() {
	e.methodIdx = make(map[string][]*Summary)
	add := func(s *Summary) {
		if s.Sig != "" {
			e.methodIdx[s.Sig] = append(e.methodIdx[s.Sig], s)
		}
	}
	// Deterministic: locals in key order, then imported in key order.
	for _, k := range sortedKeys(e.local) {
		add(e.local[k])
	}
	for _, k := range sortedKeys(e.imported) {
		add(e.imported[k])
	}
}

func sortedKeys(m map[string]*Summary) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// calleeSummaries resolves the summaries governing a call site: the
// static callee's (local first, then imported facts), or the union of
// concrete methods matching a dynamic interface call. nil means the
// callee is unknown and the caller must assume arg→result flow.
func (e *Escape) calleeSummaries(cs *CallSite) []*Summary {
	if cs.Static != nil {
		key := FuncKey(cs.Static)
		if s, ok := e.local[key]; ok {
			return []*Summary{s}
		}
		if s, ok := e.imported[key]; ok {
			return []*Summary{s}
		}
		return nil
	}
	if cs.Iface != nil {
		if cands := e.methodIdx[FuncSigKey(cs.Iface)]; len(cands) > 0 {
			return cands
		}
	}
	return nil
}

func calleeName(cs *CallSite) string {
	if cs.Static != nil {
		return FuncKey(cs.Static)
	}
	if cs.Iface != nil {
		return cs.Iface.FullName()
	}
	return "unknown callee"
}

// callEdges materializes each call site's interprocedural effect as
// extra edges under the current summary tables, and returns the set of
// call-result nodes that are fresh taint sources.
func (e *Escape) callEdges(flow *Flow) (map[*Node][]*FlowEdge, []*Node) {
	extra := make(map[*Node][]*FlowEdge)
	var fresh []*Node
	addEdge := func(from, to *Node, kind int, pos token.Pos, what string, stmt ast.Node) {
		if from == nil || to == nil || from == to {
			return
		}
		extra[from] = append(extra[from], &FlowEdge{From: from, To: to, Kind: kind, Pos: pos, What: what, Stmt: stmt})
	}
	for _, cs := range flow.Calls {
		if e.cfg.Launders != nil && e.cfg.Launders(e.g, cs) {
			continue
		}
		sums := e.calleeSummaries(cs)
		if sums == nil {
			// Unknown callee: assume arguments may flow to results, but
			// not that they escape — stdlib reads would drown real
			// findings otherwise. Documented soundness tradeoff.
			for _, a := range cs.Args {
				for _, r := range cs.Results {
					addEdge(a, r, EdgeNormal, cs.Call.Lparen, "may flow through call", cs.Stmt)
				}
			}
			continue
		}
		for _, sum := range sums {
			for i, a := range cs.Args {
				if a == nil {
					continue
				}
				if d, ok := sum.ParamEscape[i]; ok {
					addEdge(a, flow.Escape, EdgeNormal, cs.Call.Lparen,
						"escapes via call to "+calleeName(cs)+" ("+d+")", cs.Stmt)
				}
				for _, j := range sum.ParamFlow[i] {
					if j < len(cs.Results) {
						addEdge(a, cs.Results[j], EdgeNormal, cs.Call.Lparen, "flows through call to "+calleeName(cs), cs.Stmt)
					}
				}
				// A callee parking an argument inside another makes that
				// other argument a container, not an alias.
				for _, k := range sum.ParamStore[i] {
					if k < len(cs.Args) {
						addEdge(a, cs.Args[k], EdgeContain, cs.Call.Lparen, "stored into an argument of "+calleeName(cs), cs.Stmt)
					}
				}
			}
			for _, j := range sum.FreshResult {
				if j < len(cs.Results) && cs.Results[j] != nil {
					fresh = append(fresh, cs.Results[j])
				}
			}
		}
	}
	return extra, fresh
}

// computeSummary derives fn's summary under the current tables.
func (e *Escape) computeSummary(fn *Func) *Summary {
	flow := e.flows[fn]
	extra, fresh := e.callEdges(flow)
	s := &Summary{Key: fn.Key(), Sig: methodSig(fn.Obj)}

	for i, p := range flow.Params {
		if p == nil {
			continue
		}
		taint := flow.Reach([]*Node{p}, extra)
		for j, r := range flow.Returns {
			// Direct only: a returned container holding the parameter is a
			// store, not a flow — recording it would overtaint callers.
			if r != nil && taint[r] == TaintDirect {
				if s.ParamFlow == nil {
					s.ParamFlow = make(map[int][]int)
				}
				s.ParamFlow[i] = append(s.ParamFlow[i], j)
			}
		}
		for k, q := range flow.Params {
			if k != i && q != nil && taint[q] > 0 {
				if s.ParamStore == nil {
					s.ParamStore = make(map[int][]int)
				}
				s.ParamStore[i] = append(s.ParamStore[i], k)
			}
		}
		if taint[flow.Escape] > 0 {
			if d := e.firstEscape(flow, extra, taint); d != "" {
				if s.ParamEscape == nil {
					s.ParamEscape = make(map[int]string)
				}
				s.ParamEscape[i] = d
			}
		}
	}

	srcs := e.sourceNodes(flow, fresh)
	if len(srcs) > 0 {
		taint := flow.Reach(srcs, extra)
		for j, r := range flow.Returns {
			if r != nil && taint[r] == TaintDirect {
				s.FreshResult = append(s.FreshResult, j)
			}
		}
	}
	return s
}

// sourceNodes collects fn's intrinsic taint sources: every non-parameter
// node whose type the config marks as tracked, plus fresh call results.
func (e *Escape) sourceNodes(flow *Flow, fresh []*Node) []*Node {
	isParam := make(map[*Node]bool)
	for _, p := range flow.Params {
		if p != nil {
			isParam[p] = true
		}
	}
	var srcs []*Node
	for _, n := range flow.Nodes {
		if n.IsEscape || n.NoSource || isParam[n] || n.Type == nil {
			continue
		}
		if e.cfg.Source != nil && e.cfg.Source(n.Type) {
			srcs = append(srcs, n)
		}
	}
	srcs = append(srcs, fresh...)
	return srcs
}

// firstEscape finds the first (source-order) escape edge whose origin is
// tainted and renders it for a summary description.
func (e *Escape) firstEscape(flow *Flow, extra map[*Node][]*FlowEdge, taint map[*Node]int) string {
	if edge := firstEscapeEdge(flow, extra, taint); edge != nil {
		return edge.What + " at " + e.g.PosString(edge.Pos)
	}
	return ""
}

func firstEscapeEdge(flow *Flow, extra map[*Node][]*FlowEdge, taint map[*Node]int) *FlowEdge {
	for _, edge := range flow.Edges {
		if edge.To.IsEscape && taint[edge.From] > 0 {
			return edge
		}
	}
	// Deterministic order over extra edges: walk nodes in creation order.
	for _, n := range flow.Nodes {
		for _, edge := range extra[n] {
			if edge.To.IsEscape && taint[edge.From] > 0 {
				return edge
			}
		}
	}
	return nil
}

// Findings reports, per function, every escape edge fed by an intrinsic
// source under the solved summaries. Escapes fed only by parameters are
// not findings here — they surface at call sites, where the value was
// born.
func (e *Escape) Findings() []Finding {
	var out []Finding
	seen := make(map[string]bool)
	for _, fn := range e.g.All() {
		flow := e.flows[fn]
		extra, fresh := e.callEdges(flow)
		srcs := e.sourceNodes(flow, fresh)
		if len(srcs) == 0 {
			continue
		}
		taint := flow.Reach(srcs, extra)
		report := func(edge *FlowEdge) {
			if !edge.To.IsEscape || taint[edge.From] == 0 {
				return
			}
			key := e.g.PosString(edge.Pos) + "|" + edge.What
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, Finding{Pos: edge.Pos, What: edge.What, Stmt: edge.Stmt})
		}
		for _, edge := range flow.Edges {
			report(edge)
		}
		for _, n := range flow.Nodes {
			for _, edge := range extra[n] {
				report(edge)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

func summariesEqual(a, b *Summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	normalize := func(s *Summary) {
		for _, v := range s.ParamFlow {
			sort.Ints(v)
		}
		for _, v := range s.ParamStore {
			sort.Ints(v)
		}
		sort.Ints(s.FreshResult)
	}
	normalize(a)
	normalize(b)
	return reflect.DeepEqual(a, b)
}
