package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const src = `package p

type View struct{ b []byte }

var sink *View
var sinkBytes []byte

func (v *View) Frame() []byte { return v.b }

type holder struct{ v *View }

func storeGlobal(v *View) { sink = v }

func storeField(h *holder, v *View) { h.v = v }

func passThrough(v *View) *View { return v }

func indirectStore(v *View) { storeGlobal(passThrough(v)) }

func fresh() *View { return &View{} }

func leakFresh() { storeGlobal(fresh()) }

func frameOf(v *View) []byte { return v.Frame() }

func leakFrame(ch chan []byte) {
	v := fresh()
	ch <- frameOf(v)
}

func launder(v *View) *View { return v }

func cleanViaLaunder() { storeGlobal(launder(fresh())) }

type sender interface{ send(v *View) }

type chanSender struct{ ch chan *View }

func (c *chanSender) send(v *View) { c.ch <- v }

func dynamic(s sender, v *View) { s.send(v) }

func scalarSafe(v *View) int {
	n := len(v.b)
	return n
}
`

func buildGraph(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return NewGraph(fset, pkg, info, []*ast.File{file})
}

func isView(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "View"
}

func solve(t *testing.T, cfg EscapeConfig) *Escape {
	t.Helper()
	e := NewEscape(buildGraph(t), cfg, nil)
	e.Solve()
	return e
}

func TestSummaries(t *testing.T) {
	e := solve(t, EscapeConfig{Source: isView})
	sums := e.Summaries()

	get := func(name string) *Summary {
		for k, s := range sums {
			if strings.HasSuffix(k, "."+name) {
				return s
			}
		}
		t.Fatalf("no summary for %s", name)
		return nil
	}

	if s := get("storeGlobal"); len(s.ParamEscape) != 1 || s.ParamEscape[0] == "" {
		t.Errorf("storeGlobal: want param 0 escape, got %+v", s)
	}
	if s := get("storeField"); len(s.ParamEscape) != 0 {
		t.Errorf("storeField: param store must not be an escape, got %+v", s)
	} else if got := s.ParamStore[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("storeField: want param 1 stored into param 0, got %+v", s)
	}
	if s := get("passThrough"); len(s.ParamFlow[0]) != 1 || s.ParamFlow[0][0] != 0 {
		t.Errorf("passThrough: want param 0 → result 0, got %+v", s)
	}
	// Transitive: indirectStore escapes its param through two calls.
	if s := get("indirectStore"); s.ParamEscape[0] == "" {
		t.Errorf("indirectStore: want transitive param escape, got %+v", s)
	}
	if s := get("fresh"); len(s.FreshResult) != 1 {
		t.Errorf("fresh: want fresh result, got %+v", s)
	}
	// frameOf: param flows to result through the Frame() unknown-callee
	// (same package, but Frame has a summary: recv→result via return v.b).
	if s := get("frameOf"); len(s.ParamFlow[0]) != 1 {
		t.Errorf("frameOf: want param flow to result, got %+v", s)
	}
	// Interface dispatch: dynamic resolves send to chanSender.send, whose
	// param is released on a channel.
	if s := get("dynamic"); s.ParamEscape[1] == "" {
		t.Errorf("dynamic: want interface-resolved param escape, got %+v", s)
	}
	if s := get("scalarSafe"); !s.empty() {
		t.Errorf("scalarSafe: scalar reads must not taint, got %+v", s)
	}
}

func TestFindings(t *testing.T) {
	launders := func(g *Graph, cs *CallSite) bool {
		return cs.Static != nil && cs.Static.Name() == "launder"
	}
	e := solve(t, EscapeConfig{Source: isView, Launders: launders})

	g := e.g
	var got []string
	for _, f := range e.Findings() {
		got = append(got, g.PosString(f.Pos)+" "+f.What)
	}

	find := func(sub string) bool {
		for _, s := range got {
			if strings.Contains(s, sub) {
				return true
			}
		}
		return false
	}
	if !find("escapes via call to p.storeGlobal") {
		t.Errorf("want leakFresh finding via storeGlobal, got %v", got)
	}
	if !find("sent on a channel") {
		t.Errorf("want channel-send finding in leakFrame, got %v", got)
	}
	for _, s := range got {
		if strings.Contains(s, "cleanViaLaunder") {
			t.Errorf("laundered flow must not be a finding: %v", s)
		}
	}
}

func TestFactsRoundTrip(t *testing.T) {
	e := solve(t, EscapeConfig{Source: isView})
	blob := e.Facts()
	dec := DecodeEscapeFacts(blob)
	if len(dec) != len(e.Summaries()) {
		t.Fatalf("round trip lost summaries: %d != %d", len(dec), len(e.Summaries()))
	}
	for k, s := range e.Summaries() {
		if !summariesEqual(dec[k], s) {
			t.Errorf("summary %s changed in round trip", k)
		}
	}
	if DecodeEscapeFacts(nil) == nil || DecodeEscapeFacts([]byte("junk")) == nil {
		t.Error("decode must tolerate nil/garbage")
	}
}
