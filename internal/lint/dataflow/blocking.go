package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Blocking-edge extension of the dataflow IR.
//
// The concurrency-protocol analyzers of PR 9 reason about who *touches*
// a queue; shareguard and waitcycle additionally reason about who
// *waits*. This file contributes the shared vocabulary: a stable
// identity for the synchronization resource an operation names (a
// channel field, a Waiter, a WaitGroup — the same naming scheme
// spscrole uses for queues), parameter resolution shared by every
// summary-building analyzer, and the classification of an AST node as a
// blocking edge (an operation that can park the goroutine) or its
// releasing counterpart (the operation that wakes it).
//
// Blocking-edge kinds (see DESIGN.md §14):
//
//	send   — ch <- v           released by recv or close of ch
//	recv   — <-ch              released by send or close of ch
//	park   — <-w.C()           an eventcount park, released by w.Signal()
//	wait   — wg.Wait()         released by wg.Done()
//
// ringq push/pop waits appear as parks: the queues expose only
// non-blocking TryPush/TryPop, and every blocking loop around them
// parks on a ringq.Waiter — so the waiter carries the wait-for edge the
// queue itself cannot.

// Blocking-edge modes.
const (
	ModeSend   = "send"   // channel send
	ModeRecv   = "recv"   // channel receive
	ModeClose  = "close"  // channel close (release only)
	ModePark   = "park"   // receive from a ringq.Waiter's wake channel
	ModeSignal = "signal" // ringq.Waiter.Signal (release only)
	ModeWait   = "wait"   // sync.WaitGroup.Wait
	ModeDone   = "done"   // sync.WaitGroup.Done (release only)
)

// BlockingMode reports whether ops of the given mode can park the
// goroutine (as opposed to only releasing a parked peer).
func BlockingMode(mode string) bool {
	switch mode {
	case ModeSend, ModeRecv, ModePark, ModeWait:
		return true
	}
	return false
}

// Releases reports whether an op of mode rel on the same resource can
// unblock an op of blocking mode blk.
func Releases(blk, rel string) bool {
	switch blk {
	case ModeSend:
		return rel == ModeRecv || rel == ModeClose
	case ModeRecv:
		return rel == ModeSend || rel == ModeClose
	case ModePark:
		return rel == ModeSignal
	case ModeWait:
		return rel == ModeDone
	}
	return false
}

// ---- shared parameter helpers (receiver-first indexing) ----

// ParamObjects returns fn's parameter objects, receiver first — the
// combined indexing every param-effect summary uses.
func ParamObjects(fn *Func) []*types.Var {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// CallArgs returns the call's argument expressions receiver-first, to
// match ParamObjects' indexing. Plain functions have no receiver slot;
// methods called as expressions (T.M(recv, …)) already pass the
// receiver as Args[0].
func CallArgs(g *Graph, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := g.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	if out == nil {
		return call.Args
	}
	return append(out, call.Args...)
}

// ParamIndex resolves e to one of params (unwrapping parens and a
// leading &), returning its receiver-first index.
func ParamIndex(g *Graph, e ast.Expr, params []*types.Var) (int, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := g.Info.Uses[id]
	for i, p := range params {
		if p == obj {
			return i, true
		}
	}
	return 0, false
}

// GlobalVar reports whether v is a package-level variable.
func GlobalVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// ---- resource identity ----

// ResourceIdent names the synchronization resource (or memory
// location) an expression denotes, at the granularity origin
// attribution is meaningful for: struct fields by declared type
// ("(pkg.T).f"), package-level vars ("pkg.v"), locals by definition
// site ("local v@file.go:12"). Parameters resolve to "" with their
// receiver-first index returned instead — param-indexed effects belong
// in the caller's summary, and naming them here would double-count.
// Untrackable expressions return ("", -1).
func ResourceIdent(g *Graph, params []*types.Var, e ast.Expr) (string, int) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := g.Info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			// Qualified identifier pkg.Var.
			if v, ok := g.Info.Uses[x.Sel].(*types.Var); ok && GlobalVar(v) {
				return v.Pkg().Path() + "." + v.Name(), -1
			}
			return "", -1
		}
		if name := FieldIdent(g, x); name != "" {
			return name, -1
		}
		return "", -1
	case *ast.Ident:
		v, ok := g.Info.Uses[x].(*types.Var)
		if !ok || v.IsField() {
			return "", -1
		}
		if GlobalVar(v) {
			return v.Pkg().Path() + "." + v.Name(), -1
		}
		for i, p := range params {
			if p == v {
				return "", i
			}
		}
		return "local " + v.Name() + "@" + g.PosString(v.Pos()), -1
	}
	return "", -1
}

// FieldIdent names a field selection by its declaring type:
// "(pkgpath.Type).field". Generic instantiations normalize to their
// origin type. Returns "" for selections that are not struct fields or
// whose owner has no package.
func FieldIdent(g *Graph, x *ast.SelectorExpr) string {
	sel, ok := g.Info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return ""
	}
	recv := sel.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	if orig := named.Origin(); orig != nil {
		named = orig
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return "(" + obj.Pkg().Path() + "." + obj.Name() + ")." + x.Sel.Name
}

// ---- blocking-op classification ----

// WaiterPark matches a receive from a ringq.Waiter's wake channel —
// `<-w.C()` — returning the waiter expression. The C() indirection is
// how every park in the tree is written; a waiter channel stored in a
// local first is matched by the caller resolving the local's
// definition.
func WaiterPark(g *Graph, recv *ast.UnaryExpr) (ast.Expr, bool) {
	if recv.Op != token.ARROW {
		return nil, false
	}
	return WaiterC(g, recv.X)
}

// WaiterC matches a `w.C()` call on a ringq.Waiter, returning w.
func WaiterC(g *Graph, e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return nil, false
	}
	selection, ok := g.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, false
	}
	if !IsNamedType(selection.Recv(), "cyclojoin/internal/ringq", "Waiter") {
		return nil, false
	}
	return sel.X, true
}

// SyncCall classifies a call as a Waiter signal or a WaitGroup
// wait/done, returning the resource expression and the op mode.
func SyncCall(g *Graph, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	selection, ok := g.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	switch {
	case sel.Sel.Name == "Signal" && IsNamedType(selection.Recv(), "cyclojoin/internal/ringq", "Waiter"):
		return sel.X, ModeSignal, true
	case sel.Sel.Name == "Wait" && IsNamedType(selection.Recv(), "sync", "WaitGroup"):
		return sel.X, ModeWait, true
	case sel.Sel.Name == "Done" && IsNamedType(selection.Recv(), "sync", "WaitGroup"):
		return sel.X, ModeDone, true
	}
	return nil, "", false
}
