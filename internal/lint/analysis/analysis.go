// Package analysis is a dependency-free core for cyclolint's custom
// analyzers, mirroring the shape of golang.org/x/tools/go/analysis (which
// this repo deliberately does not vendor: the module is stdlib-only). An
// Analyzer inspects one type-checked package at a time and reports
// diagnostics; drivers (cmd/cyclolint standalone, the go vet -vettool
// protocol, and the linttest harness) construct the Pass.
//
// The repo-specific part is the directive convention: analyzers that
// enforce hot-path invariants are steered by machine-readable comments of
// the form
//
//	//cyclolint:hotpath   (function doc comment: zero-alloc contract)
//	//cyclolint:coldpath  (statement: excluded error/slow branch)
//	//cyclolint:viewsafe  (statement: sanctioned view ownership handoff)
//
// A statement directive attaches to the statement it trails on the same
// line, or to the statement starting on the line directly below it. See
// DESIGN.md §9 for the full convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check: a name for diagnostics and flags, a doc
// string, and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -disable flags.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Version participates in the vet build-cache key and in fact
	// compatibility: facts written by a different version of the same
	// analyzer are discarded, and bumping it invalidates cached vet
	// verdicts for every package. Bump it whenever Run's behavior or the
	// fact encoding changes.
	Version string
	// UsesFacts marks analyzers that exchange per-package summaries
	// (facts) with their runs over dependency packages. Drivers run these
	// analyzers in dependency order and persist their fact blobs (the
	// vetx file, in go vet mode).
	UsesFacts bool
	// Run inspects one package via the Pass and reports findings.
	Run func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments retained).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's facts about Files.
	TypesInfo *types.Info
	// Report consumes one diagnostic.
	Report func(Diagnostic)

	// ReadFacts returns the fact blob this analyzer exported for the
	// imported package at path, or nil when none exists (package outside
	// the analyzed set, or written by a different analyzer version).
	// Nil when the driver has no fact store.
	ReadFacts func(path string) []byte
	// ExportFacts records this package's fact blob for downstream
	// packages' passes. Nil when the driver has no fact store.
	ExportFacts func(data []byte)

	// directives caches the per-file directive index.
	directives map[*ast.File]map[int][]string
}

// Diagnostic is one finding, positioned in Fset. End is optional (NoPos
// means "just Pos"). Fixes carry machine-applicable suggested edits the
// -fix driver can apply.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos
	Message string
	Fixes   []SuggestedFix
}

// SuggestedFix is one machine-applicable resolution of a diagnostic. All
// edits must apply together.
type SuggestedFix struct {
	// Message says what applying the fix does ("rename to frame_bytes").
	Message string
	// Edits are the non-overlapping text replacements.
	Edits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. A zero-width
// range (End == Pos) is an insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// ImportedFacts looks up this analyzer's facts for an imported package,
// tolerating drivers without a fact store.
func (p *Pass) ImportedFacts(path string) []byte {
	if p.ReadFacts == nil {
		return nil
	}
	return p.ReadFacts(path)
}

// Export records this package's fact blob, tolerating drivers without a
// fact store.
func (p *Pass) Export(data []byte) {
	if p.ExportFacts != nil {
		p.ExportFacts(data)
	}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix introduces every cyclolint source directive.
const DirectivePrefix = "//cyclolint:"

// fileDirectives indexes a file's cyclolint directives by the line each
// comment sits on. Multiple directives may share a line.
func fileDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	idx := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			name := strings.TrimPrefix(c.Text, DirectivePrefix)
			// A justification may follow the directive name after a space:
			//   //cyclolint:viewsafe credit is withheld until release
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			line := fset.Position(c.Pos()).Line
			idx[line] = append(idx[line], name)
		}
	}
	return idx
}

// HasDirective reports whether the named directive is attached to node: a
// "//cyclolint:name" comment on the node's first line or on the line
// directly above it.
func (p *Pass) HasDirective(file *ast.File, node ast.Node, name string) bool {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	idx, ok := p.directives[file]
	if !ok {
		idx = fileDirectives(p.Fset, file)
		p.directives[file] = idx
	}
	line := p.Fset.Position(node.Pos()).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range idx[l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// FuncHasDirective reports whether a function declaration's doc comment
// carries the named directive.
func FuncHasDirective(decl *ast.FuncDecl, name string) bool {
	if decl.Doc == nil {
		return false
	}
	want := DirectivePrefix + name
	for _, c := range decl.Doc.List {
		text := c.Text
		if text == want || strings.HasPrefix(text, want+" ") || strings.HasPrefix(text, want+"\t") {
			return true
		}
	}
	return false
}

// File returns the *ast.File containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// IsMethodOn reports whether the call invokes a method with the given
// name declared on the named type (or a pointer to it) from the package
// with path pkgPath. This is how analyzers recognize trace.Shard.Begin,
// metrics.Registry.Counter and friends without importing those packages.
func (p *Pass) IsMethodOn(call *ast.CallExpr, pkgPath, typeName, methodName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != methodName {
		return false
	}
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	return IsNamed(recv, pkgPath, typeName)
}

// IsNamed reports whether t is the named type pkgPath.typeName, possibly
// behind a pointer.
func IsNamed(t types.Type, pkgPath, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == typeName &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
