package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// fileEdit is one TextEdit resolved to byte offsets within a single file.
type fileEdit struct {
	start, end int
	newText    string
}

// ApplyFixes applies every suggested fix in diags to the file contents in
// src (filename → bytes) and returns the rewritten set. Only files present
// in src are touched; fixes into other files are reported as errors.
// Overlapping edits (within one fix or across fixes) make the whole batch
// fail — a fix set that disagrees with itself must not half-apply.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, src map[string][]byte) (map[string][]byte, error) {
	perFile := make(map[string][]fileEdit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				start := fset.Position(e.Pos)
				name := start.Filename
				if _, ok := src[name]; !ok {
					return nil, fmt.Errorf("fix %q edits %s, which is not in the rewrite set", fix.Message, name)
				}
				endOff := start.Offset
				if e.End.IsValid() {
					end := fset.Position(e.End)
					if end.Filename != name {
						return nil, fmt.Errorf("fix %q spans files %s and %s", fix.Message, name, end.Filename)
					}
					endOff = end.Offset
				}
				if endOff < start.Offset {
					return nil, fmt.Errorf("fix %q has an inverted edit range", fix.Message)
				}
				perFile[name] = append(perFile[name], fileEdit{start: start.Offset, end: endOff, newText: e.NewText})
			}
		}
	}
	out := make(map[string][]byte, len(src))
	for name, content := range src {
		edits := perFile[name]
		if len(edits) == 0 {
			out[name] = content
			continue
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		var buf []byte
		prev := 0
		for i, e := range edits {
			if i > 0 && e.start < edits[i-1].end {
				if e == edits[i-1] {
					continue // identical duplicate edit: harmless
				}
				return nil, fmt.Errorf("overlapping fixes in %s at byte %d", name, e.start)
			}
			if e.start > len(content) || e.end > len(content) {
				return nil, fmt.Errorf("fix in %s out of range (byte %d of %d)", name, e.end, len(content))
			}
			buf = append(buf, content[prev:e.start]...)
			buf = append(buf, e.newText...)
			prev = e.end
		}
		buf = append(buf, content[prev:]...)
		out[name] = buf
	}
	return out, nil
}
