package lint_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cyclojoin/internal/lint"
	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/load"
)

// protocolAnalyzers picks the fact-threading concurrency-protocol
// analyzers out of the suite.
func protocolAnalyzers(t *testing.T) []*analysis.Analyzer {
	t.Helper()
	want := map[string]bool{
		"spscrole": true, "frozenpub": true, "creditflow": true,
		"shareguard": true, "waitcycle": true,
	}
	var out []*analysis.Analyzer
	for _, a := range lint.Analyzers() {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("suite has %d of the %d protocol analyzers", len(out), len(want))
	}
	return out
}

// transcript runs the analyzers over every package in the module,
// threading facts in dependency order, and renders diagnostics plus
// exported fact bytes into one canonical string.
func transcript(t *testing.T, analyzers []*analysis.Analyzer) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	var lines []string
	facts := make(map[string]map[string][]byte)
	for _, pkg := range pkgs {
		pkgPath := pkg.Types.Path()
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.ReadFacts = func(path string) []byte { return facts[a.Name][path] }
			pass.ExportFacts = func(data []byte) {
				if facts[a.Name] == nil {
					facts[a.Name] = make(map[string][]byte)
				}
				facts[a.Name][pkgPath] = data
			}
			pass.Report = func(d analysis.Diagnostic) {
				lines = append(lines, fmt.Sprintf("%s: %s: %s", pkg.Fset.Position(d.Pos), a.Name, d.Message))
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkgPath, err)
			}
		}
	}
	var factLines []string
	for name, byPkg := range facts {
		for path, data := range byPkg {
			factLines = append(factLines, fmt.Sprintf("fact %s %s %s", name, path, data))
		}
	}
	sort.Strings(factLines)
	return strings.Join(lines, "\n") + "\n---\n" + strings.Join(factLines, "\n")
}

// TestProtocolAnalyzersDeterministic runs the fact-threading analyzers twice
// over the whole module and requires byte-identical diagnostics and
// facts. Map-iteration nondeterminism in the fixpoints or encoders would
// flap vet's cache and CI; this runs under `make race` for the schedule
// jitter.
func TestProtocolAnalyzersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module")
	}
	analyzers := protocolAnalyzers(t)
	first := transcript(t, analyzers)
	second := transcript(t, analyzers)
	if first != second {
		t.Errorf("analyzer output is nondeterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
