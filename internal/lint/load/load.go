// Package load type-checks packages for cyclolint without depending on
// golang.org/x/tools/go/packages: it drives `go list -export -deps -json`
// for package metadata and compiler export data, parses the target
// packages' sources with go/parser, and type-checks them with go/types
// using the gc importer fed from the export files. This is the same
// shape the go vet unitchecker protocol uses — one package type-checked
// from source, every dependency imported from export data — so the
// standalone driver and the -vettool driver share these primitives.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// PkgPath is the canonical import path.
	PkgPath string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed compiled sources (no _test.go files — the
	// invariants cyclolint enforces are production hot-path contracts).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds the checker's facts about Files.
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// GoList runs `go list -export -deps -json` for patterns in dir and
// returns the export-data index (import path → export file) plus the
// matched packages (dependencies contribute export data only) in
// dependency order.
func GoList(dir string, patterns ...string) (map[string]string, []listEntry, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.Standard && !e.DepOnly {
			targets = append(targets, e)
		}
	}
	return exports, targets, nil
}

// Importer returns a types.Importer that reads gc export data files. The
// importMap translates import paths as written in source to the
// canonical paths keying exportFiles (identity when nil or missing).
func Importer(fset *token.FileSet, importMap, exportFiles map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo returns a types.Info with every fact map analyzers consume.
// Instances records each generic function/method instantiation, which the
// dataflow IR needs to resolve instantiated callees back to their generic
// declarations (ringq's SPSC[T] methods would otherwise be invisible).
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckFiles parses filenames and type-checks them as the package at
// pkgPath, resolving imports through imp.
func CheckFiles(fset *token.FileSet, imp types.Importer, pkgPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-check %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: pkg, TypesInfo: info}, nil
}

// Packages loads and type-checks the packages matching patterns, rooted
// at dir (any directory inside the module). Dependencies are imported
// from export data; only the matched packages are parsed.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := Importer(fset, nil, exports)
	var pkgs []*Package
	for _, e := range targets {
		if len(e.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(e.GoFiles))
		for i, g := range e.GoFiles {
			filenames[i] = filepath.Join(e.Dir, g)
		}
		pkg, err := CheckFiles(fset, imp, e.ImportPath, filenames)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
