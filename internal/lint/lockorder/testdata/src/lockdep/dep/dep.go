package dep

import "sync"

// Global serializes registry mutations.
var Global sync.Mutex

// Guard protects one registry entry.
type Guard struct{ Mu sync.Mutex }

// LockBoth takes the registry lock, then the entry lock: the canonical
// order every caller must follow.
func LockBoth(g *Guard) {
	Global.Lock()
	g.Mu.Lock()
	g.Mu.Unlock()
	Global.Unlock()
}
