package use

import "cyclolinttest/lockdep/dep"

// inverted takes the entry lock before the registry lock — the reverse of
// dep.LockBoth's order. The closing edge lives in another package and
// arrives as a fact.
func inverted(g *dep.Guard) {
	g.Mu.Lock()
	dep.Global.Lock() // want `lock acquisition order cycle`
	dep.Global.Unlock()
	g.Mu.Unlock()
}
