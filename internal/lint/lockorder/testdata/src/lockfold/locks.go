package lockfold

import "sync"

type A struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }

// helperC's acquisition is only visible to callers through its summary.
func helperC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

// viaHelper records A→C at the call site by folding helperC's summary.
func viaHelper(a *A, c *C) {
	a.mu.Lock()
	helperC(c) // want `lock acquisition order cycle`
	a.mu.Unlock()
}

// inverted closes the cycle C→A.
func inverted(a *A, c *C) {
	c.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	c.mu.Unlock()
}

// sanctioned documents a deliberate inversion.
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }

func lockDE(d *D, e *E) {
	d.mu.Lock()
	//cyclolint:locksafe boot-time only; serialized by the init barrier
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

func lockED(d *D, e *E) {
	e.mu.Lock()
	//cyclolint:locksafe boot-time only; serialized by the init barrier
	d.mu.Lock()
	d.mu.Unlock()
	e.mu.Unlock()
}
