package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }

// lockAB establishes A before B.
func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock acquisition order cycle`
	b.mu.Unlock()
}

// lockBA inverts it: with lockAB this closes a cycle, reported once at
// the earliest edge.
func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// consistent keeps one global order; no report.
func consistent(a *A, c *C) {
	a.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	a.mu.Unlock()
}

func consistentAgain(a *A, c *C) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
}

// unlockedFirst releases A before taking B on the second round, so no
// A→B edge arises here.
func unlockedFirst(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
