package lockorder_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "lockorder")
}

func TestLockOrderCallFolding(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "lockfold")
}

func TestLockOrderCrossPackage(t *testing.T) {
	linttest.Run(t, lockorder.Analyzer, "lockdep/dep", "lockdep/use")
}
