package lockorder

import (
	"encoding/json"
	"sort"
)

// Edge records one observed acquisition order: To was locked while From
// was held. Positions are pre-rendered so they survive the fact boundary
// without a shared FileSet.
type Edge struct {
	From    string `json:"from"`
	To      string `json:"to"`
	FromPos string `json:"from_pos"`
	ToPos   string `json:"to_pos"`
}

// LockFacts is the per-package fact blob: every function's transitively
// acquired lock classes (for call-site folding) and every acquisition
// edge seen so far, merged transitively so any importer can close a
// cycle against the whole dependency cone.
type LockFacts struct {
	Acquires map[string][]string `json:"acquires,omitempty"`
	Edges    []Edge              `json:"edges,omitempty"`
}

// EncodeLockFacts serializes facts deterministically.
func EncodeLockFacts(acquires map[string][]string, edges []Edge) []byte {
	f := &LockFacts{Acquires: make(map[string][]string)}
	for k, v := range acquires {
		if len(v) == 0 {
			continue
		}
		vv := append([]string(nil), v...)
		sort.Strings(vv)
		f.Acquires[k] = vv
	}
	seen := make(map[Edge]bool)
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			f.Edges = append(f.Edges, e)
		}
	}
	sort.Slice(f.Edges, func(i, j int) bool {
		a, b := f.Edges[i], f.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.FromPos != b.FromPos {
			return a.FromPos < b.FromPos
		}
		return a.ToPos < b.ToPos
	})
	data, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return data
}

// DecodeLockFacts parses a fact blob, tolerating nil/garbage.
func DecodeLockFacts(data []byte) *LockFacts {
	f := &LockFacts{Acquires: make(map[string][]string)}
	if len(data) == 0 {
		return f
	}
	if err := json.Unmarshal(data, f); err != nil {
		return &LockFacts{Acquires: make(map[string][]string)}
	}
	if f.Acquires == nil {
		f.Acquires = make(map[string][]string)
	}
	return f
}
