// Package lockorder builds the program's whole lock-acquisition-order
// graph and reports cycles as potential deadlocks.
//
// Every sync.Mutex / sync.RWMutex the repo owns is assigned a class:
// "pkgpath.Type.field" for a mutex struct field, "pkgpath.var" for a
// package-level mutex. Within each function the analyzer walks statements
// in source order keeping a held stack: Lock/RLock pushes, Unlock/RUnlock
// pops, a deferred unlock keeps the lock held to the end of the function
// (which is exactly the window later acquisitions order against). Each
// acquisition made while another class is held records a directed edge
// held → acquired. Calls fold in the callee's transitively-acquired
// classes — computed to a fixpoint in-package and imported across package
// boundaries as facts, so an inversion split between two packages is
// still a cycle to the importer.
//
// A cycle means two executions can each hold one lock while waiting for
// the other: a deadlock that strikes only under contention, which is why
// tests rarely catch it. The report cites both acquisition sites of the
// local edge and the remote path that closes the cycle. A deliberate,
// externally-serialized inversion is annotated at the statement:
//
//	//cyclolint:locksafe <justification>
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// Analyzer reports lock-acquisition-order cycles.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "all mutexes must be acquired in one global order; a cycle in the acquisition graph is a potential deadlock",
	Version:   "1",
	UsesFacts: true,
	Run:       run,
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// Lock-call kinds returned by LockCall.
const (
	// KindAcquire is a Lock/RLock call.
	KindAcquire = 1
	// KindRelease is an Unlock/RUnlock call.
	KindRelease = 2
)

// localEdge is an Edge still tied to this package's positions and syntax,
// so it can be reported on and directive-checked.
type localEdge struct {
	Edge
	toPos token.Pos
	node  ast.Node
	file  *ast.File
}

func run(pass *analysis.Pass) error {
	g := dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, pass.Files)

	acquires := make(map[string][]string)
	var imported []Edge
	for _, imp := range pass.Pkg.Imports() {
		f := DecodeLockFacts(pass.ImportedFacts(imp.Path()))
		for k, v := range f.Acquires {
			acquires[k] = v
		}
		imported = append(imported, f.Edges...)
	}

	solveAcquires(pass, g, acquires)
	local := collectEdges(pass, g, acquires)

	rendered := make([]Edge, 0, len(local))
	for _, e := range local {
		rendered = append(rendered, e.Edge)
	}
	pass.Export(EncodeLockFacts(acquires, append(rendered, imported...)))

	reportCycles(pass, local, imported)
	return nil
}

// ---- lock classification ----

// mutexClass names the lock behind a Lock/Unlock selector base, or ""
// when it is a local (untrackable) mutex.
func mutexClass(info *types.Info, base ast.Expr) string {
	switch x := ast.Unparen(base).(type) {
	case *ast.SelectorExpr:
		if fsel, ok := info.Selections[x]; ok {
			// A mutex field: class is the owning type plus field name.
			t := fsel.Recv()
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// pkg.Var: a package-level mutex referenced across packages.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
		return ""
	case *ast.Ident:
		// A package-level mutex in its own package; locals are skipped.
		v, ok := objOf(info, x).(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return ""
	}
	return ""
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// LockCall classifies call as a lock acquisition (KindAcquire) or
// release (KindRelease) of a trackable mutex class, returning the
// class name ("pkgpath.Type.field" or "pkgpath.var") and the kind, or
// ("", 0) for anything else. shareguard reuses this so its guard sets
// name lock classes exactly as lockorder's cycle reports do.
func LockCall(info *types.Info, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	kind := 0
	switch {
	case lockMethods[sel.Sel.Name]:
		kind = KindAcquire
	case unlockMethods[sel.Sel.Name]:
		kind = KindRelease
	default:
		return "", 0
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", 0
	}
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if !analysis.IsNamed(recv, "sync", "Mutex") && !analysis.IsNamed(recv, "sync", "RWMutex") {
		return "", 0
	}
	cls := mutexClass(info, sel.X)
	if cls == "" {
		return "", 0
	}
	return cls, kind
}

// ---- summaries: which classes a function transitively acquires ----

func solveAcquires(pass *analysis.Pass, g *dataflow.Graph, acquires map[string][]string) {
	fns := g.All()
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range fns {
			if fn.Decl.Body == nil {
				continue
			}
			set := make(map[string]bool)
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if cls, kind := LockCall(pass.TypesInfo, call); kind == KindAcquire {
					set[cls] = true
					return true
				}
				if callee := g.StaticCallee(call); callee != nil {
					for _, a := range acquires[callee.FullName()] {
						set[a] = true
					}
				}
				return true
			})
			cur := make([]string, 0, len(set))
			for c := range set {
				cur = append(cur, c)
			}
			sort.Strings(cur)
			if !stringsEqual(acquires[fn.Key()], cur) {
				acquires[fn.Key()] = cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- edge collection: the source-order held-stack walk ----

type heldLock struct {
	class string
	pos   token.Pos
}

func collectEdges(pass *analysis.Pass, g *dataflow.Graph, acquires map[string][]string) []localEdge {
	var edges []localEdge
	for _, fn := range g.All() {
		if fn.Decl.Body == nil {
			continue
		}
		file := pass.File(fn.Decl.Pos())
		w := &walker{pass: pass, g: g, acquires: acquires, file: file, edges: &edges}
		w.walk(fn.Decl.Body, nil)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].toPos < edges[j].toPos })
	return edges
}

type walker struct {
	pass     *analysis.Pass
	g        *dataflow.Graph
	acquires map[string][]string
	file     *ast.File
	edges    *[]localEdge
}

// walk traverses body in source order maintaining held. A FuncLit is a
// separate execution context (usually a goroutine) and starts empty; a
// deferred unlock is ignored, which keeps the lock held for the rest of
// the walk — exactly the window later acquisitions order against.
func (w *walker) walk(body ast.Node, held []heldLock) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walk(x.Body, nil)
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if cls, kind := LockCall(w.pass.TypesInfo, x); kind != 0 {
				switch kind {
				case KindAcquire:
					w.addEdges(held, cls, x)
					held = append(held, heldLock{class: cls, pos: x.Pos()})
				case KindRelease:
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].class == cls {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if callee := w.g.StaticCallee(x); callee != nil {
				for _, a := range w.acquires[callee.FullName()] {
					w.addEdges(held, a, x)
				}
			}
		}
		return true
	})
}

func (w *walker) addEdges(held []heldLock, to string, at ast.Node) {
	for _, h := range held {
		if h.class == to {
			continue
		}
		*w.edges = append(*w.edges, localEdge{
			Edge: Edge{
				From:    h.class,
				To:      to,
				FromPos: w.pass.Fset.Position(h.pos).String(),
				ToPos:   w.pass.Fset.Position(at.Pos()).String(),
			},
			toPos: at.Pos(),
			node:  at,
			file:  w.file,
		})
	}
}

// ---- cycle detection ----

func reportCycles(pass *analysis.Pass, local []localEdge, imported []Edge) {
	adj := make(map[string][]Edge)
	add := func(e Edge) { adj[e.From] = append(adj[e.From], e) }
	seen := make(map[Edge]bool)
	for _, e := range local {
		if !seen[e.Edge] {
			seen[e.Edge] = true
			add(e.Edge)
		}
	}
	for _, e := range imported {
		if !seen[e] {
			seen[e] = true
			add(e)
		}
	}
	reported := make(map[string]bool)
	for _, e := range local {
		path := findPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		key := cycleKey(e.Edge, path)
		if reported[key] {
			continue
		}
		reported[key] = true
		if e.file != nil && pass.HasDirective(e.file, e.node, "locksafe") {
			continue
		}
		var back []string
		for _, p := range path {
			back = append(back, p.To+" (at "+p.ToPos+", holding "+p.From+" acquired at "+p.FromPos+")")
		}
		pass.Reportf(e.toPos,
			"lock acquisition order cycle: %s is acquired here while holding %s (acquired at %s), but elsewhere the order is reversed via %s; a potential deadlock — pick one global order, or annotate //cyclolint:locksafe with the serialization argument",
			e.To, e.From, e.FromPos, strings.Join(back, " -> "))
	}
}

// findPath BFSes from src to dst over adj, returning the edge path.
func findPath(adj map[string][]Edge, src, dst string) []Edge {
	type step struct {
		class string
		via   *step
		edge  Edge
	}
	visited := map[string]bool{src: true}
	queue := []*step{{class: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.class] {
			if visited[e.To] {
				continue
			}
			next := &step{class: e.To, via: cur, edge: e}
			if e.To == dst {
				var path []Edge
				for s := next; s.via != nil; s = s.via {
					path = append(path, s.edge)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			visited[e.To] = true
			queue = append(queue, next)
		}
	}
	return nil
}

// cycleKey canonicalizes a cycle by its participating classes.
func cycleKey(e Edge, path []Edge) string {
	set := map[string]bool{e.From: true, e.To: true}
	for _, p := range path {
		set[p.From] = true
		set[p.To] = true
	}
	classes := make([]string, 0, len(set))
	for c := range set {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return strings.Join(classes, "|")
}
