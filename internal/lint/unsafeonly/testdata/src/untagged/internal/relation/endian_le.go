// An allowlisted path missing its build constraint: the portable
// fallback could never be selected.
package relation

import "unsafe" // want `lacks a //go:build constraint`

// WordAt reinterprets 8 bytes in place.
func WordAt(b []byte) uint64 {
	return *(*uint64)(unsafe.Pointer(&b[0]))
}
