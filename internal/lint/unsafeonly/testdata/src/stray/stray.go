// A stray unsafe import outside the allowlist.
package stray

import "unsafe" // want `unsafe import outside the endian allowlist`

// Addr leaks an address as an integer.
func Addr(p *int) uintptr {
	return uintptr(unsafe.Pointer(p))
}
