//go:build 386 || amd64 || arm || arm64 || riscv64

// An allowlisted endian file: unsafe behind a build constraint, at the
// blessed path suffix. Nothing to report.
package relation

import "unsafe"

// WordAt reinterprets 8 bytes in place.
func WordAt(b []byte) uint64 {
	return *(*uint64)(unsafe.Pointer(&b[0]))
}
