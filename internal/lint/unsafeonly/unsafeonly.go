// Package unsafeonly confines unsafe aliasing to the files built for it.
//
// The zero-copy hot path reinterprets registered receive memory as a key
// column via unsafe.Slice — but only on hosts whose byte order matches
// the wire format, which is why the aliasing lives in a build-tagged
// endian file with a portable fallback next to it. Letting unsafe leak
// into untagged files would quietly break the big-endian build and widen
// the audit surface for aliasing bugs, so the import is allowed only in
// an explicit allowlist of build-constrained files.
package unsafeonly

import (
	"go/ast"
	"path/filepath"
	"strings"

	"cyclojoin/internal/lint/analysis"
)

// Allowlist holds the path suffixes (slash-separated) of files permitted
// to import unsafe. Each must also carry a //go:build constraint.
var Allowlist = []string{
	"internal/relation/endian_le.go",
}

// Analyzer flags unsafe imports outside the allowlist.
var Analyzer = &analysis.Analyzer{
	Name: "unsafeonly",
	Doc:  "unsafe may be imported only by allowlisted build-tagged endian files",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if imp.Path.Value != `"unsafe"` {
				continue
			}
			name := filepath.ToSlash(pass.Fset.Position(imp.Pos()).Filename)
			if !allowed(name) {
				pass.Reportf(imp.Pos(),
					"unsafe import outside the endian allowlist: confine aliasing to build-tagged files (see unsafeonly.Allowlist)")
				continue
			}
			if !hasBuildConstraint(file) {
				pass.Reportf(imp.Pos(),
					"allowlisted unsafe file %s lacks a //go:build constraint; the portable fallback must be selectable", filepath.Base(name))
			}
		}
	}
	return nil
}

func allowed(filename string) bool {
	for _, suffix := range Allowlist {
		if strings.HasSuffix(filename, suffix) {
			return true
		}
	}
	return false
}

// hasBuildConstraint reports whether the file carries a //go:build line
// above the package clause.
func hasBuildConstraint(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build ") {
				return true
			}
		}
	}
	return false
}
