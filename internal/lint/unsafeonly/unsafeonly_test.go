package unsafeonly_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/unsafeonly"
)

func TestUnsafeOnly(t *testing.T) {
	linttest.Run(t, unsafeonly.Analyzer,
		"allowed/internal/relation",
		"stray",
		"untagged/internal/relation",
	)
}
