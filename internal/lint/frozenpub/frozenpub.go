// Package frozenpub enforces frozen-after-publish on atomically
// published objects.
//
// The lock-free snapshot idiom — build an object privately, publish it
// with atomic.Pointer.Store (or Value.Store / Swap / CompareAndSwap),
// readers Load and walk it without locks — is only sound if the object
// never changes after the Store: the atomic gives readers a happens-
// before edge to writes *preceding* the publish, and nothing for writes
// after it. A post-publish write through a retained alias is a data race
// that -race only catches if a reader happens to hit the torn field
// under test. frozenpub catches it statically: within a function it
// tracks which locals have been published (including through simple
// aliases created by ident-to-ident assignment) with a path-sensitive
// walk — branches fork the state, loop bodies are walked twice so a
// publish on iteration n flags the write on iteration n+1 — and reports
// any store through a published base.
//
// Deliberate post-publish mutation (single-writer fields readers are
// specified to tolerate, e.g. monotonic counters) is annotated at the
// write:
//
//	//cyclolint:pubsafe readers tolerate monotonic updates of this field
package frozenpub

import (
	"go/ast"
	"go/token"
	"go/types"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// Analyzer flags writes through pointers that were already atomically
// published.
var Analyzer = &analysis.Analyzer{
	Name:    "frozenpub",
	Doc:     "an object published via atomic.Pointer/atomic.Value Store must not be written afterwards; annotate //cyclolint:pubsafe for sanctioned mutation",
	Version: "1",
	Run:     run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.FuncHasDirective(fn, "pubsafe") {
				continue
			}
			c := &checker{pass: pass, file: file, reported: make(map[token.Pos]bool)}
			if c.hasGoto(fn.Body) {
				continue
			}
			c.collectAliases(fn.Body)
			c.block(fn.Body, make(state))
		}
	}
	return nil
}

// state maps a local variable to the position where the object it
// points to was published.
type state map[types.Object]token.Pos

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// merge unions o into s (first publish position wins).
func (s state) merge(o state) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

type checker struct {
	pass *analysis.Pass
	file *ast.File
	// aliases holds bidirectional ident-to-ident assignment edges,
	// collected flow-insensitively: publishing p freezes everything in
	// p's alias closure.
	aliases  map[types.Object][]types.Object
	reported map[token.Pos]bool
}

func (c *checker) hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// collectAliases records a ↔ b for every `a := b` / `a = b` between
// pointer-typed identifiers, ignoring func literals (their own walk is
// out of scope).
func (c *checker) collectAliases(body *ast.BlockStmt) {
	c.aliases = make(map[types.Object][]types.Object)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			l := c.objOf(lhs)
			r := c.objOf(as.Rhs[i])
			if l != nil && r != nil && l != r {
				c.aliases[l] = append(c.aliases[l], r)
				c.aliases[r] = append(c.aliases[r], l)
			}
		}
		return true
	})
}

// closure returns obj plus everything reachable over alias edges.
func (c *checker) closure(obj types.Object) []types.Object {
	seen := map[types.Object]bool{obj: true}
	work := []types.Object{obj}
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		for _, next := range c.aliases[o] {
			if !seen[next] {
				seen[next] = true
				work = append(work, next)
			}
		}
	}
	out := make([]types.Object, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	return out
}

// objOf resolves an expression to the local pointer variable it denotes
// (unwrapping parens and a leading &).
func (c *checker) objOf(e ast.Expr) types.Object {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// publishCall classifies a call as an atomic publish, returning the
// published argument expression, or nil.
func (c *checker) publishCall(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	argIdx := 0
	switch sel.Sel.Name {
	case "Store", "Swap":
	case "CompareAndSwap":
		argIdx = 1
	default:
		return nil
	}
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil
	}
	recv := selection.Recv()
	if !dataflow.IsNamedType(recv, "sync/atomic", "Pointer") &&
		!dataflow.IsNamedType(recv, "sync/atomic", "Value") {
		return nil
	}
	if argIdx >= len(call.Args) {
		return nil
	}
	return call.Args[argIdx]
}

// scanPublishes marks publish calls appearing anywhere in e.
func (c *checker) scanPublishes(e ast.Node, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if arg := c.publishCall(call); arg != nil {
			if obj := c.objOf(arg); obj != nil {
				for _, o := range c.closure(obj) {
					if _, done := st[o]; !done {
						st[o] = call.Pos()
					}
				}
			}
		}
		return true
	})
}

// writeBase resolves the base local variable a store writes through:
// p.f = v, p.f.g = v, *p = v, p.f[i] = v.
func (c *checker) writeBase(lhs ast.Expr) types.Object {
	for {
		lhs = ast.Unparen(lhs)
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			// Only follow when this is a field selection (a write through
			// the pointer), not a package-qualified name.
			if sel, ok := c.pass.TypesInfo.Selections[x]; !ok || sel.Kind() != types.FieldVal {
				return nil
			}
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.Ident:
			return c.objOf(x)
		default:
			return nil
		}
	}
}

func (c *checker) checkWrite(as *ast.AssignStmt, st state) {
	for _, lhs := range as.Lhs {
		// A plain `p = …` rebinds the variable to a new object.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				delete(st, obj)
			}
			continue
		}
		base := c.writeBase(lhs)
		if base == nil {
			continue
		}
		pub, ok := st[base]
		if !ok || c.reported[as.Pos()] {
			continue
		}
		if c.pass.HasDirective(c.file, as, "pubsafe") {
			continue
		}
		c.reported[as.Pos()] = true
		c.pass.Reportf(as.Pos(),
			"%s is written after being atomically published at %s; readers Load without locks, so post-publish writes race — build the object fully before Store, or annotate //cyclolint:pubsafe with the single-writer argument",
			base.Name(), c.pass.Fset.Position(pub).String())
	}
}

// block walks a statement list, threading st.
func (c *checker) block(b *ast.BlockStmt, st state) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		c.stmt(s, st)
	}
}

func (c *checker) stmt(s ast.Stmt, st state) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			c.scanPublishes(r, st)
		}
		c.checkWrite(x, st)
		// Aliasing after publish: q := p freezes q too (already covered
		// by the flow-insensitive edges, but keep the dynamic direction
		// exact for rebound variables).
		for i, lhs := range x.Lhs {
			if i >= len(x.Rhs) {
				break
			}
			l, r := c.objOf(lhs), c.objOf(x.Rhs[i])
			if l != nil && r != nil {
				if pub, ok := st[r]; ok {
					st[l] = pub
				}
			}
		}
	case *ast.ExprStmt:
		c.scanPublishes(x.X, st)
	case *ast.IncDecStmt:
		if base := c.writeBase(x.X); base != nil {
			if pub, ok := st[base]; ok && !c.reported[x.Pos()] && !c.pass.HasDirective(c.file, x, "pubsafe") {
				c.reported[x.Pos()] = true
				c.pass.Reportf(x.Pos(),
					"%s is written after being atomically published at %s; readers Load without locks, so post-publish writes race — build the object fully before Store, or annotate //cyclolint:pubsafe with the single-writer argument",
					base.Name(), c.pass.Fset.Position(pub).String())
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		thenSt := st.clone()
		// `if x.CompareAndSwap(old, p)`: the publish happens only on the
		// true path — a failed CAS leaves the candidate private, so the
		// retry loop may legitimately mutate it.
		if call, ok := ast.Unparen(x.Cond).(*ast.CallExpr); ok && c.publishCall(call) != nil {
			c.scanPublishes(x.Cond, thenSt)
		} else {
			c.scanPublishes(x.Cond, st)
			thenSt = st.clone()
		}
		c.block(x.Body, thenSt)
		elseSt := st.clone()
		if x.Else != nil {
			c.stmt(x.Else, elseSt)
		}
		// A branch that cannot fall through contributes nothing to the
		// join (its publishes died with the return/break).
		if !terminates(x.Body) {
			st.merge(thenSt)
		}
		if x.Else == nil || !stmtTerminates(x.Else) {
			st.merge(elseSt)
		}
	case *ast.BlockStmt:
		c.block(x, st)
	case *ast.ForStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		c.scanPublishes(x.Cond, st)
		// Twice: a publish on iteration n freezes writes on iteration n+1.
		for i := 0; i < 2; i++ {
			body := st.clone()
			c.block(x.Body, body)
			if x.Post != nil {
				c.stmt(x.Post, body)
			}
			st.merge(body)
		}
	case *ast.RangeStmt:
		c.scanPublishes(x.X, st)
		for i := 0; i < 2; i++ {
			body := st.clone()
			c.block(x.Body, body)
			st.merge(body)
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		c.scanPublishes(x.Tag, st)
		c.clauses(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, st)
		}
		c.clauses(x.Body, st)
	case *ast.SelectStmt:
		c.clauses(x.Body, st)
	case *ast.LabeledStmt:
		c.stmt(x.Stmt, st)
	case *ast.DeferStmt:
		// Deferred calls run at return, after any publish in the body:
		// treat their argument evaluation now, ignore the call itself.
		for _, a := range x.Call.Args {
			c.scanPublishes(a, st)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.scanPublishes(r, st)
		}
	case *ast.SendStmt:
		c.scanPublishes(x.Value, st)
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			c.scanPublishes(a, st)
		}
	case *ast.DeclStmt:
		c.scanPublishes(x.Decl, st)
	}
}

// terminates reports whether a block cannot fall through.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return x.Tok == token.BREAK || x.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return terminates(x)
	case *ast.ExprStmt:
		call, ok := ast.Unparen(x.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return id.Name == "panic"
		}
		return false
	}
	return false
}

// clauses walks each case body against a clone of st and merges.
func (c *checker) clauses(body *ast.BlockStmt, st state) {
	if body == nil {
		return
	}
	var merged []state
	for _, cl := range body.List {
		cs := st.clone()
		var body []ast.Stmt
		switch x := cl.(type) {
		case *ast.CaseClause:
			for _, e := range x.List {
				c.scanPublishes(e, cs)
			}
			body = x.Body
		case *ast.CommClause:
			if x.Comm != nil {
				c.stmt(x.Comm, cs)
			}
			body = x.Body
		}
		for _, s := range body {
			c.stmt(s, cs)
		}
		if len(body) == 0 || !stmtTerminates(body[len(body)-1]) {
			merged = append(merged, cs)
		}
	}
	for _, m := range merged {
		st.merge(m)
	}
}
