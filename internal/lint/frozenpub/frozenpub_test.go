package frozenpub_test

import (
	"testing"

	"cyclojoin/internal/lint/frozenpub"
	"cyclojoin/internal/lint/linttest"
)

func TestFrozenPub(t *testing.T) {
	linttest.Run(t, frozenpub.Analyzer, "frozenpub")
}

// TestFrozenPubCrossPackage publishes a snapshot type declared in a
// dependency through a cross-package atomic.Pointer instantiation.
func TestFrozenPubCrossPackage(t *testing.T) {
	linttest.Run(t, frozenpub.Analyzer, "pubdep/dep", "pubdep/use")
}
