package frozenpub

import "sync/atomic"

type snap struct {
	n int
	m map[string]int
	b []byte
}

type sampler struct {
	cur atomic.Pointer[snap]
}

// Build fully, then publish: clean.
func good(s *sampler) {
	p := &snap{m: make(map[string]int)}
	p.n = 1
	s.cur.Store(p)
}

func bad(s *sampler) {
	p := &snap{}
	s.cur.Store(p)
	p.n = 3 // want `p is written after being atomically published`
}

func aliased(s *sampler) {
	p := &snap{}
	q := p
	s.cur.Store(p)
	q.n = 1 // want `q is written after being atomically published`
}

func swapped(s *sampler) {
	p := &snap{}
	old := s.cur.Swap(p)
	_ = old
	p.b = nil // want `p is written after being atomically published`
}

func throughValue(v *atomic.Value) {
	p := &snap{}
	v.Store(p)
	p.n = 2 // want `p is written after being atomically published`
}

func deepWrite(s *sampler) {
	p := &snap{m: make(map[string]int)}
	s.cur.Store(p)
	p.m["k"] = 1 // want `p is written after being atomically published`
}

func incAfter(s *sampler) {
	p := &snap{}
	s.cur.Store(p)
	p.n++ // want `p is written after being atomically published`
}

// Publish and write on exclusive paths: clean.
func branch(s *sampler, c bool) {
	p := &snap{}
	if c {
		s.cur.Store(p)
	} else {
		p.n = 1
	}
}

// The back edge carries the publish into the next iteration's write.
func loop(s *sampler) {
	p := &snap{}
	for i := 0; i < 2; i++ {
		p.n = i // want `p is written after being atomically published`
		s.cur.Store(p)
	}
}

// Rebinding to a fresh object after publish starts a new private build.
func republish(s *sampler) {
	p := &snap{}
	s.cur.Store(p)
	p = &snap{}
	p.n = 1
	s.cur.Store(p)
}

// A failed CompareAndSwap leaves the candidate private: the retry path
// may mutate it.
func casRetry(s *sampler, next func(*snap) *snap) {
	for {
		old := s.cur.Load()
		p := next(old)
		if s.cur.CompareAndSwap(old, p) {
			return
		}
		p.n = 0
	}
}

func casPublished(s *sampler, old, p *snap) {
	if s.cur.CompareAndSwap(old, p) {
		p.n = 1 // want `p is written after being atomically published`
	}
}

// Sanctioned single-writer mutation, justified at the write.
func sanctioned(s *sampler) {
	p := &snap{}
	s.cur.Store(p)
	//cyclolint:pubsafe readers tolerate monotonic updates of n
	p.n = 1
}
