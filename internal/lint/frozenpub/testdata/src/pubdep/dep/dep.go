// Package dep declares the snapshot type the importing package
// publishes: the analyzer must see through the cross-package generic
// instantiation atomic.Pointer[dep.Snap].
package dep

type Snap struct {
	N     int
	Edges []int
}

func NewSnap() *Snap { return &Snap{} }
