package use

import (
	"sync/atomic"

	"cyclolinttest/pubdep/dep"
)

type holder struct {
	cur atomic.Pointer[dep.Snap]
}

func publish(h *holder) {
	s := dep.NewSnap()
	s.N = 1
	h.cur.Store(s)
	s.Edges = append(s.Edges, 2) // want `s is written after being atomically published`
}

func clean(h *holder) {
	s := dep.NewSnap()
	s.N = 1
	s.Edges = append(s.Edges, 2)
	h.cur.Store(s)
}
