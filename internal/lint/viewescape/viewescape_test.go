package viewescape_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/viewescape"
)

func TestViewEscape(t *testing.T) {
	linttest.Run(t, viewescape.Analyzer, "viewescape")
}

// TestViewEscapeCrossPackage threads dep's facts into use's pass, the
// same way vetx facts flow in go vet mode.
func TestViewEscapeCrossPackage(t *testing.T) {
	linttest.Run(t, viewescape.Analyzer, "viewdep/dep", "viewdep/use")
}
