package viewescape_test

import (
	"testing"

	"cyclojoin/internal/lint/linttest"
	"cyclojoin/internal/lint/viewescape"
)

func TestViewEscape(t *testing.T) {
	linttest.Run(t, viewescape.Analyzer, "viewescape")
}
