// Package viewescape enforces the zero-copy buffer-ownership contract
// around relation.View, interprocedurally.
//
// A View binds a decoded fragment directly over a registered receive
// buffer: its Frag() and Frame() results alias memory the transport will
// reuse the moment the buffer's credit is released. A view-derived value
// is therefore only valid while the pipeline stage holding the credit is
// on the stack. Materialize() is the single sanctioned way to take
// ownership: its result deep-copies the data and may go anywhere.
//
// Version 2 runs on the internal/lint/dataflow IR. Every function gets a
// def-use flow graph; bottom-up summaries record, per parameter, whether
// the callee escapes it (global store, channel send, goroutine handoff),
// flows it to a result, or stores it into another parameter. Summaries
// cross package boundaries as facts, and dynamic interface-method calls
// resolve to the union of concrete methods with a matching name and
// signature. A diagnostic fires in the function where the view is born
// (bound, read from a map/global, or returned fresh by a callee), at the
// statement where the alias ultimately leaves frame custody — whether
// directly or inside a callee chain. Returning a view to the caller or
// parking it in a caller-owned struct is no longer reported at the
// return/store itself: those flows are summarized and charged to the
// call site that lets them escape, which removes v1's false positives on
// plumbing helpers.
//
// Deliberate ownership handoffs (the ring's inflight queue, where the
// credit travels with the view) are annotated at the statement:
//
//	//cyclolint:viewsafe <justification>
package viewescape

import (
	"go/types"

	"cyclojoin/internal/lint/analysis"
	"cyclojoin/internal/lint/dataflow"
)

// relationPkg declares View; the implementation is summarized but not
// reported on.
const relationPkg = "cyclojoin/internal/relation"

// Analyzer flags relation.View aliases escaping their credit scope.
var Analyzer = &analysis.Analyzer{
	Name:      "viewescape",
	Doc:       "a relation.View alias (or anything it flows into, across calls) must not outlive the buffer credit without Materialize()",
	Version:   "3",
	UsesFacts: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	g := dataflow.NewGraph(pass.Fset, pass.Pkg, pass.TypesInfo, pass.Files)
	imported := make(map[string]*dataflow.Summary)
	for _, imp := range pass.Pkg.Imports() {
		for k, s := range dataflow.DecodeEscapeFacts(pass.ImportedFacts(imp.Path())) {
			imported[k] = s
		}
	}
	eng := dataflow.NewEscape(g, dataflow.EscapeConfig{
		Source:   isViewType,
		Launders: launders,
	}, imported)
	eng.Solve()
	pass.Export(eng.Facts())

	if pass.Pkg.Path() == relationPkg {
		// The implementation aliases itself freely; its real summaries
		// (what Bind stores, what Frame returns) still reach importers,
		// which is what keeps e.g. Bind's error result untainted.
		return nil
	}
	for _, f := range eng.Findings() {
		file := pass.File(f.Pos)
		if file != nil && f.Stmt != nil && pass.HasDirective(file, f.Stmt, "viewsafe") {
			continue
		}
		pass.Reportf(f.Pos,
			"relation.View alias %s: it aliases registered receive memory and must not outlive the buffer credit; Materialize() first, or annotate //cyclolint:viewsafe with the ownership argument", f.What)
	}
	return nil
}

// launders recognizes View.Materialize: its result is a deep copy, so no
// taint crosses the call.
func launders(g *dataflow.Graph, cs *dataflow.CallSite) bool {
	fn := cs.Static
	if fn == nil {
		fn = cs.Iface
	}
	if fn == nil || fn.Name() != "Materialize" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return dataflow.IsNamedType(sig.Recv().Type(), relationPkg, "View")
}

// isViewType reports whether t is relation.View or *relation.View.
func isViewType(t types.Type) bool {
	return dataflow.IsNamedType(t, relationPkg, "View")
}
