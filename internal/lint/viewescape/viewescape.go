// Package viewescape enforces the zero-copy buffer-ownership contract
// around relation.View.
//
// A View binds a decoded fragment directly over a registered receive
// buffer: its Frag() and Frame() results alias memory the transport will
// reuse the moment the buffer's credit is released. A view-derived value
// is therefore only valid on the stack of the pipeline stage holding the
// credit; storing it in a struct field, a map, a global, sending it on a
// channel, or returning it lets the alias outlive the credit and read
// recycled bytes — the exact silent-corruption mode RDMA-style
// transports die from. Materialize() is the single sanctioned way to
// take ownership: its result deep-copies the data and may go anywhere.
//
// Within a function the analyzer taints: every expression whose static
// type is relation.View or *relation.View, the results of the aliasing
// accessors Frag() and Frame(), subslices of tainted slices, composite
// literals containing a tainted value, and locals assigned from any of
// those. It reports when a tainted value is assigned to a field, map,
// index or global, sent on a channel, or returned. Passing a tainted
// value as an ordinary call argument is allowed — the callee runs under
// the caller's credit.
//
// Deliberate ownership handoffs (the ring's inflight queue, where the
// credit travels with the view) are annotated at the statement:
//
//	//cyclolint:viewsafe <justification>
package viewescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"cyclojoin/internal/lint/analysis"
)

// relationPkg declares View; the implementation itself is exempt.
const relationPkg = "cyclojoin/internal/relation"

// Analyzer flags relation.View aliases escaping their credit scope.
var Analyzer = &analysis.Analyzer{
	Name: "viewescape",
	Doc:  "a relation.View (or Frag/Frame alias of one) must not be stored, sent, or returned without Materialize()",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == relationPkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn)
		}
	}
	return nil
}

// checker carries one function's taint state.
type checker struct {
	pass    *analysis.Pass
	file    *ast.File
	tainted map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl) {
	c := &checker{pass: pass, file: file, tainted: make(map[types.Object]bool)}
	// Propagate taint through local assignments to a fixed point; bodies
	// are small and taint only grows, so this converges quickly.
	for {
		before := len(c.tainted)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if obj == nil || isGlobal(obj) {
					continue
				}
				if c.taintedExpr(as.Rhs[i]) {
					c.tainted[obj] = true
				}
			}
			return true
		})
		if len(c.tainted) == before {
			break
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(s)
		case *ast.SendStmt:
			if c.taintedExpr(s.Value) && !c.sanctioned(s) {
				c.report(s.Pos(), "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if c.taintedExpr(res) && !c.sanctioned(s) {
					c.report(res.Pos(), "returned")
				}
			}
		}
		return true
	})
}

// checkAssign flags tainted values stored where they outlive the frame:
// struct fields, map/slice elements, dereferenced pointers, globals.
func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !c.taintedExpr(as.Rhs[i]) {
			continue
		}
		var what string
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			what = "stored in a struct field"
		case *ast.IndexExpr:
			what = "stored in a map or slice element"
		case *ast.StarExpr:
			what = "stored through a pointer"
		case *ast.Ident:
			obj := c.pass.TypesInfo.Defs[l]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[l]
			}
			if obj != nil && isGlobal(obj) {
				what = "stored in a package-level variable"
			}
		}
		if what != "" && !c.sanctioned(as) {
			c.report(as.Pos(), what)
		}
	}
}

// sanctioned reports whether the statement carries //cyclolint:viewsafe.
func (c *checker) sanctioned(stmt ast.Node) bool {
	return c.pass.HasDirective(c.file, stmt, "viewsafe")
}

func (c *checker) report(pos token.Pos, how string) {
	c.pass.Reportf(pos,
		"relation.View alias %s: it aliases registered receive memory and must not outlive the buffer credit; Materialize() first, or annotate //cyclolint:viewsafe with the ownership argument", how)
}

// taintedExpr reports whether e may alias a bound view's storage.
func (c *checker) taintedExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[x]
		}
		if obj != nil && c.tainted[obj] {
			return true
		}
	case *ast.ParenExpr:
		return c.taintedExpr(x.X)
	case *ast.StarExpr:
		return c.taintedExpr(x.X)
	case *ast.UnaryExpr:
		return c.taintedExpr(x.X)
	case *ast.SliceExpr:
		return c.taintedExpr(x.X)
	case *ast.CallExpr:
		if c.aliasingCall(x) {
			return true
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if c.taintedExpr(v) {
				return true
			}
		}
	}
	return c.isViewType(e)
}

// aliasingCall recognizes the accessors whose results alias the view's
// frame. Materialize deliberately is not among them.
func (c *checker) aliasingCall(call *ast.CallExpr) bool {
	return c.pass.IsMethodOn(call, relationPkg, "View", "Frag") ||
		c.pass.IsMethodOn(call, relationPkg, "View", "Frame")
}

// isViewType reports whether e's static type is View or *View.
func (c *checker) isViewType(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return analysis.IsNamed(tv.Type, relationPkg, "View")
}

func isGlobal(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
