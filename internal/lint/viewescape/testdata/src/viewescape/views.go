// Test surface for viewescape v2: escapes are charged to the function
// where the view is born, at the statement where the alias ultimately
// leaves frame custody — directly or through a summarized callee chain.
package viewescape

import "cyclojoin/internal/relation"

type holder struct {
	v  *relation.View
	bs []byte
}

var global *relation.View
var globalBytes []byte
var globalFrag *relation.Fragment

// bind births a view. No diagnostic here: returning a fresh view is
// summarized (FreshResult), and the caller inherits the taint.
func bind(frame []byte) *relation.View {
	v := new(relation.View)
	_ = v.Bind(frame, "t")
	return v
}

// Plumbing helpers: passing, returning, or parking a view in a
// caller-owned struct is summarized, not flagged — v1 flagged these.
func ret(v *relation.View) *relation.View { return v }

func storeField(h *holder, v *relation.View) { h.v = v }

func frameOf(v *relation.View) []byte { return v.Frame() }

// storeGlobal escapes its parameter; the finding surfaces at call sites.
func storeGlobal(v *relation.View) { global = v }

func leakGlobal(frame []byte) {
	v := bind(frame)
	global = v // want `stored in package-level variable`
}

func leakViaCall(frame []byte) {
	v := bind(frame)
	storeGlobal(v) // want `escapes via call to cyclolinttest/viewescape.storeGlobal`
}

// Two hops: ret passes the view through, storeGlobal sinks it.
func leakViaChain(frame []byte) {
	storeGlobal(ret(bind(frame))) // want `escapes via call to cyclolinttest/viewescape.storeGlobal`
}

func leakSend(ch chan []byte, frame []byte) {
	v := bind(frame)
	ch <- frameOf(v) // want `sent on a channel`
}

func leakSubslice(frame []byte) {
	v := bind(frame)
	b := v.Frame()
	globalBytes = b[:4] // want `stored in package-level variable`
}

func discard(v *relation.View) {}

func leakGoroutine(frame []byte) {
	v := bind(frame)
	go discard(v) // want `passed to a goroutine`
}

// Parking a view in a local holder through a helper stays in-frame: the
// summary records the param-to-param store, and the holder never leaves.
func parkLocal(frame []byte) int {
	v := bind(frame)
	h := &holder{}
	storeField(h, v)
	return len(h.bs)
}

// Materialize is the sanctioned ownership transfer: a deep copy that may
// go anywhere, including through helper calls.
func materialized(frame []byte) {
	v := bind(frame)
	globalFrag = v.Materialize()
}

// Scalar reads off a tainted fragment don't carry the alias.
func scalarOK(frame []byte) int {
	v := bind(frame)
	f := v.Frag()
	return f.Index + f.Hops
}

// An annotated handoff is allowed; the justification documents who
// releases the credit.
func sanctionedSend(ch chan *relation.View, frame []byte) {
	v := bind(frame)
	//cyclolint:viewsafe the credit travels with the view; the receiver releases it
	ch <- v
}

func localsOK(frame []byte) int {
	v := bind(frame)
	b := v.Frame()
	w := v
	_ = w
	return len(b)
}
