// Test surface for the viewescape analyzer: every way a bound view's
// alias can outlive its buffer credit, plus the sanctioned patterns.
package viewescape

import "cyclojoin/internal/relation"

type holder struct {
	v  *relation.View
	bs []byte
}

var global *relation.View

func storeField(h *holder, v *relation.View) {
	h.v = v // want `stored in a struct field`
}

func storeFrame(h *holder, v *relation.View) {
	h.bs = v.Frame() // want `stored in a struct field`
}

func storeGlobal(v *relation.View) {
	global = v // want `package-level variable`
}

func storeMap(m map[int]*relation.View, v *relation.View) {
	m[0] = v // want `map or slice element`
}

func send(ch chan *relation.View, v *relation.View) {
	ch <- v // want `sent on a channel`
}

func ret(v *relation.View) *relation.View {
	return v // want `returned`
}

func retFrame(v *relation.View) []byte {
	return v.Frame() // want `returned`
}

func retSubslice(v *relation.View) []byte {
	b := v.Frame()
	return b[:4] // want `returned`
}

func retStruct(v *relation.View) holder {
	return holder{bs: v.Frame()} // want `returned`
}

// Materialize is the sanctioned ownership transfer: its result is a deep
// copy and may go anywhere.
func materialized(v *relation.View) *relation.Fragment {
	return v.Materialize()
}

type fragHolder struct {
	f *relation.Fragment
}

func materializedField(h *fragHolder, v *relation.View) {
	h.f = v.Materialize()
}

// Passing a view down the stack is fine: the callee runs under the
// caller's credit.
func argOK(v *relation.View) int {
	return consume(v)
}

func consume(v *relation.View) int {
	if v == nil {
		return 0
	}
	return 1
}

// An annotated handoff is allowed; the justification documents who
// releases the credit.
func sanctionedSend(ch chan *relation.View, v *relation.View) {
	//cyclolint:viewsafe the credit travels with the view; the receiver releases it
	ch <- v
}

func localsOK(v *relation.View) int {
	b := v.Frame()
	w := v
	_ = w
	return len(b)
}
