// Package use exercises viewescape summaries across a package boundary:
// dep's facts tell this pass that Fresh births a view, Identity passes
// it through, and Park escapes it.
package use

import "cyclolinttest/viewdep/dep"

func leak(frame []byte) {
	v := dep.Fresh(frame)
	dep.Park(v) // want `escapes via call to cyclolinttest/viewdep/dep.Park`
}

func leakThroughIdentity(frame []byte) {
	dep.Park(dep.Identity(dep.Fresh(frame))) // want `escapes via call to cyclolinttest/viewdep/dep.Park`
}

func ok(frame []byte) int {
	v := dep.Fresh(frame)
	w := dep.Identity(v)
	if w == nil {
		return 0
	}
	return 1
}
