// Package dep is the downstream half of the cross-package viewescape
// fixture: its summaries must reach importers through exported facts.
package dep

import "cyclojoin/internal/relation"

var parked *relation.View

// Park escapes its parameter into a package-level variable. The finding
// belongs to the caller that owns the view.
func Park(v *relation.View) { parked = v }

// Identity summarizes as param 0 → result 0.
func Identity(v *relation.View) *relation.View { return v }

// Fresh births and returns a view: FreshResult in the summary, so
// callers must treat the result as tainted.
func Fresh(frame []byte) *relation.View {
	v := new(relation.View)
	_ = v.Bind(frame, "dep")
	return v
}
