package planner

import (
	"math"
	"testing"

	"cyclojoin/internal/workload"
)

func TestExactJoinSize(t *testing.T) {
	r, err := workload.Generate(workload.Spec{Name: "R", Tuples: 5000, KeyDomain: 500, Seed: 61, PayloadWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.Generate(workload.Spec{Name: "S", Tuples: 4000, KeyDomain: 500, Seed: 62, PayloadWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(workload.ExpectedMatches(workload.Multiplicities(r), workload.Multiplicities(s)))
	if got := EstimateJoinSize(r, s, 1); got != want {
		t.Errorf("exact join size = %g, want %g", got, want)
	}
	if got := EstimateJoinSize(r, s, 0); got != want {
		t.Errorf("rate 0 should be exact: %g vs %g", got, want)
	}
}

// TestSampledEstimateAccuracy: correlated sampling must land within a
// reasonable band of the true size for both uniform and skewed inputs.
func TestSampledEstimateAccuracy(t *testing.T) {
	cases := []struct {
		name string
		zipf float64
		tol  float64
	}{
		{"uniform", 0, 0.25},
		// Sampling variance grows with skew (a missed hot key hurts);
		// the tolerance reflects that.
		{"zipf0.5", 0.5, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := workload.Generate(workload.Spec{Name: "R", Tuples: 200_000, KeyDomain: 20_000, Zipf: tc.zipf, Seed: 63, PayloadWidth: 4})
			if err != nil {
				t.Fatal(err)
			}
			s, err := workload.Generate(workload.Spec{Name: "S", Tuples: 200_000, KeyDomain: 20_000, Zipf: tc.zipf, Seed: 64, PayloadWidth: 4})
			if err != nil {
				t.Fatal(err)
			}
			exact := EstimateJoinSize(r, s, 1)
			sampled := EstimateJoinSize(r, s, 16)
			if exact == 0 {
				t.Fatal("degenerate workload")
			}
			if rel := math.Abs(sampled-exact) / exact; rel > tc.tol {
				t.Errorf("sampled estimate off by %.0f%%: %g vs exact %g", rel*100, sampled, exact)
			}
		})
	}
}

func TestEstimateWorkload(t *testing.T) {
	r := workload.Sequential("R", 1000, 4)
	s := workload.Sequential("S", 500, 12)
	w := EstimateWorkload(r, s, 4, 2)
	if w.RTuples != 1000 || w.STuples != 500 || w.Nodes != 4 || w.Threads != 2 {
		t.Errorf("workload = %+v", w)
	}
	if w.TupleBytes != 20 { // wider relation wins: 8-byte key + 12 payload
		t.Errorf("TupleBytes = %d, want 20", w.TupleBytes)
	}
}

func TestChooseForRelations(t *testing.T) {
	r := workload.Sequential("R", 100_000, 4)
	s := workload.Sequential("S", 100_000, 4)
	p, err := ChooseForRelations(cal(), r, s, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != Hash {
		t.Errorf("small join should pick hash, got %s", p.Algorithm)
	}
	if _, err := ChooseForRelations(cal(), nil, s, 4, 4); err == nil {
		t.Error("nil relation: want error")
	}
}
