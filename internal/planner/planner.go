// Package planner implements the cost model for cyclo-join that the paper
// names as ongoing work (§VII: "a complete cost model for cyclo-join").
//
// Given the two input cardinalities, the ring size and the hardware
// calibration, the planner predicts setup, join and sync time for each
// (algorithm, rotation side) combination and picks the cheapest plan. The
// model encodes the paper's qualitative findings quantitatively:
//
//   - hash setup is cheap but its probe phase is slower than a merge;
//   - sort setup is expensive but amortizes over large rings (§V-E
//     expects sort-merge to overtake hash "in configurations of ≈30
//     nodes upward, i.e. data volumes ≳100 GB") — see Crossover;
//   - the join phase cannot run faster than the slowest link can deliver
//     the rotating relation (§V-F);
//   - rotating the smaller relation reduces wire time (§IV-B).
package planner

import (
	"fmt"
	"math"
	"time"

	"cyclojoin/internal/costmodel"
)

// AlgorithmKind names a local join algorithm in plans.
type AlgorithmKind string

// Plannable algorithms.
const (
	Hash      AlgorithmKind = "hash"
	SortMerge AlgorithmKind = "sortmerge"
)

// Workload describes one cyclo-join to plan.
type Workload struct {
	// RTuples and STuples are the input cardinalities (R is the rotating
	// candidate by default; the planner may swap).
	RTuples, STuples int
	// TupleBytes is the serialized tuple width; zero means the
	// calibration's width.
	TupleBytes int
	// Nodes is the ring size.
	Nodes int
	// Threads is per-host join parallelism; zero means all cores.
	Threads int
}

func (w Workload) validate() error {
	switch {
	case w.RTuples < 0 || w.STuples < 0:
		return fmt.Errorf("planner: negative cardinality (%d, %d)", w.RTuples, w.STuples)
	case w.Nodes < 1:
		return fmt.Errorf("planner: %d nodes", w.Nodes)
	default:
		return nil
	}
}

// Plan is one costed execution strategy.
type Plan struct {
	// Algorithm is the chosen local join.
	Algorithm AlgorithmKind
	// RotateR reports whether R is the rotating relation (false = the
	// planner swapped the sides).
	RotateR bool
	// Setup, Join and Sync are the predicted phase durations.
	Setup, Join, Sync time.Duration
}

// Total is the predicted wall clock.
func (p Plan) Total() time.Duration { return p.Setup + p.Join + p.Sync }

// String implements fmt.Stringer.
func (p Plan) String() string {
	side := "R"
	if !p.RotateR {
		side = "S"
	}
	return fmt.Sprintf("%s(rotate %s): setup %.1fs join %.1fs sync %.1fs",
		p.Algorithm, side, p.Setup.Seconds(), p.Join.Seconds(), p.Sync.Seconds())
}

// Candidates costs every (algorithm, rotation side) combination.
func Candidates(cal costmodel.Calibration, w Workload) ([]Plan, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	threads := w.Threads
	if threads <= 0 {
		threads = cal.Cores
	}
	width := w.TupleBytes
	if width <= 0 {
		width = cal.TupleBytes
	}
	plans := make([]Plan, 0, 4)
	for _, alg := range []AlgorithmKind{Hash, SortMerge} {
		for _, rotateR := range []bool{true, false} {
			rot, stat := w.RTuples, w.STuples
			if !rotateR {
				rot, stat = stat, rot
			}
			plans = append(plans, cost(cal, alg, rotateR, rot, stat, w.Nodes, threads, width))
		}
	}
	return plans, nil
}

// Choose returns the cheapest plan.
func Choose(cal costmodel.Calibration, w Workload) (Plan, error) {
	plans, err := Candidates(cal, w)
	if err != nil {
		return Plan{}, err
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.Total() < best.Total() {
			best = p
		}
	}
	return best, nil
}

// cost predicts one strategy's phases. rot/stat are the rotating and
// stationary cardinalities.
func cost(cal costmodel.Calibration, alg AlgorithmKind, rotateR bool, rot, stat, nodes, threads, width int) Plan {
	statPerHost := ceilDiv(stat, nodes)
	rotPerHost := ceilDiv(rot, nodes)

	var setup time.Duration
	var computeSecs float64
	switch alg {
	case Hash:
		// Setup: build hash tables over the local stationary fragment;
		// radix-clustering the local rotating fragments happens
		// concurrently and is cheaper, so the stationary build sets the
		// wall clock.
		setup = cal.HashSetupTime(statPerHost)
		computeSecs = float64(rot) * cal.HashProbePerTupleCore.Seconds() / float64(threads)
	case SortMerge:
		// Setup: sort R_i and S_i concurrently; the larger fragment
		// sets the wall clock.
		frag := statPerHost
		if rotPerHost > frag {
			frag = rotPerHost
		}
		setup = cal.SortSetupTime(frag)
		computeSecs = float64(rot) * cal.MergePerTupleCore.Seconds() / float64(threads)
	}

	// One revolution pushes the rotating relation across every link once
	// (§V-F); the join phase cannot beat the wire.
	var syncSecs float64
	if nodes > 1 {
		wireSecs := float64(rot*width) / cal.EffectiveBandwidth()
		if wireSecs > computeSecs {
			syncSecs = wireSecs - computeSecs
		}
	}
	return Plan{
		Algorithm: alg,
		RotateR:   rotateR,
		Setup:     setup,
		Join:      seconds(computeSecs),
		Sync:      seconds(syncSecs),
	}
}

// Crossover returns the smallest ring size at which sort-merge beats the
// hash join for a workload that adds perNodeTuples of each relation per
// node (the Fig 8/11 scale-up shape). §V-E expects ≈30 nodes for the
// paper's qsort-based implementation.
func Crossover(cal costmodel.Calibration, perNodeTuples, maxNodes int) (int, error) {
	if perNodeTuples < 1 || maxNodes < 1 {
		return 0, fmt.Errorf("planner: crossover with %d tuples/node, %d max nodes", perNodeTuples, maxNodes)
	}
	for nodes := 1; nodes <= maxNodes; nodes++ {
		w := Workload{RTuples: perNodeTuples * nodes, STuples: perNodeTuples * nodes, Nodes: nodes}
		plans, err := Candidates(cal, w)
		if err != nil {
			return 0, err
		}
		var hash, sm Plan
		for _, p := range plans {
			if p.RotateR {
				switch p.Algorithm {
				case Hash:
					hash = p
				case SortMerge:
					sm = p
				}
			}
		}
		if sm.Total() < hash.Total() {
			return nodes, nil
		}
	}
	return 0, fmt.Errorf("planner: no crossover up to %d nodes", maxNodes)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func seconds(s float64) time.Duration {
	if math.IsInf(s, 1) {
		return math.MaxInt64
	}
	return time.Duration(s * float64(time.Second))
}
