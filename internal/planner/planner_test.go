package planner

import (
	"testing"

	"cyclojoin/internal/costmodel"
)

// perNodeTuples mirrors the Fig 8 scale-up: 140 M 12-byte tuples of each
// relation per node (3.2 GB per node).
const perNodeTuples = 140_000_000

func cal() costmodel.Calibration { return costmodel.Default() }

func TestValidation(t *testing.T) {
	if _, err := Candidates(cal(), Workload{RTuples: -1, STuples: 1, Nodes: 1}); err == nil {
		t.Error("negative cardinality: want error")
	}
	if _, err := Choose(cal(), Workload{RTuples: 1, STuples: 1, Nodes: 0}); err == nil {
		t.Error("zero nodes: want error")
	}
	if _, err := Crossover(cal(), 0, 10); err == nil {
		t.Error("zero tuples/node: want error")
	}
}

func TestCandidatesCount(t *testing.T) {
	plans, err := Candidates(cal(), Workload{RTuples: 1000, STuples: 1000, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 4 {
		t.Fatalf("%d candidates, want 4 (2 algorithms × 2 rotation sides)", len(plans))
	}
}

// TestHashWinsAtPaperScale: at the paper's 6-node testbed the hash join is
// the better choice (Fig 7/8 vs Fig 10/11 totals).
func TestHashWinsAtPaperScale(t *testing.T) {
	p, err := Choose(cal(), Workload{
		RTuples: 6 * perNodeTuples,
		STuples: 6 * perNodeTuples,
		Nodes:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm != Hash {
		t.Errorf("planner chose %s at 6 nodes; the paper's testbed favors hash", p.Algorithm)
	}
}

// TestCrossoverNearPaperPrediction reproduces §V-E: "we expect that
// [sort-merge] would overpass [hash join] in Data Roundabout
// configurations of ≈30 nodes upward (i.e., for data volumes ≳100 GB)".
func TestCrossoverNearPaperPrediction(t *testing.T) {
	nodes, err := Crossover(cal(), perNodeTuples, 200)
	if err != nil {
		t.Fatal(err)
	}
	if nodes < 20 || nodes > 80 {
		t.Errorf("sort-merge overtakes hash at %d nodes; paper predicts ≈30 upward", nodes)
	}
	// The crossover data volume is ≳100 GB.
	volumeGB := float64(2*nodes*perNodeTuples*cal().TupleBytes) / 1e9
	if volumeGB < 60 {
		t.Errorf("crossover volume %.0f GB; paper says ≳100 GB", volumeGB)
	}
	t.Logf("crossover at %d nodes (%.0f GB total)", nodes, volumeGB)
}

// TestRotateSmallerPreferred: with lopsided inputs the planner rotates the
// smaller relation (§IV-B).
func TestRotateSmallerPreferred(t *testing.T) {
	// Large ring so wire time matters.
	p, err := Choose(cal(), Workload{RTuples: 800_000_000, STuples: 50_000_000, Nodes: 6})
	if err != nil {
		t.Fatal(err)
	}
	if p.RotateR {
		t.Errorf("planner rotates the larger relation: %s", p)
	}
}

// TestSyncPredictedWhenMergeOutrunsLink: the Fig 11 situation appears in
// the cost model too.
func TestSyncPredictedWhenMergeOutrunsLink(t *testing.T) {
	plans, err := Candidates(cal(), Workload{
		RTuples: 6 * perNodeTuples,
		STuples: 6 * perNodeTuples,
		Nodes:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Algorithm == SortMerge && p.RotateR {
			if p.Sync <= 0 {
				t.Error("sort-merge at 19.2 GB must predict sync time (Fig 11)")
			}
		}
		if p.Algorithm == Hash && p.RotateR {
			if p.Sync > p.Join/5 {
				t.Errorf("hash join predicts %v sync; communication should hide behind the probe", p.Sync)
			}
		}
	}
}

// TestSingleNodeNoSync: no links, no sync.
func TestSingleNodeNoSync(t *testing.T) {
	plans, err := Candidates(cal(), Workload{RTuples: 1_000_000, STuples: 1_000_000, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Sync != 0 {
			t.Errorf("%s predicts sync on a single node", p)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Algorithm: Hash, RotateR: false}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
}
