package planner

import (
	"fmt"

	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/relation"
)

// EstimateJoinSize predicts |R ⋈ S| for an equi-join by correlated
// sampling: both relations are sampled with the same hash predicate
// (HashKey(k) mod rate == 0), so matching pairs either survive together or
// are dropped together, making the scaled sample count an unbiased
// estimator of the full join size. This is the input a cost-based
// optimizer needs for sizing a materialized cyclo-join output (e.g. the
// intermediate of a ternary join).
//
// rate is the inverse sampling fraction (rate = 100 keeps ≈1 % of the key
// space); rate ≤ 1 computes the exact size.
func EstimateJoinSize(r, s *relation.Relation, rate int) float64 {
	if rate <= 1 {
		return float64(exactJoinSize(r, s))
	}
	u := uint64(rate)
	keep := func(k uint64) bool { return relation.HashKey(k)%u == 0 }

	sampled := make(map[uint64]int)
	for i := 0; i < s.Len(); i++ {
		if k := s.Key(i); keep(k) {
			sampled[k]++
		}
	}
	var matches float64
	for i := 0; i < r.Len(); i++ {
		if k := r.Key(i); keep(k) {
			matches += float64(sampled[k])
		}
	}
	return matches * float64(rate)
}

func exactJoinSize(r, s *relation.Relation) int {
	m := make(map[uint64]int, s.Len())
	for i := 0; i < s.Len(); i++ {
		m[s.Key(i)]++
	}
	total := 0
	for i := 0; i < r.Len(); i++ {
		total += m[r.Key(i)]
	}
	return total
}

// EstimateWorkload derives a planner workload directly from the relations.
func EstimateWorkload(r, s *relation.Relation, nodes, threads int) Workload {
	width := r.Schema().TupleWidth()
	if w := s.Schema().TupleWidth(); w > width {
		width = w
	}
	return Workload{
		RTuples:    r.Len(),
		STuples:    s.Len(),
		TupleBytes: width,
		Nodes:      nodes,
		Threads:    threads,
	}
}

// ChooseForRelations picks the cheapest plan for joining two concrete
// relations on a ring of the given size.
func ChooseForRelations(cal costmodel.Calibration, r, s *relation.Relation, nodes, threads int) (Plan, error) {
	if r == nil || s == nil {
		return Plan{}, fmt.Errorf("planner: nil relation")
	}
	return Choose(cal, EstimateWorkload(r, s, nodes, threads))
}
