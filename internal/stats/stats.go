// Package stats provides the fixed-width table rendering and duration
// formatting the benchmark harness uses to print paper-style result tables.
package stats

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled fixed-width text table.
type Table struct {
	title   string
	note    string
	columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{title: title, columns: columns}
}

// SetNote attaches a footnote rendered under the table.
func (t *Table) SetNote(note string) { t.note = note }

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// AddRow appends one row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.columns)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.note != "" {
		b.WriteString(t.note)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Secs formats a duration as seconds with one decimal, the unit of the
// paper's wall-clock axes.
func Secs(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

// Secs2 formats a duration as seconds with two decimals.
func Secs2(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// GB formats a byte count in gigabytes (decimal, as the paper labels data
// volumes).
func GB(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/1e9)
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}

// Gbps formats a byte-per-second rate in gigabits per second (Fig 5's
// y-axis).
func Gbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f", bytesPerSec*8/1e9)
}
