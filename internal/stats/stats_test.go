package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("T", "a", "bb")
	tbl.AddRow("1", "2")
	tbl.AddRow("333") // short row: second cell empty
	tbl.SetNote("note")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T\n", "a", "bb", "333", "note\n", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
	if tbl.Cell(0, 1) != "2" {
		t.Errorf("Cell(0,1) = %q", tbl.Cell(0, 1))
	}
	if tbl.Cell(1, 1) != "" {
		t.Errorf("short row cell = %q, want empty", tbl.Cell(1, 1))
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tbl := NewTable("T", "a")
	tbl.AddRow("1", "overflow")
	if tbl.Cell(0, 0) != "1" {
		t.Error("first cell lost")
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Secs(16200 * time.Millisecond), "16.2"},
		{Secs2(2300 * time.Millisecond), "2.30"},
		{GB(9_600_000_000), "9.6"},
		{Pct(0.86), "86%"},
		{Gbps(1.25e9), "10.00"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}
