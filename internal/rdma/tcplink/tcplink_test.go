package tcplink

import (
	"net"
	"testing"
	"time"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/rdmatest"
	"cyclojoin/internal/testutil"
)

// TestConformancePipe runs the suite over an in-memory net.Pipe.
func TestConformancePipe(t *testing.T) {
	testutil.CheckNoLeaks(t)
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		c1, c2 := net.Pipe()
		return New(c1), New(c2)
	})
}

// TestConformanceLoopback runs the suite over real TCP sockets.
func TestConformanceLoopback(t *testing.T) {
	testutil.CheckNoLeaks(t)
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			_ = ln.Close()
		}()
		type accepted struct {
			qp  rdma.QueuePair
			err error
		}
		ch := make(chan accepted, 1)
		go func() {
			qp, err := ln.Accept()
			ch <- accepted{qp, err}
		}()
		dialer, err := Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		acc := <-ch
		if acc.err != nil {
			t.Fatal(acc.err)
		}
		return dialer, acc.qp
	})
}

func TestDialRefused(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port: want error")
	}
}

func TestListenBadAddr(t *testing.T) {
	if _, err := Listen("256.0.0.1:0"); err == nil {
		t.Error("Listen on bad address: want error")
	}
}

// TestPeerDisconnectSurfacesError checks that a hard peer close produces an
// error completion rather than a hang.
func TestPeerDisconnectSurfacesError(t *testing.T) {
	c1, c2 := net.Pipe()
	a := New(c1)
	defer func() {
		_ = a.Close()
	}()
	dev := rdma.OpenDevice("t")
	rb, err := dev.Register(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	_ = c2.Close() // peer dies
	select {
	case c, ok := <-a.Completions():
		if ok && c.Err == nil {
			t.Error("want error completion after peer disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no completion after peer disconnect")
	}
}

func TestWriteConformancePipe(t *testing.T) {
	rdmatest.RunWrites(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		c1, c2 := net.Pipe()
		return New(c1), New(c2)
	})
}
