package tcplink

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/testutil"
)

// countingConn records every Write so framing behaviour is observable.
type countingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	bytes  int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	c.bytes += len(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *countingConn) snapshot() (writes, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes, c.bytes
}

// register allocates a buffer holding n payload bytes.
func register(t *testing.T, n int) *rdma.Buffer {
	t.Helper()
	b, err := rdma.OpenDevice("t").Register(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetLen(n); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSingleWriteFraming checks that one posted frame results in exactly
// one conn.Write — header, payload and CRC trailer coalesced — instead
// of the 2–3 separate writes the old writeLoop issued.
func TestSingleWriteFraming(t *testing.T) {
	for _, checksum := range []bool{false, true} {
		name := "plain"
		if checksum {
			name = "checksummed"
		}
		t.Run(name, func(t *testing.T) {
			c1, c2 := net.Pipe()
			cc := &countingConn{Conn: c1}
			a := newLink(cc, checksum, defaultMaxFrame)
			var b rdma.QueuePair
			if checksum {
				b = NewChecksummed(c2)
			} else {
				b = New(c2)
			}
			defer func() {
				_ = a.Close()
				_ = b.Close()
			}()

			const frames = 3
			const payload = 100
			if err := b.PostRecv(register(t, payload)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < frames; i++ {
				sb := register(t, payload)
				if err := a.PostSend(sb); err != nil {
					t.Fatal(err)
				}
				// Wait for the send completion so the frame is fully on
				// the wire before counting.
				select {
				case c := <-a.Completions():
					if c.Err != nil {
						t.Fatal(c.Err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("no send completion")
				}
				// Keep the receiver consuming.
				select {
				case c := <-b.Completions():
					if c.Err != nil {
						t.Fatal(c.Err)
					}
					if err := b.PostRecv(c.Buf); err != nil {
						t.Fatal(err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("no receive completion")
				}
			}
			writes, bytes := cc.snapshot()
			if writes != frames {
				t.Errorf("%d frames took %d conn.Write calls, want %d (one per frame)", frames, writes, frames)
			}
			wantFrame := 5 + payload
			if checksum {
				wantFrame += 4
			}
			if bytes != frames*wantFrame {
				t.Errorf("wire volume = %d B, want %d B", bytes, frames*wantFrame)
			}
		})
	}
}

// TestOversizedSendRejected checks that a payload over the frame limit is
// refused at post time with ErrFrameTooLarge and that nothing reaches
// the wire.
func TestOversizedSendRejected(t *testing.T) {
	c1, c2 := net.Pipe()
	cc := &countingConn{Conn: c1}
	a := newLink(cc, false, 64)
	defer func() {
		_ = a.Close()
		_ = c2.Close()
	}()
	err := a.PostSend(register(t, 65))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("PostSend(65 B past a 64 B limit) = %v, want ErrFrameTooLarge", err)
	}
	if writes, _ := cc.snapshot(); writes != 0 {
		t.Errorf("rejected frame still caused %d writes", writes)
	}
	// The link stays usable: a frame within the limit goes through.
	if err := a.PostSend(register(t, 64)); err != nil {
		t.Errorf("in-range PostSend after rejection: %v", err)
	}
}

// TestOversizedWriteRejected covers the one-sided write path: oversized
// payloads and offsets the 32-bit wire field cannot carry are typed
// errors at post time.
func TestOversizedWriteRejected(t *testing.T) {
	c1, c2 := net.Pipe()
	cc := &countingConn{Conn: c1}
	a := newLink(cc, false, 64)
	defer func() {
		_ = a.Close()
		_ = c2.Close()
	}()
	src := register(t, 65)
	if err := a.PostWrite(1, 0, src); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("PostWrite oversized payload = %v, want ErrFrameTooLarge", err)
	}
	small := register(t, 8)
	for _, off := range []int{-1, maxWireOffset + 1, maxWireOffset - 4} {
		if err := a.PostWriteImm(1, off, small, 0); !errors.Is(err, ErrOffsetOutOfRange) {
			t.Errorf("PostWriteImm(off=%d) = %v, want ErrOffsetOutOfRange", off, err)
		}
	}
	if writes, _ := cc.snapshot(); writes != 0 {
		t.Errorf("rejected writes still caused %d conn writes", writes)
	}
	// An offset at the very top of the representable range is accepted
	// at post time (bounds against the peer's extent are its business).
	if err := a.PostWrite(1, maxWireOffset-8, small); err != nil {
		t.Errorf("PostWrite at max representable offset: %v", err)
	}
}

// TestDialTimeout checks that Dial is bounded by a deadline and that the
// error names the configured timeout.
func TestDialTimeout(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = ln.Close()
	}()
	// A 1 ns budget expires before even a loopback connect completes, so
	// this deterministically exercises the timeout path.
	start := time.Now()
	_, err = DialTimeout(ln.Addr(), time.Nanosecond)
	if err == nil {
		t.Fatal("DialTimeout(1ns): want error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("DialTimeout(1ns) took %v; the deadline did not bound the dial", elapsed)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("DialTimeout error = %v, want a net timeout error", err)
	}
	if !strings.Contains(err.Error(), "timeout 1ns") {
		t.Errorf("error %q does not surface the configured deadline", err)
	}
}

// badFrameCase injects one hand-built malformed frame into the raw side
// of the connection and describes what the link should do with it.
type badFrameCase struct {
	name     string
	checksum bool
	// frame is the raw bytes pushed at the link's read loop. closeAfter
	// truncates the stream afterwards (a torn connection mid-payload).
	frame      func() []byte
	closeAfter bool
}

// TestBadFramesReturnEveryCredit is the receive-credit leak audit for the
// read loop's error paths: whatever malformed input kills the link, every
// posted receive buffer must come back through the completion queue —
// either inside the fatal error completion (the consumed credit) or as
// ErrFlushed from Close. A dropped credit here starves the ring's receive
// pool after recovery re-dials the link.
func TestBadFramesReturnEveryCredit(t *testing.T) {
	goodPayload := func(kind byte, n int) []byte {
		f := make([]byte, 5+n)
		f[0] = kind
		binary.BigEndian.PutUint32(f[1:5], uint32(n))
		return f
	}
	cases := []badFrameCase{
		{
			name: "unknown frame type",
			frame: func() []byte {
				return goodPayload(0xee, 0)[:5]
			},
		},
		{
			name: "length over limit",
			frame: func() []byte {
				f := goodPayload(frameSend, 0)[:5]
				binary.BigEndian.PutUint32(f[1:5], uint32(defaultMaxFrame+1))
				return f
			},
		},
		{
			name:     "checksum mismatch",
			checksum: true,
			frame: func() []byte {
				f := goodPayload(frameSend, 8)
				copy(f[5:], "01234567")
				// Trailer deliberately wrong.
				return append(f, 0xde, 0xad, 0xbe, 0xef)
			},
		},
		{
			name: "torn mid-payload",
			frame: func() []byte {
				f := goodPayload(frameSend, 64)
				return f[:5+10] // announce 64 B, deliver 10
			},
			closeAfter: true,
		},
		{
			name: "short write header",
			frame: func() []byte {
				return goodPayload(frameWriteImm, 4)[:7]
			},
			closeAfter: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			testutil.CheckNoLeaks(t)
			raw, side := net.Pipe()
			l := newLink(side, tc.checksum, defaultMaxFrame)

			posted := []*rdma.Buffer{register(t, 64), register(t, 64)}
			for _, b := range posted {
				if err := l.PostRecv(b); err != nil {
					t.Fatal(err)
				}
			}
			go func() {
				_, _ = raw.Write(tc.frame())
				if tc.closeAfter {
					_ = raw.Close()
				}
			}()

			// The fatal error completion arrives first; Close then flushes
			// whatever the failure did not consume.
			var got []rdma.Completion
			deadline := time.After(5 * time.Second)
			for sawError := false; !sawError; {
				select {
				case c, ok := <-l.Completions():
					if !ok {
						t.Fatal("CQ closed before the failure surfaced")
					}
					got = append(got, c)
					sawError = c.Err != nil
				case <-deadline:
					t.Fatal("malformed frame never surfaced an error completion")
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			for c := range l.Completions() {
				got = append(got, c)
			}
			_ = raw.Close()

			returned := map[*rdma.Buffer]int{}
			for _, c := range got {
				if c.Buf != nil {
					returned[c.Buf]++
				}
			}
			for i, b := range posted {
				switch returned[b] {
				case 1:
				case 0:
					t.Errorf("posted receive buffer %d never returned through the CQ (credit leaked)", i)
				default:
					t.Errorf("posted receive buffer %d returned %d times", i, returned[b])
				}
			}
		})
	}
}

// TestListenerCloseUnblocksAccept: closing the listener mid-Accept must
// error out the pending Accept promptly instead of stranding its
// goroutine — the ring's teardown path closes listeners with dials still
// possibly in flight.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	testutil.CheckNoLeaks(t)
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		accepted <- err
	}()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-accepted:
		if err == nil {
			t.Fatal("Accept returned a connection after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Accept still blocked 5s after Close")
	}
}
